//! # psca — Post-Silicon CPU Adaptation, Made Practical Using Machine Learning
//!
//! Facade crate re-exporting the full reproduction of Tarsa et al.,
//! *Post-Silicon CPU Adaptation Made Practical Using Machine Learning*
//! (ISCA 2019): an adaptive clustered CPU whose issue width is set every few
//! tens of thousands of instructions by an ML model running in
//! microcontroller firmware.
//!
//! See the individual crates for details:
//!
//! - [`trace`] — instruction & trace substrate
//! - [`telemetry`] — event counters and the 936-stream telemetry cross-section
//! - [`workloads`] — synthetic HDTR corpus and SPEC2017-like test suite
//! - [`cpu`] — the two-cluster out-of-order simulator with cluster gating
//! - [`ml`] — from-scratch ML library (MLP, random forest, LR, SVM, PF selection)
//! - [`uc`] — microcontroller budget model and op-counted firmware inference
//! - [`adapt`] — the paper's contribution: SLA metrics, blindspot-mitigating
//!   training, the adaptive closed loop, and every experiment in §5–§7
//! - [`faults`] — deterministic fault injection for the chaos harness and
//!   the graceful-degradation ladder (`docs/ROBUSTNESS.md`)
//! - [`exec`] — the parallel experiment engine: deterministic sweeps,
//!   worker pool, persistent result cache
//! - [`obs`] — metrics, structured events, run reports, and the
//!   `psca-prof` hierarchical self-profiler (`docs/PROFILING.md`)
//! - [`serve`] — the adaptation-as-a-service HTTP daemon
//!   (`docs/SERVING.md`)
//! - [`fleet`] — seeded die fleets with per-die skew, staged firmware
//!   rollout with canary cohorts, and automatic rollback
//!   (`docs/FLEET.md`)
//!
//! # Example
//!
//! Simulate one workload in both cluster configurations and compute its
//! ground-truth gating labels:
//!
//! ```
//! use psca::adapt::{collect_paired, Sla};
//! use psca::workloads::{Archetype, PhaseGenerator};
//!
//! let mut trace = PhaseGenerator::new(Archetype::DepChain.center(), 1);
//! let paired = collect_paired(&mut trace, 2_000, 8, 2_000, 0, "demo", 1);
//! let sla = Sla::paper_default();
//! // Serial dependence chains lose nothing at half width: gateable.
//! assert!(paired.ideal_residency(&sla) > 0.5);
//! ```

pub use psca_adapt as adapt;
pub use psca_cpu as cpu;
pub use psca_exec as exec;
pub use psca_faults as faults;
pub use psca_fleet as fleet;
pub use psca_ml as ml;
pub use psca_obs as obs;
pub use psca_serve as serve;
pub use psca_telemetry as telemetry;
pub use psca_trace as trace;
pub use psca_uc as uc;
pub use psca_workloads as workloads;
