//! Offline stand-in for the `rand` crate.
//!
//! The build container has no access to crates.io, so this vendored crate
//! provides the (small) API subset the workspace actually uses:
//!
//! - [`rngs::StdRng`] — a deterministic xoshiro256++ generator seeded via
//!   SplitMix64 (`SeedableRng::seed_from_u64`);
//! - [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`];
//! - [`seq::SliceRandom::shuffle`] / [`seq::SliceRandom::choose`].
//!
//! The streams differ from upstream `rand`'s ChaCha-based `StdRng`, but
//! every consumer in this workspace only requires determinism and decent
//! statistical quality, both of which xoshiro256++ provides.

/// Low-level 64-bit generator interface.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from the generator's full range
/// (the `Standard` distribution in upstream `rand`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for u8 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u8 {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges a value can be drawn from uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as u128).wrapping_add(v) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128).wrapping_sub(start as u128).wrapping_add(1);
                let v = (rng.next_u64() as u128) % span;
                (start as u128).wrapping_add(v) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f32::sample_standard(rng) * (self.end - self.start)
    }
}

/// High-level sampling interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of any [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws uniformly from a range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be in [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable construction of deterministic generators.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for `rand`'s
    /// `StdRng`; the stream differs from upstream).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(x: &mut u64) -> u64 {
        *x = x.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut x = seed;
            let mut s = [0u64; 4];
            for w in s.iter_mut() {
                *w = splitmix64(&mut x);
            }
            // All-zero state would be a fixed point; splitmix64 cannot
            // produce four zero outputs from any seed, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E3779B97F4A7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related sampling helpers.
pub mod seq {
    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.gen_range(5usize..17);
            assert!((5..17).contains(&v));
            let w = rng.gen_range(2u64..=8);
            assert!((2..=8).contains(&w));
        }
    }

    #[test]
    fn mean_is_near_half() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
