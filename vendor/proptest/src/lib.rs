//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no access to crates.io, so this vendored crate
//! implements the subset of proptest that the workspace's property tests
//! use: the [`proptest!`] macro, range/tuple/`any`/`prop_map`/collection
//! strategies, `ProptestConfig::with_cases`, and the `prop_assert*`
//! macros. Cases are generated deterministically (seeded per test by the
//! test's name) and there is **no shrinking** — a failing case panics with
//! the assertion message directly.

use std::ops::{Range, RangeInclusive};

/// Runner configuration. Only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic test-case RNG (SplitMix64).
pub mod test_runner {
    /// Per-test deterministic generator.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        x: u64,
    }

    impl TestRng {
        /// Seeds the generator from a test identifier (e.g. its name).
        pub fn deterministic(tag: &str) -> TestRng {
            // FNV-1a over the tag, so each test gets its own stream.
            let mut h = 0xcbf29ce484222325u64;
            for b in tag.as_bytes() {
                h ^= *b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRng { x: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.x = self.x.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform integer in `[0, bound)`.
        ///
        /// # Panics
        /// Panics if `bound == 0`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "bound must be positive");
            self.next_u64() % bound
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use super::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy adapter produced by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

pub use strategy::{Just, Strategy};

use test_runner::TestRng;

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let v = (rng.next_u64() as u128) % span;
                (self.start as u128).wrapping_add(v) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "empty range strategy");
                let span = (e as u128).wrapping_sub(s as u128).wrapping_add(1);
                let v = (rng.next_u64() as u128) % span;
                (s as u128).wrapping_add(v) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.next_f64() as f32) * (self.end - self.start)
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use super::test_runner::TestRng;
    use super::Strategy;
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for u8 {
        fn arbitrary(rng: &mut TestRng) -> u8 {
            (rng.next_u64() >> 56) as u8
        }
    }

    impl Arbitrary for u16 {
        fn arbitrary(rng: &mut TestRng) -> u16 {
            (rng.next_u64() >> 48) as u16
        }
    }

    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut TestRng) -> u32 {
            (rng.next_u64() >> 32) as u32
        }
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> u64 {
            rng.next_u64()
        }
    }

    impl Arbitrary for usize {
        fn arbitrary(rng: &mut TestRng) -> usize {
            rng.next_u64() as usize
        }
    }

    impl Arbitrary for i32 {
        fn arbitrary(rng: &mut TestRng) -> i32 {
            (rng.next_u64() >> 32) as i32
        }
    }

    impl Arbitrary for i64 {
        fn arbitrary(rng: &mut TestRng) -> i64 {
            rng.next_u64() as i64
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Bounded arbitrary floats: proptest's full-range floats are
            // rarely what an invariant test wants; [-1e6, 1e6] exercises
            // sign and magnitude without infinities.
            (rng.next_f64() - 0.5) * 2e6
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T> std::fmt::Debug for Any<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Any")
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Namespaced strategy constructors (`prop::collection::vec`, ...).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        use std::ops::Range;

        /// Size specifications accepted by [`vec`].
        #[derive(Debug, Clone)]
        pub struct SizeRange {
            lo: usize,
            hi: usize, // exclusive
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> SizeRange {
                SizeRange { lo: n, hi: n + 1 }
            }
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> SizeRange {
                assert!(r.start < r.end, "empty size range");
                SizeRange {
                    lo: r.start,
                    hi: r.end,
                }
            }
        }

        /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.size.hi - self.size.lo) as u64;
                let len = self.size.lo + rng.below(span.max(1)) as usize;
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// `prop::collection::vec(element, size)`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }
    }
}

/// Everything a test file needs.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares deterministic property tests.
///
/// Supports the standard shape:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(16))]
///
///     #[test]
///     fn my_property(x in 0u64..100, flag in any::<bool>()) {
///         prop_assert!(x < 100 || flag);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( cfg = ($cfg:expr); ) => {};
    (
        cfg = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strat:expr),* $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng =
                $crate::test_runner::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.cases {
                let _ = __case;
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
                $body
            }
        }
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3u64..9, y in 0.5f64..1.5, n in 2usize..=4) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((0.5..1.5).contains(&y));
            prop_assert!((2..=4).contains(&n));
        }

        #[test]
        fn vec_lengths_respected(v in prop::collection::vec(any::<bool>(), 2..7)) {
            prop_assert!(v.len() >= 2 && v.len() < 7);
        }

        #[test]
        fn prop_map_applies(d in (1u64..5, 1u64..5).prop_map(|(a, b)| a + b)) {
            prop_assert!((2..=8).contains(&d));
        }
    }
}
