//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no access to crates.io, so this vendored crate
//! provides a small wall-clock benchmarking harness with criterion's
//! surface: `criterion_group!`/`criterion_main!`, `Criterion`,
//! `BenchmarkGroup`, `Bencher::iter`, `BenchmarkId`, `Throughput`, and
//! [`black_box`]. Each benchmark is warmed up briefly, then sampled
//! `sample_size` times; the mean, min, and max per-iteration times are
//! printed, plus derived element throughput when one was declared.

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declared work-per-iteration, used to derive throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iteration processes this many logical elements.
    Elements(u64),
    /// Iteration processes this many bytes.
    Bytes(u64),
}

/// Benchmark identifier: a function name plus a parameter label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// One benchmark's measured timing summary.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Full benchmark id (`group/bench`).
    pub id: String,
    /// Mean seconds per iteration.
    pub mean_s: f64,
    /// Fastest sample, seconds per iteration.
    pub min_s: f64,
    /// Slowest sample, seconds per iteration.
    pub max_s: f64,
    /// Iterations per sample.
    pub iters_per_sample: u64,
    /// Declared per-iteration work, if any.
    pub throughput: Option<Throughput>,
}

impl Measurement {
    /// Elements per second, when element throughput was declared.
    pub fn elements_per_sec(&self) -> Option<f64> {
        match self.throughput {
            Some(Throughput::Elements(n)) if self.mean_s > 0.0 => Some(n as f64 / self.mean_s),
            _ => None,
        }
    }
}

/// The timing loop handle passed to benchmark closures.
pub struct Bencher {
    sample_size: usize,
    result: Option<(f64, f64, f64, u64)>,
}

impl Bencher {
    /// Times `f`, storing per-iteration statistics.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: find an iteration count that takes >= ~5 ms, capped
        // so pathological one-shot benches still terminate.
        let mut iters: u64 = 1;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let dt = t0.elapsed();
            if dt >= Duration::from_millis(5) || iters >= 1 << 20 {
                break;
            }
            iters = (iters * 4).min(1 << 20);
        }
        let mut mean = 0.0f64;
        let mut min = f64::INFINITY;
        let mut max = 0.0f64;
        let samples = self.sample_size.max(1);
        for _ in 0..samples {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let per_iter = t0.elapsed().as_secs_f64() / iters as f64;
            mean += per_iter;
            min = min.min(per_iter);
            max = max.max(per_iter);
        }
        mean /= samples as f64;
        self.result = Some((mean, min, max, iters));
    }
}

fn humanize(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares per-iteration work for subsequent benches in the group.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        let (sample_size, throughput) = (self.sample_size, self.throughput);
        self.criterion.run_bench(&full, sample_size, throughput, f);
        self
    }

    /// Runs one benchmark with an input handle.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        let (sample_size, throughput) = (self.sample_size, self.throughput);
        self.criterion
            .run_bench(&full, sample_size, throughput, |b| f(b, input));
        self
    }

    /// Ends the group (kept for API compatibility; prints nothing extra).
    pub fn finish(self) {}
}

/// Benchmark harness entry point.
pub struct Criterion {
    sample_size: usize,
    measurements: Vec<Measurement>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 10,
            measurements: Vec::new(),
        }
    }
}

impl Criterion {
    /// Sets the default number of timing samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n;
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size,
            throughput: None,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = id.to_string();
        let sample_size = self.sample_size;
        self.run_bench(&full, sample_size, None, f);
        self
    }

    /// All measurements recorded so far (used by callers that want to
    /// persist results beyond the console output).
    pub fn measurements(&self) -> &[Measurement] {
        &self.measurements
    }

    fn run_bench<F>(
        &mut self,
        full_id: &str,
        sample_size: usize,
        throughput: Option<Throughput>,
        mut f: F,
    ) where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            sample_size,
            result: None,
        };
        f(&mut b);
        let Some((mean, min, max, iters)) = b.result else {
            eprintln!("{full_id:<50} (no Bencher::iter call)");
            return;
        };
        let m = Measurement {
            id: full_id.to_string(),
            mean_s: mean,
            min_s: min,
            max_s: max,
            iters_per_sample: iters,
            throughput,
        };
        let mut line = format!(
            "{full_id:<50} time: [{} {} {}]",
            humanize(min),
            humanize(mean),
            humanize(max)
        );
        if let Some(eps) = m.elements_per_sec() {
            line.push_str(&format!("  thrpt: {:.3} Melem/s", eps / 1e6));
        }
        println!("{line}");
        self.measurements.push(m);
    }
}

/// Declares a benchmark group runner function.
#[macro_export]
macro_rules! criterion_group {
    (
        name = $name:ident;
        config = $config:expr;
        targets = $($target:path),+ $(,)?
    ) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_timing() {
        let mut c = Criterion::default().sample_size(3);
        c.bench_function("noop_sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        assert_eq!(c.measurements().len(), 1);
        let m = &c.measurements()[0];
        assert!(m.mean_s > 0.0);
        assert!(m.min_s <= m.mean_s && m.mean_s <= m.max_s);
    }

    #[test]
    fn throughput_derives_elements_per_sec() {
        let mut c = Criterion::default().sample_size(2);
        {
            let mut g = c.benchmark_group("g");
            g.throughput(Throughput::Elements(1000));
            g.bench_function("work", |b| b.iter(|| black_box(42u64) * 2));
            g.finish();
        }
        let m = &c.measurements()[0];
        assert!(m.elements_per_sec().unwrap() > 0.0);
    }
}
