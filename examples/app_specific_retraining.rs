//! Optimization-as-a-service (§7.3 / Table 6): boost PPW for one
//! application that a customer runs repeatedly at scale.
//!
//! The customer traces a few executions of the target application on
//! site; those traces are replayed to produce telemetry and labels; a
//! 4-tree application-specific forest is combined with a 4-tree
//! high-diversity forest into the Best-RF shape and pushed back as a
//! firmware update. Evaluation is on a *future* workload (a different
//! input) the retrained model has never seen.
//!
//! ```text
//! cargo run --release --example app_specific_retraining
//! ```

use psca::adapt::experiments::evaluate_model_on_corpus;
use psca::adapt::{collect_paired, zoo, CorpusTelemetry, ExperimentConfig, ModelKind};
use psca::cpu::Mode;
use psca::ml::RandomForestConfig;
use psca::uc::FirmwareModel;
use psca::workloads::spec::spec_suite;

fn main() {
    let cfg = ExperimentConfig::quick();
    println!("simulating the general training corpus...");
    let hdtr = CorpusTelemetry::hdtr(&cfg);
    let general = zoo::train(ModelKind::BestRf, &hdtr, &cfg);
    let g = general.granularity;

    // The customer's application: fotonik3d-like streaming FP code.
    let suite = spec_suite(cfg.sub_seed("spec"), cfg.spec_phase_len);
    let target = suite
        .iter()
        .find(|a| a.bench.name == "649.fotonik3d_s")
        .expect("benchmark present");
    println!(
        "tracing customer application {} on 4 inputs...",
        target.bench.name
    );
    let mut trace_for = |input: u64| {
        let mut src = target.app.trace(input);
        collect_paired(
            &mut src,
            cfg.spec_warmup_insts,
            cfg.spec_intervals_per_simpoint * 4,
            cfg.interval_insts,
            0,
            target.bench.name,
            input,
        )
    };
    let onsite = CorpusTelemetry {
        traces: (1..=4).map(&mut trace_for).collect(),
    };
    let future = CorpusTelemetry {
        traces: vec![trace_for(5)], // an input never used for retraining
    };

    // Retrain: 4 HDTR trees + 4 application trees = the Best-RF shape.
    println!("retraining application-specific firmware...");
    let half = RandomForestConfig {
        num_trees: 4,
        max_depth: 8,
        min_leaf: 2,
    };
    let mut specific = general.clone();
    for mode in [Mode::HighPerf, Mode::LowPower] {
        let feat = match mode {
            Mode::HighPerf => &general.feat_hi,
            Mode::LowPower => &general.feat_lo,
        };
        let hdtr_half = psca::adapt::zoo::train_rf_half(&cfg, &hdtr, feat, mode, g, &half, 1);
        let app_half = psca::adapt::zoo::train_rf_half(&cfg, &onsite, feat, mode, g, &half, 2);
        let combined = FirmwareModel::Forest(hdtr_half.combine(&app_half));
        match mode {
            Mode::HighPerf => specific.fw_hi = combined,
            Mode::LowPower => specific.fw_lo = combined,
        }
    }

    let before = evaluate_model_on_corpus(&general, &future, &cfg).overall;
    let after = evaluate_model_on_corpus(&specific, &future, &cfg).overall;
    println!("\non the future (unseen-input) workload:");
    println!(
        "  general firmware:      PPW gain {:>5.1}%, RSV {:>5.2}%, PGOS {:>5.1}%",
        100.0 * before.ppw_gain,
        100.0 * before.rsv,
        100.0 * before.pgos
    );
    println!(
        "  app-specific firmware: PPW gain {:>5.1}%, RSV {:>5.2}%, PGOS {:>5.1}%",
        100.0 * after.ppw_gain,
        100.0 * after.rsv,
        100.0 * after.pgos
    );
    println!("\n(paper Table 6: fotonik3d_s gains +8.5% PPW from app-specific retraining)");
}
