//! Post-silicon SLA re-targeting (§7.3 / Table 5): one physical chip,
//! three power/performance characters, switched by a firmware update.
//!
//! A data-center operator runs the fleet at P_SLA = 90% year-round, but
//! during a demand spike wants peak performance, and during quiet weeks
//! wants maximum PPW. This example trains three Best-RF firmware images
//! under different SLAs and shows the resulting CPU characters on the
//! same workloads.
//!
//! ```text
//! cargo run --release --example datacenter_sla_tuning
//! ```

use psca::adapt::experiments::evaluate_model_on_corpus;
use psca::adapt::{zoo, CorpusTelemetry, ExperimentConfig, ModelKind};

fn main() {
    let base = ExperimentConfig::quick();
    println!("simulating training corpus and a held-out fleet workload mix...");
    let hdtr = CorpusTelemetry::hdtr(&base);
    let fleet = CorpusTelemetry::spec(&base); // stands in for fleet traces

    println!(
        "\n{:>6} {:>10} {:>10} {:>12} {:>12}",
        "P_SLA", "PPW gain", "RSV", "avg perf", "residency"
    );
    for p_sla in [0.90, 0.80, 0.70] {
        // The "firmware update": relabel telemetry under the new SLA and
        // retrain — no silicon change, no new dataset collection.
        let mut cfg = base.clone();
        cfg.sla = base.sla.with_p_sla(p_sla);
        let mut firmware = zoo::train(ModelKind::BestRf, &hdtr, &cfg);
        // Package the model exactly as it would ship to the fleet, and
        // verify the installed image is bit-identical.
        let image = psca::uc::image::encode(&firmware.fw_lo).expect("deployable model");
        eprintln!(
            "  P_SLA={p_sla:.2}: firmware image is {} bytes (model footprint {} B)",
            image.len(),
            firmware.fw_lo.memory_footprint_bytes()
        );
        firmware.fw_lo = psca::uc::image::decode(&image).expect("valid image");
        let eval = evaluate_model_on_corpus(&firmware, &fleet, &cfg);
        println!(
            "{:>6.2} {:>9.1}% {:>9.2}% {:>11.1}% {:>11.1}%",
            p_sla,
            100.0 * eval.overall.ppw_gain,
            100.0 * eval.overall.rsv,
            100.0 * eval.overall.avg_perf,
            100.0 * eval.overall.residency
        );
    }
    println!("\n(paper Table 5: 21.9% / 28.2% / 31.4% PPW gain as P_SLA relaxes 0.9 -> 0.7)");
}
