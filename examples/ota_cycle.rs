//! The optimization-as-a-service loop (§3.2): a fleet ships with general
//! firmware; each round the customer traces more on-site executions, the
//! vendor retrains, and updated firmware is pushed — PPW on *future*
//! inputs improves round over round.
//!
//! ```text
//! cargo run --release --example ota_cycle
//! ```

use psca::adapt::postsilicon::OtaCycle;
use psca::adapt::{collect_paired, zoo, CorpusTelemetry, ExperimentConfig, ModelKind};
use psca::workloads::spec::spec_suite;

fn main() {
    let mut cfg = ExperimentConfig::quick();
    cfg.hdtr_intervals_per_trace = 24;
    println!("pre-training general firmware on the high-diversity corpus...");
    let hdtr = CorpusTelemetry::hdtr(&cfg);
    let general = zoo::train(ModelKind::BestRf, &hdtr, &cfg);

    // The customer's production application (streaming FP the general
    // corpus under-represents), and the future inputs we score against.
    let suite = spec_suite(cfg.sub_seed("spec"), cfg.spec_phase_len);
    let app = suite
        .iter()
        .find(|a| a.bench.name == "649.fotonik3d_s")
        .expect("benchmark present");
    let trace_of = |input: u64| {
        let mut src = app.app.trace(input);
        collect_paired(
            &mut src,
            2_000,
            48,
            cfg.interval_insts,
            0,
            app.bench.name,
            input,
        )
    };
    let future = CorpusTelemetry {
        traces: vec![trace_of(100), trace_of(101)],
    };

    println!("running three OTA rounds for {}...\n", app.bench.name);
    let mut cycle = OtaCycle::new(&cfg, &hdtr, &general, &future);
    for round in 1..=3u64 {
        let new = CorpusTelemetry {
            traces: vec![trace_of(round * 2 - 1), trace_of(round * 2)],
        };
        cycle.push_round(new);
    }
    println!(
        "{:>6} {:>16} {:>10} {:>8}",
        "round", "traces on file", "PPW gain", "RSV"
    );
    for r in cycle.rounds() {
        println!(
            "{:>6} {:>16} {:>9.1}% {:>7.2}%",
            r.round,
            r.traces_collected,
            100.0 * r.ppw_gain,
            100.0 * r.rsv
        );
    }
    println!("\n(round 0 is the general pre-trained firmware; §7.3 expects PPW to");
    println!("grow as on-site traces accumulate, with violations held down by the");
    println!("high-diversity half of each pushed forest)");
}
