//! Statistical-blindspot demonstration (§6, Figure 9): why expert-chosen
//! counters fail on workloads the training set under-represents, and why
//! PF-selected counters do not.
//!
//! Trains the CHARSTAR baseline (1-layer MLP, 8 expert counters) and the
//! paper's Best RF (12 PF counters) on the same corpus, then confronts
//! both with `654.roms_s` — a streaming-FP benchmark whose wide-ILP
//! phases look identical to gateable code through the expert counters.
//!
//! ```text
//! cargo run --release --example blindspot_hunt
//! ```

use psca::adapt::experiments::evaluate_model_on_corpus;
use psca::adapt::{zoo, CorpusTelemetry, ExperimentConfig, ModelKind};

fn main() {
    let mut cfg = ExperimentConfig::quick();
    // Long enough windows that burst-structured phases are visible.
    cfg.interval_insts = 10_000;
    cfg.spec_phase_len = 120_000;
    cfg.hdtr_phase_len = 60_000;
    cfg.spec_intervals_per_simpoint = 32;
    cfg.hdtr_intervals_per_trace = 16;
    cfg.sla = cfg.sla.with_t_sla_insts(160_000);
    println!("simulating training corpus and the SPEC test set...");
    let hdtr = CorpusTelemetry::hdtr(&cfg);
    let spec = CorpusTelemetry::spec(&cfg);

    println!("training CHARSTAR (8 expert counters) and Best RF (12 PF counters)...");
    let charstar = zoo::train(ModelKind::Charstar, &hdtr, &cfg);
    let best_rf = zoo::train(ModelKind::BestRf, &hdtr, &cfg);

    let ce = evaluate_model_on_corpus(&charstar, &spec, &cfg);
    let re = evaluate_model_on_corpus(&best_rf, &spec, &cfg);

    println!(
        "\n{:20} {:>14} {:>14}",
        "benchmark", "CHARSTAR RSV", "Best RF RSV"
    );
    let mut worst: (f64, String) = (0.0, String::new());
    for (name, cm) in &ce.per_app {
        let rf = re.app(name).map(|m| m.rsv).unwrap_or(0.0);
        if cm.rsv > worst.0 {
            worst = (cm.rsv, name.clone());
        }
        println!(
            "{:20} {:>13.1}% {:>13.1}%",
            name,
            100.0 * cm.rsv,
            100.0 * rf
        );
    }
    println!(
        "\nCHARSTAR's worst blindspot: {} at {:.1}% RSV — users of that application",
        worst.1,
        100.0 * worst.0
    );
    println!("would experience sustained SLA violations, and nothing in the training");
    println!("metrics predicted it. Best RF, trained with the paper's blindspot");
    println!(
        "mitigations, stays at {:.2}% RSV overall.",
        100.0 * re.overall.rsv
    );
}
