//! Quickstart: build a tiny training corpus, train the paper's Best RF
//! adaptation model, and run the adaptive CPU closed-loop on a new
//! workload — the full Figure 1 pipeline in ~50 lines.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use psca::adapt::{
    collect_paired, record_trace, zoo, ClosedLoopRequest, CorpusTelemetry, ExperimentConfig,
    ModelKind,
};
use psca::workloads::{hdtr_corpus, ApplicationModel, Category};

fn main() {
    let cfg = ExperimentConfig::quick();

    // 1. Synthesize a small high-diversity training corpus and simulate
    //    every trace in both cluster configurations (§4.1).
    println!(
        "simulating training corpus ({} applications)...",
        cfg.hdtr_apps
    );
    let corpus = {
        let apps = hdtr_corpus(cfg.sub_seed("hdtr"), cfg.hdtr_apps, cfg.hdtr_phase_len);
        let mut traces = Vec::new();
        for (id, entry) in apps.iter().enumerate() {
            for &input in entry.inputs.iter().take(cfg.hdtr_traces_per_app) {
                let mut src = entry.app.trace(input);
                traces.push(collect_paired(
                    &mut src,
                    cfg.hdtr_warmup_insts,
                    cfg.hdtr_intervals_per_trace,
                    cfg.interval_insts,
                    id as u32,
                    entry.app.name(),
                    input,
                ));
            }
        }
        CorpusTelemetry { traces }
    };

    // 2. Train Best RF: 8 trees x depth 8 on the 12 PF counters, one
    //    predictor per mode, sensitivity tuned to <=1% tuning RSV (§6.3).
    println!("training Best RF (8 trees x depth 8, 12 counters)...");
    let model = zoo::train(ModelKind::BestRf, &corpus, &cfg);
    println!(
        "  firmware cost: {} uC ops per prediction at a {}k-instruction interval",
        model.ops_per_prediction,
        model.granularity_insts(cfg.interval_insts) / 1_000
    );

    // 3. Deploy: run the adaptive CPU on an application it has never seen.
    let app = ApplicationModel::synth("field-app", Category::WebProductivity, 0xF1E1D, 20_000);
    let mut source = app.trace(1);
    let (warm, window) = record_trace(&mut source, cfg.hdtr_warmup_insts, 60 * cfg.interval_insts);
    let result = ClosedLoopRequest::new(&model, &warm, &window, cfg.interval_insts).run();

    println!("\nadaptive run over {} instructions:", result.instructions);
    println!(
        "  low-power residency: {:.1}% of prediction windows",
        100.0 * result.low_power_residency
    );
    println!("  cycles: {}   energy: {:.0}", result.cycles, result.energy);
    println!(
        "  performance per watt: {:.4} insts/energy-unit",
        result.ppw()
    );
}
