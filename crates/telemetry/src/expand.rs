//! Synthetic expansion of the base events into the paper's 936-stream
//! design-time telemetry cross-section.
//!
//! The paper records **all 936 available event counters** at design time and
//! then screens them for information content (§6.2). Real hardware exposes
//! that many streams because events are broken out per unit, per slice, and
//! per edge condition — producing heavy redundancy (e.g. branch
//! mispredictions vs. pipeline flushes), low-activity streams, and noisy
//! duplicates. [`ExpandedTelemetry`] reproduces exactly that statistical
//! structure on top of the simulator's base events, so the screening and
//! PF-selection pipeline is exercised end-to-end:
//!
//! - **scaled copies** — per-slice breakouts of a base event;
//! - **noisy copies** — the same event counted at a different unit with
//!   sampling skew;
//! - **pairwise composites** — "sum of A and B" style counters;
//! - **gated variants** — counters that read zero unless activity crosses a
//!   threshold (these trip the paper's low-activity screen on many traces);
//! - **quantized variants** — coarse bucketed duplicates (low information);
//! - **rare-event streams** — almost-always-zero counters.
//!
//! All derivations are deterministic functions of `(expansion seed, stream
//! index, interval index)` so datasets are bit-for-bit reproducible.

use crate::event::{Event, NUM_EVENTS};

/// Total number of telemetry streams available at design time (the paper's
/// 936).
pub const NUM_EXPANDED_STREAMS: usize = 936;

/// How one derived stream is computed from base events.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StreamSpec {
    /// The base event itself.
    Base(Event),
    /// `scale * base` — a per-unit breakout of the same activity.
    Scaled {
        /// Source base event.
        base: Event,
        /// Multiplicative factor in `[0.25, 4.0]`.
        scale: f64,
    },
    /// `base * (1 + sigma * n(t))` with deterministic pseudo-noise `n`.
    Noisy {
        /// Source base event.
        base: Event,
        /// Relative noise amplitude.
        sigma: f64,
    },
    /// `w * a + (1 - w) * b` — a composite counter.
    Composite {
        /// First source event.
        a: Event,
        /// Second source event.
        b: Event,
        /// Mixing weight for `a`.
        w: f64,
    },
    /// `base` if `base > threshold`, else 0 — reads zero on quiet phases.
    Gated {
        /// Source base event.
        base: Event,
        /// Per-cycle activation threshold.
        threshold: f64,
    },
    /// `floor(base * levels) / levels` — a coarse duplicate.
    Quantized {
        /// Source base event.
        base: Event,
        /// Number of quantization levels.
        levels: u32,
    },
    /// Almost always zero; pulses with small probability.
    Rare {
        /// Pulse probability per interval.
        p: f64,
    },
}

/// Deterministic splitmix64 hash step.
#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Uniform in `[0, 1)` from a hash.
#[inline]
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Approximately standard-normal deterministic noise for `(seed, t)`.
#[inline]
fn pseudo_normal(seed: u64, t: u64) -> f64 {
    let h1 = splitmix64(seed ^ t.wrapping_mul(0xA24B_AED4_963E_E407));
    let h2 = splitmix64(h1);
    let h3 = splitmix64(h2);
    let h4 = splitmix64(h3);
    // Irwin–Hall with n = 4, rescaled to unit variance.
    ((unit(h1) + unit(h2) + unit(h3) + unit(h4)) - 2.0) * (12.0f64 / 4.0).sqrt()
}

/// The design-time telemetry cross-section: 936 streams derived
/// deterministically from the base events.
#[derive(Debug, Clone)]
pub struct ExpandedTelemetry {
    specs: Vec<StreamSpec>,
    seed: u64,
}

impl ExpandedTelemetry {
    /// Builds the expansion for a given seed.
    ///
    /// The first [`NUM_EVENTS`] streams are the base events themselves; the
    /// remainder are derived per the module documentation. The kind mix is
    /// roughly: 30% scaled, 25% noisy, 15% composite, 15% gated, 10%
    /// quantized, 5% rare.
    pub fn new(seed: u64) -> ExpandedTelemetry {
        let mut specs = Vec::with_capacity(NUM_EXPANDED_STREAMS);
        for e in Event::ALL {
            specs.push(StreamSpec::Base(e));
        }
        for i in NUM_EVENTS..NUM_EXPANDED_STREAMS {
            let h = splitmix64(seed ^ (i as u64).wrapping_mul(0xD6E8_FEB8_6659_FD93));
            let kind = unit(h);
            let h2 = splitmix64(h);
            let base = Event::ALL[(h2 % NUM_EVENTS as u64) as usize];
            let h3 = splitmix64(h2);
            let base2 = Event::ALL[(h3 % NUM_EVENTS as u64) as usize];
            let h4 = splitmix64(h3);
            let u = unit(h4);
            let spec = if kind < 0.30 {
                StreamSpec::Scaled {
                    base,
                    scale: 0.25 + 3.75 * u,
                }
            } else if kind < 0.55 {
                StreamSpec::Noisy {
                    base,
                    sigma: 0.02 + 0.25 * u,
                }
            } else if kind < 0.70 {
                StreamSpec::Composite {
                    a: base,
                    b: base2,
                    w: 0.2 + 0.6 * u,
                }
            } else if kind < 0.85 {
                StreamSpec::Gated {
                    base,
                    threshold: 0.01 + 0.3 * u,
                }
            } else if kind < 0.95 {
                StreamSpec::Quantized {
                    base,
                    levels: 2 + (u * 6.0) as u32,
                }
            } else {
                StreamSpec::Rare {
                    p: 0.001 + 0.05 * u,
                }
            };
            specs.push(spec);
        }
        ExpandedTelemetry { specs, seed }
    }

    /// Number of streams (always [`NUM_EXPANDED_STREAMS`]).
    pub fn num_streams(&self) -> usize {
        self.specs.len()
    }

    /// The derivation spec of stream `i`.
    ///
    /// # Panics
    /// Panics if `i >= NUM_EXPANDED_STREAMS`.
    pub fn spec(&self, i: usize) -> &StreamSpec {
        &self.specs[i]
    }

    /// Index of the stream carrying base event `e` verbatim.
    pub fn base_stream(&self, e: Event) -> usize {
        e.index()
    }

    /// Human-readable stream name.
    pub fn stream_name(&self, i: usize) -> String {
        match &self.specs[i] {
            StreamSpec::Base(e) => e.name().to_string(),
            StreamSpec::Scaled { base, .. } => format!("D{i}: {} (per-unit)", base.name()),
            StreamSpec::Noisy { base, .. } => format!("D{i}: {} (alt. unit)", base.name()),
            StreamSpec::Composite { a, b, .. } => {
                format!("D{i}: {} + {}", a.name(), b.name())
            }
            StreamSpec::Gated { base, .. } => format!("D{i}: {} (thresholded)", base.name()),
            StreamSpec::Quantized { base, .. } => format!("D{i}: {} (bucketed)", base.name()),
            StreamSpec::Rare { .. } => format!("D{i}: rare event"),
        }
    }

    /// Computes the value of every stream for one interval.
    ///
    /// `base` is the normalized base-event vector of the interval
    /// (`IntervalSnapshot::as_slice`), `t` the interval index within the
    /// trace (used only to seed deterministic pseudo-noise).
    ///
    /// # Panics
    /// Panics if `base.len() != NUM_EVENTS`.
    pub fn expand_row(&self, base: &[f64], t: u64) -> Vec<f64> {
        assert_eq!(base.len(), NUM_EVENTS, "base vector has wrong arity");
        let mut out = Vec::with_capacity(self.specs.len());
        for (i, spec) in self.specs.iter().enumerate() {
            let v = match *spec {
                StreamSpec::Base(e) => base[e.index()],
                StreamSpec::Scaled { base: b, scale } => base[b.index()] * scale,
                StreamSpec::Noisy { base: b, sigma } => {
                    let n = pseudo_normal(self.seed ^ (i as u64) << 17, t);
                    (base[b.index()] * (1.0 + sigma * n)).max(0.0)
                }
                StreamSpec::Composite { a, b, w } => {
                    w * base[a.index()] + (1.0 - w) * base[b.index()]
                }
                StreamSpec::Gated { base: b, threshold } => {
                    let v = base[b.index()];
                    if v > threshold {
                        v
                    } else {
                        0.0
                    }
                }
                StreamSpec::Quantized { base: b, levels } => {
                    let v = base[b.index()];
                    (v * levels as f64).floor() / levels as f64
                }
                StreamSpec::Rare { p } => {
                    let h = splitmix64(
                        self.seed ^ (i as u64) << 23 ^ t.wrapping_mul(0x2545_F491_4F6C_DD1D),
                    );
                    if unit(h) < p {
                        unit(splitmix64(h))
                    } else {
                        0.0
                    }
                }
            };
            out.push(v);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_base() -> Vec<f64> {
        (0..NUM_EVENTS).map(|i| (i as f64 + 1.0) / 100.0).collect()
    }

    #[test]
    fn expansion_has_936_streams_and_base_prefix() {
        let exp = ExpandedTelemetry::new(7);
        assert_eq!(exp.num_streams(), NUM_EXPANDED_STREAMS);
        for (i, e) in Event::ALL.iter().enumerate() {
            assert_eq!(*exp.spec(i), StreamSpec::Base(*e));
            assert_eq!(exp.base_stream(*e), i);
        }
    }

    #[test]
    fn expansion_is_deterministic() {
        let a = ExpandedTelemetry::new(42);
        let b = ExpandedTelemetry::new(42);
        let base = sample_base();
        assert_eq!(a.expand_row(&base, 5), b.expand_row(&base, 5));
    }

    #[test]
    fn different_seeds_differ() {
        let a = ExpandedTelemetry::new(1);
        let b = ExpandedTelemetry::new(2);
        let base = sample_base();
        assert_ne!(a.expand_row(&base, 0), b.expand_row(&base, 0));
    }

    #[test]
    fn base_streams_pass_through_unchanged() {
        let exp = ExpandedTelemetry::new(3);
        let base = sample_base();
        let row = exp.expand_row(&base, 9);
        for i in 0..NUM_EVENTS {
            assert_eq!(row[i], base[i]);
        }
    }

    #[test]
    fn values_are_finite_and_nonnegative() {
        let exp = ExpandedTelemetry::new(11);
        let base = sample_base();
        for t in 0..50 {
            for (i, v) in exp.expand_row(&base, t).iter().enumerate() {
                assert!(v.is_finite(), "stream {i} at t={t}");
                assert!(*v >= 0.0, "stream {i} at t={t} is negative: {v}");
            }
        }
    }

    #[test]
    fn rare_streams_are_mostly_zero() {
        let exp = ExpandedTelemetry::new(5);
        let base = sample_base();
        let rare_idx: Vec<usize> = (0..NUM_EXPANDED_STREAMS)
            .filter(|&i| matches!(exp.spec(i), StreamSpec::Rare { .. }))
            .collect();
        assert!(
            !rare_idx.is_empty(),
            "expansion should contain rare streams"
        );
        let mut zeros = 0usize;
        let mut total = 0usize;
        for t in 0..200 {
            let row = exp.expand_row(&base, t);
            for &i in &rare_idx {
                total += 1;
                if row[i] == 0.0 {
                    zeros += 1;
                }
            }
        }
        assert!(zeros as f64 / total as f64 > 0.85);
    }

    #[test]
    fn stream_names_are_unique() {
        let exp = ExpandedTelemetry::new(7);
        let names: std::collections::HashSet<_> =
            (0..exp.num_streams()).map(|i| exp.stream_name(i)).collect();
        assert_eq!(names.len(), exp.num_streams());
    }

    #[test]
    #[should_panic(expected = "wrong arity")]
    fn expand_rejects_wrong_arity() {
        let exp = ExpandedTelemetry::new(7);
        let _ = exp.expand_row(&[0.0; 3], 0);
    }
}
