//! A dense matrix of counter data (rows = intervals, columns = streams).

/// Dense row-major counter matrix used by the selection pipeline.
///
/// The paper's counter matrix is `X = [x_1, ..., x_T]` with one column of
/// counter values per interval (§4.1); we store the transpose (row per
/// interval) because model training consumes interval rows.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl CounterMatrix {
    /// Creates a zeroed matrix.
    pub fn zeros(rows: usize, cols: usize) -> CounterMatrix {
        CounterMatrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds a matrix from interval rows.
    ///
    /// # Panics
    /// Panics if rows have inconsistent lengths.
    pub fn from_rows(rows: Vec<Vec<f64>>) -> CounterMatrix {
        let n = rows.len();
        let cols = rows.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(n * cols);
        for r in &rows {
            assert_eq!(r.len(), cols, "inconsistent row length");
            data.extend_from_slice(r);
        }
        CounterMatrix {
            rows: n,
            cols,
            data,
        }
    }

    /// Number of interval rows.
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// Number of counter streams (columns).
    pub fn num_cols(&self) -> usize {
        self.cols
    }

    /// Value at `(row, col)`.
    ///
    /// # Panics
    /// Panics on out-of-bounds indices.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.data[row * self.cols + col]
    }

    /// Sets the value at `(row, col)`.
    ///
    /// # Panics
    /// Panics on out-of-bounds indices.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, v: f64) {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.data[row * self.cols + col] = v;
    }

    /// Borrow of one interval row.
    ///
    /// # Panics
    /// Panics if `row >= num_rows()`.
    #[inline]
    pub fn row(&self, row: usize) -> &[f64] {
        assert!(row < self.rows, "row out of bounds");
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Appends an interval row.
    ///
    /// # Panics
    /// Panics if the row length does not match (unless the matrix is empty).
    pub fn push_row(&mut self, row: &[f64]) {
        if self.rows == 0 && self.cols == 0 {
            self.cols = row.len();
        }
        assert_eq!(row.len(), self.cols, "row length mismatch");
        self.data.extend_from_slice(row);
        self.rows += 1;
    }

    /// Mean of a column.
    pub fn col_mean(&self, col: usize) -> f64 {
        if self.rows == 0 {
            return 0.0;
        }
        (0..self.rows).map(|r| self.get(r, col)).sum::<f64>() / self.rows as f64
    }

    /// Population standard deviation of a column.
    pub fn col_std(&self, col: usize) -> f64 {
        if self.rows == 0 {
            return 0.0;
        }
        let mean = self.col_mean(col);
        let var = (0..self.rows)
            .map(|r| {
                let d = self.get(r, col) - mean;
                d * d
            })
            .sum::<f64>()
            / self.rows as f64;
        var.sqrt()
    }

    /// Fraction of entries in a column that are exactly zero.
    pub fn col_zero_fraction(&self, col: usize) -> f64 {
        if self.rows == 0 {
            return 0.0;
        }
        (0..self.rows).filter(|&r| self.get(r, col) == 0.0).count() as f64 / self.rows as f64
    }

    /// A new matrix keeping only the given columns, in the given order.
    ///
    /// # Panics
    /// Panics if any index is out of bounds.
    pub fn select_cols(&self, cols: &[usize]) -> CounterMatrix {
        let mut out = CounterMatrix::zeros(self.rows, cols.len());
        for r in 0..self.rows {
            for (j, &c) in cols.iter().enumerate() {
                out.set(r, j, self.get(r, c));
            }
        }
        out
    }

    /// Vertically stacks matrices with identical column counts.
    ///
    /// # Panics
    /// Panics if column counts differ or `mats` is empty.
    pub fn vstack(mats: &[&CounterMatrix]) -> CounterMatrix {
        assert!(!mats.is_empty(), "cannot stack zero matrices");
        let cols = mats[0].cols;
        let rows = mats.iter().map(|m| m.rows).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for m in mats {
            assert_eq!(m.cols, cols, "column count mismatch");
            data.extend_from_slice(&m.data);
        }
        CounterMatrix { rows, cols, data }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_rows_and_access() {
        let m = CounterMatrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m.num_rows(), 2);
        assert_eq!(m.num_cols(), 2);
        assert_eq!(m.get(1, 0), 3.0);
        assert_eq!(m.row(0), &[1.0, 2.0]);
    }

    #[test]
    fn push_row_grows() {
        let mut m = CounterMatrix::zeros(0, 0);
        m.push_row(&[1.0, 2.0, 3.0]);
        m.push_row(&[4.0, 5.0, 6.0]);
        assert_eq!(m.num_rows(), 2);
        assert_eq!(m.num_cols(), 3);
        assert_eq!(m.get(1, 2), 6.0);
    }

    #[test]
    fn col_statistics() {
        let m = CounterMatrix::from_rows(vec![vec![1.0, 0.0], vec![3.0, 0.0], vec![5.0, 6.0]]);
        assert!((m.col_mean(0) - 3.0).abs() < 1e-12);
        assert!((m.col_std(0) - (8.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert!((m.col_zero_fraction(1) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn select_cols_projects() {
        let m = CounterMatrix::from_rows(vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let s = m.select_cols(&[2, 0]);
        assert_eq!(s.row(0), &[3.0, 1.0]);
        assert_eq!(s.row(1), &[6.0, 4.0]);
    }

    #[test]
    fn vstack_concatenates_rows() {
        let a = CounterMatrix::from_rows(vec![vec![1.0, 2.0]]);
        let b = CounterMatrix::from_rows(vec![vec![3.0, 4.0], vec![5.0, 6.0]]);
        let v = CounterMatrix::vstack(&[&a, &b]);
        assert_eq!(v.num_rows(), 3);
        assert_eq!(v.row(2), &[5.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "inconsistent row length")]
    fn from_rows_rejects_ragged_input() {
        let _ = CounterMatrix::from_rows(vec![vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        let m = CounterMatrix::zeros(1, 1);
        let _ = m.get(0, 1);
    }
}
