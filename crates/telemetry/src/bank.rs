//! The accumulating counter file and interval snapshots.

use crate::event::{Event, NUM_EVENTS};

/// The CPU's event-counter file.
///
/// The simulator increments counters as events occur; the telemetry system
/// snapshots and resets them every interval (the paper uses 10k-instruction
/// intervals, summed when coarser granularity is desired, §4.1).
#[derive(Debug, Clone)]
pub struct CounterBank {
    counts: [u64; NUM_EVENTS],
}

impl CounterBank {
    /// Creates a zeroed counter bank.
    pub fn new() -> CounterBank {
        CounterBank {
            counts: [0; NUM_EVENTS],
        }
    }

    /// Increments an event by 1.
    #[inline]
    pub fn incr(&mut self, e: Event) {
        self.counts[e.index()] += 1;
    }

    /// Adds `n` to an event.
    #[inline]
    pub fn add(&mut self, e: Event, n: u64) {
        self.counts[e.index()] += n;
    }

    /// Current raw value of an event.
    #[inline]
    pub fn get(&self, e: Event) -> u64 {
        self.counts[e.index()]
    }

    /// Takes a snapshot of the current interval and resets all counters.
    ///
    /// Counter values are normalized by the number of cycles in the interval,
    /// which the paper found improves model accuracy (§4.1). The raw cycle
    /// and instruction totals are preserved on the snapshot so IPC and
    /// coarser-granularity re-aggregation remain exact.
    pub fn snapshot_and_reset(&mut self) -> IntervalSnapshot {
        // Resolved once per process: this runs at every interval boundary,
        // and the registry lookup costs a lock + BTreeMap walk.
        static SNAPSHOTS: std::sync::OnceLock<std::sync::Arc<psca_obs::Counter>> =
            std::sync::OnceLock::new();
        SNAPSHOTS
            .get_or_init(|| psca_obs::counter("telemetry.snapshots"))
            .inc();
        let cycles = self.counts[Event::Cycles.index()].max(1);
        let instructions = self.counts[Event::InstRetired.index()];
        let mut normalized = [0.0f64; NUM_EVENTS];
        for (i, &c) in self.counts.iter().enumerate() {
            normalized[i] = c as f64 / cycles as f64;
        }
        self.counts = [0; NUM_EVENTS];
        IntervalSnapshot {
            normalized,
            cycles,
            instructions,
        }
    }
}

impl Default for CounterBank {
    fn default() -> CounterBank {
        CounterBank::new()
    }
}

/// One interval of telemetry: the vector `x_t` of §4.1.
///
/// Values are per-cycle normalized; raw cycle/instruction totals are kept
/// for IPC computation and re-aggregation.
#[derive(Debug, Clone)]
pub struct IntervalSnapshot {
    normalized: [f64; NUM_EVENTS],
    /// Cycles elapsed in the interval.
    pub cycles: u64,
    /// Instructions retired in the interval.
    pub instructions: u64,
}

impl IntervalSnapshot {
    /// Per-cycle normalized value of a base event.
    #[inline]
    pub fn get(&self, e: Event) -> f64 {
        self.normalized[e.index()]
    }

    /// The full normalized base-event vector.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.normalized
    }

    /// Instructions per cycle over the interval.
    #[inline]
    pub fn ipc(&self) -> f64 {
        self.instructions as f64 / self.cycles.max(1) as f64
    }

    /// Merges consecutive snapshots into one coarser-granularity snapshot,
    /// summing counts and re-normalizing by the combined cycle count
    /// ("we simply sum over successive intervals and re-normalize", §4.1).
    ///
    /// # Panics
    /// Panics if `snaps` is empty.
    pub fn aggregate(snaps: &[IntervalSnapshot]) -> IntervalSnapshot {
        assert!(!snaps.is_empty(), "cannot aggregate zero snapshots");
        let total_cycles: u64 = snaps.iter().map(|s| s.cycles).sum();
        let total_insts: u64 = snaps.iter().map(|s| s.instructions).sum();
        let mut sums = [0.0f64; NUM_EVENTS];
        for s in snaps {
            for (i, v) in s.normalized.iter().enumerate() {
                // de-normalize back to counts, then sum
                sums[i] += v * s.cycles as f64;
            }
        }
        let mut normalized = [0.0f64; NUM_EVENTS];
        let denom = total_cycles.max(1) as f64;
        for (i, s) in sums.iter().enumerate() {
            normalized[i] = s / denom;
        }
        IntervalSnapshot {
            normalized,
            cycles: total_cycles,
            instructions: total_insts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_normalizes_by_cycles() {
        let mut bank = CounterBank::new();
        bank.add(Event::Cycles, 100);
        bank.add(Event::InstRetired, 250);
        bank.add(Event::LoadsRetired, 50);
        let snap = bank.snapshot_and_reset();
        assert_eq!(snap.cycles, 100);
        assert_eq!(snap.instructions, 250);
        assert!((snap.ipc() - 2.5).abs() < 1e-12);
        assert!((snap.get(Event::LoadsRetired) - 0.5).abs() < 1e-12);
        // reset happened
        assert_eq!(bank.get(Event::LoadsRetired), 0);
    }

    #[test]
    fn snapshot_with_zero_cycles_does_not_divide_by_zero() {
        let mut bank = CounterBank::new();
        bank.add(Event::InstRetired, 5);
        let snap = bank.snapshot_and_reset();
        assert!(snap.ipc().is_finite());
        assert!(snap.get(Event::InstRetired).is_finite());
    }

    #[test]
    fn aggregate_matches_manual_renormalization() {
        let mut bank = CounterBank::new();
        bank.add(Event::Cycles, 100);
        bank.add(Event::InstRetired, 100);
        bank.add(Event::L1dHits, 40);
        let a = bank.snapshot_and_reset();
        bank.add(Event::Cycles, 300);
        bank.add(Event::InstRetired, 300);
        bank.add(Event::L1dHits, 30);
        let b = bank.snapshot_and_reset();
        let agg = IntervalSnapshot::aggregate(&[a, b]);
        assert_eq!(agg.cycles, 400);
        assert_eq!(agg.instructions, 400);
        // (40 + 30) / 400
        assert!((agg.get(Event::L1dHits) - 0.175).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "zero snapshots")]
    fn aggregate_empty_panics() {
        let _ = IntervalSnapshot::aggregate(&[]);
    }

    #[test]
    fn incr_and_add_accumulate() {
        let mut bank = CounterBank::new();
        bank.incr(Event::BranchMispredicts);
        bank.incr(Event::BranchMispredicts);
        bank.add(Event::BranchMispredicts, 3);
        assert_eq!(bank.get(Event::BranchMispredicts), 5);
    }
}
