//! # psca-telemetry
//!
//! The telemetry subsystem of the PSCA reproduction.
//!
//! The paper's CPU routes architecture and microarchitecture event counters
//! to a single on-chip convergence point, snapshots them on a regular
//! instruction-count interval, and forwards them to a microcontroller (§3).
//! 936 counters are available at design time; a selection pipeline reduces
//! them to 12 for deployment (§6.2).
//!
//! This crate provides:
//!
//! - [`Event`] — the base microarchitectural events natively counted by
//!   the `psca-cpu` simulator;
//! - [`CounterBank`] — the accumulating counter file;
//! - [`IntervalSnapshot`] — one normalized interval of telemetry (the
//!   vector `x_t` of §4.1), including cycle normalization, which the paper
//!   found improves model accuracy;
//! - [`ExpandedTelemetry`] — the synthetic expansion of the base events
//!   into the paper's 936-stream design-time cross-section (see `DESIGN.md`
//!   §1 for the substitution rationale);
//! - [`CounterMatrix`] — a matrix of snapshots used by the
//!   counter-selection pipeline.

#![warn(missing_docs)]

mod bank;
mod event;
mod expand;
mod matrix;

pub use bank::{CounterBank, IntervalSnapshot};
pub use event::{Event, NUM_EVENTS};
pub use expand::{ExpandedTelemetry, StreamSpec, NUM_EXPANDED_STREAMS};
pub use matrix::CounterMatrix;
