//! Base microarchitectural events.

use std::fmt;

/// Number of base events counted natively by the simulator.
pub const NUM_EVENTS: usize = 56;

/// A base microarchitectural event.
///
/// These are the hardware-visible events the `psca-cpu` simulator counts
/// directly. They include faithful analogues of all 12 counters chosen by
/// the paper's PF Counter Selection (Table 4) and of the 8 expert-chosen
/// counters used by the CHARSTAR baseline (§7), plus enough front-end,
/// memory-hierarchy, and execution events to make redundancy screening a
/// real exercise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)] // variant names are self-describing counter names
#[repr(u8)]
pub enum Event {
    // --- retirement / global ---
    Cycles,
    InstRetired,
    UopsIssued,
    UopsExecuted,
    // --- dependence visibility (key to the blindspot story, Table 4) ---
    UopsReady,
    UopsStalledOnDep,
    StallCount,
    PhysRegRefCount,
    PhysRegWrites,
    // --- front end ---
    IcacheHits,
    IcacheMisses,
    UopCacheHits,
    UopCacheMisses,
    FrontEndBubbles,
    ItlbHits,
    ItlbMisses,
    // --- branches ---
    BranchesRetired,
    BranchesTaken,
    BranchMispredicts,
    BtbMisses,
    WrongPathUopsFlushed,
    // --- data memory ---
    LoadsRetired,
    StoresRetired,
    L1dReads,
    L1dWrites,
    L1dHits,
    L1dMisses,
    L2Hits,
    L2Misses,
    L2SilentEvictions,
    L2WritebackEvictions,
    LlcHits,
    LlcMisses,
    DtlbHits,
    DtlbMisses,
    LongLatencyLoads,
    // --- queues / windows ---
    StoreQueueOccupancy,
    StoreQueueFullStalls,
    LoadQueueOccupancy,
    RobOccupancy,
    RobFullStalls,
    IssueSlotsEmpty,
    // --- execution mix ---
    IntAluOps,
    IntMulOps,
    IntDivOps,
    FpAddOps,
    FpMulOps,
    FpFmaOps,
    FpDivOps,
    SimdOps,
    DivStallCount,
    // --- clustering ---
    InterClusterForwards,
    Cluster1UopsIssued,
    Cluster2UopsIssued,
    ModeSwitches,
    TransferUops,
}

impl Event {
    /// All base events in index order.
    pub const ALL: [Event; NUM_EVENTS] = [
        Event::Cycles,
        Event::InstRetired,
        Event::UopsIssued,
        Event::UopsExecuted,
        Event::UopsReady,
        Event::UopsStalledOnDep,
        Event::StallCount,
        Event::PhysRegRefCount,
        Event::PhysRegWrites,
        Event::IcacheHits,
        Event::IcacheMisses,
        Event::UopCacheHits,
        Event::UopCacheMisses,
        Event::FrontEndBubbles,
        Event::ItlbHits,
        Event::ItlbMisses,
        Event::BranchesRetired,
        Event::BranchesTaken,
        Event::BranchMispredicts,
        Event::BtbMisses,
        Event::WrongPathUopsFlushed,
        Event::LoadsRetired,
        Event::StoresRetired,
        Event::L1dReads,
        Event::L1dWrites,
        Event::L1dHits,
        Event::L1dMisses,
        Event::L2Hits,
        Event::L2Misses,
        Event::L2SilentEvictions,
        Event::L2WritebackEvictions,
        Event::LlcHits,
        Event::LlcMisses,
        Event::DtlbHits,
        Event::DtlbMisses,
        Event::LongLatencyLoads,
        Event::StoreQueueOccupancy,
        Event::StoreQueueFullStalls,
        Event::LoadQueueOccupancy,
        Event::RobOccupancy,
        Event::RobFullStalls,
        Event::IssueSlotsEmpty,
        Event::IntAluOps,
        Event::IntMulOps,
        Event::IntDivOps,
        Event::FpAddOps,
        Event::FpMulOps,
        Event::FpFmaOps,
        Event::FpDivOps,
        Event::SimdOps,
        Event::DivStallCount,
        Event::InterClusterForwards,
        Event::Cluster1UopsIssued,
        Event::Cluster2UopsIssued,
        Event::ModeSwitches,
        Event::TransferUops,
    ];

    /// Stable index of the event inside [`Event::ALL`].
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Human-readable counter name (matches the spelling used in tables).
    pub fn name(self) -> &'static str {
        match self {
            Event::Cycles => "Cycles",
            Event::InstRetired => "Instructions Retired",
            Event::UopsIssued => "Micro Ops Issued",
            Event::UopsExecuted => "Micro Ops Executed",
            Event::UopsReady => "Micro Ops Ready",
            Event::UopsStalledOnDep => "Micro Ops Stalled on Dep.",
            Event::StallCount => "Stall Count",
            Event::PhysRegRefCount => "Physical Register Ref. Count",
            Event::PhysRegWrites => "Physical Register Writes",
            Event::IcacheHits => "I-Cache Hits",
            Event::IcacheMisses => "I-Cache Misses",
            Event::UopCacheHits => "Micro Op Cache Hits",
            Event::UopCacheMisses => "Micro Op Cache Misses",
            Event::FrontEndBubbles => "Front-End Bubbles",
            Event::ItlbHits => "I-TLB Hits",
            Event::ItlbMisses => "I-TLB Misses",
            Event::BranchesRetired => "Branches Retired",
            Event::BranchesTaken => "Branches Taken",
            Event::BranchMispredicts => "Branch Mispredictions",
            Event::BtbMisses => "BTB Misses",
            Event::WrongPathUopsFlushed => "Wrong-Path uOps Flushed",
            Event::LoadsRetired => "Loads Retired",
            Event::StoresRetired => "Stores Retired",
            Event::L1dReads => "L1 Data Cache Reads",
            Event::L1dWrites => "L1 Data Cache Writes",
            Event::L1dHits => "L1 Data Cache Hits",
            Event::L1dMisses => "L1 Data Cache Misses",
            Event::L2Hits => "L2 Hits",
            Event::L2Misses => "L2 Misses",
            Event::L2SilentEvictions => "L2 Silent Evictions",
            Event::L2WritebackEvictions => "L2 Writeback Evictions",
            Event::LlcHits => "LLC Hits",
            Event::LlcMisses => "LLC Misses",
            Event::DtlbHits => "D-TLB Hits",
            Event::DtlbMisses => "D-TLB Misses",
            Event::LongLatencyLoads => "Long-Latency Loads",
            Event::StoreQueueOccupancy => "Store Queue Occupancy",
            Event::StoreQueueFullStalls => "Store Queue Full Stalls",
            Event::LoadQueueOccupancy => "Load Queue Occupancy",
            Event::RobOccupancy => "ROB Occupancy",
            Event::RobFullStalls => "ROB Full Stalls",
            Event::IssueSlotsEmpty => "Issue Slots Empty",
            Event::IntAluOps => "Int ALU Ops",
            Event::IntMulOps => "Int Mul Ops",
            Event::IntDivOps => "Int Div Ops",
            Event::FpAddOps => "FP Add Ops",
            Event::FpMulOps => "FP Mul Ops",
            Event::FpFmaOps => "FP FMA Ops",
            Event::FpDivOps => "FP Div Ops",
            Event::SimdOps => "SIMD Ops",
            Event::DivStallCount => "Divider Stalls",
            Event::InterClusterForwards => "Inter-Cluster Forwards",
            Event::Cluster1UopsIssued => "Cluster 1 uOps Issued",
            Event::Cluster2UopsIssued => "Cluster 2 uOps Issued",
            Event::ModeSwitches => "Mode Switches",
            Event::TransferUops => "Transfer uOps",
        }
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn all_has_num_events_and_stable_indices() {
        assert_eq!(Event::ALL.len(), NUM_EVENTS);
        for (i, e) in Event::ALL.iter().enumerate() {
            assert_eq!(e.index(), i, "{e:?} index mismatch");
        }
    }

    #[test]
    fn names_are_unique_and_nonempty() {
        let names: HashSet<_> = Event::ALL.iter().map(|e| e.name()).collect();
        assert_eq!(names.len(), NUM_EVENTS);
        assert!(names.iter().all(|n| !n.is_empty()));
    }

    #[test]
    fn table4_analogues_exist() {
        // The 12 counters of Table 4 must all be representable as base events.
        let table4 = [
            Event::UopCacheMisses,
            Event::L2SilentEvictions,
            Event::WrongPathUopsFlushed,
            Event::StoreQueueOccupancy,
            Event::L1dReads,
            Event::StallCount,
            Event::PhysRegRefCount,
            Event::LoadsRetired,
            Event::L1dHits,
            Event::UopCacheHits,
            Event::UopsStalledOnDep,
            Event::UopsReady,
        ];
        let set: HashSet<_> = table4.iter().collect();
        assert_eq!(set.len(), 12);
    }
}
