//! Set-associative cache model with LRU replacement and dirty tracking.

/// Outcome of one cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Whether the access hit.
    pub hit: bool,
    /// On a miss that displaced a valid line: `(line address, was dirty)`.
    ///
    /// A clean eviction is a *silent* eviction (no writeback traffic); a
    /// dirty eviction generates a writeback. The distinction feeds the
    /// `L2SilentEvictions` / `L2WritebackEvictions` telemetry events.
    pub eviction: Option<(u64, bool)>,
}

/// A set-associative cache over 64-byte lines with true-LRU replacement.
///
/// The model tracks tags and dirty bits only (no data), which is all the
/// timing and telemetry models need.
///
/// # Examples
///
/// ```
/// use psca_cpu::Cache;
///
/// let mut l1 = Cache::new(32 * 1024, 8);
/// let first = l1.access(0x1000 >> 6, false);
/// assert!(!first.hit);
/// let second = l1.access(0x1000 >> 6, false);
/// assert!(second.hit);
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    sets: usize,
    ways: usize,
    /// `tags[set * ways + way]`; `u64::MAX` marks invalid.
    tags: Vec<u64>,
    dirty: Vec<bool>,
    /// LRU stamps; larger = more recently used.
    stamps: Vec<u64>,
    tick: u64,
    // MRU shortcut: slot holding `last_line`, so a repeat access to the
    // hottest line skips the way scan. Maintained on every hit and fill;
    // a slot can only change contents through a fill, which re-points the
    // shortcut, so the fast path is always a genuine hit.
    last_line: u64,
    last_slot: usize,
}

impl Cache {
    /// Creates a cache of `capacity_bytes` with the given associativity
    /// (64-byte lines).
    ///
    /// # Panics
    /// Panics if the geometry is degenerate (zero ways, or capacity not a
    /// positive multiple of `64 * ways`).
    pub fn new(capacity_bytes: usize, ways: usize) -> Cache {
        assert!(ways > 0, "cache needs at least one way");
        let lines = capacity_bytes / 64;
        assert!(
            lines >= ways && lines.is_multiple_of(ways),
            "capacity {capacity_bytes} incompatible with {ways} ways"
        );
        let sets = lines / ways;
        Cache {
            sets,
            ways,
            tags: vec![u64::MAX; sets * ways],
            dirty: vec![false; sets * ways],
            stamps: vec![0; sets * ways],
            tick: 0,
            last_line: u64::MAX,
            last_slot: 0,
        }
    }

    /// Number of sets.
    pub fn num_sets(&self) -> usize {
        self.sets
    }

    /// Associativity.
    pub fn num_ways(&self) -> usize {
        self.ways
    }

    /// Accesses a 64-byte line (address already shifted: `addr >> 6`).
    ///
    /// `is_write` marks the line dirty on hit or fill.
    pub fn access(&mut self, line: u64, is_write: bool) -> AccessOutcome {
        self.tick += 1;
        if line == self.last_line {
            // MRU fast path: identical effects to the scan-hit below.
            self.stamps[self.last_slot] = self.tick;
            if is_write {
                self.dirty[self.last_slot] = true;
            }
            return AccessOutcome {
                hit: true,
                eviction: None,
            };
        }
        let set = (line as usize) % self.sets;
        let base = set * self.ways;
        // Hit?
        for w in 0..self.ways {
            if self.tags[base + w] == line {
                self.stamps[base + w] = self.tick;
                if is_write {
                    self.dirty[base + w] = true;
                }
                self.last_line = line;
                self.last_slot = base + w;
                return AccessOutcome {
                    hit: true,
                    eviction: None,
                };
            }
        }
        // Miss: fill LRU way.
        let mut victim = 0;
        let mut oldest = u64::MAX;
        for w in 0..self.ways {
            if self.tags[base + w] == u64::MAX {
                victim = w;
                break;
            }
            if self.stamps[base + w] < oldest {
                oldest = self.stamps[base + w];
                victim = w;
            }
        }
        let evicted_tag = self.tags[base + victim];
        let eviction = if evicted_tag != u64::MAX {
            Some((evicted_tag, self.dirty[base + victim]))
        } else {
            None
        };
        self.tags[base + victim] = line;
        self.dirty[base + victim] = is_write;
        self.stamps[base + victim] = self.tick;
        self.last_line = line;
        self.last_slot = base + victim;
        AccessOutcome {
            hit: false,
            eviction,
        }
    }

    /// Invalidates all lines (used when resetting between traces).
    pub fn flush(&mut self) {
        self.tags.fill(u64::MAX);
        self.dirty.fill(false);
        self.stamps.fill(0);
        self.last_line = u64::MAX;
        self.last_slot = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let mut c = Cache::new(4096, 4);
        assert!(!c.access(1, false).hit);
        assert!(c.access(1, false).hit);
    }

    #[test]
    fn lru_evicts_least_recent() {
        // Direct construction: 4 lines, 4 ways, 1 set.
        let mut c = Cache::new(256, 4);
        assert_eq!(c.num_sets(), 1);
        for line in 0..4 {
            c.access(line, false);
        }
        // Touch 0 to refresh it, then insert a 5th line; victim must be 1.
        c.access(0, false);
        let out = c.access(100, false);
        assert!(!out.hit);
        assert_eq!(out.eviction, Some((1, false)));
        assert!(c.access(0, false).hit);
        assert!(!c.access(1, false).hit);
    }

    #[test]
    fn dirty_eviction_reported() {
        let mut c = Cache::new(256, 4);
        c.access(7, true); // dirty fill
        for line in 0..4 {
            c.access(100 + line, false);
        }
        // line 7 was LRU and dirty
        // after filling 4 new lines into 4 ways, 7 must have been evicted
        let found_dirty_eviction = {
            let mut c2 = Cache::new(256, 4);
            c2.access(7, true);
            let mut dirty_evicted = false;
            for line in 0..4 {
                if let Some((tag, dirty)) = c2.access(100 + line, false).eviction {
                    if tag == 7 {
                        dirty_evicted = dirty;
                    }
                }
            }
            dirty_evicted
        };
        assert!(found_dirty_eviction);
    }

    #[test]
    fn working_set_within_capacity_always_hits_after_warmup() {
        let mut c = Cache::new(32 * 1024, 8); // 512 lines
        for line in 0..256u64 {
            c.access(line, false);
        }
        for line in 0..256u64 {
            assert!(c.access(line, false).hit, "line {line}");
        }
    }

    #[test]
    fn working_set_beyond_capacity_thrashes() {
        let mut c = Cache::new(4096, 4); // 64 lines
        let mut misses = 0;
        for round in 0..4u64 {
            let _ = round;
            for line in 0..1024u64 {
                if !c.access(line, false).hit {
                    misses += 1;
                }
            }
        }
        assert!(misses as f64 / 4096.0 > 0.9);
    }

    #[test]
    fn flush_invalidates() {
        let mut c = Cache::new(4096, 4);
        c.access(1, false);
        c.flush();
        assert!(!c.access(1, false).hit);
    }

    #[test]
    #[should_panic(expected = "incompatible")]
    fn bad_geometry_rejected() {
        let _ = Cache::new(100, 8);
    }

    /// Plain scan-only LRU cache without the MRU shortcut, used to prove
    /// the shortcut is a pure optimization.
    struct ReferenceCache {
        sets: usize,
        ways: usize,
        tags: Vec<u64>,
        dirty: Vec<bool>,
        stamps: Vec<u64>,
        tick: u64,
    }

    impl ReferenceCache {
        fn new(capacity_bytes: usize, ways: usize) -> ReferenceCache {
            let lines = capacity_bytes / 64;
            let sets = lines / ways;
            ReferenceCache {
                sets,
                ways,
                tags: vec![u64::MAX; sets * ways],
                dirty: vec![false; sets * ways],
                stamps: vec![0; sets * ways],
                tick: 0,
            }
        }

        fn access(&mut self, line: u64, is_write: bool) -> AccessOutcome {
            self.tick += 1;
            let set = (line as usize) % self.sets;
            let base = set * self.ways;
            for w in 0..self.ways {
                if self.tags[base + w] == line {
                    self.stamps[base + w] = self.tick;
                    if is_write {
                        self.dirty[base + w] = true;
                    }
                    return AccessOutcome {
                        hit: true,
                        eviction: None,
                    };
                }
            }
            let mut victim = 0;
            let mut oldest = u64::MAX;
            for w in 0..self.ways {
                if self.tags[base + w] == u64::MAX {
                    victim = w;
                    break;
                }
                if self.stamps[base + w] < oldest {
                    oldest = self.stamps[base + w];
                    victim = w;
                }
            }
            let evicted_tag = self.tags[base + victim];
            let eviction = if evicted_tag != u64::MAX {
                Some((evicted_tag, self.dirty[base + victim]))
            } else {
                None
            };
            self.tags[base + victim] = line;
            self.dirty[base + victim] = is_write;
            self.stamps[base + victim] = self.tick;
            AccessOutcome {
                hit: false,
                eviction,
            }
        }
    }

    #[test]
    fn mru_shortcut_matches_reference_on_random_stream() {
        let mut fast = Cache::new(4096, 4); // 64 lines, 16 sets
        let mut reference = ReferenceCache::new(4096, 4);
        let mut state = 0xdead_beef_cafe_f00du64;
        let mut line = 0u64;
        for i in 0..100_000u64 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            if state.is_multiple_of(5) {
                line = (state >> 20) % 256; // jump in a 4x-capacity footprint
            } else if state % 5 == 1 {
                line = line.wrapping_add(1) % 256; // sequential
            }
            // else: repeat the same line (exercises the MRU path)
            let is_write = state.is_multiple_of(3);
            assert_eq!(
                fast.access(line, is_write),
                reference.access(line, is_write),
                "diverged at access {i} line {line}"
            );
            if i == 50_000 {
                fast.flush();
                reference.tags.fill(u64::MAX);
                reference.dirty.fill(false);
                reference.stamps.fill(0);
            }
        }
        assert_eq!(fast.tags, reference.tags);
        assert_eq!(fast.dirty, reference.dirty);
        assert_eq!(fast.stamps, reference.stamps);
    }
}
