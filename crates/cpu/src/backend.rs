//! Simulation backends: the [`SimBackend`] trait and its two fidelities.
//!
//! Every closed-loop consumer in the workspace (the adaptation controller,
//! sweeps, the serving path, fleet rollouts) drives a CPU model one
//! interval at a time: warm up, run intervals, switch modes between them.
//! [`SimBackend`] captures exactly that contract so callers can choose the
//! fidelity per run:
//!
//! - [`CycleAccurate`] wraps [`ClusterSim`] with zero behavioral change —
//!   the reference fidelity, bit-identical to calling the simulator
//!   directly. Verdict-bearing paths (benchmark gates, paper-table
//!   reproduction) must use it.
//! - [`Surrogate`] is a compositional fast path in the spirit of Concorde:
//!   analytical throughput terms derived from [`CpuConfig`] per mode
//!   (issue-width bound, dependence-serialization bound, miss- and
//!   mispredict-penalty terms) fused with small ridge-regression residuals
//!   calibrated against the reference simulator on a synthetic workload
//!   battery. It samples a few hundred instructions per interval, skips
//!   the rest ([`TraceSource::skip`]), and predicts the interval's cycle
//!   count, telemetry rates, and energy — orders of magnitude faster than
//!   cycle-accurate simulation.
//!
//! Which backend produced a result is a *fidelity tag* that callers are
//! expected to carry through reports and artifacts; [`BackendChoice`]
//! serializes to the strings used everywhere (`cycle_accurate`,
//! `surrogate`).

use std::collections::HashMap;
use std::str::FromStr;
use std::sync::{Arc, Mutex, OnceLock};

use psca_ml::{Matrix, Ridge};
use psca_telemetry::{CounterBank, Event};
use psca_trace::{
    BranchInfo, Instruction, MemRef, OpClass, Reg, TraceSource, VecTrace, NUM_ARCH_REGS,
};
use psca_workloads::{Archetype, PhaseGenerator};

use crate::config::CpuConfig;
use crate::power::PowerModel;
use crate::sim::{ClusterSim, IntervalResult, Mode, ModeSwitchFault};

/// Which simulation fidelity to run a closed loop on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BackendChoice {
    /// The reference cycle-level simulator ([`ClusterSim`]).
    #[default]
    CycleAccurate,
    /// The learned analytical+residual fast path ([`Surrogate`]).
    Surrogate,
}

impl BackendChoice {
    /// Canonical string form, used in CLI flags, JSON artifacts, and
    /// sweep-cache keys.
    pub fn as_str(self) -> &'static str {
        match self {
            BackendChoice::CycleAccurate => "cycle_accurate",
            BackendChoice::Surrogate => "surrogate",
        }
    }

    /// Whether this fidelity is acceptable for verdict-bearing paths
    /// (benchmark gates, paper-table checks). Only the reference is.
    pub fn is_reference(self) -> bool {
        matches!(self, BackendChoice::CycleAccurate)
    }

    /// Constructs a backend of this fidelity for the given machine.
    ///
    /// `interval_insts` is the closed-loop interval length the backend
    /// will be driven at; the surrogate calibrates itself against the
    /// reference simulator at that granularity (cached per machine
    /// configuration, so repeated builds are cheap).
    pub fn build(self, cfg: CpuConfig, interval_insts: u64) -> Box<dyn SimBackend> {
        match self {
            BackendChoice::CycleAccurate => Box::new(CycleAccurate::new(cfg)),
            BackendChoice::Surrogate => Box::new(Surrogate::new(cfg, interval_insts)),
        }
    }
}

impl std::fmt::Display for BackendChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Error for a backend name that names no known fidelity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownBackend(pub String);

impl std::fmt::Display for UnknownBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown backend {:?} (expected cycle_accurate or surrogate)",
            self.0
        )
    }
}

impl std::error::Error for UnknownBackend {}

impl FromStr for BackendChoice {
    type Err = UnknownBackend;

    fn from_str(s: &str) -> Result<BackendChoice, UnknownBackend> {
        match s {
            "cycle_accurate" | "cycle-accurate" => Ok(BackendChoice::CycleAccurate),
            "surrogate" => Ok(BackendChoice::Surrogate),
            other => Err(UnknownBackend(other.to_string())),
        }
    }
}

/// Per-interval closed-loop evaluation, at a caller-chosen fidelity.
///
/// The trait is object-safe (`Box<dyn SimBackend>`) so fidelity can be a
/// runtime decision threaded from a CLI flag or an HTTP request field.
/// Semantics mirror [`ClusterSim`]: mode switches take effect between
/// intervals, a high-performance → low-power switch pays the microcoded
/// register-transfer cost in the next interval, and `run_interval` returns
/// `None` exactly when the source is exhausted.
pub trait SimBackend {
    /// The fidelity tag of this backend.
    fn choice(&self) -> BackendChoice;

    /// Current execution mode.
    fn mode(&self) -> Mode;

    /// The machine configuration being modeled.
    fn config(&self) -> &CpuConfig;

    /// Switches cluster configuration (see [`ClusterSim::set_mode`]).
    fn set_mode(&mut self, mode: Mode);

    /// Submits a mode switch through the possibly-faulty actuation port
    /// (see [`ClusterSim::request_mode`]). Returns whether it took effect.
    fn request_mode(&mut self, mode: Mode, fault: ModeSwitchFault) -> bool;

    /// Applies a delayed mode switch, if one is buffered.
    fn apply_delayed_mode(&mut self) -> Option<Mode>;

    /// Consumes `n` instructions without producing telemetry.
    fn warm_up(&mut self, source: &mut dyn TraceSource, n: u64);

    /// Evaluates one interval of up to `n` instructions. Returns `None`
    /// iff the source yielded nothing.
    fn run_interval(&mut self, source: &mut dyn TraceSource, n: u64) -> Option<IntervalResult>;
}

/// The reference backend: a thin, bit-identical wrapper over
/// [`ClusterSim`].
pub struct CycleAccurate {
    sim: ClusterSim,
}

impl CycleAccurate {
    /// Builds the reference simulator for `cfg`.
    ///
    /// # Panics
    /// Panics if the configuration fails validation (as [`ClusterSim::new`]).
    pub fn new(cfg: CpuConfig) -> CycleAccurate {
        CycleAccurate {
            sim: ClusterSim::new(cfg),
        }
    }

    /// Wraps an existing simulator (preserving its state).
    pub fn from_sim(sim: ClusterSim) -> CycleAccurate {
        CycleAccurate { sim }
    }

    /// The wrapped simulator.
    pub fn sim(&self) -> &ClusterSim {
        &self.sim
    }
}

impl SimBackend for CycleAccurate {
    fn choice(&self) -> BackendChoice {
        BackendChoice::CycleAccurate
    }

    fn mode(&self) -> Mode {
        self.sim.mode()
    }

    fn config(&self) -> &CpuConfig {
        self.sim.config()
    }

    fn set_mode(&mut self, mode: Mode) {
        self.sim.set_mode(mode);
    }

    fn request_mode(&mut self, mode: Mode, fault: ModeSwitchFault) -> bool {
        self.sim.request_mode(mode, fault)
    }

    fn apply_delayed_mode(&mut self) -> Option<Mode> {
        self.sim.apply_delayed_mode()
    }

    fn warm_up(&mut self, mut source: &mut dyn TraceSource, n: u64) {
        self.sim.warm_up(&mut source, n);
    }

    fn run_interval(&mut self, mut source: &mut dyn TraceSource, n: u64) -> Option<IntervalResult> {
        self.sim.run_interval(&mut source, n)
    }
}

// ---------------------------------------------------------------------------
// Feature sampling
// ---------------------------------------------------------------------------

/// Instructions read per sampled chunk.
const SAMPLE_CHUNK: u64 = 96;
/// Chunks sampled per interval (spread across the interval by skipping).
const SAMPLE_CHUNKS: u64 = 8;
/// Dimensionality of the design row fed to every ridge.
const FEAT_DIMS: usize = 24;
/// Bump to invalidate cached calibrations when the model family changes.
const CALIB_VERSION: u64 = 2;

/// Sampled recency windows (direct-mapped tag arrays) standing in for
/// cache, TLB, and instruction-fetch residency. The state deliberately
/// persists across intervals of one stream: hardware warms up over far
/// more instructions than one interval's sample budget, so per-interval
/// windows would read steady-state phases as perpetually cold.
struct RecencyState {
    line_tags: Vec<u64>,
    page_tags: Vec<u64>,
    pc_tags: Vec<u64>,
}

const LINE_TAG_SLOTS: usize = 512;
const PAGE_TAG_SLOTS: usize = 128;
const PC_TAG_SLOTS: usize = 64;

impl RecencyState {
    fn new() -> RecencyState {
        RecencyState {
            line_tags: vec![u64::MAX; LINE_TAG_SLOTS],
            page_tags: vec![u64::MAX; PAGE_TAG_SLOTS],
            pc_tags: vec![u64::MAX; PC_TAG_SLOTS],
        }
    }
}

/// Streaming accumulator for the sampled-instruction features.
struct FeatAcc {
    total: u64,
    ops: [u64; 8], // alu, muldiv, fp, simd, load, store, branch, other
    lat_sum: u64,
    srcs: u64,
    dep1: u64,
    dep4: u64,
    dep16: u64,
    branches: u64,
    taken: u64,
    mem: u64,
    chased: u64,
    line_hits: u64,
    page_hits: u64,
    pc_hits: u64,
    last_write: [u64; NUM_ARCH_REGS],
    load_written: [bool; NUM_ARCH_REGS],
}

impl FeatAcc {
    fn new() -> FeatAcc {
        FeatAcc {
            total: 0,
            ops: [0; 8],
            lat_sum: 0,
            srcs: 0,
            dep1: 0,
            dep4: 0,
            dep16: 0,
            branches: 0,
            taken: 0,
            mem: 0,
            chased: 0,
            line_hits: 0,
            page_hits: 0,
            pc_hits: 0,
            last_write: [u64::MAX; NUM_ARCH_REGS],
            load_written: [false; NUM_ARCH_REGS],
        }
    }

    fn observe(&mut self, inst: &Instruction, recency: &mut RecencyState) {
        let idx = self.total;
        self.total += 1;
        let group = match inst.op {
            OpClass::IntAlu | OpClass::Other => 0,
            OpClass::IntMul | OpClass::IntDiv => 1,
            OpClass::FpAdd | OpClass::FpMul | OpClass::FpFma | OpClass::FpDiv => 2,
            OpClass::SimdInt | OpClass::SimdFp => 3,
            OpClass::Load => 4,
            OpClass::Store => 5,
            OpClass::Jump | OpClass::CondBranch | OpClass::IndirectBranch => 6,
        };
        self.ops[group] += 1;
        self.lat_sum += inst.op.latency() as u64;
        let is_load = inst.op == OpClass::Load;
        for src in inst.srcs.iter().flatten() {
            self.srcs += 1;
            let lw = self.last_write[src.index()];
            if lw != u64::MAX {
                let d = idx - lw;
                if d <= 1 {
                    self.dep1 += 1;
                }
                if d <= 4 {
                    self.dep4 += 1;
                }
                if d <= 16 {
                    self.dep16 += 1;
                }
            }
            // A load whose address comes from another load's result is a
            // pointer chase: its miss latency serialises rather than
            // overlapping, which the dep-distance counters can't see.
            if is_load && self.load_written[src.index()] {
                self.chased += 1;
            }
        }
        if let Some(dst) = inst.dst {
            self.last_write[dst.index()] = idx;
            self.load_written[dst.index()] = is_load;
        }
        if let Some(m) = inst.mem {
            self.mem += 1;
            let line = m.addr >> 6;
            let slot = (line as usize) % LINE_TAG_SLOTS;
            if recency.line_tags[slot] == line {
                self.line_hits += 1;
            } else {
                recency.line_tags[slot] = line;
            }
            let page = m.addr >> 12;
            let pslot = (page as usize) % PAGE_TAG_SLOTS;
            if recency.page_tags[pslot] == page {
                self.page_hits += 1;
            } else {
                recency.page_tags[pslot] = page;
            }
        }
        if let Some(b) = inst.branch {
            self.branches += 1;
            self.taken += b.taken as u64;
        }
        let pc_line = inst.pc >> 4;
        let pc_slot = (pc_line as usize) % PC_TAG_SLOTS;
        if recency.pc_tags[pc_slot] == pc_line {
            self.pc_hits += 1;
        } else {
            recency.pc_tags[pc_slot] = pc_line;
        }
    }

    fn features(&self) -> Features {
        let n = self.total.max(1) as f64;
        let frac = |c: u64| c as f64 / n;
        // With no memory ops there is nothing to miss: locality must read
        // as perfect, not zero, or compute-only phases alias with the
        // worst-locality (pointer-chase) corner of the training battery.
        let loc = |hits: u64| {
            if self.mem == 0 {
                1.0
            } else {
                hits as f64 / self.mem as f64
            }
        };
        Features {
            alu: frac(self.ops[0] + self.ops[7]),
            muldiv: frac(self.ops[1]),
            fp: frac(self.ops[2]),
            simd: frac(self.ops[3]),
            load: frac(self.ops[4]),
            store: frac(self.ops[5]),
            branch: frac(self.ops[6]),
            taken: self.taken as f64 / self.branches.max(1) as f64,
            dep1: frac(self.dep1),
            dep4: frac(self.dep4),
            dep16: frac(self.dep16),
            src_density: self.srcs as f64 / (2.0 * n),
            chase: self.chased as f64 / self.ops[4].max(1) as f64,
            line_local: loc(self.line_hits),
            page_local: loc(self.page_hits),
            pc_local: self.pc_hits as f64 / n,
            avg_lat: self.lat_sum as f64 / n,
        }
    }
}

/// The sampled phase signature of one interval.
#[derive(Debug, Clone, Copy)]
struct Features {
    alu: f64,
    muldiv: f64,
    fp: f64,
    simd: f64,
    load: f64,
    store: f64,
    branch: f64,
    taken: f64,
    dep1: f64,
    dep4: f64,
    dep16: f64,
    src_density: f64,
    /// Fraction of loads whose address depends on another load's result.
    chase: f64,
    line_local: f64,
    page_local: f64,
    pc_local: f64,
    avg_lat: f64,
}

impl Features {
    /// The design row for one (interval, mode) pair: raw phase features
    /// plus the analytical throughput terms for `mode` on `cfg`. The
    /// analytical terms carry the config- and mode-dependence; the ridge
    /// learns their coefficients plus a residual over the raw features.
    fn design_row(&self, cfg: &CpuConfig, mode: Mode) -> [f64; FEAT_DIMS] {
        let eff_width = (cfg.cluster_width * mode.active_clusters()).min(cfg.retire_width) as f64;
        let t_issue = 1.0 / eff_width;
        // Serialization from register dependence: a producer at distance
        // `d` stalls roughly `latency / d` cycles per instruction, so the
        // distance buckets contribute with decaying weight.
        let t_dep = (self.dep1
            + (self.dep4 - self.dep1).max(0.0) / 2.5
            + (self.dep16 - self.dep4).max(0.0) / 8.0)
            * self.avg_lat;
        let t_mem = self.load * (1.0 - self.line_local) * cfg.mem_latency as f64
            / cfg.rob_size.max(1) as f64;
        let t_br = self.branch * (1.0 - self.pc_local) * cfg.mispredict_penalty as f64 / 16.0;
        let t_page = self.load * (1.0 - self.page_local) * cfg.tlb_miss_penalty as f64 / 64.0;
        // Chased misses serialise end-to-end, so unlike `t_mem` the ROB
        // does not amortise them: full memory latency per chased miss.
        let t_chase = self.chase * self.load * (1.0 - self.line_local) * cfg.mem_latency as f64;
        // The CPI target is fit in log space, so the additive cost terms
        // enter log-compressed (`ln1p` keeps them ~linear when small) and
        // their sum — the analytical whole-interval CPI estimate — enters
        // as `ln`: a unit weight on it recovers the analytical model, and
        // the ridge only has to learn corrections.
        let t_total = (t_issue + t_dep + t_mem + t_br + t_page + t_chase).max(1e-6);
        [
            self.alu,
            self.muldiv,
            self.fp,
            self.simd,
            self.load,
            self.store,
            self.branch,
            self.taken,
            self.dep1,
            self.dep4,
            self.dep16,
            self.src_density,
            self.chase,
            self.line_local,
            self.page_local,
            self.pc_local,
            self.avg_lat / 4.0,
            t_issue,
            t_dep.ln_1p(),
            t_mem.ln_1p(),
            t_br.ln_1p(),
            t_page.ln_1p(),
            t_chase.ln_1p(),
            t_total.ln(),
        ]
    }
}

/// Reads a few chunks of the interval, skipping between them, and returns
/// the sampled features plus how many instructions were consumed in total.
/// Sampling is identical at calibration and inference time so the feature
/// distribution matches; `recency` carries the tag windows across
/// intervals of the same stream.
fn sample_interval(
    source: &mut dyn TraceSource,
    n: u64,
    recency: &mut RecencyState,
) -> (Features, u64) {
    let mut acc = FeatAcc::new();
    let mut consumed = 0u64;
    if n <= SAMPLE_CHUNKS * SAMPLE_CHUNK {
        while consumed < n {
            match source.next_instruction() {
                Some(inst) => {
                    acc.observe(&inst, recency);
                    consumed += 1;
                }
                None => break,
            }
        }
        return (acc.features(), consumed);
    }
    let stride = n / SAMPLE_CHUNKS;
    for k in 0..SAMPLE_CHUNKS {
        let budget = if k == SAMPLE_CHUNKS - 1 {
            n - stride * (SAMPLE_CHUNKS - 1)
        } else {
            stride
        };
        let want = SAMPLE_CHUNK.min(budget);
        let mut read = 0;
        while read < want {
            match source.next_instruction() {
                Some(inst) => {
                    acc.observe(&inst, recency);
                    read += 1;
                }
                None => break,
            }
        }
        consumed += read;
        if read < want {
            break;
        }
        let to_skip = budget - read;
        let skipped = source.skip(to_skip);
        consumed += skipped;
        if skipped < to_skip {
            break;
        }
    }
    (acc.features(), consumed)
}

// ---------------------------------------------------------------------------
// Calibration workload battery
// ---------------------------------------------------------------------------

/// One synthetic phase used to calibrate the surrogate against the
/// reference simulator. The battery spans the dependence / memory /
/// control behaviors the workspace's workload archetypes exercise.
struct CalibMix {
    // op-class weights (alu, muldiv, fp, simd, load, store, branch)
    weights: [u32; 7],
    /// Percent chance a compute op extends one of the dependence chains
    /// (vs. reading/writing independent scratch registers).
    dep_near_pct: u32,
    /// Independent dependence chains the battery round-robins over. One
    /// chain is a serial recurrence (read-after-write distance 1); `k`
    /// chains give distance ≈ `k`, which is where the workspace's
    /// multi-chain ILP workloads live in dep1/dep4/dep16 space.
    chains: u32,
    /// Data footprint in 4 KiB pages.
    footprint_pages: u64,
    /// Sequential (true) vs. pseudo-random (false) addressing.
    stride: bool,
    /// Percent of loads that pointer-chase: the address depends on the
    /// previous chased load's result, putting the full memory latency in
    /// a serial load→load chain.
    chase_pct: u32,
    /// Percent of conditional branches taken.
    taken_pct: u32,
    /// Static loop body length in instructions (PC wraps).
    loop_len: u64,
}

const CALIB_MIXES: [CalibMix; 14] = [
    // Serial dependence chain: every op reads the previous result.
    CalibMix {
        weights: [86, 4, 0, 0, 6, 2, 2],
        dep_near_pct: 95,
        chains: 1,
        footprint_pages: 4,
        stride: true,
        chase_pct: 0,
        taken_pct: 95,
        loop_len: 256,
    },
    // Two half-busy chains: the narrowest still-parallel shape.
    CalibMix {
        weights: [82, 4, 0, 0, 8, 4, 2],
        dep_near_pct: 90,
        chains: 2,
        footprint_pages: 16,
        stride: true,
        chase_pct: 0,
        taken_pct: 95,
        loop_len: 256,
    },
    // Medium ILP: four chains, the common scalar-code shape.
    CalibMix {
        weights: [78, 2, 0, 0, 12, 6, 2],
        dep_near_pct: 85,
        chains: 4,
        footprint_pages: 64,
        stride: true,
        chase_pct: 0,
        taken_pct: 95,
        loop_len: 512,
    },
    // Wide chained ILP: eight chains saturating one cluster.
    CalibMix {
        weights: [78, 2, 0, 4, 10, 4, 2],
        dep_near_pct: 85,
        chains: 8,
        footprint_pages: 128,
        stride: true,
        chase_pct: 0,
        taken_pct: 95,
        loop_len: 512,
    },
    // Very wide ILP: sixteen chains, dual-cluster food.
    CalibMix {
        weights: [80, 2, 0, 4, 8, 4, 2],
        dep_near_pct: 80,
        chains: 16,
        footprint_pages: 128,
        stride: true,
        chase_pct: 0,
        taken_pct: 95,
        loop_len: 512,
    },
    // Fully independent ops: the no-dependence extreme.
    CalibMix {
        weights: [80, 2, 0, 4, 8, 4, 2],
        dep_near_pct: 5,
        chains: 8,
        footprint_pages: 8,
        stride: true,
        chase_pct: 0,
        taken_pct: 95,
        loop_len: 512,
    },
    // Pointer chase: serialised loads over an LLC-busting footprint.
    CalibMix {
        weights: [40, 2, 0, 0, 40, 8, 10],
        dep_near_pct: 60,
        chains: 2,
        footprint_pages: 32_768,
        stride: false,
        chase_pct: 60,
        taken_pct: 80,
        loop_len: 512,
    },
    // Memory-bound but parallel: random loads feeding many chains.
    CalibMix {
        weights: [44, 2, 0, 0, 36, 8, 10],
        dep_near_pct: 70,
        chains: 8,
        footprint_pages: 16_384,
        stride: false,
        chase_pct: 30,
        taken_pct: 80,
        loop_len: 512,
    },
    // Cache-resident random loads: misses stop at the LLC.
    CalibMix {
        weights: [46, 2, 0, 0, 32, 10, 10],
        dep_near_pct: 70,
        chains: 5,
        footprint_pages: 512,
        stride: false,
        chase_pct: 5,
        taken_pct: 85,
        loop_len: 512,
    },
    // DRAM-bound with a moderate chase fraction: the archetypal
    // working-set-busting kernel between streaming and full chase.
    CalibMix {
        weights: [46, 2, 0, 0, 32, 8, 12],
        dep_near_pct: 75,
        chains: 5,
        footprint_pages: 2_048,
        stride: false,
        chase_pct: 10,
        taken_pct: 85,
        loop_len: 1_024,
    },
    // Streaming: sequential loads/stores, prefetcher-friendly.
    CalibMix {
        weights: [40, 0, 8, 8, 30, 12, 2],
        dep_near_pct: 20,
        chains: 4,
        footprint_pages: 16_384,
        stride: true,
        chase_pct: 0,
        taken_pct: 95,
        loop_len: 256,
    },
    // Branchy with poorly-predictable directions.
    CalibMix {
        weights: [60, 2, 0, 0, 12, 4, 22],
        dep_near_pct: 40,
        chains: 4,
        footprint_pages: 64,
        stride: false,
        chase_pct: 0,
        taken_pct: 50,
        loop_len: 2_048,
    },
    // FP/FMA kernel with medium-length chains.
    CalibMix {
        weights: [20, 2, 50, 10, 12, 6, 0],
        dep_near_pct: 60,
        chains: 6,
        footprint_pages: 256,
        stride: true,
        chase_pct: 0,
        taken_pct: 95,
        loop_len: 384,
    },
    // Balanced mixed behavior.
    CalibMix {
        weights: [50, 4, 10, 4, 18, 8, 6],
        dep_near_pct: 45,
        chains: 6,
        footprint_pages: 1_024,
        stride: false,
        chase_pct: 10,
        taken_pct: 70,
        loop_len: 1_024,
    },
];

/// Deterministic xorshift64* generator for the calibration battery (kept
/// local so calibration never depends on an external RNG's stream).
struct CalibGen<'a> {
    state: u64,
    mix: &'a CalibMix,
    i: u64,
    next_addr: u64,
    /// Round-robin dependence chains (read-after-write distance ≈ length).
    chains: Vec<Reg>,
    chain_cursor: usize,
    /// Rotating scratch registers that receive load results.
    scratch: [Reg; 4],
    scratch_cursor: usize,
    /// Pointer register for chased loads (`load ptr ← [ptr]`): each chased
    /// load both reads and writes it, serialising the full memory latency.
    ptr_reg: Reg,
}

impl<'a> CalibGen<'a> {
    fn new(mix: &'a CalibMix, seed: u64) -> CalibGen<'a> {
        let n = mix.chains.clamp(1, 24) as usize;
        CalibGen {
            state: seed.wrapping_mul(0x9E3779B97F4A7C15) | 1,
            mix,
            i: 0,
            next_addr: 0,
            chains: (0..n).map(|c| Reg::int(4 + c as u8)).collect(),
            chain_cursor: 0,
            scratch: [Reg::int(0), Reg::int(1), Reg::int(2), Reg::int(3)],
            scratch_cursor: 0,
            ptr_reg: Reg::int(28),
        }
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    fn pct(&mut self, p: u32) -> bool {
        (self.next_u64() % 100) < p as u64
    }

    /// The next chain register, round-robin: reading and re-writing it
    /// extends that chain, so the producer distance is the chain count.
    fn chain(&mut self) -> Reg {
        let r = self.chains[self.chain_cursor];
        self.chain_cursor = (self.chain_cursor + 1) % self.chains.len();
        r
    }

    fn scratch_reg(&mut self) -> Reg {
        self.scratch_cursor = (self.scratch_cursor + 1) % self.scratch.len();
        self.scratch[self.scratch_cursor]
    }

    fn rand_reg(&mut self, fp: bool) -> Reg {
        let idx = (self.next_u64() % 28) as u8;
        if fp {
            Reg::fp(idx)
        } else {
            Reg::int(idx)
        }
    }

    fn addr(&mut self) -> u64 {
        let span = self.mix.footprint_pages * 4096;
        if self.mix.stride {
            self.next_addr = (self.next_addr + 64) % span.max(64);
            self.next_addr
        } else {
            self.next_u64() % span.max(64)
        }
    }

    fn generate(&mut self) -> Instruction {
        let pc = (self.i % self.mix.loop_len) * 4;
        self.i += 1;
        let total: u32 = self.mix.weights.iter().sum();
        let mut pick = (self.next_u64() % total as u64) as u32;
        let mut group = 0;
        for (g, w) in self.mix.weights.iter().enumerate() {
            if pick < *w {
                group = g;
                break;
            }
            pick -= w;
        }
        // Compute ops either extend a chain (read + re-write the chain
        // register, with an occasional scratch second operand) or run
        // fully independent; loads land in scratch like real streaming
        // kernels; branches resolve off induction arithmetic (no chain
        // sources) so control is cheap and dependence cost comes from
        // the chains alone — mirroring the workloads this calibrates for.
        let chained = self.pct(self.mix.dep_near_pct);
        let compute = |g: &mut Self, op: OpClass, fp: bool| {
            if chained {
                let r = g.chain();
                let second = if g.pct(50) {
                    Some(g.scratch[g.scratch_cursor])
                } else {
                    None
                };
                Instruction::alu(op, Some(r), [Some(r), second])
            } else {
                let srcs = [Some(g.rand_reg(fp)), Some(g.rand_reg(fp))];
                Instruction::alu(op, Some(g.rand_reg(fp)), srcs)
            }
        };
        let inst = match group {
            0 => compute(self, OpClass::IntAlu, false),
            1 => {
                let op = if self.pct(25) {
                    OpClass::IntDiv
                } else {
                    OpClass::IntMul
                };
                compute(self, op, false)
            }
            2 => {
                let op = match self.next_u64() % 4 {
                    0 => OpClass::FpAdd,
                    1 => OpClass::FpMul,
                    2 => OpClass::FpFma,
                    _ => OpClass::FpDiv,
                };
                compute(self, op, true)
            }
            3 => {
                let op = if self.pct(50) {
                    OpClass::SimdInt
                } else {
                    OpClass::SimdFp
                };
                compute(self, op, true)
            }
            4 => {
                if self.pct(self.mix.chase_pct) {
                    // Pointer chase: address comes from the previous chased
                    // load's result, so these loads serialise end-to-end.
                    // Chase targets are random by nature regardless of the
                    // mix's stride setting.
                    let span = self.mix.footprint_pages * 4096;
                    let addr = self.next_u64() % span.max(64);
                    Instruction::load(self.ptr_reg, Some(self.ptr_reg), MemRef { addr, size: 8 })
                } else {
                    let addr = self.addr();
                    // The address occasionally depends on a chain (index
                    // arithmetic in the dependence path); the result lands
                    // in a scratch register either way.
                    let asrc = if chained { Some(self.chain()) } else { None };
                    let dst = self.scratch_reg();
                    Instruction::load(dst, asrc, MemRef { addr, size: 8 })
                }
            }
            5 => {
                let addr = self.addr();
                let data = Some(self.chains[0]);
                Instruction::store(data, None, MemRef { addr, size: 8 })
            }
            _ => {
                let taken = self.pct(self.mix.taken_pct);
                let target = if taken { pc.saturating_sub(64) } else { pc + 8 };
                Instruction::cond_branch([None, None], BranchInfo { taken, target })
            }
        };
        inst.at_pc(pc)
    }
}

// ---------------------------------------------------------------------------
// The surrogate model
// ---------------------------------------------------------------------------

/// Ridge heads for one execution mode.
struct ModeModel {
    cpi: Ridge,
    energy_resid: Ridge,
    rates: Vec<Ridge>,
}

/// A calibrated surrogate for one machine configuration: per-mode ridge
/// heads over the [`Features::design_row`] basis, predicting CPI, the
/// per-cycle telemetry-rate vector, and an energy residual on top of the
/// structural [`PowerModel`] estimate.
pub struct SurrogateModel {
    hi: ModeModel,
    lo: ModeModel,
    rate_events: Vec<Event>,
}

impl SurrogateModel {
    fn head(&self, mode: Mode) -> &ModeModel {
        match mode {
            Mode::HighPerf => &self.hi,
            Mode::LowPower => &self.lo,
        }
    }
}

/// Calibration interval length: clamped so calibration cost stays bounded
/// for huge closed-loop intervals while the rate/CPI targets (which are
/// length-normalized) remain representative.
fn calib_interval(interval_insts: u64) -> u64 {
    interval_insts.clamp(512, 10_000)
}

const CALIB_WARM: u64 = 100_000;
const CALIB_INTERVALS: u64 = 12;
const RIDGE_LAMBDA: f64 = 0.02;

fn fnv1a_u64(h: u64, v: u64) -> u64 {
    let mut h = h;
    for b in v.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001B3);
    }
    h
}

/// Content key for the calibration cache: every config field that affects
/// simulator behavior, plus the calibration granularity and version.
fn model_key(cfg: &CpuConfig, cal_n: u64) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for v in [
        cfg.cluster_width as u64,
        cfg.num_clusters as u64,
        cfg.rob_size as u64,
        cfg.store_queue_size as u64,
        cfg.inter_cluster_penalty,
        cfg.mispredict_penalty,
        cfg.l1i_bytes as u64,
        cfg.l1i_ways as u64,
        cfg.uop_cache_bytes as u64,
        cfg.uop_cache_ways as u64,
        cfg.l1d_bytes as u64,
        cfg.l1d_ways as u64,
        cfg.l2_bytes as u64,
        cfg.l2_ways as u64,
        cfg.llc_bytes as u64,
        cfg.llc_ways as u64,
        cfg.itlb_entries as u64,
        cfg.dtlb_entries as u64,
        cfg.l1d_latency,
        cfg.l2_latency,
        cfg.llc_latency,
        cfg.mem_latency,
        cfg.tlb_miss_penalty,
        cfg.decode_bubble,
        cfg.gshare_bits as u64,
        cfg.btb_bits as u64,
        cfg.retire_width as u64,
        cfg.transfer_uop_max as u64,
        cfg.steer_policy as u64,
        cfg.stream_prefetcher as u64,
        cal_n,
        CALIB_VERSION,
    ] {
        h = fnv1a_u64(h, v);
    }
    h
}

fn model_cache() -> &'static Mutex<HashMap<u64, Arc<SurrogateModel>>> {
    static CACHE: OnceLock<Mutex<HashMap<u64, Arc<SurrogateModel>>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Events predicted as per-cycle rates. `Cycles` and `InstRetired` are set
/// structurally from the CPI prediction; `ModeSwitches`/`TransferUops` are
/// accounted from actual mode-switch activity, mirroring the simulator.
fn rate_events() -> Vec<Event> {
    Event::ALL
        .iter()
        .copied()
        .filter(|e| {
            !matches!(
                e,
                Event::Cycles | Event::InstRetired | Event::ModeSwitches | Event::TransferUops
            )
        })
        .collect()
}

/// The instruction streams the surrogate calibrates against: the
/// synthetic corner-coverage mixes plus one phase per workload archetype
/// (in-distribution coverage of the traffic every closed-loop consumer
/// actually runs — the post-silicon analogue of calibrating against
/// representative workloads).
fn calib_segments(cal_n: u64) -> Vec<Vec<Instruction>> {
    let total = CALIB_WARM + CALIB_INTERVALS * cal_n;
    let mut segments = Vec::with_capacity(CALIB_MIXES.len() + Archetype::ALL.len());
    for (mi, mix) in CALIB_MIXES.iter().enumerate() {
        let mut gen = CalibGen::new(mix, mi as u64 + 1);
        segments.push((0..total).map(|_| gen.generate()).collect());
    }
    for (ai, arche) in Archetype::ALL.iter().enumerate() {
        let mut gen = PhaseGenerator::new(arche.center(), 0xCA11B + ai as u64);
        segments.push(
            (0..total)
                .map(|_| {
                    gen.next_instruction()
                        .expect("phase generators are unbounded")
                })
                .collect(),
        );
    }
    segments
}

/// Calibrates a surrogate for `cfg` by running the reference simulator
/// over the calibration battery in both modes and fitting the ridge heads.
fn calibrate(cfg: &CpuConfig, cal_n: u64) -> SurrogateModel {
    let power = PowerModel::default();
    let rate_events = rate_events();
    let segments = calib_segments(cal_n);
    let fit_mode = |mode: Mode| -> ModeModel {
        let mut rows: Vec<[f64; FEAT_DIMS]> = Vec::new();
        let mut y_cpi: Vec<f64> = Vec::new();
        let mut y_energy: Vec<f64> = Vec::new();
        let mut y_rates: Vec<Vec<f64>> = vec![Vec::new(); rate_events.len()];
        for insts in &segments {
            let mut sim = ClusterSim::new(cfg.clone());
            sim.set_mode(mode);
            let mut replay = VecTrace::new(insts.to_vec());
            sim.warm_up(&mut replay, CALIB_WARM);
            // The recency windows warm over the same prefix the simulator
            // warms over, then persist across the segment's intervals —
            // the exact protocol `Surrogate` runs at inference time.
            let mut recency = RecencyState::new();
            let mut warm = VecTrace::new(insts[..CALIB_WARM as usize].to_vec());
            sample_interval(&mut warm, CALIB_WARM, &mut recency);
            for k in 0..CALIB_INTERVALS {
                let start = (CALIB_WARM + k * cal_n) as usize;
                let end = start + cal_n as usize;
                let mut probe = VecTrace::new(insts[start..end].to_vec());
                let (f, _) = sample_interval(&mut probe, cal_n, &mut recency);
                let Some(r) = sim.run_interval(&mut replay, cal_n) else {
                    break;
                };
                let row = f.design_row(cfg, mode);
                // The CPI head fits the log-ratio of measured CPI to the
                // analytical estimate (the design row's last entry is
                // `ln t_total`). Prediction is analytic-first — the ridge
                // only corrects the analytical model's bias — so it stays
                // sane even in feature corners the battery never visits,
                // and the log target keeps errors relative, not absolute.
                let cpi = r.snapshot.cycles as f64 / r.instructions.max(1) as f64;
                y_cpi.push(cpi.max(1e-3).ln() - row[FEAT_DIMS - 1]);
                rows.push(row);
                for (ei, e) in rate_events.iter().enumerate() {
                    y_rates[ei].push(r.snapshot.get(*e));
                }
                let active = mode.active_clusters() as u64 * r.snapshot.cycles;
                let gated = (cfg.num_clusters - mode.active_clusters()) as u64 * r.snapshot.cycles;
                let structural = power.interval_energy(&r.snapshot, active, gated);
                y_energy.push((r.energy - structural) / r.snapshot.cycles as f64);
            }
        }
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let x = Matrix::from_rows(&refs);
        ModeModel {
            cpi: Ridge::fit(&x, &y_cpi, RIDGE_LAMBDA),
            energy_resid: Ridge::fit(&x, &y_energy, RIDGE_LAMBDA),
            rates: y_rates
                .iter()
                .map(|y| Ridge::fit(&x, y, RIDGE_LAMBDA))
                .collect(),
        }
    };
    SurrogateModel {
        hi: fit_mode(Mode::HighPerf),
        lo: fit_mode(Mode::LowPower),
        rate_events,
    }
}

/// Returns the calibrated surrogate model for `cfg`, fitting it on first
/// use and caching it process-wide. Calibration is deterministic, so a
/// racing double-fit produces identical models.
pub fn surrogate_model(cfg: &CpuConfig, interval_insts: u64) -> Arc<SurrogateModel> {
    let cal_n = calib_interval(interval_insts);
    let key = model_key(cfg, cal_n);
    if let Some(m) = model_cache().lock().unwrap().get(&key) {
        return Arc::clone(m);
    }
    let fitted = Arc::new(calibrate(cfg, cal_n));
    let mut cache = model_cache().lock().unwrap();
    Arc::clone(cache.entry(key).or_insert(fitted))
}

/// The learned fast-path backend.
///
/// Per interval it samples `4 × 96` instructions (skipping the rest),
/// extracts a phase signature, and predicts the interval's cycle count,
/// telemetry-rate vector, and energy from the calibrated ridge heads.
/// Mode-switch semantics mirror [`ClusterSim`]: switching to low-power
/// charges [`CpuConfig::transfer_uop_max`] transfer µops (the worst case
/// the paper's microcode flow allows) into the next interval.
pub struct Surrogate {
    cfg: CpuConfig,
    power: PowerModel,
    model: Arc<SurrogateModel>,
    mode: Mode,
    delayed_mode: Option<Mode>,
    pending_switches: u64,
    pending_transfer: u64,
    recency: RecencyState,
}

impl Surrogate {
    /// Builds (calibrating on first use per configuration) a surrogate
    /// backend for `cfg` at the given closed-loop interval length.
    ///
    /// # Panics
    /// Panics if the configuration fails validation.
    pub fn new(cfg: CpuConfig, interval_insts: u64) -> Surrogate {
        cfg.validate();
        let model = surrogate_model(&cfg, interval_insts);
        Surrogate {
            cfg,
            power: PowerModel::default(),
            model,
            mode: Mode::HighPerf,
            delayed_mode: None,
            pending_switches: 0,
            pending_transfer: 0,
            recency: RecencyState::new(),
        }
    }
}

impl SimBackend for Surrogate {
    fn choice(&self) -> BackendChoice {
        BackendChoice::Surrogate
    }

    fn mode(&self) -> Mode {
        self.mode
    }

    fn config(&self) -> &CpuConfig {
        &self.cfg
    }

    fn set_mode(&mut self, mode: Mode) {
        if mode == self.mode {
            return;
        }
        self.pending_switches += 1;
        if mode == Mode::LowPower {
            self.pending_transfer += self.cfg.transfer_uop_max as u64;
        }
        self.mode = mode;
    }

    fn request_mode(&mut self, mode: Mode, fault: ModeSwitchFault) -> bool {
        match fault {
            ModeSwitchFault::None => {
                self.set_mode(mode);
                true
            }
            ModeSwitchFault::Lost => false,
            ModeSwitchFault::DelayedOneWindow => {
                if mode != self.mode {
                    self.delayed_mode = Some(mode);
                }
                false
            }
        }
    }

    fn apply_delayed_mode(&mut self) -> Option<Mode> {
        let mode = self.delayed_mode.take()?;
        self.set_mode(mode);
        Some(mode)
    }

    fn warm_up(&mut self, source: &mut dyn TraceSource, n: u64) {
        // Warm the recency windows the same way calibration does:
        // sampled chunks spread over the warm-up span; the rest is
        // skipped.
        sample_interval(source, n, &mut self.recency);
    }

    fn run_interval(&mut self, source: &mut dyn TraceSource, n: u64) -> Option<IntervalResult> {
        let (feats, consumed) = sample_interval(source, n, &mut self.recency);
        if consumed == 0 {
            return None;
        }
        let head = self.model.head(self.mode);
        let x = feats.design_row(&self.cfg, self.mode);

        // Cycle count: analytical CPI (`ln t_total`, the design row's last
        // entry) times the learned log-residual, clamped to the
        // issue-width lower bound.
        let eff_width =
            (self.cfg.cluster_width * self.mode.active_clusters()).min(self.cfg.retire_width);
        let cpi = (head.cpi.predict(&x) + x[FEAT_DIMS - 1])
            .exp()
            .clamp(1.0 / eff_width as f64, 512.0);
        let mut cycles = ((cpi * consumed as f64).round() as u64)
            .max(consumed.div_ceil(eff_width as u64))
            .max(1);
        // Transfer µops from a pending hi→lo switch occupy issue slots.
        if self.pending_transfer > 0 {
            cycles += self
                .pending_transfer
                .div_ceil(self.cfg.cluster_width as u64);
        }

        // Synthesize the telemetry snapshot from predicted per-cycle rates.
        let mut bank = CounterBank::new();
        bank.add(Event::Cycles, cycles);
        bank.add(Event::InstRetired, consumed);
        let cyc_f = cycles as f64;
        for (e, r) in self.model.rate_events.iter().zip(&head.rates) {
            let count = (r.predict(&x).max(0.0) * cyc_f).round() as u64;
            if count > 0 {
                bank.add(*e, count);
            }
        }
        if self.pending_switches > 0 {
            bank.add(Event::ModeSwitches, self.pending_switches);
            self.pending_switches = 0;
        }
        if self.pending_transfer > 0 {
            bank.add(Event::TransferUops, self.pending_transfer);
            bank.add(Event::UopsIssued, self.pending_transfer);
            bank.add(Event::Cluster1UopsIssued, self.pending_transfer);
            self.pending_transfer = 0;
        }
        let snapshot = bank.snapshot_and_reset();

        // Energy: structural power-model estimate plus the learned residual.
        let active = self.mode.active_clusters() as u64 * cycles;
        let gated = (self.cfg.num_clusters - self.mode.active_clusters()) as u64 * cycles;
        let structural = self.power.interval_energy(&snapshot, active, gated);
        let mut energy = structural + head.energy_resid.predict(&x) * cyc_f;
        if !energy.is_finite() || energy <= 0.0 {
            energy = structural;
        }

        Some(IntervalResult {
            snapshot,
            energy,
            mode: self.mode,
            instructions: consumed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn short_trace(n: u64) -> VecTrace {
        let mut gen = CalibGen::new(&CALIB_MIXES[6], 42);
        VecTrace::new((0..n).map(|_| gen.generate()).collect())
    }

    #[test]
    fn backend_choice_round_trips_strings() {
        assert_eq!(
            "cycle_accurate".parse::<BackendChoice>().unwrap(),
            BackendChoice::CycleAccurate
        );
        assert_eq!(
            "cycle-accurate".parse::<BackendChoice>().unwrap(),
            BackendChoice::CycleAccurate
        );
        assert_eq!(
            "surrogate".parse::<BackendChoice>().unwrap(),
            BackendChoice::Surrogate
        );
        let err = "fast".parse::<BackendChoice>().unwrap_err();
        assert!(err.to_string().contains("fast"));
        assert_eq!(BackendChoice::Surrogate.to_string(), "surrogate");
        assert_eq!(BackendChoice::default(), BackendChoice::CycleAccurate);
        assert!(BackendChoice::CycleAccurate.is_reference());
        assert!(!BackendChoice::Surrogate.is_reference());
    }

    #[test]
    fn cycle_accurate_backend_matches_direct_sim() {
        let cfg = CpuConfig::skylake_scaled();
        let mut direct = ClusterSim::new(cfg.clone());
        let mut wrapped: Box<dyn SimBackend> = BackendChoice::CycleAccurate.build(cfg, 500);
        let mut t1 = short_trace(3_000);
        let mut t2 = t1.clone();
        direct.warm_up(&mut t1, 500);
        wrapped.warm_up(&mut t2, 500);
        loop {
            let a = direct.run_interval(&mut t1, 500);
            let b = wrapped.run_interval(&mut t2, 500);
            match (a, b) {
                (None, None) => break,
                (Some(a), Some(b)) => {
                    assert_eq!(a.snapshot.cycles, b.snapshot.cycles);
                    assert_eq!(a.instructions, b.instructions);
                    assert_eq!(a.energy.to_bits(), b.energy.to_bits());
                    assert_eq!(a.mode, b.mode);
                }
                (a, b) => panic!(
                    "divergent exhaustion: {:?} vs {:?}",
                    a.is_some(),
                    b.is_some()
                ),
            }
        }
    }

    #[test]
    fn surrogate_runs_and_is_deterministic() {
        let cfg = CpuConfig::skylake_scaled();
        let run = || {
            let mut s = Surrogate::new(cfg.clone(), 1_000);
            let mut t = short_trace(8_000);
            s.warm_up(&mut t, 1_000);
            let mut out = Vec::new();
            while let Some(r) = SimBackend::run_interval(&mut s, &mut t, 1_000) {
                out.push((r.snapshot.cycles, r.instructions, r.energy.to_bits()));
            }
            out
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert_eq!(a.len(), 7, "8k insts after 1k warmup in 1k intervals");
        for (cycles, insts, _) in &a {
            assert!(*cycles > 0 && *insts > 0);
        }
    }

    #[test]
    fn surrogate_mode_switch_mirrors_sim_semantics() {
        let cfg = CpuConfig::skylake_scaled();
        let mut s = Surrogate::new(cfg.clone(), 1_000);
        assert_eq!(s.mode(), Mode::HighPerf);
        // Lost request: no change.
        assert!(!s.request_mode(Mode::LowPower, ModeSwitchFault::Lost));
        assert_eq!(s.mode(), Mode::HighPerf);
        // Delayed: buffered, applied on drain.
        assert!(!s.request_mode(Mode::LowPower, ModeSwitchFault::DelayedOneWindow));
        assert_eq!(s.mode(), Mode::HighPerf);
        assert_eq!(s.apply_delayed_mode(), Some(Mode::LowPower));
        assert_eq!(s.mode(), Mode::LowPower);
        assert!(s.apply_delayed_mode().is_none());
        // The hi→lo switch charged transfer µops into the next interval.
        let mut t = short_trace(1_000);
        let r = SimBackend::run_interval(&mut s, &mut t, 1_000).unwrap();
        let transfers = r.snapshot.get(Event::TransferUops) * r.snapshot.cycles as f64;
        assert!(
            (transfers - cfg.transfer_uop_max as f64).abs() < 0.5,
            "transfers = {transfers}"
        );
        assert!(r.snapshot.get(Event::ModeSwitches) > 0.0);
    }

    #[test]
    fn surrogate_low_power_is_slower_and_cheaper() {
        let cfg = CpuConfig::skylake_scaled();
        // The fully-independent wide-ILP mix: the shape that benefits
        // most from the second cluster.
        let mut gen = CalibGen::new(&CALIB_MIXES[5], 7);
        let insts: Vec<Instruction> = (0..12_000).map(|_| gen.generate()).collect();
        let run = |mode: Mode| {
            let mut s = Surrogate::new(cfg.clone(), 1_000);
            SimBackend::set_mode(&mut s, mode);
            s.pending_switches = 0;
            s.pending_transfer = 0;
            let mut t = VecTrace::new(insts.clone());
            s.warm_up(&mut t, 1_000);
            let mut cycles = 0u64;
            let mut energy = 0.0;
            while let Some(r) = SimBackend::run_interval(&mut s, &mut t, 1_000) {
                cycles += r.snapshot.cycles;
                energy += r.energy;
            }
            (cycles, energy)
        };
        let (hi_cycles, hi_energy) = run(Mode::HighPerf);
        let (lo_cycles, lo_energy) = run(Mode::LowPower);
        assert!(
            lo_cycles > hi_cycles,
            "ILP code should slow down on one cluster: {lo_cycles} vs {hi_cycles}"
        );
        assert!(
            lo_energy < hi_energy,
            "gating should save energy: {lo_energy} vs {hi_energy}"
        );
    }

    #[test]
    fn surrogate_model_cache_hits_for_same_config() {
        let cfg = CpuConfig::skylake_scaled();
        let a = surrogate_model(&cfg, 2_000);
        let b = surrogate_model(&cfg, 2_000);
        assert!(Arc::ptr_eq(&a, &b), "second build must reuse the cache");
        // Interval lengths above the calibration clamp share one model.
        let c = surrogate_model(&cfg, 50_000);
        let d = surrogate_model(&cfg, 99_000);
        assert!(Arc::ptr_eq(&c, &d));
        // A different machine gets a different calibration.
        let mut skewed = cfg.clone();
        skewed.mem_latency += 40;
        let e = surrogate_model(&skewed, 2_000);
        assert!(!Arc::ptr_eq(&a, &e));
    }

    #[test]
    fn sample_interval_consumes_full_budget() {
        let mut recency = RecencyState::new();
        let mut t = short_trace(10_000);
        let (_, consumed) = sample_interval(&mut t, 4_000, &mut recency);
        assert_eq!(consumed, 4_000);
        assert_eq!(t.remaining_hint(), Some(6_000));
        // Short trace: consumes what's left.
        let mut t = short_trace(300);
        let (_, consumed) = sample_interval(&mut t, 4_000, &mut recency);
        assert_eq!(consumed, 300);
        // Small interval: reads everything.
        let mut t = short_trace(10_000);
        let (_, consumed) = sample_interval(&mut t, 100, &mut recency);
        assert_eq!(consumed, 100);
    }

    #[test]
    fn surrogate_cpi_tracks_reference_on_calibration_battery() {
        // Sanity check on the fused model itself: per-mix CPI error vs.
        // the reference sim on held-out intervals of the same mixes.
        let cfg = CpuConfig::skylake_scaled();
        let n = 1_000u64;
        let model = surrogate_model(&cfg, n);
        for (mi, mix) in CALIB_MIXES.iter().enumerate() {
            let mut gen = CalibGen::new(mix, 1_000 + mi as u64);
            let insts: Vec<Instruction> = (0..CALIB_WARM + 8 * n).map(|_| gen.generate()).collect();
            let mut sim = ClusterSim::new(cfg.clone());
            let mut replay = VecTrace::new(insts.clone());
            sim.warm_up(&mut replay, CALIB_WARM);
            let mut recency = RecencyState::new();
            let mut warm = VecTrace::new(insts[..CALIB_WARM as usize].to_vec());
            sample_interval(&mut warm, CALIB_WARM, &mut recency);
            let mut ref_cycles = 0u64;
            let mut pred_cycles = 0.0f64;
            for k in 0..8 {
                let start = (CALIB_WARM + k * n) as usize;
                let mut probe = VecTrace::new(insts[start..start + n as usize].to_vec());
                let (f, _) = sample_interval(&mut probe, n, &mut recency);
                let Some(r) = sim.run_interval(&mut replay, n) else {
                    break;
                };
                ref_cycles += r.snapshot.cycles;
                let x = f.design_row(&cfg, Mode::HighPerf);
                pred_cycles += (model.head(Mode::HighPerf).cpi.predict(&x) + x[FEAT_DIMS - 1])
                    .exp()
                    .max(0.125)
                    * n as f64;
            }
            let ratio = pred_cycles / ref_cycles as f64;
            assert!(
                (0.5..=2.0).contains(&ratio),
                "mix {mi}: predicted/reference cycle ratio {ratio}"
            );
        }
    }
}
