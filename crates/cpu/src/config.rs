//! CPU configuration.

/// Instruction steering policy between clusters in high-performance mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SteerPolicy {
    /// Producer-affinity steering with pressure-based load balancing
    /// (the design's default).
    #[default]
    DependenceAware,
    /// Strict alternation, ignoring dependences (ablation baseline).
    RoundRobin,
}

/// Full parameterization of the clustered core.
///
/// The default, [`CpuConfig::skylake_scaled`], models the paper's machine:
/// two 4-wide out-of-order clusters over a Skylake-like memory hierarchy,
/// at 2.0 GHz peak 8-wide issue (§5: "CPU: 2.0 GHz, 8-Wide, 16,000 MIPs").
#[derive(Debug, Clone, PartialEq)]
pub struct CpuConfig {
    /// Issue width of one cluster.
    pub cluster_width: u32,
    /// Number of clusters (the paper's design has 2).
    pub num_clusters: u32,
    /// Reorder-buffer capacity (in-flight instruction window).
    pub rob_size: usize,
    /// Store-queue capacity.
    pub store_queue_size: usize,
    /// Extra cycles for an operand forwarded between clusters.
    pub inter_cluster_penalty: u64,
    /// Front-end redirect penalty after a mispredicted branch, cycles.
    pub mispredict_penalty: u64,
    /// L1 instruction cache bytes / ways.
    pub l1i_bytes: usize,
    /// L1I associativity.
    pub l1i_ways: usize,
    /// µop cache bytes / ways (indexed by instruction line).
    pub uop_cache_bytes: usize,
    /// µop cache associativity.
    pub uop_cache_ways: usize,
    /// L1 data cache bytes.
    pub l1d_bytes: usize,
    /// L1D associativity.
    pub l1d_ways: usize,
    /// Unified L2 bytes.
    pub l2_bytes: usize,
    /// L2 associativity.
    pub l2_ways: usize,
    /// Last-level cache bytes.
    pub llc_bytes: usize,
    /// LLC associativity.
    pub llc_ways: usize,
    /// ITLB entries.
    pub itlb_entries: usize,
    /// DTLB entries.
    pub dtlb_entries: usize,
    /// Load-to-use latency on an L1D hit.
    pub l1d_latency: u64,
    /// Load-to-use latency on an L2 hit.
    pub l2_latency: u64,
    /// Load-to-use latency on an LLC hit.
    pub llc_latency: u64,
    /// Load-to-use latency on a memory access.
    pub mem_latency: u64,
    /// Page-walk penalty on a TLB miss, cycles.
    pub tlb_miss_penalty: u64,
    /// Decode bubble when the µop cache misses but L1I hits, cycles.
    pub decode_bubble: u64,
    /// gshare index bits.
    pub gshare_bits: u32,
    /// BTB index bits.
    pub btb_bits: u32,
    /// Retire width (instructions per cycle).
    pub retire_width: u32,
    /// Cycles to drain + microcode per transferred register on a
    /// high-performance → low-power switch (per 4 transfer µops, one
    /// issue cycle on the surviving cluster).
    pub transfer_uop_max: u32,
    /// Steering policy between clusters.
    pub steer_policy: SteerPolicy,
    /// Enable the L1D next-line stream prefetcher (idealized: the next
    /// sequential line is installed on every demand miss). Skylake-class
    /// cores hide sequential-stream cold misses this way; without it,
    /// streaming kernels become ROB-bound on compulsory misses.
    pub stream_prefetcher: bool,
}

impl CpuConfig {
    /// The paper's machine: two 4-wide clusters, Skylake-like hierarchy.
    pub fn skylake_scaled() -> CpuConfig {
        CpuConfig {
            cluster_width: 4,
            num_clusters: 2,
            rob_size: 224,
            store_queue_size: 56,
            inter_cluster_penalty: 2,
            mispredict_penalty: 14,
            l1i_bytes: 32 * 1024,
            l1i_ways: 8,
            uop_cache_bytes: 8 * 1024,
            uop_cache_ways: 8,
            l1d_bytes: 32 * 1024,
            l1d_ways: 8,
            l2_bytes: 512 * 1024,
            l2_ways: 8,
            llc_bytes: 4 * 1024 * 1024,
            llc_ways: 16,
            itlb_entries: 64,
            dtlb_entries: 64,
            l1d_latency: 4,
            l2_latency: 14,
            llc_latency: 44,
            mem_latency: 180,
            tlb_miss_penalty: 30,
            decode_bubble: 2,
            gshare_bits: 13,
            btb_bits: 12,
            retire_width: 8,
            transfer_uop_max: 32,
            steer_policy: SteerPolicy::DependenceAware,
            stream_prefetcher: true,
        }
    }

    /// Total issue width with all clusters active.
    pub fn total_width(&self) -> u32 {
        self.cluster_width * self.num_clusters
    }

    /// Validates the configuration, panicking with a description of the
    /// first problem found.
    ///
    /// # Panics
    /// Panics if any structural parameter is zero or inconsistent.
    pub fn validate(&self) {
        assert!(self.cluster_width >= 1, "cluster width must be positive");
        assert!(self.num_clusters >= 1, "need at least one cluster");
        assert!(self.rob_size >= 8, "ROB too small");
        assert!(self.store_queue_size >= 1, "store queue too small");
        assert!(self.retire_width >= 1, "retire width must be positive");
        assert!(
            self.mem_latency >= self.llc_latency
                && self.llc_latency >= self.l2_latency
                && self.l2_latency >= self.l1d_latency,
            "memory latencies must be monotone"
        );
    }
}

impl Default for CpuConfig {
    fn default() -> CpuConfig {
        CpuConfig::skylake_scaled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_the_papers_machine() {
        let c = CpuConfig::default();
        assert_eq!(c.total_width(), 8);
        assert_eq!(c.cluster_width, 4);
        assert_eq!(c.num_clusters, 2);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn validate_rejects_inverted_latencies() {
        let c = CpuConfig {
            l1d_latency: 100,
            ..CpuConfig::default()
        };
        c.validate();
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn validate_rejects_zero_width() {
        let c = CpuConfig {
            cluster_width: 0,
            ..CpuConfig::default()
        };
        c.validate();
    }
}
