//! Event-based power/energy model.
//!
//! The paper uses the Skylake event-based power model of Haj-Yihia et al.
//! (§3), which predicts power from event counts. We implement the same
//! structure: energy = Σ (event count × per-event energy) + static power ×
//! cycles, with per-cluster static power so that gating Cluster 2 removes
//! its static (clock tree + leakage at gated clocks) contribution.
//!
//! Constants are calibrated so that the low-power mode consumes ≈35% less
//! average power than the high-performance mode across the workload
//! corpus, matching the paper's headline calibration ("low-power mode
//! consumes 35% less power", §3).

use psca_telemetry::{Event, IntervalSnapshot};

/// Per-event energy weights and static power, in arbitrary energy units
/// per cycle / per event (only ratios matter for PPW).
#[derive(Debug, Clone, PartialEq)]
pub struct PowerModel {
    /// Static power of the always-on uncore, per cycle.
    pub uncore_static: f64,
    /// Static power of one active cluster, per cycle.
    pub cluster_static: f64,
    /// Residual power of a clock-gated cluster, per cycle.
    pub gated_cluster_static: f64,
    /// Energy per issued µop.
    pub uop_energy: f64,
    /// Extra energy per FP/SIMD µop.
    pub fp_extra: f64,
    /// Energy per L1D access.
    pub l1d_energy: f64,
    /// Energy per L2 access.
    pub l2_energy: f64,
    /// Energy per LLC access.
    pub llc_energy: f64,
    /// Energy per DRAM access.
    pub mem_energy: f64,
    /// Energy per branch-mispredict recovery.
    pub flush_energy: f64,
    /// Energy per mode-switch transfer µop.
    pub transfer_energy: f64,
}

impl PowerModel {
    /// The calibrated Skylake-like model.
    pub fn skylake_scaled() -> PowerModel {
        PowerModel {
            uncore_static: 0.55,
            cluster_static: 1.05,
            gated_cluster_static: 0.06,
            uop_energy: 0.30,
            fp_extra: 0.12,
            l1d_energy: 0.12,
            l2_energy: 0.55,
            llc_energy: 1.4,
            mem_energy: 6.0,
            flush_energy: 3.0,
            transfer_energy: 0.8,
        }
    }

    /// Energy consumed over one interval, given its telemetry snapshot and
    /// the number of clusters active / gated during it.
    ///
    /// `active_cluster_cycles` and `gated_cluster_cycles` are cluster-cycle
    /// products (a cluster active for the full interval contributes
    /// `snapshot.cycles`).
    pub fn interval_energy(
        &self,
        snap: &IntervalSnapshot,
        active_cluster_cycles: u64,
        gated_cluster_cycles: u64,
    ) -> f64 {
        let cyc = snap.cycles as f64;
        // Per-cycle normalized counters → de-normalize to counts.
        let count = |e: Event| snap.get(e) * cyc;
        let fp_ops = count(Event::FpAddOps)
            + count(Event::FpMulOps)
            + count(Event::FpFmaOps)
            + count(Event::FpDivOps)
            + count(Event::SimdOps);
        let mut energy = 0.0;
        energy += self.uncore_static * cyc;
        energy += self.cluster_static * active_cluster_cycles as f64;
        energy += self.gated_cluster_static * gated_cluster_cycles as f64;
        energy += self.uop_energy * count(Event::UopsIssued);
        energy += self.fp_extra * fp_ops;
        energy += self.l1d_energy * (count(Event::L1dReads) + count(Event::L1dWrites));
        energy += self.l2_energy * (count(Event::L2Hits) + count(Event::L2Misses));
        energy += self.llc_energy * (count(Event::LlcHits) + count(Event::LlcMisses));
        energy += self.mem_energy * count(Event::LlcMisses);
        energy += self.flush_energy * count(Event::BranchMispredicts);
        energy += self.transfer_energy * count(Event::TransferUops);
        energy
    }
}

impl Default for PowerModel {
    fn default() -> PowerModel {
        PowerModel::skylake_scaled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psca_telemetry::CounterBank;

    fn snap_with(cycles: u64, insts: u64, fill: &[(Event, u64)]) -> IntervalSnapshot {
        let mut bank = CounterBank::new();
        bank.add(Event::Cycles, cycles);
        bank.add(Event::InstRetired, insts);
        for &(e, n) in fill {
            bank.add(e, n);
        }
        bank.snapshot_and_reset()
    }

    #[test]
    fn energy_is_positive_and_monotone_in_activity() {
        let m = PowerModel::default();
        let quiet = snap_with(1000, 100, &[(Event::UopsIssued, 100)]);
        let busy = snap_with(
            1000,
            100,
            &[(Event::UopsIssued, 4000), (Event::LlcMisses, 100)],
        );
        let e_quiet = m.interval_energy(&quiet, 2000, 0);
        let e_busy = m.interval_energy(&busy, 2000, 0);
        assert!(e_quiet > 0.0);
        assert!(e_busy > e_quiet);
    }

    #[test]
    fn gating_a_cluster_reduces_energy() {
        let m = PowerModel::default();
        let s = snap_with(1000, 1000, &[(Event::UopsIssued, 1000)]);
        let both = m.interval_energy(&s, 2000, 0);
        let gated = m.interval_energy(&s, 1000, 1000);
        assert!(gated < both);
        // Static saving alone should be meaningful but < 50%.
        let saving = (both - gated) / both;
        assert!(saving > 0.15 && saving < 0.6, "saving = {saving}");
    }

    #[test]
    fn transfer_uops_cost_energy() {
        let m = PowerModel::default();
        let without = snap_with(100, 100, &[]);
        let with = snap_with(100, 100, &[(Event::TransferUops, 32)]);
        assert!(m.interval_energy(&with, 100, 100) > m.interval_energy(&without, 100, 100));
    }
}
