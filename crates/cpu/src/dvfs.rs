//! Dynamic voltage and frequency scaling (DVFS).
//!
//! The paper positions cluster gating as *complementary* to DVFS: "cluster
//! gating is a complementary technique that can further reduce power at
//! V_min" (§2.1). This module provides a first-order DVFS model so that
//! claim can be measured (`repro -- ablate-dvfs`):
//!
//! - an [`OperatingPoint`] ladder with voltage scaling;
//! - a first-order retiming model: core-bound cycles contract with
//!   frequency while memory time (in nanoseconds) does not, so
//!   memory-bound workloads gain little from higher frequency;
//! - energy scaling: dynamic energy ∝ V², static power ∝ V·f at constant
//!   workload;
//! - an ondemand-style [`DvfsGovernor`] that picks the lowest point
//!   meeting a utilization target.

use crate::sim::IntervalResult;
use psca_telemetry::Event;

/// One voltage/frequency operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperatingPoint {
    /// Core frequency in GHz.
    pub freq_ghz: f64,
    /// Supply voltage in volts.
    pub voltage: f64,
}

/// A DVFS model: a ladder of operating points with a designated reference
/// point at which the simulator's cycle counts and energies were produced.
#[derive(Debug, Clone, PartialEq)]
pub struct DvfsModel {
    points: Vec<OperatingPoint>,
    reference: usize,
    /// Memory latency at the reference point, cycles (used to estimate the
    /// memory-bound share of an interval).
    mem_latency_cycles: f64,
}

impl DvfsModel {
    /// A Skylake-like five-point ladder; the simulator's native point
    /// (2.0 GHz @ 1.00 V) is the reference.
    pub fn skylake_scaled() -> DvfsModel {
        DvfsModel {
            points: vec![
                OperatingPoint {
                    freq_ghz: 0.8,
                    voltage: 0.70,
                },
                OperatingPoint {
                    freq_ghz: 1.2,
                    voltage: 0.78,
                },
                OperatingPoint {
                    freq_ghz: 1.6,
                    voltage: 0.88,
                },
                OperatingPoint {
                    freq_ghz: 2.0,
                    voltage: 1.00,
                },
                OperatingPoint {
                    freq_ghz: 2.4,
                    voltage: 1.12,
                },
            ],
            reference: 3,
            mem_latency_cycles: 180.0,
        }
    }

    /// The operating-point ladder, slowest first.
    pub fn points(&self) -> &[OperatingPoint] {
        &self.points
    }

    /// Index of the minimum-voltage point (V_min).
    pub fn vmin(&self) -> usize {
        0
    }

    /// Index of the reference point.
    pub fn reference(&self) -> usize {
        self.reference
    }

    /// Estimated memory-bound share of an interval: the fraction of its
    /// cycles attributable to LLC misses at the reference point.
    pub fn memory_share(&self, r: &IntervalResult) -> f64 {
        self.memory_share_raw(r.snapshot.get(Event::LlcMisses))
    }

    /// [`DvfsModel::memory_share`] from a per-cycle LLC miss rate.
    pub fn memory_share_raw(&self, llc_misses_per_cycle: f64) -> f64 {
        // Overlap factor: misses rarely serialize fully; charge half.
        (0.5 * llc_misses_per_cycle * self.mem_latency_cycles).clamp(0.0, 0.95)
    }

    /// Projects an interval simulated at the reference point onto another
    /// operating point, returning `(time_ns, energy)`.
    ///
    /// Core time contracts with frequency; memory time is constant in
    /// wall-clock. Dynamic energy scales with V²; static energy with
    /// V × time.
    ///
    /// # Panics
    /// Panics if `point` is out of range.
    pub fn project(&self, r: &IntervalResult, point: usize) -> (f64, f64) {
        self.project_raw(
            r.snapshot.cycles,
            r.snapshot.get(Event::LlcMisses),
            r.energy,
            point,
        )
    }

    /// [`DvfsModel::project`] from raw interval quantities (cycles, LLC
    /// miss rate per cycle, and reference-point energy).
    ///
    /// # Panics
    /// Panics if `point` is out of range.
    pub fn project_raw(
        &self,
        cycles: u64,
        llc_misses_per_cycle: f64,
        energy: f64,
        point: usize,
    ) -> (f64, f64) {
        assert!(point < self.points.len(), "operating point out of range");
        let p = self.points[point];
        let pref = self.points[self.reference];
        let cycles = cycles as f64;
        let m = self.memory_share_raw(llc_misses_per_cycle);
        let time_ref_ns = cycles / pref.freq_ghz;
        let core_ns = (1.0 - m) * time_ref_ns * (pref.freq_ghz / p.freq_ghz);
        let mem_ns = m * time_ref_ns;
        let time_ns = core_ns + mem_ns;
        // Split reference energy into dynamic (per-op) and static (per-ns)
        // halves, then rescale each.
        let dyn_ref = 0.6 * energy;
        let stat_ref = 0.4 * energy;
        let v_ratio = p.voltage / pref.voltage;
        let dynamic = dyn_ref * v_ratio * v_ratio;
        let stat = stat_ref * v_ratio * (time_ns / time_ref_ns);
        (time_ns, dynamic + stat)
    }
}

impl Default for DvfsModel {
    fn default() -> DvfsModel {
        DvfsModel::skylake_scaled()
    }
}

/// An ondemand-style governor: steps up when projected slowdown at the
/// current point exceeds the tolerance, steps down when there is slack.
#[derive(Debug, Clone)]
pub struct DvfsGovernor {
    model: DvfsModel,
    current: usize,
    /// Maximum tolerated slowdown vs. the reference point (e.g. 0.10).
    slack: f64,
}

impl DvfsGovernor {
    /// Creates a governor starting at the reference point.
    pub fn new(model: DvfsModel, slack: f64) -> DvfsGovernor {
        let current = model.reference();
        DvfsGovernor {
            model,
            current,
            slack,
        }
    }

    /// Current operating-point index.
    pub fn current(&self) -> usize {
        self.current
    }

    /// Observes an interval and picks the next operating point: the
    /// slowest point whose projected time stays within `1 + slack` of the
    /// reference-point time.
    pub fn step(&mut self, r: &IntervalResult) -> usize {
        let (t_ref, _) = self.model.project(r, self.model.reference());
        let mut chosen = self.model.points().len() - 1;
        for p in 0..self.model.points().len() {
            let (t, _) = self.model.project(r, p);
            if t <= t_ref * (1.0 + self.slack) {
                chosen = p;
                break;
            }
        }
        self.current = chosen;
        chosen
    }

    /// The model the governor drives.
    pub fn model(&self) -> &DvfsModel {
        &self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClusterSim, CpuConfig, Mode};
    use psca_workloads::{Archetype, PhaseGenerator};

    fn interval(a: Archetype, mode: Mode) -> IntervalResult {
        let mut sim = ClusterSim::new(CpuConfig::skylake_scaled());
        sim.set_mode(mode);
        let mut gen = PhaseGenerator::new(a.center(), 11);
        sim.warm_up(&mut gen, 20_000);
        sim.run_interval(&mut gen, 20_000).unwrap()
    }

    #[test]
    fn reference_projection_is_identity() {
        let m = DvfsModel::skylake_scaled();
        let r = interval(Archetype::Balanced, Mode::HighPerf);
        let (t, e) = m.project(&r, m.reference());
        assert!((t - r.snapshot.cycles as f64 / 2.0).abs() < 1e-6);
        assert!((e - r.energy).abs() < 1e-6 * r.energy);
    }

    #[test]
    fn lower_points_save_energy_and_cost_time() {
        let m = DvfsModel::skylake_scaled();
        let r = interval(Archetype::ScalarIlp, Mode::HighPerf);
        let (t_ref, e_ref) = m.project(&r, m.reference());
        let (t_min, e_min) = m.project(&r, m.vmin());
        assert!(t_min > t_ref, "V_min must be slower for compute-bound code");
        assert!(e_min < e_ref, "V_min must save energy");
    }

    #[test]
    fn memory_bound_code_tolerates_low_frequency() {
        let m = DvfsModel::skylake_scaled();
        let compute = interval(Archetype::ScalarIlp, Mode::HighPerf);
        let membound = interval(Archetype::MemBound, Mode::HighPerf);
        let slowdown = |r: &IntervalResult| {
            let (t_ref, _) = m.project(r, m.reference());
            let (t_min, _) = m.project(r, m.vmin());
            t_min / t_ref
        };
        assert!(
            slowdown(&membound) < slowdown(&compute),
            "memory-bound code should lose less at V_min: {} vs {}",
            slowdown(&membound),
            slowdown(&compute)
        );
    }

    #[test]
    fn governor_downclocks_memory_bound_phases() {
        let m = DvfsModel::skylake_scaled();
        let mut gov = DvfsGovernor::new(m, 0.10);
        let membound = interval(Archetype::MemBound, Mode::HighPerf);
        let p_mem = gov.step(&membound);
        let compute = interval(Archetype::ScalarIlp, Mode::HighPerf);
        let p_cpu = gov.step(&compute);
        assert!(
            p_mem <= p_cpu,
            "governor should downclock memory-bound phases ({p_mem} vs {p_cpu})"
        );
        assert_eq!(p_cpu, gov.model().reference(), "compute stays at reference");
    }

    #[test]
    fn gating_still_saves_energy_at_vmin() {
        // The §2.1 complementarity claim: at V_min, the gated configuration
        // still consumes less energy than the ungated one on gateable code.
        let m = DvfsModel::skylake_scaled();
        let hi = interval(Archetype::DepChain, Mode::HighPerf);
        let lo = interval(Archetype::DepChain, Mode::LowPower);
        let (_, e_hi) = m.project(&hi, m.vmin());
        let (_, e_lo) = m.project(&lo, m.vmin());
        // Same instruction count in both intervals.
        assert!(
            e_lo < e_hi,
            "cluster gating must still save energy at V_min: {e_lo} vs {e_hi}"
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_point_rejected() {
        let m = DvfsModel::skylake_scaled();
        let r = interval(Archetype::Balanced, Mode::HighPerf);
        let _ = m.project(&r, 99);
    }
}
