//! Branch direction and target prediction.

/// A gshare direction predictor: global history XOR PC indexes a table of
/// 2-bit saturating counters.
///
/// # Examples
///
/// ```
/// use psca_cpu::GsharePredictor;
///
/// let mut bp = GsharePredictor::new(12);
/// // A always-taken branch becomes predictable once the global history
/// // saturates and its counter trains.
/// for _ in 0..32 {
///     let _ = bp.predict_and_update(0x400000, true);
/// }
/// assert!(bp.predict_and_update(0x400000, true));
/// ```
#[derive(Debug, Clone)]
pub struct GsharePredictor {
    counters: Vec<u8>,
    history: u64,
    bits: u32,
}

impl GsharePredictor {
    /// Creates a predictor with a `2^bits`-entry counter table.
    ///
    /// # Panics
    /// Panics if `bits` is 0 or greater than 24.
    pub fn new(bits: u32) -> GsharePredictor {
        assert!((1..=24).contains(&bits), "gshare bits out of range: {bits}");
        GsharePredictor {
            counters: vec![1; 1 << bits], // weakly not-taken
            history: 0,
            bits,
        }
    }

    /// Predicts the branch at `pc`, then updates with the resolved
    /// `outcome`. Returns whether the *prediction was correct*.
    pub fn predict_and_update(&mut self, pc: u64, outcome: bool) -> bool {
        let mask = (1u64 << self.bits) - 1;
        let idx = (((pc >> 2) ^ self.history) & mask) as usize;
        let predicted = self.counters[idx] >= 2;
        // Update saturating counter.
        if outcome {
            if self.counters[idx] < 3 {
                self.counters[idx] += 1;
            }
        } else if self.counters[idx] > 0 {
            self.counters[idx] -= 1;
        }
        self.history = ((self.history << 1) | outcome as u64) & mask;
        predicted == outcome
    }

    /// Clears learned state.
    pub fn reset(&mut self) {
        self.counters.fill(1);
        self.history = 0;
    }
}

/// A direct-mapped branch target buffer.
///
/// Taken branches whose target is absent (or stale) incur a front-end
/// redirect even when the direction was predicted correctly.
#[derive(Debug, Clone)]
pub struct Btb {
    entries: Vec<(u64, u64)>, // (pc tag, target); pc == u64::MAX invalid
    bits: u32,
}

impl Btb {
    /// Creates a BTB with `2^bits` entries.
    ///
    /// # Panics
    /// Panics if `bits` is 0 or greater than 20.
    pub fn new(bits: u32) -> Btb {
        assert!((1..=20).contains(&bits), "BTB bits out of range: {bits}");
        Btb {
            entries: vec![(u64::MAX, 0); 1 << bits],
            bits,
        }
    }

    /// Looks up (and installs) the target for a taken branch; returns
    /// whether the stored target matched.
    pub fn lookup_and_update(&mut self, pc: u64, target: u64) -> bool {
        let mask = (1u64 << self.bits) - 1;
        let idx = ((pc >> 2) & mask) as usize;
        let hit = self.entries[idx] == (pc, target);
        self.entries[idx] = (pc, target);
        hit
    }

    /// Clears all entries.
    pub fn reset(&mut self) {
        self.entries.fill((u64::MAX, 0));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gshare_learns_biased_branches() {
        let mut bp = GsharePredictor::new(10);
        let mut correct = 0;
        for i in 0..1000 {
            if bp.predict_and_update(0x4000 + (i % 4) * 8, true) {
                correct += 1;
            }
        }
        assert!(correct > 950, "correct = {correct}");
    }

    #[test]
    fn gshare_learns_short_periodic_patterns() {
        let mut bp = GsharePredictor::new(12);
        let mut correct_late = 0;
        for i in 0..4000u64 {
            let outcome = (i / 3) % 2 == 0; // the phase generator's pattern
            let ok = bp.predict_and_update(0x4000, outcome);
            if i >= 2000 && ok {
                correct_late += 1;
            }
        }
        assert!(correct_late > 1700, "late correct = {correct_late}");
    }

    #[test]
    fn gshare_cannot_learn_random() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let mut bp = GsharePredictor::new(12);
        let mut correct = 0;
        let n = 4000;
        for _ in 0..n {
            if bp.predict_and_update(0x4000, rng.gen()) {
                correct += 1;
            }
        }
        let acc = correct as f64 / n as f64;
        assert!(acc < 0.65, "accuracy {acc} should be near chance");
    }

    #[test]
    fn btb_hits_on_stable_targets() {
        let mut btb = Btb::new(8);
        assert!(!btb.lookup_and_update(0x4000, 0x5000));
        assert!(btb.lookup_and_update(0x4000, 0x5000));
        assert!(!btb.lookup_and_update(0x4000, 0x6000)); // target changed
    }

    #[test]
    fn reset_clears_state() {
        let mut bp = GsharePredictor::new(8);
        for _ in 0..100 {
            bp.predict_and_update(0x10, true);
        }
        bp.reset();
        let mut btb = Btb::new(4);
        btb.lookup_and_update(0x10, 0x20);
        btb.reset();
        assert!(!btb.lookup_and_update(0x10, 0x20));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn gshare_zero_bits_rejected() {
        let _ = GsharePredictor::new(0);
    }
}
