//! The clustered out-of-order core simulator.
//!
//! [`ClusterSim`] is a trace-driven, cycle-level, dataflow-limited model:
//! each instruction is scheduled onto a finite reorder-buffer window with
//! per-cluster issue-width accounting, register dataflow (including an
//! inter-cluster forwarding penalty), structural cache/TLB/predictor
//! models, and in-order retirement. The model is O(1) per instruction, so
//! the paper's full experiment grid runs in minutes, while width
//! sensitivity — the property every experiment depends on — emerges from
//! each workload's dependence structure rather than from a statistical
//! shortcut.

use crate::bpred::{Btb, GsharePredictor};
use crate::cache::Cache;
use crate::config::CpuConfig;
use crate::power::PowerModel;
use crate::tlb::Tlb;
use psca_telemetry::{CounterBank, Event, IntervalSnapshot};
use psca_trace::{Instruction, OpClass, TraceSource, NUM_ARCH_REGS};
use std::sync::Arc;

/// Observability handles resolved once at simulator construction so the
/// per-interval close never takes the registry lock (ISSUE 4: the old
/// code re-looked-up `series("cpu.sim.ipc")` every window). When
/// `PSCA_OBS=0`/`off` the whole struct is `None` on the simulator and
/// every sim-level metric call collapses to a single pointer test.
#[derive(Debug, Clone)]
struct SimObs {
    instructions: Arc<psca_obs::Counter>,
    cycles: Arc<psca_obs::Counter>,
    intervals: Arc<psca_obs::Counter>,
    cycles_low_power: Arc<psca_obs::Counter>,
    mode_switches: Arc<psca_obs::Counter>,
    transfer_uops: Arc<psca_obs::Counter>,
    switch_lost: Arc<psca_obs::Counter>,
    switch_delayed: Arc<psca_obs::Counter>,
    ipc: psca_obs::SeriesHandle,
    low_power: psca_obs::SeriesHandle,
}

impl SimObs {
    fn resolve() -> Option<SimObs> {
        if !sim_obs_enabled() {
            return None;
        }
        Some(SimObs {
            instructions: psca_obs::counter("cpu.sim.instructions"),
            cycles: psca_obs::counter("cpu.sim.cycles"),
            intervals: psca_obs::counter("cpu.sim.intervals"),
            cycles_low_power: psca_obs::counter("cpu.sim.cycles_low_power"),
            mode_switches: psca_obs::counter("cpu.mode_switches"),
            transfer_uops: psca_obs::counter("cpu.transfer_uops"),
            switch_lost: psca_obs::counter("cpu.mode_switch.lost"),
            switch_delayed: psca_obs::counter("cpu.mode_switch.delayed"),
            ipc: psca_obs::series_handle("cpu.sim.ipc"),
            low_power: psca_obs::series_handle("cpu.sim.low_power"),
        })
    }
}

/// Whether sim-level observability is on (default) or disabled via
/// `PSCA_OBS=0`/`off`. Read once per process: simulators are constructed
/// in inner experiment loops and `std::env::var` is not cheap.
fn sim_obs_enabled() -> bool {
    static ENABLED: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ENABLED.get_or_init(|| {
        !matches!(
            std::env::var("PSCA_OBS").as_deref(),
            Ok("0") | Ok("off") | Ok("false")
        )
    })
}

/// Cluster configuration of the core (§3, Figure 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// Both clusters active: 8-wide issue.
    HighPerf,
    /// Cluster 2 clock-gated: 4-wide issue, ~35% less power.
    LowPower,
}

impl Mode {
    /// Number of active clusters in this mode (for the 2-cluster design).
    pub fn active_clusters(self) -> u32 {
        match self {
            Mode::HighPerf => 2,
            Mode::LowPower => 1,
        }
    }
}

impl std::fmt::Display for Mode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Mode::HighPerf => f.write_str("high-performance"),
            Mode::LowPower => f.write_str("low-power"),
        }
    }
}

/// A fault applied to one mode-switch request at the actuation port
/// (the controller → cluster-gating interface). Injected by the chaos
/// harness; `None` is the healthy path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ModeSwitchFault {
    /// The request is applied normally.
    #[default]
    None,
    /// The request is dropped; the configuration does not change.
    Lost,
    /// The request is buffered and applied at the next
    /// [`ClusterSim::apply_delayed_mode`] call (one window late).
    DelayedOneWindow,
}

/// Result of simulating one telemetry interval.
#[derive(Debug, Clone)]
pub struct IntervalResult {
    /// Normalized telemetry for the interval.
    pub snapshot: IntervalSnapshot,
    /// Energy consumed (arbitrary units; ratios form PPW).
    pub energy: f64,
    /// Mode the interval *ended* in.
    pub mode: Mode,
    /// Instructions actually simulated (may be short at end of trace).
    pub instructions: u64,
}

impl IntervalResult {
    /// Instructions per cycle over the interval.
    pub fn ipc(&self) -> f64 {
        self.snapshot.ipc()
    }

    /// Performance per energy: instructions per energy unit; 0.0 when the
    /// interval recorded no (or non-finite) energy.
    pub fn ppw(&self) -> f64 {
        if !self.energy.is_finite() || self.energy <= 0.0 {
            return 0.0;
        }
        self.instructions as f64 / self.energy
    }
}

/// Cycle-granular issue-slot accounting with lazy invalidation.
#[derive(Debug, Clone)]
struct SlotRing {
    cycles: Vec<u64>,
    counts: Vec<u32>,
}

const SLOT_RING_LEN: usize = 1 << 16;

impl SlotRing {
    fn new() -> SlotRing {
        SlotRing {
            cycles: vec![u64::MAX; SLOT_RING_LEN],
            counts: vec![0; SLOT_RING_LEN],
        }
    }

    /// Earliest cycle ≥ `start` with a free slot, claiming it.
    fn claim(&mut self, start: u64, width: u32) -> u64 {
        let mut c = start;
        loop {
            let idx = (c as usize) & (SLOT_RING_LEN - 1);
            if self.cycles[idx] != c {
                self.cycles[idx] = c;
                self.counts[idx] = 1;
                return c;
            }
            if self.counts[idx] < width {
                self.counts[idx] += 1;
                return c;
            }
            c += 1;
            debug_assert!(c - start < SLOT_RING_LEN as u64, "slot search ran away");
        }
    }
}

/// Counts entries of a monotone completion ring that are still pending at
/// time `t`. The ring holds entries `k - len .. k` at `i % len`.
fn count_pending(ring: &[u64], k: u64, t: u64) -> u64 {
    let len = ring.len() as u64;
    let lo = k.saturating_sub(len);
    // Values are monotone in logical index; binary search the first
    // logical index whose value > t.
    let (mut a, mut b) = (lo, k);
    while a < b {
        let mid = (a + b) / 2;
        if ring[(mid % len) as usize] > t {
            b = mid;
        } else {
            a = mid + 1;
        }
    }
    k - a
}

/// The two-cluster out-of-order core.
///
/// # Examples
///
/// ```
/// use psca_cpu::{ClusterSim, CpuConfig, Mode};
/// use psca_workloads::{Archetype, PhaseGenerator};
///
/// let mut sim = ClusterSim::new(CpuConfig::skylake_scaled());
/// let mut trace = PhaseGenerator::new(Archetype::Balanced.center(), 1);
/// let result = sim.run_interval(&mut trace, 10_000).unwrap();
/// assert!(result.ipc() > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct ClusterSim {
    cfg: CpuConfig,
    power: PowerModel,
    mode: Mode,
    // structural components
    l1i: Cache,
    uopc: Cache,
    l1d: Cache,
    l2: Cache,
    llc: Cache,
    itlb: Tlb,
    dtlb: Tlb,
    bpred: GsharePredictor,
    btb: Btb,
    // dataflow state
    reg_ready: [u64; NUM_ARCH_REGS],
    reg_cluster: [u8; NUM_ARCH_REGS],
    rob_retire: Vec<u64>,
    inst_index: u64,
    // timing state
    fetch_ring: SlotRing,
    issue_rings: Vec<SlotRing>,
    retire_ring: SlotRing,
    min_fetch_time: u64,
    last_retire: u64,
    last_pc_line: u64,
    last_pc_page: u64,
    last_dline: u64,
    steer_cursor: usize,
    cluster_pressure: Vec<u64>,
    // store queue (in-order drain => monotone completions)
    sq_drain: Vec<u64>,
    sq_index: u64,
    last_sq_drain: u64,
    // load queue (retire times of loads, monotone)
    lq_retire: Vec<u64>,
    lq_index: u64,
    // telemetry
    bank: CounterBank,
    interval_start: u64,
    uops_issued_in_interval: u64,
    // cluster-cycle accounting for the power model
    seg_start: u64,
    active_cc: u64,
    gated_cc: u64,
    last_schedule: [u64; 6],
    // mode-switch request delayed by an actuation fault
    delayed_mode: Option<Mode>,
    // pre-resolved observability handles (None when PSCA_OBS=0)
    obs: Option<SimObs>,
}

impl ClusterSim {
    /// Creates a simulator in high-performance mode.
    ///
    /// # Panics
    /// Panics if the configuration is invalid (see [`CpuConfig::validate`]).
    pub fn new(cfg: CpuConfig) -> ClusterSim {
        ClusterSim::with_power_model(cfg, PowerModel::skylake_scaled())
    }

    /// Creates a simulator with an explicit power model.
    ///
    /// # Panics
    /// Panics if the configuration is invalid.
    pub fn with_power_model(cfg: CpuConfig, power: PowerModel) -> ClusterSim {
        cfg.validate();
        let issue_rings = (0..cfg.num_clusters).map(|_| SlotRing::new()).collect();
        ClusterSim {
            l1i: Cache::new(cfg.l1i_bytes, cfg.l1i_ways),
            uopc: Cache::new(cfg.uop_cache_bytes, cfg.uop_cache_ways),
            l1d: Cache::new(cfg.l1d_bytes, cfg.l1d_ways),
            l2: Cache::new(cfg.l2_bytes, cfg.l2_ways),
            llc: Cache::new(cfg.llc_bytes, cfg.llc_ways),
            itlb: Tlb::new(cfg.itlb_entries),
            dtlb: Tlb::new(cfg.dtlb_entries),
            bpred: GsharePredictor::new(cfg.gshare_bits),
            btb: Btb::new(cfg.btb_bits),
            reg_ready: [0; NUM_ARCH_REGS],
            reg_cluster: [0; NUM_ARCH_REGS],
            rob_retire: vec![0; cfg.rob_size],
            inst_index: 0,
            fetch_ring: SlotRing::new(),
            issue_rings,
            retire_ring: SlotRing::new(),
            min_fetch_time: 0,
            last_retire: 0,
            last_pc_line: u64::MAX,
            last_pc_page: u64::MAX,
            last_dline: u64::MAX,
            steer_cursor: 0,
            cluster_pressure: vec![0; cfg.num_clusters as usize],
            sq_drain: vec![0; cfg.store_queue_size],
            sq_index: 0,
            last_sq_drain: 0,
            lq_retire: vec![0; 72],
            lq_index: 0,
            bank: CounterBank::new(),
            interval_start: 0,
            uops_issued_in_interval: 0,
            seg_start: 0,
            active_cc: 0,
            gated_cc: 0,
            last_schedule: [0; 6],
            delayed_mode: None,
            obs: SimObs::resolve(),
            mode: Mode::HighPerf,
            cfg,
            power,
        }
    }

    /// Current cluster configuration.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// The configuration the simulator was built with.
    pub fn config(&self) -> &CpuConfig {
        &self.cfg
    }

    /// Switches cluster configuration, modeling the microcode transfer
    /// flow (§3): on a high-performance → low-power switch, every live
    /// register whose value lives in Cluster 2 is copied by a transfer µop
    /// (up to [`CpuConfig::transfer_uop_max`]), inserted into Cluster 1's
    /// stream while execution continues. Returning to high-performance
    /// mode only ungates Cluster 2 (negligible overhead).
    pub fn set_mode(&mut self, mode: Mode) {
        if mode == self.mode {
            return;
        }
        self.account_cluster_cycles();
        self.bank.incr(Event::ModeSwitches);
        if let Some(obs) = &self.obs {
            obs.mode_switches.inc();
        }
        if psca_obs::enabled(psca_obs::Level::Debug) {
            psca_obs::emit(
                psca_obs::Level::Debug,
                "cpu.mode_switch",
                &[
                    ("from", self.mode.to_string().into()),
                    ("to", mode.to_string().into()),
                ],
            );
        }
        if psca_obs::trace::enabled() {
            psca_obs::trace::instant(
                "cpu.mode_switch",
                &[
                    ("from", self.mode.to_string().into()),
                    ("to", mode.to_string().into()),
                ],
            );
        }
        if mode == Mode::LowPower {
            let live_in_c2 = self
                .reg_cluster
                .iter()
                .filter(|&&c| c == 1)
                .count()
                .min(self.cfg.transfer_uop_max as usize) as u64;
            self.bank.add(Event::TransferUops, live_in_c2);
            if let Some(obs) = &self.obs {
                obs.transfer_uops.add(live_in_c2);
            }
            self.bank.add(Event::UopsIssued, live_in_c2);
            self.bank.add(Event::Cluster1UopsIssued, live_in_c2);
            self.uops_issued_in_interval += live_in_c2;
            // Transfer µops occupy Cluster 1 issue slots: tens of cycles in
            // the worst case, as in the paper.
            let cycles = live_in_c2.div_ceil(self.cfg.cluster_width as u64);
            self.min_fetch_time = self.min_fetch_time.max(self.last_retire) + cycles;
            for c in self.reg_cluster.iter_mut() {
                *c = 0;
            }
        }
        self.mode = mode;
    }

    /// Submits a mode-switch request through the (possibly faulty)
    /// actuation port. With [`ModeSwitchFault::None`] this is exactly
    /// [`ClusterSim::set_mode`]. Returns whether the request took effect
    /// immediately.
    pub fn request_mode(&mut self, mode: Mode, fault: ModeSwitchFault) -> bool {
        match fault {
            ModeSwitchFault::None => {
                self.set_mode(mode);
                true
            }
            ModeSwitchFault::Lost => {
                if mode != self.mode {
                    if let Some(obs) = &self.obs {
                        obs.switch_lost.inc();
                    }
                    psca_obs::emit(
                        psca_obs::Level::Warn,
                        "cpu.mode_switch.lost",
                        &[("wanted", mode.to_string().into())],
                    );
                }
                false
            }
            ModeSwitchFault::DelayedOneWindow => {
                if mode != self.mode {
                    self.delayed_mode = Some(mode);
                    if let Some(obs) = &self.obs {
                        obs.switch_delayed.inc();
                    }
                }
                false
            }
        }
    }

    /// Applies a mode-switch request that an actuation fault delayed, if
    /// one is buffered. Call at each window boundary; returns the mode
    /// applied. A newer request issued in the meantime overrides it (the
    /// caller's `request_mode` runs after this drain).
    pub fn apply_delayed_mode(&mut self) -> Option<Mode> {
        let mode = self.delayed_mode.take()?;
        self.set_mode(mode);
        Some(mode)
    }

    fn active_width(&self) -> u32 {
        self.cfg.cluster_width * self.mode.active_clusters()
    }

    fn account_cluster_cycles(&mut self) {
        let now = self.last_retire;
        let dt = now.saturating_sub(self.seg_start);
        let active = self.mode.active_clusters() as u64;
        let gated = (self.cfg.num_clusters as u64).saturating_sub(active);
        self.active_cc += dt * active;
        self.gated_cc += dt * gated;
        self.seg_start = now;
    }

    /// Simulates the front end for one instruction; returns added bubbles.
    fn front_end(&mut self, pc: u64) -> u64 {
        let mut bubble = 0;
        let line = pc >> 6;
        if line != self.last_pc_line {
            self.last_pc_line = line;
            if self.uopc.access(line, false).hit {
                self.bank.incr(Event::UopCacheHits);
            } else {
                self.bank.incr(Event::UopCacheMisses);
                if self.l1i.access(line, false).hit {
                    self.bank.incr(Event::IcacheHits);
                    bubble += self.cfg.decode_bubble;
                } else {
                    self.bank.incr(Event::IcacheMisses);
                    let l2 = self.l2.access(line, false);
                    if l2.hit {
                        self.bank.incr(Event::L2Hits);
                        bubble += self.cfg.l2_latency;
                    } else {
                        self.bank.incr(Event::L2Misses);
                        self.note_l2_eviction(l2.eviction);
                        if self.llc.access(line, false).hit {
                            self.bank.incr(Event::LlcHits);
                            bubble += self.cfg.llc_latency;
                        } else {
                            self.bank.incr(Event::LlcMisses);
                            bubble += self.cfg.mem_latency;
                        }
                    }
                }
            }
            let page = pc >> 12;
            if page != self.last_pc_page {
                self.last_pc_page = page;
                if self.itlb.access(pc) {
                    self.bank.incr(Event::ItlbHits);
                } else {
                    self.bank.incr(Event::ItlbMisses);
                    bubble += self.cfg.tlb_miss_penalty;
                }
            }
        }
        if bubble > 0 {
            self.bank.add(Event::FrontEndBubbles, bubble);
        }
        bubble
    }

    fn note_l2_eviction(&mut self, eviction: Option<(u64, bool)>) {
        match eviction {
            Some((_, true)) => self.bank.incr(Event::L2WritebackEvictions),
            Some((_, false)) => self.bank.incr(Event::L2SilentEvictions),
            None => {}
        }
    }

    /// Data-cache path for a load or store; returns access latency.
    fn mem_access(&mut self, addr: u64, is_write: bool) -> u64 {
        if self.dtlb.access(addr) {
            self.bank.incr(Event::DtlbHits);
        } else {
            self.bank.incr(Event::DtlbMisses);
        }
        let line = addr >> 6;
        if is_write {
            self.bank.incr(Event::L1dWrites);
        } else {
            self.bank.incr(Event::L1dReads);
        }
        if self.cfg.stream_prefetcher && line != self.last_dline {
            // Idealized next-line stream prefetch: on the first touch of
            // each line, install its successor silently (no events, no
            // timing). This is what keeps sequential streams from being
            // compulsory-miss bound, as hardware stream prefetchers do.
            self.last_dline = line;
            let _ = self.l1d.access(line + 1, false);
            let _ = self.llc.access(line + 1, false);
        }
        if self.l1d.access(line, is_write).hit {
            self.bank.incr(Event::L1dHits);
            self.cfg.l1d_latency
        } else {
            self.bank.incr(Event::L1dMisses);
            let l2 = self.l2.access(line, is_write);
            if l2.hit {
                self.bank.incr(Event::L2Hits);
                self.cfg.l2_latency
            } else {
                self.bank.incr(Event::L2Misses);
                self.note_l2_eviction(l2.eviction);
                if self.llc.access(line, is_write).hit {
                    self.bank.incr(Event::LlcHits);
                    self.cfg.llc_latency
                } else {
                    self.bank.incr(Event::LlcMisses);
                    if !is_write {
                        self.bank.incr(Event::LongLatencyLoads);
                    }
                    self.cfg.mem_latency
                }
            }
        }
    }

    /// Chooses the cluster for an instruction in high-performance mode.
    ///
    /// Dependence-aware policy: an instruction with an in-flight source is
    /// steered to the producer's cluster (avoiding the forwarding penalty);
    /// instructions whose operands are already architectural are steered to
    /// the least-pressured cluster. The pressure term is essential — pure
    /// producer-affinity ratchets every dependence chain onto one cluster
    /// (ready chains migrate randomly, in-flight chains stay, so clusters
    /// collapse), halving effective width.
    fn steer(&mut self, inst: &Instruction, dispatch: u64) -> usize {
        if self.mode == Mode::LowPower {
            return 0;
        }
        let n = self.cfg.num_clusters as usize;
        let chosen = match self.cfg.steer_policy {
            crate::config::SteerPolicy::RoundRobin => {
                self.steer_cursor = (self.steer_cursor + 1) % n;
                self.steer_cursor
            }
            crate::config::SteerPolicy::DependenceAware => {
                let mut best: Option<(u64, usize)> = None;
                for src in inst.srcs.iter().flatten() {
                    let i = src.index();
                    if self.reg_ready[i] > dispatch {
                        let cand = (self.reg_ready[i], self.reg_cluster[i] as usize);
                        if best.is_none_or(|b| cand.0 > b.0) {
                            best = Some(cand);
                        }
                    }
                }
                match best {
                    Some((_, c)) => c,
                    None => {
                        // Least-pressured cluster.
                        (0..n)
                            .min_by_key(|&c| self.cluster_pressure[c])
                            .unwrap_or(0)
                    }
                }
            }
        };
        // Exponentially-decayed pressure tracking.
        for (c, p) in self.cluster_pressure.iter_mut().enumerate() {
            *p -= *p >> 5;
            if c == chosen {
                *p += 32;
            }
        }
        chosen
    }

    /// Simulates one instruction through the pipeline.
    fn step(&mut self, inst: &Instruction) {
        let cfg_width = self.active_width();
        // ---- front end ----
        let bubble = self.front_end(inst.pc);
        let fetch = self
            .fetch_ring
            .claim(self.min_fetch_time + bubble, cfg_width);
        self.min_fetch_time = fetch.max(self.min_fetch_time);

        // ---- dispatch: ROB + store-queue structural limits ----
        let rob_len = self.rob_retire.len() as u64;
        let mut dispatch = fetch + 1;
        if self.inst_index >= rob_len {
            let rob_free = self.rob_retire[(self.inst_index % rob_len) as usize];
            if rob_free > dispatch {
                dispatch = rob_free;
                self.bank.incr(Event::RobFullStalls);
            }
        }
        if inst.op == OpClass::Store {
            let sq_len = self.sq_drain.len() as u64;
            if self.sq_index >= sq_len {
                let sq_free = self.sq_drain[(self.sq_index % sq_len) as usize];
                if sq_free > dispatch {
                    dispatch = sq_free;
                    self.bank.incr(Event::StoreQueueFullStalls);
                }
            }
        }
        // Front-end queue coupling: fetch cannot lag arbitrarily behind.
        self.min_fetch_time = self.min_fetch_time.max(dispatch.saturating_sub(16));

        // ---- steering & operand readiness ----
        let cluster = self.steer(inst, dispatch);
        let mut ready = dispatch;
        let mut n_srcs = 0u64;
        for src in inst.srcs.iter().flatten() {
            n_srcs += 1;
            let i = src.index();
            let mut t = self.reg_ready[i];
            if self.reg_ready[i] > dispatch && self.reg_cluster[i] as usize != cluster {
                t += self.cfg.inter_cluster_penalty;
                self.bank.incr(Event::InterClusterForwards);
            }
            ready = ready.max(t);
        }
        self.bank.add(Event::PhysRegRefCount, n_srcs);
        if ready <= dispatch {
            self.bank.incr(Event::UopsReady);
        } else {
            self.bank.incr(Event::UopsStalledOnDep);
        }

        // ---- issue ----
        let issue = self.issue_rings[cluster].claim(ready, self.cfg.cluster_width);
        if issue > dispatch {
            self.bank.incr(Event::StallCount);
        }
        self.bank.incr(Event::UopsIssued);
        self.bank.incr(Event::UopsExecuted);
        self.uops_issued_in_interval += 1;
        self.bank.incr(if cluster == 0 {
            Event::Cluster1UopsIssued
        } else {
            Event::Cluster2UopsIssued
        });

        // ---- execute ----
        let mut latency = inst.op.latency() as u64;
        match inst.op {
            OpClass::IntAlu => self.bank.incr(Event::IntAluOps),
            OpClass::IntMul => self.bank.incr(Event::IntMulOps),
            OpClass::IntDiv => {
                self.bank.incr(Event::IntDivOps);
                self.bank.incr(Event::DivStallCount);
            }
            OpClass::FpAdd => self.bank.incr(Event::FpAddOps),
            OpClass::FpMul => self.bank.incr(Event::FpMulOps),
            OpClass::FpFma => self.bank.incr(Event::FpFmaOps),
            OpClass::FpDiv => {
                self.bank.incr(Event::FpDivOps);
                self.bank.incr(Event::DivStallCount);
            }
            OpClass::SimdInt | OpClass::SimdFp => self.bank.incr(Event::SimdOps),
            _ => {}
        }
        if let Some(mem) = inst.mem {
            let is_write = inst.op == OpClass::Store;
            let dtlb_hit_before = self.bank.get(Event::DtlbMisses);
            let mem_lat = self.mem_access(mem.addr, is_write);
            let walked = self.bank.get(Event::DtlbMisses) != dtlb_hit_before;
            let walk = if walked { self.cfg.tlb_miss_penalty } else { 0 };
            match inst.op {
                OpClass::Load => {
                    self.bank.incr(Event::LoadsRetired);
                    latency += mem_lat + walk;
                }
                OpClass::Store => {
                    self.bank.incr(Event::StoresRetired);
                    // Store data latency is 1; the drain happens post-retire.
                    let drain = issue + 1 + mem_lat + walk;
                    let slot = (self.sq_index % self.sq_drain.len() as u64) as usize;
                    self.last_sq_drain = self.last_sq_drain.max(drain);
                    self.sq_drain[slot] = self.last_sq_drain;
                    // Occupancy sample: pending SQ entries at dispatch.
                    let occ = count_pending(&self.sq_drain, self.sq_index + 1, dispatch);
                    self.bank.add(Event::StoreQueueOccupancy, occ);
                    self.sq_index += 1;
                }
                _ => unreachable!("mem ref on non-memory op"),
            }
        }
        let complete = issue + latency.max(1);

        // ---- branch resolution ----
        if let Some(b) = inst.branch {
            self.bank.incr(Event::BranchesRetired);
            if b.taken {
                self.bank.incr(Event::BranchesTaken);
            }
            let mispredicted = match inst.op {
                OpClass::CondBranch => !self.bpred.predict_and_update(inst.pc, b.taken),
                OpClass::IndirectBranch => {
                    let btb_ok = self.btb.lookup_and_update(inst.pc, b.target);
                    if !btb_ok {
                        self.bank.incr(Event::BtbMisses);
                    }
                    !btb_ok
                }
                OpClass::Jump => {
                    let btb_ok = self.btb.lookup_and_update(inst.pc, b.target);
                    if !btb_ok {
                        self.bank.incr(Event::BtbMisses);
                    }
                    false // direct jumps redirect in the front end: cheap
                }
                _ => false,
            };
            if mispredicted {
                self.bank.incr(Event::BranchMispredicts);
                let flushed = (cfg_width as u64)
                    .saturating_mul(complete.saturating_sub(fetch))
                    .min(self.rob_retire.len() as u64);
                self.bank.add(Event::WrongPathUopsFlushed, flushed);
                self.min_fetch_time = self
                    .min_fetch_time
                    .max(complete + self.cfg.mispredict_penalty);
            }
        }

        // ---- writeback ----
        if let Some(dst) = inst.dst {
            self.reg_ready[dst.index()] = complete;
            self.reg_cluster[dst.index()] = cluster as u8;
            self.bank.incr(Event::PhysRegWrites);
        }

        // ---- in-order retire ----
        let retire = self
            .retire_ring
            .claim(complete.max(self.last_retire), self.cfg.retire_width);
        self.last_retire = retire.max(self.last_retire);
        self.rob_retire[(self.inst_index % rob_len) as usize] = retire;
        if inst.op == OpClass::Load {
            let slot = (self.lq_index % self.lq_retire.len() as u64) as usize;
            self.lq_retire[slot] = retire;
            self.lq_index += 1;
        }
        self.inst_index += 1;

        // ---- occupancy sampling (every 8th instruction, weighted) ----
        if self.inst_index.is_multiple_of(8) {
            let rob_occ = count_pending(&self.rob_retire, self.inst_index, dispatch);
            self.bank.add(Event::RobOccupancy, rob_occ * 8);
            let lq_occ = count_pending(&self.lq_retire, self.lq_index, dispatch);
            self.bank.add(Event::LoadQueueOccupancy, lq_occ * 8);
        }

        self.bank.incr(Event::InstRetired);
        self.last_schedule = [fetch, dispatch, ready, issue, complete, retire];
    }

    /// Pipeline timing of the most recent instruction:
    /// `[fetch, dispatch, ready, issue, complete, retire]` cycles.
    /// Exposed for tests and diagnostics.
    pub fn last_schedule(&self) -> [u64; 6] {
        self.last_schedule
    }

    /// Simulates up to `n` instructions and snapshots the interval.
    ///
    /// Returns `None` if the source was already exhausted. The snapshot is
    /// cycle-normalized; energy is computed with the event-based power
    /// model including per-cluster static power.
    pub fn run_interval<S: TraceSource>(
        &mut self,
        source: &mut S,
        n: u64,
    ) -> Option<IntervalResult> {
        // Trace-gated: each interval becomes a span in the recording (and
        // inherits the calling thread's request context, if any), so a
        // served closed-loop request renders down to interval granularity.
        let span_ts = psca_obs::trace::enabled().then(psca_obs::trace::now_us);
        let mut executed = 0u64;
        for _ in 0..n {
            match source.next_instruction() {
                Some(inst) => {
                    self.step(&inst);
                    executed += 1;
                }
                None => break,
            }
        }
        if executed == 0 {
            return None;
        }
        if let Some(ts) = span_ts {
            let dur = psca_obs::trace::now_us().saturating_sub(ts);
            psca_obs::trace::complete("cpu.sim.interval", ts, dur);
        }
        // Close the interval. Observability is batched once per interval
        // (never per instruction) through handles resolved at
        // construction, so the close costs a few relaxed atomic ops and
        // zero registry lookups — and nothing at all under PSCA_OBS=0.
        let cycles = (self.last_retire - self.interval_start).max(1);
        self.bank.add(Event::Cycles, cycles);
        let interval_ipc = executed as f64 / cycles as f64;
        if let Some(obs) = &self.obs {
            obs.instructions.add(executed);
            obs.cycles.add(cycles);
            obs.intervals.inc();
            if self.mode == Mode::LowPower {
                obs.cycles_low_power.add(cycles);
            }
            obs.ipc.push(interval_ipc);
            obs.low_power.push(if self.mode == Mode::LowPower {
                1.0
            } else {
                0.0
            });
        }
        if psca_obs::trace::enabled() {
            psca_obs::trace::counter_event("cpu.sim.ipc", interval_ipc);
        }
        let width = self.active_width() as u64;
        let empty = (width * cycles).saturating_sub(self.uops_issued_in_interval);
        self.bank.add(Event::IssueSlotsEmpty, empty);
        self.account_cluster_cycles();
        let snapshot = self.bank.snapshot_and_reset();
        let energy = self
            .power
            .interval_energy(&snapshot, self.active_cc, self.gated_cc);
        self.active_cc = 0;
        self.gated_cc = 0;
        self.interval_start = self.last_retire;
        self.uops_issued_in_interval = 0;
        Some(IntervalResult {
            snapshot,
            energy,
            mode: self.mode,
            instructions: executed,
        })
    }

    /// Runs `n` instructions discarding telemetry (cache/predictor warmup,
    /// as the paper does before each measured SimPoint, §4.1).
    pub fn warm_up<S: TraceSource>(&mut self, source: &mut S, n: u64) {
        let _ = self.run_interval(source, n);
    }

    /// Resets microarchitectural state (caches, predictors, dataflow and
    /// timing) while keeping the configuration. Used between traces.
    pub fn reset(&mut self) {
        let cfg = self.cfg.clone();
        let power = self.power.clone();
        let mode = self.mode;
        *self = ClusterSim::with_power_model(cfg, power);
        self.mode = mode;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psca_workloads::{Archetype, PhaseGenerator};

    fn ipc_of(archetype: Archetype, mode: Mode, n: u64) -> f64 {
        let mut sim = ClusterSim::new(CpuConfig::skylake_scaled());
        sim.set_mode(mode);
        let mut gen = PhaseGenerator::new(archetype.center(), 42);
        sim.warm_up(&mut gen, n / 2);
        let r = sim.run_interval(&mut gen, n).unwrap();
        r.ipc()
    }

    #[test]
    fn slot_ring_respects_width() {
        let mut ring = SlotRing::new();
        assert_eq!(ring.claim(10, 2), 10);
        assert_eq!(ring.claim(10, 2), 10);
        assert_eq!(ring.claim(10, 2), 11);
        assert_eq!(ring.claim(5, 2), 5);
    }

    #[test]
    fn count_pending_counts_monotone_ring() {
        let ring = vec![10u64, 20, 30, 40];
        assert_eq!(count_pending(&ring, 4, 5), 4);
        assert_eq!(count_pending(&ring, 4, 25), 2);
        assert_eq!(count_pending(&ring, 4, 100), 0);
    }

    #[test]
    fn ipc_is_positive_and_bounded_by_width() {
        for mode in [Mode::HighPerf, Mode::LowPower] {
            let width = match mode {
                Mode::HighPerf => 8.0,
                Mode::LowPower => 4.0,
            };
            let ipc = ipc_of(Archetype::Balanced, mode, 20_000);
            assert!(ipc > 0.1 && ipc <= width, "{mode}: ipc = {ipc}");
        }
    }

    #[test]
    fn wide_ilp_benefits_from_high_perf_mode() {
        let hi = ipc_of(Archetype::ScalarIlp, Mode::HighPerf, 30_000);
        let lo = ipc_of(Archetype::ScalarIlp, Mode::LowPower, 30_000);
        assert!(
            lo / hi < 0.8,
            "wide ILP should lose from gating: hi={hi:.2} lo={lo:.2}"
        );
    }

    #[test]
    fn dependence_chains_tolerate_gating() {
        let hi = ipc_of(Archetype::DepChain, Mode::HighPerf, 30_000);
        let lo = ipc_of(Archetype::DepChain, Mode::LowPower, 30_000);
        assert!(
            lo / hi > 0.9,
            "serial code should not need width: hi={hi:.2} lo={lo:.2}"
        );
    }

    #[test]
    fn memory_bound_tolerates_gating() {
        let hi = ipc_of(Archetype::PointerChase, Mode::HighPerf, 20_000);
        let lo = ipc_of(Archetype::PointerChase, Mode::LowPower, 20_000);
        assert!(lo / hi > 0.85, "hi={hi:.2} lo={lo:.2}");
    }

    #[test]
    fn low_power_mode_uses_less_power() {
        let mut hi_sim = ClusterSim::new(CpuConfig::skylake_scaled());
        let mut gen = PhaseGenerator::new(Archetype::Balanced.center(), 7);
        hi_sim.warm_up(&mut gen, 10_000);
        let hi = hi_sim.run_interval(&mut gen, 20_000).unwrap();
        let mut lo_sim = ClusterSim::new(CpuConfig::skylake_scaled());
        lo_sim.set_mode(Mode::LowPower);
        let mut gen2 = PhaseGenerator::new(Archetype::Balanced.center(), 7);
        lo_sim.warm_up(&mut gen2, 10_000);
        let lo = lo_sim.run_interval(&mut gen2, 20_000).unwrap();
        let p_hi = hi.energy / hi.snapshot.cycles as f64;
        let p_lo = lo.energy / lo.snapshot.cycles as f64;
        assert!(
            p_lo < p_hi,
            "low-power mode must consume less power: {p_lo} vs {p_hi}"
        );
    }

    #[test]
    fn mode_switch_counts_transfer_uops() {
        let mut sim = ClusterSim::new(CpuConfig::skylake_scaled());
        let mut gen = PhaseGenerator::new(Archetype::ScalarIlp.center(), 3);
        sim.run_interval(&mut gen, 5_000).unwrap();
        sim.set_mode(Mode::LowPower);
        let r = sim.run_interval(&mut gen, 5_000).unwrap();
        let transfers = r.snapshot.get(Event::TransferUops) * r.snapshot.cycles as f64;
        assert!(transfers >= 1.0, "expected transfer uops, got {transfers}");
        let switches = r.snapshot.get(Event::ModeSwitches) * r.snapshot.cycles as f64;
        assert!((switches - 1.0).abs() < 0.5);
    }

    #[test]
    fn mode_switch_overhead_is_small() {
        // Worst-case power/energy overhead of adaptation should be tiny
        // (§3: "on the order of 0.1%" at 10k granularity).
        let cfg = CpuConfig::skylake_scaled();
        let mut toggling = ClusterSim::new(cfg.clone());
        let mut gen = PhaseGenerator::new(Archetype::Balanced.center(), 5);
        let mut toggle_energy = 0.0;
        let mut toggle_insts = 0u64;
        for i in 0..20 {
            toggling.set_mode(if i % 2 == 0 {
                Mode::HighPerf
            } else {
                Mode::LowPower
            });
            let r = toggling.run_interval(&mut gen, 10_000).unwrap();
            toggle_energy += r.energy;
            toggle_insts += r.instructions;
        }
        assert_eq!(toggle_insts, 200_000);
        assert!(toggle_energy > 0.0);
    }

    #[test]
    fn lost_and_delayed_mode_switch_requests() {
        let mut sim = ClusterSim::new(CpuConfig::skylake_scaled());
        // Lost: the configuration must not change.
        assert!(!sim.request_mode(Mode::LowPower, ModeSwitchFault::Lost));
        assert_eq!(sim.mode(), Mode::HighPerf);
        // Delayed: takes effect only at the drain point.
        assert!(!sim.request_mode(Mode::LowPower, ModeSwitchFault::DelayedOneWindow));
        assert_eq!(sim.mode(), Mode::HighPerf);
        assert_eq!(sim.apply_delayed_mode(), Some(Mode::LowPower));
        assert_eq!(sim.mode(), Mode::LowPower);
        assert_eq!(sim.apply_delayed_mode(), None);
        // Healthy path is exactly set_mode.
        assert!(sim.request_mode(Mode::HighPerf, ModeSwitchFault::None));
        assert_eq!(sim.mode(), Mode::HighPerf);
    }

    #[test]
    fn run_interval_on_exhausted_source_returns_none() {
        let mut sim = ClusterSim::new(CpuConfig::skylake_scaled());
        let mut empty = psca_trace::VecTrace::default();
        assert!(sim.run_interval(&mut empty, 100).is_none());
    }

    #[test]
    fn short_trace_reports_actual_instructions() {
        let mut sim = ClusterSim::new(CpuConfig::skylake_scaled());
        let mut gen = PhaseGenerator::new(Archetype::Balanced.center(), 1);
        let mut short = psca_trace::VecTrace::record(&mut gen, 123);
        let r = sim.run_interval(&mut short, 1_000).unwrap();
        assert_eq!(r.instructions, 123);
    }

    #[test]
    fn simulation_is_deterministic() {
        let run = || {
            let mut sim = ClusterSim::new(CpuConfig::skylake_scaled());
            let mut gen = PhaseGenerator::new(Archetype::Branchy.center(), 11);
            let r = sim.run_interval(&mut gen, 10_000).unwrap();
            (r.snapshot.cycles, r.energy.to_bits())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn blindspot_twins_have_similar_observable_mixes_but_different_labels() {
        // In low-power mode the twins should look alike on expert counters
        // (miss rates) while differing in dependence-visibility counters.
        let observe = |a: Archetype| {
            let mut sim = ClusterSim::new(CpuConfig::skylake_scaled());
            sim.set_mode(Mode::LowPower);
            let mut gen = PhaseGenerator::new(a.center(), 21);
            sim.warm_up(&mut gen, 20_000);
            sim.run_interval(&mut gen, 30_000).unwrap()
        };
        let wide = observe(Archetype::StreamFpWide);
        let chain = observe(Archetype::StreamFpChain);
        let w_ready = wide.snapshot.get(Event::UopsReady);
        let c_ready = chain.snapshot.get(Event::UopsReady);
        assert!(
            w_ready > c_ready * 1.5,
            "dependence counters must separate the twins: {w_ready} vs {c_ready}"
        );
    }
}
