//! # psca-cpu
//!
//! The clustered CPU simulator of the PSCA reproduction.
//!
//! The paper's CPU is a scaled Intel Skylake with two out-of-order 4-wide
//! execution clusters (§3, Figure 2). With both clusters enabled it runs
//! an 8-wide *high-performance* mode; with Cluster 2 clock-gated it runs a
//! 4-wide *low-power* mode consuming ~35% less power. Mode switches take a
//! custom microcode flow that copies up to 32 register dependencies.
//!
//! This crate implements that machine as a trace-driven, cycle-level,
//! dataflow-limited out-of-order model (see `DESIGN.md` §1 for the
//! substitution argument):
//!
//! - [`Cache`], [`Tlb`], [`GsharePredictor`], and a µop cache model the
//!   structural components that generate telemetry events;
//! - [`ClusterSim`] schedules every instruction onto a finite ROB window
//!   with per-cluster issue width, dependence-aware steering, and an
//!   inter-cluster forwarding penalty — so the IPC delta between modes is
//!   an emergent property of each workload's dependence structure;
//! - [`PowerModel`] is an event-based energy model in the spirit of the
//!   Skylake model of Haj-Yihia et al. used by the paper;
//! - [`Mode`] and [`ClusterSim::set_mode`] implement cluster gating with
//!   the microcoded register-transfer cost.

#![warn(missing_docs)]

pub mod backend;

mod bpred;
mod cache;
mod config;
mod dvfs;
mod power;
mod sim;
mod summary;
mod tlb;

pub use backend::{BackendChoice, CycleAccurate, SimBackend, Surrogate, UnknownBackend};
pub use bpred::{Btb, GsharePredictor};
pub use cache::{AccessOutcome, Cache};
pub use config::{CpuConfig, SteerPolicy};
pub use dvfs::{DvfsGovernor, DvfsModel, OperatingPoint};
pub use power::PowerModel;
pub use sim::{ClusterSim, IntervalResult, Mode, ModeSwitchFault};
pub use summary::RunSummary;
pub use tlb::Tlb;
