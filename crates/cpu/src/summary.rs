//! Run summaries: human-readable aggregates over simulated intervals.

use crate::sim::IntervalResult;
use psca_telemetry::Event;

/// Aggregate statistics over a sequence of simulated intervals.
///
/// # Examples
///
/// ```
/// use psca_cpu::{ClusterSim, CpuConfig, RunSummary};
/// use psca_workloads::{Archetype, PhaseGenerator};
///
/// let mut sim = ClusterSim::new(CpuConfig::skylake_scaled());
/// let mut gen = PhaseGenerator::new(Archetype::Balanced.center(), 1);
/// let mut summary = RunSummary::new();
/// for _ in 0..4 {
///     summary.add(&sim.run_interval(&mut gen, 5_000).unwrap());
/// }
/// assert_eq!(summary.instructions(), 20_000);
/// assert!(summary.ipc() > 0.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct RunSummary {
    instructions: u64,
    cycles: u64,
    energy: f64,
    intervals: usize,
    // de-normalized event totals for the rates we report
    branches: f64,
    mispredicts: f64,
    l1d_accesses: f64,
    l1d_misses: f64,
    l2_misses: f64,
    llc_misses: f64,
    uopc_misses: f64,
    uopc_accesses: f64,
}

impl RunSummary {
    /// Creates an empty summary.
    pub fn new() -> RunSummary {
        RunSummary::default()
    }

    /// Incorporates one interval.
    pub fn add(&mut self, r: &IntervalResult) {
        let cyc = r.snapshot.cycles as f64;
        let c = |e: Event| r.snapshot.get(e) * cyc;
        self.instructions += r.instructions;
        self.cycles += r.snapshot.cycles;
        self.energy += r.energy;
        self.intervals += 1;
        self.branches += c(Event::BranchesRetired);
        self.mispredicts += c(Event::BranchMispredicts);
        self.l1d_accesses += c(Event::L1dReads) + c(Event::L1dWrites);
        self.l1d_misses += c(Event::L1dMisses);
        self.l2_misses += c(Event::L2Misses);
        self.llc_misses += c(Event::LlcMisses);
        self.uopc_misses += c(Event::UopCacheMisses);
        self.uopc_accesses += c(Event::UopCacheMisses) + c(Event::UopCacheHits);
    }

    /// Total instructions.
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Total cycles.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Total energy.
    pub fn energy(&self) -> f64 {
        self.energy
    }

    /// Intervals observed.
    pub fn intervals(&self) -> usize {
        self.intervals
    }

    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        self.instructions as f64 / self.cycles.max(1) as f64
    }

    /// Instructions per energy unit.
    pub fn ppw(&self) -> f64 {
        self.instructions as f64 / self.energy.max(f64::MIN_POSITIVE)
    }

    /// Branch mispredictions per kilo-instruction.
    pub fn mpki(&self) -> f64 {
        1_000.0 * self.mispredicts / self.instructions.max(1) as f64
    }

    /// Branch-direction accuracy.
    pub fn branch_accuracy(&self) -> f64 {
        if self.branches == 0.0 {
            return 1.0;
        }
        1.0 - self.mispredicts / self.branches
    }

    /// L1D hit rate.
    pub fn l1d_hit_rate(&self) -> f64 {
        if self.l1d_accesses == 0.0 {
            return 1.0;
        }
        1.0 - self.l1d_misses / self.l1d_accesses
    }

    /// LLC misses per kilo-instruction.
    pub fn llc_mpki(&self) -> f64 {
        1_000.0 * self.llc_misses / self.instructions.max(1) as f64
    }

    /// µop-cache hit rate.
    pub fn uop_cache_hit_rate(&self) -> f64 {
        if self.uopc_accesses == 0.0 {
            return 1.0;
        }
        1.0 - self.uopc_misses / self.uopc_accesses
    }
}

impl std::fmt::Display for RunSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{} instructions in {} cycles (IPC {:.2}), energy {:.0}",
            self.instructions,
            self.cycles,
            self.ipc(),
            self.energy
        )?;
        writeln!(
            f,
            "branch acc {:.1}% ({:.2} MPKI), L1D hit {:.1}%, LLC {:.2} MPKI, uopC hit {:.1}%",
            100.0 * self.branch_accuracy(),
            self.mpki(),
            100.0 * self.l1d_hit_rate(),
            self.llc_mpki(),
            100.0 * self.uop_cache_hit_rate()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClusterSim, CpuConfig};
    use psca_workloads::{Archetype, PhaseGenerator};

    fn summary_of(a: Archetype) -> RunSummary {
        let mut sim = ClusterSim::new(CpuConfig::skylake_scaled());
        let mut gen = PhaseGenerator::new(a.center(), 9);
        sim.warm_up(&mut gen, 10_000);
        let mut s = RunSummary::new();
        for _ in 0..4 {
            s.add(&sim.run_interval(&mut gen, 5_000).unwrap());
        }
        s
    }

    #[test]
    fn rates_are_bounded_and_sane() {
        let s = summary_of(Archetype::Balanced);
        assert_eq!(s.instructions(), 20_000);
        assert_eq!(s.intervals(), 4);
        assert!((0.0..=1.0).contains(&s.branch_accuracy()));
        assert!((0.0..=1.0).contains(&s.l1d_hit_rate()));
        assert!((0.0..=1.0).contains(&s.uop_cache_hit_rate()));
        assert!(s.ppw() > 0.0);
    }

    #[test]
    fn branchy_code_has_lower_branch_accuracy() {
        let noisy = summary_of(Archetype::Branchy);
        let regular = summary_of(Archetype::StreamFpChain);
        assert!(noisy.branch_accuracy() < regular.branch_accuracy());
        assert!(noisy.mpki() > regular.mpki());
    }

    #[test]
    fn memory_bound_code_misses_more() {
        let mem = summary_of(Archetype::MemBound);
        let compute = summary_of(Archetype::ScalarIlp);
        assert!(mem.llc_mpki() > compute.llc_mpki());
        assert!(mem.l1d_hit_rate() < compute.l1d_hit_rate());
    }

    #[test]
    fn display_is_informative() {
        let s = summary_of(Archetype::Balanced);
        let text = s.to_string();
        assert!(text.contains("IPC"));
        assert!(text.contains("MPKI"));
    }
}
