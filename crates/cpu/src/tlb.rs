//! Fully-associative TLB model with LRU replacement (4-KiB pages).

/// A translation lookaside buffer.
///
/// # Examples
///
/// ```
/// use psca_cpu::Tlb;
///
/// let mut dtlb = Tlb::new(64);
/// assert!(!dtlb.access(0x1234_5000));
/// assert!(dtlb.access(0x1234_5fff)); // same page
/// ```
#[derive(Debug, Clone)]
pub struct Tlb {
    entries: Vec<u64>,
    stamps: Vec<u64>,
    tick: u64,
    // MRU shortcut: index of the entry holding `last_page`, so the common
    // repeat-page access skips the full associative scan. Semantics are
    // identical to the scan path (hit => stamp refresh only).
    last_page: u64,
    last_idx: usize,
}

impl Tlb {
    /// Creates a TLB with the given number of entries.
    ///
    /// # Panics
    /// Panics if `entries == 0`.
    pub fn new(entries: usize) -> Tlb {
        assert!(entries > 0, "TLB needs at least one entry");
        Tlb {
            entries: vec![u64::MAX; entries],
            stamps: vec![0; entries],
            tick: 0,
            last_page: u64::MAX,
            last_idx: 0,
        }
    }

    /// Translates a virtual byte address; returns `true` on a TLB hit.
    /// On a miss the page is filled (LRU victim).
    pub fn access(&mut self, vaddr: u64) -> bool {
        self.tick += 1;
        let page = vaddr >> 12;
        if page == self.last_page {
            // The MRU entry can only be displaced by a miss, which updates
            // the shortcut, so this is always a genuine hit.
            self.stamps[self.last_idx] = self.tick;
            return true;
        }
        let mut victim = 0;
        let mut oldest = u64::MAX;
        for (i, &e) in self.entries.iter().enumerate() {
            if e == page {
                self.stamps[i] = self.tick;
                self.last_page = page;
                self.last_idx = i;
                return true;
            }
            if self.stamps[i] < oldest {
                oldest = self.stamps[i];
                victim = i;
            }
        }
        self.entries[victim] = page;
        self.stamps[victim] = self.tick;
        self.last_page = page;
        self.last_idx = victim;
        false
    }

    /// Invalidates all entries.
    pub fn flush(&mut self) {
        self.entries.fill(u64::MAX);
        self.stamps.fill(0);
        self.last_page = u64::MAX;
        self.last_idx = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_page_hits() {
        let mut t = Tlb::new(4);
        assert!(!t.access(0x1000));
        assert!(t.access(0x1fff));
        assert!(!t.access(0x2000));
    }

    #[test]
    fn capacity_respected_with_lru() {
        let mut t = Tlb::new(2);
        t.access(0x1000); // page 1
        t.access(0x2000); // page 2
        t.access(0x1000); // refresh page 1
        t.access(0x3000); // evicts page 2
        assert!(t.access(0x1000));
        assert!(!t.access(0x2000));
    }

    #[test]
    fn span_beyond_capacity_thrashes() {
        let mut t = Tlb::new(16);
        let mut misses = 0;
        for round in 0..3u64 {
            let _ = round;
            for p in 0..256u64 {
                if !t.access(p << 12) {
                    misses += 1;
                }
            }
        }
        assert!(misses > 600);
    }

    #[test]
    fn flush_invalidates() {
        let mut t = Tlb::new(4);
        t.access(0x1000);
        t.flush();
        assert!(!t.access(0x1000));
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_entries_rejected() {
        let _ = Tlb::new(0);
    }

    /// Plain full-scan LRU TLB without the MRU shortcut, used to prove the
    /// shortcut is a pure optimization.
    struct ReferenceTlb {
        entries: Vec<u64>,
        stamps: Vec<u64>,
        tick: u64,
    }

    impl ReferenceTlb {
        fn new(n: usize) -> ReferenceTlb {
            ReferenceTlb {
                entries: vec![u64::MAX; n],
                stamps: vec![0; n],
                tick: 0,
            }
        }

        fn access(&mut self, vaddr: u64) -> bool {
            self.tick += 1;
            let page = vaddr >> 12;
            let mut victim = 0;
            let mut oldest = u64::MAX;
            for (i, &e) in self.entries.iter().enumerate() {
                if e == page {
                    self.stamps[i] = self.tick;
                    return true;
                }
                if self.stamps[i] < oldest {
                    oldest = self.stamps[i];
                    victim = i;
                }
            }
            self.entries[victim] = page;
            self.stamps[victim] = self.tick;
            false
        }
    }

    #[test]
    fn mru_shortcut_matches_reference_on_random_stream() {
        let mut fast = Tlb::new(8);
        let mut reference = ReferenceTlb::new(8);
        // Deterministic LCG address stream with heavy page locality.
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut addr = 0u64;
        for i in 0..50_000u64 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            if state.is_multiple_of(4) {
                addr = (state >> 16) % (32 << 12); // jump within 32 pages
            } else {
                addr = addr.wrapping_add(state % 64); // local stride
            }
            assert_eq!(
                fast.access(addr),
                reference.access(addr),
                "diverged at access {i} addr {addr:#x}"
            );
            if i == 25_000 {
                fast.flush();
                reference.entries.fill(u64::MAX);
                reference.stamps.fill(0);
            }
        }
        assert_eq!(fast.entries, reference.entries);
        assert_eq!(fast.stamps, reference.stamps);
    }
}
