//! Fully-associative TLB model with LRU replacement (4-KiB pages).

/// A translation lookaside buffer.
///
/// # Examples
///
/// ```
/// use psca_cpu::Tlb;
///
/// let mut dtlb = Tlb::new(64);
/// assert!(!dtlb.access(0x1234_5000));
/// assert!(dtlb.access(0x1234_5fff)); // same page
/// ```
#[derive(Debug, Clone)]
pub struct Tlb {
    entries: Vec<u64>,
    stamps: Vec<u64>,
    tick: u64,
}

impl Tlb {
    /// Creates a TLB with the given number of entries.
    ///
    /// # Panics
    /// Panics if `entries == 0`.
    pub fn new(entries: usize) -> Tlb {
        assert!(entries > 0, "TLB needs at least one entry");
        Tlb {
            entries: vec![u64::MAX; entries],
            stamps: vec![0; entries],
            tick: 0,
        }
    }

    /// Translates a virtual byte address; returns `true` on a TLB hit.
    /// On a miss the page is filled (LRU victim).
    pub fn access(&mut self, vaddr: u64) -> bool {
        self.tick += 1;
        let page = vaddr >> 12;
        let mut victim = 0;
        let mut oldest = u64::MAX;
        for (i, &e) in self.entries.iter().enumerate() {
            if e == page {
                self.stamps[i] = self.tick;
                return true;
            }
            if self.stamps[i] < oldest {
                oldest = self.stamps[i];
                victim = i;
            }
        }
        self.entries[victim] = page;
        self.stamps[victim] = self.tick;
        false
    }

    /// Invalidates all entries.
    pub fn flush(&mut self) {
        self.entries.fill(u64::MAX);
        self.stamps.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_page_hits() {
        let mut t = Tlb::new(4);
        assert!(!t.access(0x1000));
        assert!(t.access(0x1fff));
        assert!(!t.access(0x2000));
    }

    #[test]
    fn capacity_respected_with_lru() {
        let mut t = Tlb::new(2);
        t.access(0x1000); // page 1
        t.access(0x2000); // page 2
        t.access(0x1000); // refresh page 1
        t.access(0x3000); // evicts page 2
        assert!(t.access(0x1000));
        assert!(!t.access(0x2000));
    }

    #[test]
    fn span_beyond_capacity_thrashes() {
        let mut t = Tlb::new(16);
        let mut misses = 0;
        for round in 0..3u64 {
            let _ = round;
            for p in 0..256u64 {
                if !t.access(p << 12) {
                    misses += 1;
                }
            }
        }
        assert!(misses > 600);
    }

    #[test]
    fn flush_invalidates() {
        let mut t = Tlb::new(4);
        t.access(0x1000);
        t.flush();
        assert!(!t.access(0x1000));
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_entries_rejected() {
        let _ = Tlb::new(0);
    }
}
