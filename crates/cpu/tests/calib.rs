use psca_cpu::{ClusterSim, CpuConfig, Mode};
use psca_workloads::{Archetype, PhaseGenerator};

#[test]
#[ignore]
fn ratios() {
    for a in Archetype::ALL {
        let ipc = |mode: Mode| {
            let mut sim = ClusterSim::new(CpuConfig::skylake_scaled());
            sim.set_mode(mode);
            let mut gen = PhaseGenerator::new(a.center(), 42);
            sim.warm_up(&mut gen, 30_000);
            sim.run_interval(&mut gen, 50_000).unwrap().ipc()
        };
        let hi = ipc(Mode::HighPerf);
        let lo = ipc(Mode::LowPower);
        println!("{a:?}: hi={hi:.2} lo={lo:.2} ratio={:.3}", lo / hi);
    }
}
