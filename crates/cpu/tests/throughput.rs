use psca_cpu::{ClusterSim, CpuConfig};
use psca_workloads::{Archetype, PhaseGenerator};
use std::time::Instant;

#[test]
#[ignore]
fn throughput() {
    let mut sim = ClusterSim::new(CpuConfig::skylake_scaled());
    let mut gen = PhaseGenerator::new(Archetype::Balanced.center(), 1);
    let t = Instant::now();
    let n = 2_000_000u64;
    let mut done = 0;
    while done < n {
        let r = sim.run_interval(&mut gen, 10_000).unwrap();
        done += r.instructions;
    }
    let dt = t.elapsed().as_secs_f64();
    println!(
        "sim throughput: {:.1} M instr/s (debug)",
        n as f64 / dt / 1e6
    );
}
