//! Property-based tests of simulator invariants.

use proptest::prelude::*;
use psca_cpu::{Cache, ClusterSim, CpuConfig, Mode, Tlb};
use psca_telemetry::Event;
use psca_workloads::{Archetype, PhaseGenerator};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Event-count identities hold for any simulated interval: retired
    /// instructions equal issued µops (transfers excluded by running a
    /// single mode), loads+stores equal L1D accesses, hits+misses equal
    /// accesses at every cache level the interval touched.
    #[test]
    fn event_count_identities(arch_idx in 0usize..12, seed in 0u64..100, lo in any::<bool>()) {
        let a = Archetype::ALL[arch_idx];
        let mut sim = ClusterSim::new(CpuConfig::skylake_scaled());
        sim.set_mode(if lo { Mode::LowPower } else { Mode::HighPerf });
        let mut gen = PhaseGenerator::new(a.center(), seed);
        let r = sim.run_interval(&mut gen, 8_000).unwrap();
        let cyc = r.snapshot.cycles as f64;
        let c = |e: Event| (r.snapshot.get(e) * cyc).round() as i64;
        prop_assert_eq!(c(Event::InstRetired), 8_000);
        prop_assert_eq!(c(Event::UopsIssued), c(Event::InstRetired));
        prop_assert_eq!(
            c(Event::L1dReads) + c(Event::L1dWrites),
            c(Event::L1dHits) + c(Event::L1dMisses)
        );
        prop_assert_eq!(c(Event::LoadsRetired), c(Event::L1dReads));
        prop_assert_eq!(c(Event::StoresRetired), c(Event::L1dWrites));
        prop_assert_eq!(
            c(Event::UopsReady) + c(Event::UopsStalledOnDep),
            c(Event::UopsIssued)
        );
        prop_assert!(c(Event::BranchMispredicts) <= c(Event::BranchesRetired));
        prop_assert_eq!(
            c(Event::Cluster1UopsIssued) + c(Event::Cluster2UopsIssued),
            c(Event::UopsIssued)
        );
        if lo {
            prop_assert_eq!(c(Event::Cluster2UopsIssued), 0);
        }
    }

    /// Cache contents are a function of the access stream: two caches fed
    /// the same stream agree on every hit/miss.
    #[test]
    fn cache_is_deterministic(lines in prop::collection::vec(0u64..5_000, 1..300)) {
        let mut a = Cache::new(16 * 1024, 4);
        let mut b = Cache::new(16 * 1024, 4);
        for &l in &lines {
            let ra = a.access(l, l % 3 == 0);
            let rb = b.access(l, l % 3 == 0);
            prop_assert_eq!(ra.hit, rb.hit);
            prop_assert_eq!(ra.eviction, rb.eviction);
        }
    }

    /// An evicted line was previously inserted, and its set matches.
    #[test]
    fn evictions_come_from_the_same_set(lines in prop::collection::vec(0u64..10_000, 1..400)) {
        let mut c = Cache::new(4096, 4);
        let sets = c.num_sets() as u64;
        let mut inserted = std::collections::HashSet::new();
        for &l in &lines {
            let out = c.access(l, false);
            if let Some((victim, _)) = out.eviction {
                prop_assert!(inserted.contains(&victim), "evicted {victim} never inserted");
                prop_assert_eq!(victim % sets, l % sets, "cross-set eviction");
            }
            inserted.insert(l);
        }
    }

    /// TLB determinism mirrors cache determinism.
    #[test]
    fn tlb_is_deterministic(addrs in prop::collection::vec(0u64..1u64 << 30, 1..200)) {
        let mut a = Tlb::new(16);
        let mut b = Tlb::new(16);
        for &v in &addrs {
            prop_assert_eq!(a.access(v), b.access(v));
        }
    }

    /// Energy scales monotonically with work: simulating more instructions
    /// never costs less energy.
    #[test]
    fn energy_monotone_in_instructions(seed in 0u64..50) {
        let run = |n: u64| {
            let mut sim = ClusterSim::new(CpuConfig::skylake_scaled());
            let mut gen = PhaseGenerator::new(Archetype::Balanced.center(), seed);
            sim.run_interval(&mut gen, n).unwrap().energy
        };
        let small = run(2_000);
        let large = run(8_000);
        prop_assert!(large > small);
    }
}
