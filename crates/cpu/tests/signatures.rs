//! Archetype telemetry signatures: every workload archetype must light up
//! the counters its behaviour implies — the cross-substrate check that
//! generator semantics survive the pipeline model.

use psca_cpu::{ClusterSim, CpuConfig, Mode};
use psca_telemetry::{Event, IntervalSnapshot};
use psca_workloads::{Archetype, PhaseGenerator};

fn snapshot(a: Archetype) -> IntervalSnapshot {
    let mut sim = ClusterSim::new(CpuConfig::skylake_scaled());
    sim.set_mode(Mode::HighPerf);
    let mut gen = PhaseGenerator::new(a.center(), 1234);
    sim.warm_up(&mut gen, 20_000);
    sim.run_interval(&mut gen, 30_000).unwrap().snapshot
}

/// Rate of `e` per retired instruction.
fn per_inst(s: &IntervalSnapshot, e: Event) -> f64 {
    s.get(e) / s.get(Event::InstRetired).max(1e-12)
}

fn argmax_archetype(e: Event) -> Archetype {
    Archetype::ALL
        .iter()
        .copied()
        .max_by(|&a, &b| {
            let va = per_inst(&snapshot(a), e);
            let vb = per_inst(&snapshot(b), e);
            va.partial_cmp(&vb).unwrap_or(std::cmp::Ordering::Equal)
        })
        .unwrap()
}

#[test]
fn branchy_maximizes_mispredictions() {
    assert_eq!(
        argmax_archetype(Event::BranchMispredicts),
        Archetype::Branchy
    );
}

#[test]
fn icache_heavy_maximizes_instruction_cache_misses() {
    // The µop-cache miss *rate* saturates at one per fetched line for any
    // footprint beyond its capacity; the L1I miss rate is what singles out
    // truly large code footprints.
    assert_eq!(
        argmax_archetype(Event::IcacheMisses),
        Archetype::IcacheHeavy
    );
}

#[test]
fn tlb_thrash_combines_high_tlb_pressure_with_modest_cache_misses() {
    // Giant random working sets (MemBound) also thrash the TLB; what makes
    // the TLB-bound archetype distinctive is page pressure *without*
    // comparable LLC pressure.
    let tlb = snapshot(Archetype::TlbThrash);
    let mem = snapshot(Archetype::MemBound);
    assert!(per_inst(&tlb, Event::DtlbMisses) > 0.2);
    assert!(per_inst(&tlb, Event::LlcMisses) < 0.5 * per_inst(&mem, Event::LlcMisses));
}

#[test]
fn store_heavy_maximizes_store_traffic() {
    assert_eq!(
        argmax_archetype(Event::StoresRetired),
        Archetype::StoreHeavy
    );
}

#[test]
fn memory_bound_archetypes_dominate_llc_misses() {
    let top = argmax_archetype(Event::LlcMisses);
    assert!(
        matches!(
            top,
            Archetype::MemBound | Archetype::PointerChase | Archetype::TlbThrash
        ),
        "LLC misses maximized by {top:?}"
    );
}

#[test]
fn simd_kernel_maximizes_simd_ops() {
    assert_eq!(argmax_archetype(Event::SimdOps), Archetype::SimdKernel);
}

#[test]
fn fp_streams_maximize_fma_traffic() {
    let top = argmax_archetype(Event::FpFmaOps);
    assert!(
        matches!(top, Archetype::StreamFpWide | Archetype::StreamFpChain),
        "FMA maximized by {top:?}"
    );
}

#[test]
fn wide_archetypes_have_highest_ready_rates() {
    // Per-cycle µops-ready rate orders the dependence structure.
    let ready = |a: Archetype| snapshot(a).get(Event::UopsReady);
    let wide = ready(Archetype::ScalarIlp).max(ready(Archetype::StreamFpWide));
    let serial = ready(Archetype::DepChain).max(ready(Archetype::StreamFpChain));
    assert!(
        wide > 1.5 * serial,
        "ready-rate separation too weak: wide {wide} vs serial {serial}"
    );
}

#[test]
fn pointer_chase_has_low_mlp() {
    // Chased loads serialize: long-latency loads per instruction high,
    // IPC very low.
    let s = snapshot(Archetype::PointerChase);
    assert!(
        s.ipc() < 0.7,
        "pointer chasing should crawl: IPC {}",
        s.ipc()
    );
    assert!(per_inst(&s, Event::LlcMisses) > 0.001);
}

#[test]
fn every_archetype_produces_nonzero_core_activity() {
    for a in Archetype::ALL {
        let s = snapshot(a);
        assert!(s.ipc() > 0.01, "{a:?} IPC collapsed");
        assert!(s.get(Event::UopsIssued) > 0.0, "{a:?} issued nothing");
        assert!(
            s.get(Event::PhysRegRefCount) > 0.0,
            "{a:?} read no registers"
        );
    }
}
