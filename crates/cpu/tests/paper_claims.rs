//! Tests of the §3 hardware claims: the low-power mode's ~35% power
//! saving, the tens-of-cycles mode switch, and adaptation overheads on
//! the order of 0.1% or less.

use psca_cpu::{ClusterSim, CpuConfig, Mode};
use psca_workloads::{Archetype, PhaseGenerator};

/// Average power (energy/cycle) of a mode across the archetype space.
fn average_power(mode: Mode) -> f64 {
    let mut total_energy = 0.0;
    let mut total_cycles = 0u64;
    for (i, a) in Archetype::ALL.iter().enumerate() {
        let mut sim = ClusterSim::new(CpuConfig::skylake_scaled());
        sim.set_mode(mode);
        let mut gen = PhaseGenerator::new(a.center(), 90 + i as u64);
        sim.warm_up(&mut gen, 20_000);
        let r = sim.run_interval(&mut gen, 30_000).unwrap();
        total_energy += r.energy;
        total_cycles += r.snapshot.cycles;
    }
    total_energy / total_cycles as f64
}

#[test]
fn low_power_mode_saves_about_35_percent_power() {
    let hi = average_power(Mode::HighPerf);
    let lo = average_power(Mode::LowPower);
    let saving = 1.0 - lo / hi;
    assert!(
        (0.25..=0.45).contains(&saving),
        "low-power saving {:.1}% outside the paper's ~35% ballpark",
        100.0 * saving
    );
}

#[test]
fn adaptation_energy_overhead_is_negligible() {
    // Toggling every interval (the worst case) must cost ≲1% energy vs a
    // run that splits the same work between the two static modes; the
    // paper reports worst-case overheads on the order of 0.1%.
    let run = |toggle: bool| {
        let mut sim = ClusterSim::new(CpuConfig::skylake_scaled());
        let mut gen = PhaseGenerator::new(Archetype::Balanced.center(), 7);
        sim.warm_up(&mut gen, 10_000);
        let mut energy = 0.0;
        for i in 0..40 {
            let mode = if toggle {
                if i % 2 == 0 {
                    Mode::HighPerf
                } else {
                    Mode::LowPower
                }
            } else if i < 20 {
                Mode::HighPerf
            } else {
                Mode::LowPower
            };
            sim.set_mode(mode);
            energy += sim.run_interval(&mut gen, 10_000).unwrap().energy;
        }
        energy
    };
    let toggling = run(true);
    let blocked = run(false);
    let overhead = (toggling - blocked).abs() / blocked;
    assert!(
        overhead < 0.05,
        "adaptation overhead {:.2}% is not negligible",
        100.0 * overhead
    );
}

#[test]
fn mode_switch_completes_in_tens_of_cycles() {
    // A switch inserts at most 32 transfer µops → ≤ 8 extra issue cycles
    // on the surviving 4-wide cluster, plus drain: low tens of cycles.
    let mut sim = ClusterSim::new(CpuConfig::skylake_scaled());
    let mut gen = PhaseGenerator::new(Archetype::ScalarIlp.center(), 3);
    sim.warm_up(&mut gen, 20_000);
    let before = sim.run_interval(&mut gen, 10_000).unwrap();
    sim.set_mode(Mode::LowPower);
    let after = sim.run_interval(&mut gen, 10_000).unwrap();
    // The switched interval may be slower because the mode is narrower,
    // but the switch itself must not add more than ~100 cycles beyond
    // the steady-state low-power cost.
    let mut steady = ClusterSim::new(CpuConfig::skylake_scaled());
    steady.set_mode(Mode::LowPower);
    let mut gen2 = PhaseGenerator::new(Archetype::ScalarIlp.center(), 3);
    steady.warm_up(&mut gen2, 20_000);
    let _ = steady.run_interval(&mut gen2, 10_000).unwrap();
    let steady_interval = steady.run_interval(&mut gen2, 10_000).unwrap();
    let switch_cost = after.snapshot.cycles as i64 - steady_interval.snapshot.cycles as i64;
    assert!(
        switch_cost.abs() < 200,
        "switch interval {} vs steady {} cycles (before: {})",
        after.snapshot.cycles,
        steady_interval.snapshot.cycles,
        before.snapshot.cycles
    );
}

#[test]
fn ungating_is_cheap() {
    let mut sim = ClusterSim::new(CpuConfig::skylake_scaled());
    sim.set_mode(Mode::LowPower);
    let mut gen = PhaseGenerator::new(Archetype::DepChain.center(), 5);
    sim.warm_up(&mut gen, 10_000);
    let lo = sim.run_interval(&mut gen, 10_000).unwrap();
    sim.set_mode(Mode::HighPerf); // ungate: "negligible overhead" (§3)
    let hi = sim.run_interval(&mut gen, 10_000).unwrap();
    assert!(hi.snapshot.cycles <= lo.snapshot.cycles + lo.snapshot.cycles / 5);
    let transfers = hi.snapshot.get(psca_telemetry::Event::TransferUops);
    assert_eq!(transfers, 0.0, "lo->hi must not transfer registers");
}
