use psca_cpu::{ClusterSim, CpuConfig, Mode};
use psca_telemetry::Event;
use psca_workloads::{Archetype, PhaseGenerator};

#[test]
#[ignore]
fn diag() {
    for a in [
        Archetype::ScalarIlp,
        Archetype::DepChain,
        Archetype::StreamFpWide,
        Archetype::StreamFpChain,
        Archetype::Balanced,
    ] {
        for mode in [Mode::HighPerf, Mode::LowPower] {
            let mut sim = ClusterSim::new(CpuConfig::skylake_scaled());
            sim.set_mode(mode);
            let mut gen = PhaseGenerator::new(a.center(), 42);
            sim.warm_up(&mut gen, 20_000);
            let r = sim.run_interval(&mut gen, 30_000).unwrap();
            let s = &r.snapshot;
            println!("{a:?} {mode:?}: ipc={:.2} cyc={} misp/kI={:.2} uopcM/kI={:.2} l1dM/kI={:.2} ready={:.2} dep={:.2} stall={:.2} febub={:.3} icf={:.3}",
                r.ipc(), s.cycles,
                s.get(Event::BranchMispredicts)*s.cycles as f64/30.0,
                s.get(Event::UopCacheMisses)*s.cycles as f64/30.0,
                s.get(Event::L1dMisses)*s.cycles as f64/30.0,
                s.get(Event::UopsReady), s.get(Event::UopsStalledOnDep), s.get(Event::StallCount), s.get(Event::FrontEndBubbles), s.get(Event::InterClusterForwards));
        }
    }
}
