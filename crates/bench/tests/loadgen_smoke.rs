//! End-to-end smoke for the open-loop load generator: drive a real
//! daemon, check the summary schema, and feed the result through the
//! SLO verdict — the same round-trip CI runs via `repro loadgen` and
//! `repro slo-check`.

use psca_adapt::{ExperimentConfig, ModelKind};
use psca_bench::loadgen::{self, LoadgenConfig};
use psca_obs::{Json, SloSpec};
use psca_serve::{Daemon, ModelRegistry, ServeConfig};

#[test]
fn loadgen_round_trip_against_live_daemon() {
    let cfg = ExperimentConfig::builder().seed(7).build().unwrap();
    let registry = ModelRegistry::train(cfg, &[ModelKind::BestRf]);
    let daemon = Daemon::start(ServeConfig::default(), registry).expect("bind");
    let addr = daemon.local_addr().to_string();

    let (model, input_dim) = loadgen::discover_model(&addr).expect("model discovery");
    assert_eq!(model, "best-rf");
    assert!(input_dim > 0);

    let summary = loadgen::run(&LoadgenConfig {
        addr: addr.clone(),
        model,
        rps: 40,
        duration_s: 1,
        connections: 2,
        seed: 42,
        input_dim,
    });
    daemon.shutdown();

    assert!(summary.requests >= 30, "ran {} requests", summary.requests);
    assert_eq!(
        summary.errors, 0,
        "loadgen saw errors against a healthy daemon"
    );
    assert_eq!(summary.ok, summary.requests);
    assert_eq!(summary.availability, 1.0);
    assert!(summary.p99_us >= summary.p50_us);
    assert!(!summary.slowest_trace_id.is_empty());

    // The JSON document carries the fields `repro slo-check` reads.
    let doc = Json::parse(&summary.to_json().to_string()).unwrap();
    assert_eq!(
        doc.get("bench").and_then(Json::as_str),
        Some("serve-loadgen")
    );
    for key in ["p99_us", "availability", "requests", "seed"] {
        assert!(doc.get(key).is_some(), "summary JSON missing {key}");
    }

    // A generous spec passes; an absurdly tight one flags p99.
    let loose = SloSpec::parse("p99_us=60000000,availability=0.5")
        .unwrap()
        .unwrap();
    assert!(summary.slo_violations(&loose).is_empty());
    let tight = SloSpec::parse("p99_us=1").unwrap().unwrap();
    assert!(!summary.slo_violations(&tight).is_empty());
}

#[test]
fn loadgen_traffic_is_deterministic_from_seed() {
    // Trace ids are a pure function of (seed, slot): reruns of a seeded
    // loadgen present the daemon with identical trace context.
    let a = loadgen::request_ctx(9, 3);
    let b = loadgen::request_ctx(9, 3);
    assert_eq!(a, b);
    assert_ne!(loadgen::request_ctx(9, 4), a);
    assert_ne!(loadgen::request_ctx(10, 3), a);
}
