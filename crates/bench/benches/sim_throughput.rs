//! Simulator throughput: instructions per second through the clustered
//! core in each mode and for representative archetypes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use psca_cpu::{ClusterSim, CpuConfig, Mode};
use psca_workloads::{Archetype, PhaseGenerator};

fn sim_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_throughput");
    const N: u64 = 50_000;
    group.throughput(Throughput::Elements(N));
    for archetype in [Archetype::Balanced, Archetype::MemBound, Archetype::ScalarIlp] {
        for mode in [Mode::HighPerf, Mode::LowPower] {
            let label = format!("{archetype:?}/{mode}");
            group.bench_with_input(BenchmarkId::new("run_interval", label), &(), |b, _| {
                let mut sim = ClusterSim::new(CpuConfig::skylake_scaled());
                sim.set_mode(mode);
                let mut gen = PhaseGenerator::new(archetype.center(), 1);
                sim.warm_up(&mut gen, 20_000);
                b.iter(|| {
                    let r = sim.run_interval(&mut gen, N).unwrap();
                    criterion::black_box(r.ipc())
                });
            });
        }
    }
    group.finish();
}

fn mode_switch(c: &mut Criterion) {
    c.bench_function("mode_switch_roundtrip", |b| {
        let mut sim = ClusterSim::new(CpuConfig::skylake_scaled());
        let mut gen = PhaseGenerator::new(Archetype::Balanced.center(), 2);
        sim.warm_up(&mut gen, 10_000);
        b.iter(|| {
            sim.set_mode(Mode::LowPower);
            let _ = sim.run_interval(&mut gen, 1_000);
            sim.set_mode(Mode::HighPerf);
            let _ = sim.run_interval(&mut gen, 1_000);
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = sim_throughput, mode_switch
}
criterion_main!(benches);
