//! Simulator throughput: instructions per second through the clustered
//! core in each mode and for representative archetypes.

use criterion::{BenchmarkId, Criterion, Throughput};
use psca_cpu::{ClusterSim, CpuConfig, Mode};
use psca_workloads::{Archetype, PhaseGenerator};

fn sim_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_throughput");
    const N: u64 = 50_000;
    group.throughput(Throughput::Elements(N));
    for archetype in [
        Archetype::Balanced,
        Archetype::MemBound,
        Archetype::ScalarIlp,
    ] {
        for mode in [Mode::HighPerf, Mode::LowPower] {
            let label = format!("{archetype:?}/{mode}");
            group.bench_with_input(BenchmarkId::new("run_interval", label), &(), |b, _| {
                let mut sim = ClusterSim::new(CpuConfig::skylake_scaled());
                sim.set_mode(mode);
                let mut gen = PhaseGenerator::new(archetype.center(), 1);
                sim.warm_up(&mut gen, 20_000);
                b.iter(|| {
                    let r = sim.run_interval(&mut gen, N).unwrap();
                    criterion::black_box(r.ipc())
                });
            });
        }
    }
    group.finish();
}

fn mode_switch(c: &mut Criterion) {
    c.bench_function("mode_switch_roundtrip", |b| {
        let mut sim = ClusterSim::new(CpuConfig::skylake_scaled());
        let mut gen = PhaseGenerator::new(Archetype::Balanced.center(), 2);
        sim.warm_up(&mut gen, 10_000);
        b.iter(|| {
            sim.set_mode(Mode::LowPower);
            let _ = sim.run_interval(&mut gen, 1_000);
            sim.set_mode(Mode::HighPerf);
            let _ = sim.run_interval(&mut gen, 1_000);
        });
    });
}

/// Custom harness entry (instead of `criterion_main!`) so the measured
/// simulated-instructions/sec baseline lands in a `target/obs/` run
/// report alongside the normal criterion output — including the
/// per-interval `cpu.sim.ipc` time-series the simulator records, which
/// `RunReport::write` serializes into the JSON plus a `.series.csv`
/// artifact.
fn main() {
    // Scope the registry to this bench so the recorded IPC series covers
    // exactly the benchmarked intervals.
    psca_obs::reset_all();
    let mut criterion = Criterion::default().sample_size(10);
    let mut report = psca_obs::RunReport::new("bench-sim_throughput");
    sim_throughput(&mut criterion);
    mode_switch(&mut criterion);
    let mut best = 0.0f64;
    for m in criterion.measurements() {
        report.add_phase(&m.id, m.mean_s);
        if let Some(eps) = m.elements_per_sec() {
            report.set(&format!("sim_insts_per_sec.{}", m.id), eps);
            best = best.max(eps);
        }
    }
    if best > 0.0 {
        report.set("sim_insts_per_sec", best);
    }
    // cargo runs benches with cwd = the package dir, so anchor the
    // artifact at the workspace target dir rather than a cwd-relative
    // `target/obs`.
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/obs");
    match report.write(&dir) {
        Ok(path) => {
            eprintln!("[bench] run report: {}", path.display());
            let csv = path.with_extension("").with_extension("series.csv");
            if csv.exists() {
                eprintln!("[bench] ipc time-series: {}", csv.display());
            }
        }
        Err(e) => eprintln!("[bench] failed to write run report: {e}"),
    }
    // Machine-readable baseline at the repo root, tracked in git so perf
    // regressions show up in review (docs/PERFORMANCE.md). The baseline
    // measurement is the shared suite runner, so `cargo bench` and
    // `repro bench` write the same unified schema from the same code.
    use psca_bench::suite::{self, BenchOpts};
    let result = suite::run_sim_throughput(&BenchOpts::default());
    let path = suite::baseline_path("sim_throughput");
    match std::fs::write(&path, format!("{}\n", result.to_json())) {
        Ok(()) => eprintln!("[bench] baseline: {}", path.display()),
        Err(e) => eprintln!("[bench] failed to write {}: {e}", path.display()),
    }
}
