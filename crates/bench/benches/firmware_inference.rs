//! Firmware inference latency per model class — the host-side analogue of
//! Table 3's operation counts (relative ordering should match).

use criterion::{criterion_group, criterion_main, Criterion};
use psca_ml::{
    Dataset, LogisticRegression, Matrix, Mlp, MlpConfig, RandomForest, RandomForestConfig,
};
use psca_uc::FirmwareModel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn training_set(n: usize, d: usize) -> Dataset {
    let mut rng = StdRng::seed_from_u64(1);
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..d).map(|_| rng.gen::<f64>()).collect())
        .collect();
    let labels: Vec<u8> = rows
        .iter()
        .map(|r| (r.iter().sum::<f64>() > d as f64 / 2.0) as u8)
        .collect();
    let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
    Dataset::new(Matrix::from_rows(&refs), labels, vec![0; n])
}

fn firmware_inference(c: &mut Criterion) {
    let data = training_set(600, 12);
    let x = vec![0.4; 12];
    let models = [
        (
            "best_rf_8x8",
            FirmwareModel::Forest(RandomForest::fit(&RandomForestConfig::best_rf(), &data, 2)),
        ),
        (
            "best_mlp_8_8_4",
            FirmwareModel::Mlp(Mlp::fit(&MlpConfig::best_mlp(), &data, 3)),
        ),
        (
            "charstar_mlp_10",
            FirmwareModel::Mlp(Mlp::fit(&MlpConfig::charstar(), &data, 4)),
        ),
        (
            "logistic",
            FirmwareModel::Logistic(LogisticRegression::fit(&data, 1e-4, 100)),
        ),
    ];
    let mut group = c.benchmark_group("firmware_inference");
    for (name, fw) in &models {
        group.bench_function(*name, |b| {
            b.iter(|| criterion::black_box(fw.predict(criterion::black_box(&x)).unwrap()))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = firmware_inference
}
criterion_main!(benches);
