//! Sweep-engine throughput: HDTR corpus cells/sec serial vs parallel,
//! plus cold-vs-warm result-cache timing.
//!
//! Not a criterion bench: each measurement is one full corpus build, so a
//! single timed pass per configuration (after a warmup pass) is both
//! faster and more representative than statistical sampling. Results land
//! in `BENCH_sweep.json` at the repo root, tracked in git as the perf
//! baseline (docs/PERFORMANCE.md).

use psca_adapt::{CorpusTelemetry, ExperimentConfig};
use std::time::Instant;

/// A corpus large enough to amortize pool startup but quick enough for a
/// CI smoke run (~100 cells).
fn bench_cfg() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::quick();
    cfg.hdtr_apps = 48;
    cfg.hdtr_traces_per_app = 2;
    cfg.sweep_cache = None;
    cfg
}

/// One timed HDTR corpus build; returns `(seconds, cells)`.
fn time_hdtr(cfg: &ExperimentConfig) -> (f64, usize) {
    let t0 = Instant::now();
    let corpus = CorpusTelemetry::hdtr(cfg);
    (t0.elapsed().as_secs_f64(), corpus.traces.len())
}

fn main() {
    psca_obs::reset_all();
    let jobs = psca_exec::resolve_jobs(0);

    // Warmup pass: touches the allocator and page cache so the serial
    // baseline isn't penalized for going first.
    let mut warm_cfg = bench_cfg();
    warm_cfg.jobs = 1;
    let _ = time_hdtr(&warm_cfg);

    let mut serial_cfg = bench_cfg();
    serial_cfg.jobs = 1;
    let (serial_s, cells) = time_hdtr(&serial_cfg);

    let mut par_cfg = bench_cfg();
    par_cfg.jobs = 0; // auto
    let (par_s, _) = time_hdtr(&par_cfg);

    // Cache cold vs warm, in a scratch dir under target/ so repeated bench
    // runs start cold.
    let cache_dir =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/sweep-cache-bench");
    let _ = std::fs::remove_dir_all(&cache_dir);
    let mut cached_cfg = bench_cfg();
    cached_cfg.jobs = 0;
    cached_cfg.sweep_cache = Some(cache_dir.clone());
    let (cold_s, _) = time_hdtr(&cached_cfg);
    let (cache_warm_s, _) = time_hdtr(&cached_cfg);
    let _ = std::fs::remove_dir_all(&cache_dir);

    let serial_cps = cells as f64 / serial_s.max(f64::MIN_POSITIVE);
    let par_cps = cells as f64 / par_s.max(f64::MIN_POSITIVE);
    eprintln!("[bench] {cells} cells, jobs={jobs}");
    eprintln!("[bench] serial:   {serial_s:.3}s ({serial_cps:.1} cells/s)");
    eprintln!(
        "[bench] parallel: {par_s:.3}s ({par_cps:.1} cells/s, {:.2}x)",
        serial_s / par_s.max(f64::MIN_POSITIVE)
    );
    eprintln!(
        "[bench] cache:    cold {cold_s:.3}s, warm {cache_warm_s:.3}s ({:.1}x)",
        cold_s / cache_warm_s.max(f64::MIN_POSITIVE)
    );

    let json = format!(
        "{{\n  \"bench\": \"sweep_throughput\",\n  \"cells\": {cells},\n  \"jobs\": {jobs},\n  \
         \"serial_cells_per_sec\": {serial_cps:.2},\n  \
         \"parallel_cells_per_sec\": {par_cps:.2},\n  \
         \"speedup_vs_serial\": {:.3},\n  \
         \"cache_cold_s\": {cold_s:.3},\n  \"cache_warm_s\": {cache_warm_s:.3},\n  \
         \"cache_warm_speedup\": {:.1}\n}}\n",
        serial_s / par_s.max(f64::MIN_POSITIVE),
        cold_s / cache_warm_s.max(f64::MIN_POSITIVE),
    );
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    match std::fs::write(root.join("BENCH_sweep.json"), json) {
        Ok(()) => eprintln!("[bench] baseline: BENCH_sweep.json"),
        Err(e) => eprintln!("[bench] failed to write BENCH_sweep.json: {e}"),
    }
}
