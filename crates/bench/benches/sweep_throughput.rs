//! Sweep-engine throughput: HDTR corpus cells/sec serial vs parallel,
//! plus cold-vs-warm result-cache timing.
//!
//! Not a criterion bench: each measurement is one full corpus build, so a
//! single timed pass per configuration (after a warmup pass) is both
//! faster and more representative than statistical sampling. The
//! measurement itself lives in [`psca_bench::suite::run_sweep`] — this
//! harness and `repro bench` share it — and the result lands in
//! `BENCH_sweep.json` at the repo root in the unified bench schema,
//! tracked in git as the perf baseline (docs/PERFORMANCE.md).

use psca_bench::suite::{self, BenchOpts};

fn main() {
    psca_obs::reset_all();
    let result = suite::run_sweep(&BenchOpts::default());
    let m = |k: &str| result.metrics.get(k).copied().unwrap_or(0.0);
    eprintln!("[bench] {} cells, jobs={}", m("cells"), result.jobs);
    eprintln!(
        "[bench] serial:   {:.1} cells/s; parallel: {:.1} cells/s ({:.2}x)",
        m("serial_cells_per_sec"),
        m("parallel_cells_per_sec"),
        m("speedup_vs_serial")
    );
    eprintln!(
        "[bench] cache:    cold {:.3}s, warm {:.3}s ({:.1}x)",
        m("cache_cold_s"),
        m("cache_warm_s"),
        m("cache_warm_speedup")
    );
    let path = suite::baseline_path("sweep");
    match std::fs::write(&path, format!("{}\n", result.to_json())) {
        Ok(()) => eprintln!("[bench] baseline: {}", path.display()),
        Err(e) => eprintln!("[bench] failed to write {}: {e}", path.display()),
    }
}
