//! Training speed — the paper reports Best-RF training in 9 s and
//! Best-MLP in 87 s on its 626 MB corpus; this bench tracks the same
//! ratio at reproduction scale.

use criterion::{criterion_group, criterion_main, Criterion};
use psca_ml::{Dataset, Matrix, Mlp, MlpConfig, RandomForest, RandomForestConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn training_set(n: usize, d: usize) -> Dataset {
    let mut rng = StdRng::seed_from_u64(9);
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..d).map(|_| rng.gen::<f64>()).collect())
        .collect();
    let labels: Vec<u8> = rows
        .iter()
        .map(|r| ((r[0] + r[3] * 0.5 - r[7]) > 0.2) as u8)
        .collect();
    let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
    Dataset::new(Matrix::from_rows(&refs), labels, vec![0; n])
}

fn training(c: &mut Criterion) {
    let data = training_set(2_000, 12);
    let mut group = c.benchmark_group("training");
    group.sample_size(10);
    group.bench_function("best_rf_fit", |b| {
        b.iter(|| RandomForest::fit(&RandomForestConfig::best_rf(), &data, 1))
    });
    group.bench_function("best_mlp_fit", |b| {
        let cfg = MlpConfig {
            epochs: 10,
            ..MlpConfig::best_mlp()
        };
        b.iter(|| Mlp::fit(&cfg, &data, 1))
    });
    group.finish();
}

criterion_group!(benches, training);
criterion_main!(benches);
