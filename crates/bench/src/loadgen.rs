//! Seeded open-loop load generator for the psca-serve daemon.
//!
//! Drives `POST /v1/predict` at a fixed request rate with a *fixed
//! schedule*: request `k` is due at `k / rps` seconds after start,
//! regardless of how long earlier requests took. Latency is measured
//! from the **scheduled** send time, not the actual one, so a stalled
//! server shows up as growing latency instead of silently lowering the
//! offered rate (the coordinated-omission trap).
//!
//! Everything is seeded: feature rows come from a SplitMix64 stream and
//! request `k` carries the deterministic `traceparent`
//! `00-<trace(seed,k)>-<span>-01`, so a given `(seed, rps, duration)`
//! tuple offers bit-identical traffic on every run and any slow request
//! in the summary can be joined against the daemon's access log, latency
//! exemplar, and flight recorder by trace id.
//!
//! The output is a [`LoadgenSummary`]; `repro loadgen --out
//! BENCH_serve.json` persists it and `repro slo-check` turns it into a
//! CI exit code via [`psca_obs::SloSpec::check_values`].

use psca_obs::{Json, SloSpec, TraceCtx};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// SplitMix64 step (the same generator family `psca_obs::ctx` uses).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A unit-interval sample from a seeded stream.
fn unit(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// The deterministic trace context attached to request `k` of a run
/// seeded with `seed` (exposed so tests can predict the ids).
pub fn request_ctx(seed: u64, k: u64) -> TraceCtx {
    let mut state = seed ^ k.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let mut word = || loop {
        let v = splitmix64(&mut state);
        if v != 0 {
            break v;
        }
    };
    let hi = word() as u128;
    let lo = word() as u128;
    TraceCtx {
        trace_id: (hi << 64) | lo,
        span_id: word(),
    }
}

/// Load-generator parameters.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Daemon address (`host:port`).
    pub addr: String,
    /// Model slug to score against.
    pub model: String,
    /// Offered request rate, requests per second.
    pub rps: u64,
    /// Run length in seconds (requests = `rps * duration_s`).
    pub duration_s: u64,
    /// Client connections sending in parallel.
    pub connections: usize,
    /// Seed for rows and trace ids.
    pub seed: u64,
    /// Feature-vector width (from `GET /v1/models`).
    pub input_dim: usize,
}

impl Default for LoadgenConfig {
    fn default() -> LoadgenConfig {
        LoadgenConfig {
            addr: "127.0.0.1:8186".to_string(),
            model: "best-rf".to_string(),
            rps: 50,
            duration_s: 2,
            connections: 4,
            seed: 1,
            input_dim: 0,
        }
    }
}

/// One request's outcome as seen by the generator.
#[derive(Debug, Clone)]
struct Sample {
    /// Latency from the *scheduled* send time, microseconds.
    latency_us: u64,
    /// HTTP status (0 when the connection failed outright).
    status: u16,
}

/// Aggregate result of one load-generator run.
#[derive(Debug, Clone)]
pub struct LoadgenSummary {
    /// Requests offered (and attempted).
    pub requests: u64,
    /// Responses with a 2xx status.
    pub ok: u64,
    /// Responses with a 5xx status or a failed connection.
    pub errors: u64,
    /// Fraction of non-error responses.
    pub availability: f64,
    /// Median latency from scheduled send, microseconds.
    pub p50_us: u64,
    /// 95th-percentile latency, microseconds.
    pub p95_us: u64,
    /// 99th-percentile latency, microseconds.
    pub p99_us: u64,
    /// Worst latency, microseconds.
    pub max_us: u64,
    /// Offered rate (the schedule), requests per second.
    pub offered_rps: u64,
    /// Completed-request throughput actually achieved.
    pub achieved_rps: f64,
    /// Wall-clock run length, seconds.
    pub wall_s: f64,
    /// Seed the run was driven with.
    pub seed: u64,
    /// Trace id (32 hex digits) of the slowest request, for joining
    /// against the daemon's access log and flight recorder.
    pub slowest_trace_id: String,
}

impl LoadgenSummary {
    /// JSON rendering (the `BENCH_serve.json` schema).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("bench", "serve-loadgen".into()),
            ("requests", self.requests.into()),
            ("ok", self.ok.into()),
            ("errors", self.errors.into()),
            ("availability", self.availability.into()),
            ("p50_us", self.p50_us.into()),
            ("p95_us", self.p95_us.into()),
            ("p99_us", self.p99_us.into()),
            ("max_us", self.max_us.into()),
            ("offered_rps", self.offered_rps.into()),
            ("achieved_rps", self.achieved_rps.into()),
            ("wall_s", self.wall_s.into()),
            ("seed", self.seed.into()),
            ("slowest_trace_id", self.slowest_trace_id.as_str().into()),
        ])
    }

    /// Evaluates `spec` against this run (latency + availability; the
    /// `rsv_floor` key needs a closed-loop result and is skipped here).
    pub fn slo_violations(&self, spec: &SloSpec) -> Vec<String> {
        spec.check_values(Some(self.p99_us as f64), Some(self.availability), None)
    }
}

/// Renders one predict request body for schedule slot `k`.
fn request_body(cfg: &LoadgenConfig, k: u64) -> String {
    let mut state = cfg.seed ^ k.wrapping_mul(0xD6E8_FEB8_6659_FD93);
    let row: Vec<String> = (0..cfg.input_dim)
        .map(|_| format!("{:.6}", unit(&mut state)))
        .collect();
    format!(
        "{{\"model\":\"{}\",\"rows\":[[{}]]}}",
        cfg.model,
        row.join(",")
    )
}

/// Sends one HTTP request (`Connection: close`) and returns the status.
fn send_request(addr: &str, method: &str, path: &str, traceparent: &str, body: &str) -> u16 {
    let Ok(mut stream) = TcpStream::connect(addr) else {
        return 0;
    };
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\ntraceparent: {traceparent}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    if stream.write_all(head.as_bytes()).is_err() || stream.write_all(body.as_bytes()).is_err() {
        return 0;
    }
    let mut response = Vec::new();
    if stream.read_to_end(&mut response).is_err() || response.is_empty() {
        return 0;
    }
    parse_status(&response)
}

/// Extracts the status code from an HTTP/1.1 response head.
fn parse_status(response: &[u8]) -> u16 {
    let line_end = response
        .iter()
        .position(|&b| b == b'\r')
        .unwrap_or(response.len());
    let line = String::from_utf8_lossy(&response[..line_end]);
    line.split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

/// Fetches `GET /v1/models` and returns `(first_model_slug, input_dim)`;
/// used to auto-fill [`LoadgenConfig`] before a run.
///
/// # Errors
/// Returns a human-readable message when the daemon is unreachable or
/// the document has no models.
pub fn discover_model(addr: &str) -> Result<(String, usize), String> {
    let mut stream =
        TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let head = format!("GET /v1/models HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    stream
        .write_all(head.as_bytes())
        .map_err(|e| format!("write to {addr} failed: {e}"))?;
    let mut response = Vec::new();
    stream
        .read_to_end(&mut response)
        .map_err(|e| format!("read from {addr} failed: {e}"))?;
    let text = String::from_utf8_lossy(&response);
    let body = text
        .split_once("\r\n\r\n")
        .map(|(_, b)| b)
        .ok_or("malformed /v1/models response")?;
    let doc = Json::parse(body).map_err(|e| format!("bad /v1/models JSON: {e}"))?;
    let models = doc
        .get("models")
        .and_then(Json::as_arr)
        .ok_or("no models array in /v1/models")?;
    let first = models.first().ok_or("daemon has no models loaded")?;
    let slug = first
        .get("name")
        .and_then(Json::as_str)
        .ok_or("model entry without a name")?
        .to_string();
    let dim = first
        .get("input_dim_hi")
        .and_then(Json::as_u64)
        .ok_or("model entry without input_dim_hi")? as usize;
    Ok((slug, dim))
}

/// Runs the open-loop schedule and aggregates the outcome.
///
/// Workers split the schedule round-robin; each sleeps until slot `k`'s
/// due time, fires, and attributes the full (due-to-response) time to
/// that slot.
pub fn run(cfg: &LoadgenConfig) -> LoadgenSummary {
    let total = cfg.rps * cfg.duration_s;
    let interval = Duration::from_nanos(1_000_000_000 / cfg.rps.max(1));
    let workers = cfg.connections.clamp(1, 64).min(total.max(1) as usize);
    let samples: Mutex<Vec<(u64, Sample)>> = Mutex::new(Vec::with_capacity(total as usize));
    let start = Instant::now();
    std::thread::scope(|scope| {
        for w in 0..workers {
            let samples = &samples;
            scope.spawn(move || {
                let mut k = w as u64;
                while k < total {
                    let due = interval * (k as u32);
                    let now = start.elapsed();
                    if due > now {
                        std::thread::sleep(due - now);
                    }
                    let ctx = request_ctx(cfg.seed, k);
                    let status = send_request(
                        &cfg.addr,
                        "POST",
                        "/v1/predict",
                        &ctx.to_traceparent(),
                        &request_body(cfg, k),
                    );
                    let latency_us = start
                        .elapsed()
                        .saturating_sub(due)
                        .as_micros()
                        .min(u128::from(u64::MAX)) as u64;
                    samples
                        .lock()
                        .unwrap()
                        .push((k, Sample { latency_us, status }));
                    k += workers as u64;
                }
            });
        }
    });
    let wall_s = start.elapsed().as_secs_f64();
    let samples = samples.into_inner().unwrap();
    summarize(cfg, &samples, wall_s)
}

fn summarize(cfg: &LoadgenConfig, samples: &[(u64, Sample)], wall_s: f64) -> LoadgenSummary {
    let requests = samples.len() as u64;
    let ok = samples
        .iter()
        .filter(|(_, s)| (200..300).contains(&s.status))
        .count() as u64;
    let errors = samples
        .iter()
        .filter(|(_, s)| s.status == 0 || s.status >= 500)
        .count() as u64;
    let mut latencies: Vec<u64> = samples.iter().map(|(_, s)| s.latency_us).collect();
    latencies.sort_unstable();
    let q = |frac: f64| -> u64 {
        if latencies.is_empty() {
            return 0;
        }
        let rank = ((latencies.len() as f64) * frac).ceil() as usize;
        latencies[rank.saturating_sub(1).min(latencies.len() - 1)]
    };
    let slowest = samples
        .iter()
        .max_by_key(|(_, s)| s.latency_us)
        .map(|(k, _)| request_ctx(cfg.seed, *k).trace_id_hex())
        .unwrap_or_default();
    LoadgenSummary {
        requests,
        ok,
        errors,
        availability: if requests > 0 {
            1.0 - errors as f64 / requests as f64
        } else {
            1.0
        },
        p50_us: q(0.50),
        p95_us: q(0.95),
        p99_us: q(0.99),
        max_us: latencies.last().copied().unwrap_or(0),
        offered_rps: cfg.rps,
        achieved_rps: if wall_s > 0.0 {
            requests as f64 / wall_s
        } else {
            0.0
        },
        wall_s,
        seed: cfg.seed,
        slowest_trace_id: slowest,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_ctx_is_deterministic_and_valid() {
        let a = request_ctx(7, 3);
        let b = request_ctx(7, 3);
        assert_eq!(a, b);
        assert_ne!(a, request_ctx(7, 4));
        assert_ne!(a, request_ctx(8, 3));
        // Round-trips through the header grammar.
        assert_eq!(TraceCtx::parse_traceparent(&a.to_traceparent()), Some(a));
    }

    #[test]
    fn request_bodies_are_seed_stable() {
        let cfg = LoadgenConfig {
            input_dim: 4,
            ..LoadgenConfig::default()
        };
        assert_eq!(request_body(&cfg, 5), request_body(&cfg, 5));
        assert_ne!(request_body(&cfg, 5), request_body(&cfg, 6));
        assert!(request_body(&cfg, 0).contains("\"model\":\"best-rf\""));
    }

    #[test]
    fn parse_status_reads_the_code() {
        assert_eq!(parse_status(b"HTTP/1.1 200 OK\r\n\r\n"), 200);
        assert_eq!(parse_status(b"HTTP/1.1 503 Service Unavailable\r\n"), 503);
        assert_eq!(parse_status(b"garbage"), 0);
    }

    #[test]
    fn summary_percentiles_and_verdict() {
        let cfg = LoadgenConfig::default();
        let samples: Vec<(u64, Sample)> = (0..100)
            .map(|k| {
                (
                    k,
                    Sample {
                        latency_us: (k + 1) * 100,
                        status: if k < 95 { 200 } else { 503 },
                    },
                )
            })
            .collect();
        let s = summarize(&cfg, &samples, 2.0);
        assert_eq!(s.requests, 100);
        assert_eq!(s.ok, 95);
        assert_eq!(s.errors, 5);
        assert!((s.availability - 0.95).abs() < 1e-9);
        assert_eq!(s.p50_us, 5_000);
        assert_eq!(s.p99_us, 9_900);
        assert_eq!(s.max_us, 10_000);
        assert_eq!(s.achieved_rps, 50.0);
        // The slowest request's trace id is the schedule's last slot.
        assert_eq!(s.slowest_trace_id, request_ctx(cfg.seed, 99).trace_id_hex());
        // A 3-nines spec fails on availability; a loose one passes on
        // latency but still fails availability.
        let strict = SloSpec::default();
        assert!(!s.slo_violations(&strict).is_empty());
        let doc = s.to_json();
        assert_eq!(doc.get("p99_us").and_then(Json::as_u64), Some(9_900));
        assert_eq!(doc.get("requests").and_then(Json::as_u64), Some(100));
    }
}
