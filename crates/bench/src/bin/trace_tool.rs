//! Trace tooling: record synthetic workloads to `.pstr` files, inspect
//! them, and replay them through the cluster simulator — the §3.2
//! customer-side workflow ("customers can trace new applications they
//! wish to further optimize on-site; these traces are replayed on real
//! hardware to generate telemetry and labels for retraining").
//!
//! ```text
//! trace-tool record <out.pstr> --bench 654.roms_s --input 1 --insts 200000
//! trace-tool stats  <in.pstr>
//! trace-tool replay <in.pstr> [--low-power]
//! ```
//!
//! Observability flags (any subcommand): `--trace-out <path.json>`
//! records a Perfetto trace of the invocation; `--serve-metrics` exposes
//! `/metrics` + `/healthz` + `/report` (address from `PSCA_METRICS_ADDR`,
//! default `127.0.0.1:9185`).

use psca_cpu::{ClusterSim, CpuConfig, Mode, RunSummary};
use psca_trace::{file, TraceSource, TraceStats};
use psca_workloads::spec::spec_suite;
use psca_workloads::{hdtr_corpus, ApplicationModel, Category};
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage:");
    eprintln!("  trace-tool record <out.pstr> [--bench NAME | --app SEED] [--input N] [--insts N]");
    eprintln!("  trace-tool stats  <in.pstr>");
    eprintln!("  trace-tool replay <in.pstr> [--low-power] [--interval N]");
    ExitCode::from(2)
}

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() -> ExitCode {
    psca_obs::init_from_env();
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(path) = arg_value(&args, "--trace-out") {
        psca_obs::trace::enable(&path);
    }
    if args.iter().any(|a| a == "--serve-metrics") {
        let addr = std::env::var("PSCA_METRICS_ADDR").unwrap_or_else(|_| "127.0.0.1:9185".into());
        psca_obs::exporter::serve(&addr);
    }
    let Some(cmd) = args.first() else {
        return usage();
    };
    // Scope the top-level span so it drops (and lands in the trace)
    // before the recorder is finalized below.
    let code = {
        let _span = psca_obs::SpanTimer::start(&format!("trace_tool.{cmd}"));
        match cmd.as_str() {
            "record" => record(&args),
            "stats" => stats(&args),
            "replay" => replay(&args),
            _ => usage(),
        }
    };
    if let Some(path) = psca_obs::trace::finish() {
        eprintln!("[trace-tool] trace: {}", path.display());
    }
    psca_obs::exporter::shutdown_global();
    code
}

fn record(args: &[String]) -> ExitCode {
    let Some(path) = args.get(1) else {
        return usage();
    };
    let input: u64 = arg_value(args, "--input")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let insts: u64 = arg_value(args, "--insts")
        .and_then(|v| v.parse().ok())
        .unwrap_or(200_000);
    let mut source: Box<dyn TraceSource> = if let Some(bench) = arg_value(args, "--bench") {
        let suite = spec_suite(0x5bec, 200_000);
        let Some(app) = suite.iter().find(|a| a.bench.name == bench) else {
            eprintln!(
                "unknown benchmark '{bench}'; known: {:?}",
                suite.iter().map(|a| a.bench.name).collect::<Vec<_>>()
            );
            return ExitCode::from(2);
        };
        Box::new(app.app.trace(input))
    } else if let Some(seed) = arg_value(args, "--app") {
        let seed: u64 = seed.parse().unwrap_or(1);
        let app = ApplicationModel::synth(format!("app-{seed}"), Category::HpcPerf, seed, 100_000);
        Box::new(app.trace(input))
    } else {
        let corpus = hdtr_corpus(1, 1, 100_000);
        Box::new(corpus[0].app.trace(input))
    };
    let out = match File::create(path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("cannot create {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut writer = BufWriter::new(out);
    match file::write_trace(&mut source, insts, &mut writer) {
        Ok(n) => {
            println!("recorded {n} instructions to {path}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("record failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn open_trace(path: &str) -> Result<file::TraceFileReader<BufReader<File>>, String> {
    let f = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    file::TraceFileReader::open(BufReader::new(f)).map_err(|e| e.to_string())
}

fn stats(args: &[String]) -> ExitCode {
    let Some(path) = args.get(1) else {
        return usage();
    };
    let mut reader = match open_trace(path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    println!("{path}: {} instructions", reader.remaining());
    let stats = TraceStats::from_source(&mut reader);
    println!("  memory ops: {:>5.1}%", 100.0 * stats.mem_fraction());
    println!("  branches:   {:>5.1}%", 100.0 * stats.branch_fraction());
    println!("  fp/simd:    {:>5.1}%", 100.0 * stats.fp_fraction());
    println!("  distinct 64B data lines: {}", stats.distinct_lines);
    if let Some(e) = reader.error() {
        eprintln!("  warning: trace truncated: {e}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn replay(args: &[String]) -> ExitCode {
    let Some(path) = args.get(1) else {
        return usage();
    };
    let interval: u64 = arg_value(args, "--interval")
        .and_then(|v| v.parse().ok())
        .unwrap_or(10_000);
    let mut reader = match open_trace(path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let mut sim = ClusterSim::new(CpuConfig::skylake_scaled());
    if args.iter().any(|a| a == "--low-power") {
        sim.set_mode(Mode::LowPower);
    }
    println!("replaying {path} in {} mode...", sim.mode());
    let mut report = psca_obs::RunReport::new(&format!(
        "replay-{}",
        std::path::Path::new(path)
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("trace")
    ));
    let mut summary = RunSummary::new();
    {
        let guard = report.phase("replay");
        while let Some(r) = sim.run_interval(&mut reader, interval) {
            summary.add(&r);
        }
        guard.finish();
    }
    print!("{summary}");
    let snap = psca_obs::snapshot();
    let insts = snap
        .counters
        .get("cpu.sim.instructions")
        .copied()
        .unwrap_or(0);
    let wall = report.total_wall_s();
    report.set("sim_instructions", insts);
    if wall > 0.0 {
        report.set("sim_insts_per_sec", insts as f64 / wall);
    }
    match report.write_default() {
        Ok(p) => eprintln!("[trace-tool] run report: {}", p.display()),
        Err(e) => eprintln!("[trace-tool] failed to write run report: {e}"),
    }
    psca_obs::flush();
    ExitCode::SUCCESS
}
