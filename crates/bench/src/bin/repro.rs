//! Regenerates the paper's tables and figures.
//!
//! ```text
//! repro -- all                # everything, full scaled config (release!)
//! repro -- fig8 fig9          # specific experiments
//! repro -- table5 --quick     # seconds-scale config for smoke testing
//! ```

use psca_adapt::experiments::{ablations, fig10, fig4, fig5, fig6, fig7, fig8, fig9};
use psca_adapt::experiments::{table1, table2, table3, table4, table5, table6};
use psca_adapt::ExperimentConfig;
use psca_bench::{Corpora, EXPERIMENTS};
use psca_obs::RunReport;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let mut wanted: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .cloned()
        .collect();
    if wanted.is_empty() || wanted.iter().any(|w| w == "all") {
        wanted = EXPERIMENTS.iter().map(|s| s.to_string()).collect();
    }
    let cfg = if quick {
        ExperimentConfig::quick()
    } else {
        ExperimentConfig::full()
    };
    eprintln!(
        "[repro] config: {} (interval {} insts, {} HDTR apps, SLA P={:.2})",
        if quick { "quick" } else { "full" },
        cfg.interval_insts,
        cfg.hdtr_apps,
        cfg.sla.p_sla
    );
    psca_obs::init_from_env();
    let run_id = format!(
        "repro-{}{}",
        if quick { "quick" } else { "full" },
        if wanted.len() == EXPERIMENTS.len() {
            String::new()
        } else {
            format!("-{}", wanted.join("+"))
        }
    );
    let mut report = RunReport::new(&run_id);
    let mut corpora = Corpora::new();
    for id in &wanted {
        let _span = psca_obs::SpanTimer::start(&format!("repro.{id}"));
        let t0 = Instant::now();
        match id.as_str() {
            "table1" => println!("{}", table1::run(&cfg)),
            "table2" => println!("{}", table2::run(&cfg)),
            "table3" => {
                let hdtr = corpora.hdtr(&cfg).clone();
                println!("{}", table3::run(&cfg, &hdtr));
            }
            "table4" => {
                let hdtr = corpora.hdtr(&cfg).clone();
                println!("{}", table4::run(&cfg, &hdtr));
            }
            "table5" => {
                let hdtr = corpora.hdtr(&cfg).clone();
                let spec = corpora.spec(&cfg).clone();
                println!("{}", table5::run(&cfg, &hdtr, &spec));
            }
            "table6" => {
                let hdtr = corpora.hdtr(&cfg).clone();
                let spec = corpora.spec(&cfg).clone();
                println!("{}", table6::run(&cfg, &hdtr, &spec));
            }
            "fig4" => {
                let hdtr = corpora.hdtr(&cfg).clone();
                println!("{}", fig4::run(&cfg, &hdtr));
            }
            "fig5" => {
                let hdtr = corpora.hdtr(&cfg).clone();
                println!("{}", fig5::run(&cfg, &hdtr));
            }
            "fig6" => {
                let hdtr = corpora.hdtr(&cfg).clone();
                println!("{}", fig6::run(&cfg, &hdtr));
            }
            "fig7" => {
                let spec = corpora.spec(&cfg).clone();
                let f7 = fig7::run(&cfg, &spec);
                println!("{f7}");
                let rows: Vec<(String, f64)> = f7.per_benchmark.clone();
                println!(
                    "{}",
                    psca_bench::chart::bar_chart(
                        "ideal low-power residency",
                        &rows,
                        40,
                        |v| format!("{:.1}%", 100.0 * v)
                    )
                );
            }
            "fig8" => {
                let hdtr = corpora.hdtr(&cfg).clone();
                let spec = corpora.spec(&cfg).clone();
                let f8 = fig8::run(&cfg, &hdtr, &spec);
                println!("{f8}");
                let ppw: Vec<(String, f64)> = f8
                    .rows
                    .iter()
                    .map(|r| (r.kind.name().to_string(), r.overall.ppw_gain))
                    .collect();
                let rsv: Vec<(String, f64)> = f8
                    .rows
                    .iter()
                    .map(|r| (r.kind.name().to_string(), r.overall.rsv))
                    .collect();
                println!(
                    "{}",
                    psca_bench::chart::bar_chart("PPW gain", &ppw, 40, |v| format!(
                        "{:.1}%",
                        100.0 * v
                    ))
                );
                println!(
                    "{}",
                    psca_bench::chart::bar_chart("RSV", &rsv, 40, |v| format!("{:.2}%", 100.0 * v))
                );
            }
            "fig9" => {
                let hdtr = corpora.hdtr(&cfg).clone();
                let spec = corpora.spec(&cfg).clone();
                let f9 = fig9::run(&cfg, &hdtr, &spec);
                println!("{f9}");
                let rsv: Vec<(String, f64)> = f9
                    .rows
                    .iter()
                    .map(|r| (r.name.clone(), r.charstar.rsv))
                    .collect();
                println!(
                    "{}",
                    psca_bench::chart::bar_chart(
                        "CHARSTAR per-benchmark RSV (the blindspot exhibit)",
                        &rsv,
                        40,
                        |v| format!("{:.1}%", 100.0 * v)
                    )
                );
            }
            "fig10" => {
                let hdtr = corpora.hdtr(&cfg).clone();
                let spec = corpora.spec(&cfg).clone();
                println!("{}", fig10::run(&cfg, &hdtr, &spec));
            }
            "ablate-steering" => println!("{}", ablations::steering(&cfg)),
            "ablate-width" => println!("{}", ablations::cluster_width(&cfg)),
            "ablate-dvfs" => {
                let spec = corpora.spec(&cfg).clone();
                println!("{}", ablations::dvfs(&cfg, &spec));
            }
            "ablate-guardrail" => {
                let hdtr = corpora.hdtr(&cfg).clone();
                let spec = corpora.spec(&cfg).clone();
                println!("{}", ablations::guardrail(&cfg, &hdtr, &spec));
            }
            "ablate-horizon" => {
                let hdtr = corpora.hdtr(&cfg).clone();
                let points = ablations::horizon(&cfg, &hdtr);
                println!(
                    "{}",
                    ablations::format_points("prediction horizon", &points)
                );
            }
            "ablate-normalization" => {
                let hdtr = corpora.hdtr(&cfg).clone();
                let points = ablations::normalization(&cfg, &hdtr);
                println!(
                    "{}",
                    ablations::format_points("counter normalization", &points)
                );
            }
            other => {
                eprintln!("[repro] unknown experiment '{other}'. Known: {EXPERIMENTS:?}");
                std::process::exit(2);
            }
        }
        let wall = t0.elapsed().as_secs_f64();
        report.add_phase(id, wall);
        eprintln!("[repro] {id} done in {wall:.1}s\n");
    }
    finalize_report(&mut report);
}

/// Derives the headline summary from the global metrics and writes the
/// run-report artifact to `target/obs/`.
fn finalize_report(report: &mut RunReport) {
    let snap = psca_obs::snapshot();
    let c = |name: &str| snap.counters.get(name).copied().unwrap_or(0);
    let insts = c("cpu.sim.instructions");
    let cycles = c("cpu.sim.cycles");
    let wall = report.total_wall_s();
    report.set("sim_instructions", insts);
    if wall > 0.0 {
        report.set("sim_insts_per_sec", insts as f64 / wall);
    }
    if cycles > 0 {
        report.set(
            "low_power_residency",
            c("cpu.sim.cycles_low_power") as f64 / cycles as f64,
        );
    }
    let windows = c("adapt.windows");
    report.set("windows", windows);
    report.set("windows_gated_low", c("adapt.windows_gated_low"));
    report.set("guardrail_trips", c("adapt.guardrail.trips"));
    report.set("sla_violations", c("adapt.sla.violations"));
    let predictions = c("adapt.predictions");
    if predictions > 0 {
        report.set(
            "predictor_accuracy",
            1.0 - c("adapt.mispredictions") as f64 / predictions as f64,
        );
    }
    if let Some(&ppw) = snap.gauges.get("adapt.eval.last_ppw_gain") {
        report.set("last_ppw_gain", ppw);
    }
    if let Some(&rsv) = snap.gauges.get("adapt.eval.last_rsv") {
        report.set("last_rsv", rsv);
    }
    match report.write_default() {
        Ok(path) => eprintln!("[repro] run report: {}", path.display()),
        Err(e) => eprintln!("[repro] failed to write run report: {e}"),
    }
    println!("{}", report.render());
    psca_obs::flush();
}
