//! Regenerates the paper's tables and figures.
//!
//! ```text
//! repro -- all                       # everything, full scaled config (release!)
//! repro -- fig8 fig9                 # specific experiments
//! repro -- table5 --quick            # seconds-scale config for smoke testing
//! repro -- all --trace-out t.json    # record a Perfetto trace
//! repro -- all --serve-metrics       # live /metrics + /healthz + /report
//! repro -- all --dash                # live TTY dashboard on stderr
//! repro -- all --jobs 8              # worker threads (0 = auto; bit-identical)
//! repro -- all --no-cache            # disable the persistent sweep cache
//! repro -- all --backend surrogate   # learned fast-path fidelity (docs/SURROGATE.md)
//! repro -- --chaos default --quick   # chaos harness; exit 1 on SLA breach
//! repro -- --chaos uc.drop=0.1,seed=7 chaos-sweep
//! repro -- serve                     # adaptation-as-a-service daemon
//! repro -- serve --addr 127.0.0.1:0 --models best-rf,charstar --seed 7
//! repro -- serve --slo p99_us=50000,availability=0.99 --access-log access.jsonl
//! repro -- loadgen --addr 127.0.0.1:8186 --rps 50 --duration 2 --out BENCH_serve.json
//! repro -- slo-check --bench BENCH_serve.json --slo default   # CI gate, exit 1 on breach
//! repro -- closed-loop --model best-rf --archetype balanced --seed 1
//! repro -- fleet --size 8 --seed 1                   # skewed dies + staged rollout
//! repro -- fleet --bad-image --out fleet.json        # CI rollback gate, exit 1
//! repro -- bench --check --quick     # unified bench suite vs BENCH_*.json baselines
//! repro -- bench --update            # refresh the committed baselines
//! repro -- profile closed-loop ...   # any runner + psca-prof flamegraph artifacts
//! ```
//!
//! `repro profile <subcommand>` (or `PSCA_PROF=1`) enables the
//! hierarchical self-profiler (docs/PROFILING.md). The profiler is an
//! observer: stdout and all result artifacts stay byte-identical to an
//! unprofiled run; the collapsed-stack `.folded` + summary JSON land in
//! `target/obs/`.
//!
//! Observability: every experiment driver scopes the global metric
//! registry to itself (`reset_all()` at entry), so this binary snapshots
//! and absorbs the registry around each experiment to keep the end-of-run
//! report covering the whole invocation.

use psca_adapt::experiments::{ablations, chaos, fig10, fig4, fig5, fig6, fig7, fig8, fig9};
use psca_adapt::experiments::{table1, table2, table3, table4, table5, table6};
use psca_adapt::ExperimentConfig;
use psca_bench::{Corpora, EXPERIMENTS};
use psca_faults::ChaosSpec;
use psca_obs::{Json, MetricsSnapshot, RunReport};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Experiments that replay the HDTR corpus (prefetched before the loop so
/// corpus construction is measured once, outside any experiment scope).
const NEEDS_HDTR: &[&str] = &[
    "table3",
    "table4",
    "table5",
    "table6",
    "fig4",
    "fig5",
    "fig6",
    "fig8",
    "fig9",
    "fig10",
    "ablate-guardrail",
    "ablate-horizon",
    "ablate-normalization",
];

/// Experiments that replay the SPEC-like corpus.
const NEEDS_SPEC: &[&str] = &[
    "table5",
    "table6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "ablate-dvfs",
    "ablate-guardrail",
];

struct Cli {
    quick: bool,
    dash: bool,
    serve_metrics: bool,
    trace_out: Option<String>,
    chaos: Option<String>,
    /// Worker threads for parallel sweeps; `None` keeps the config preset.
    jobs: Option<usize>,
    /// Disables the persistent sweep result cache.
    no_cache: bool,
    /// Simulation fidelity (`--backend`; `PSCA_BACKEND` as fallback).
    backend: Option<String>,
    wanted: Vec<String>,
}

/// Resolves the simulation backend from an explicit `--backend` value,
/// falling back to the `PSCA_BACKEND` environment variable. `None` means
/// neither was given (keep the config default). Unknown names exit 2.
fn resolve_backend(flag: Option<&str>) -> Option<psca_adapt::BackendChoice> {
    let name = flag.map(str::to_string).or_else(|| {
        std::env::var("PSCA_BACKEND")
            .ok()
            .filter(|v| !v.trim().is_empty())
    })?;
    match name.trim().parse() {
        Ok(backend) => Some(backend),
        Err(e) => {
            eprintln!("[repro] {e}");
            std::process::exit(2);
        }
    }
}

fn parse_cli(args: &[String]) -> Cli {
    let mut cli = Cli {
        quick: false,
        dash: false,
        serve_metrics: false,
        trace_out: None,
        chaos: None,
        jobs: None,
        no_cache: false,
        backend: None,
        wanted: Vec::new(),
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => cli.quick = true,
            "--dash" => cli.dash = true,
            "--serve-metrics" => cli.serve_metrics = true,
            "--trace-out" => {
                i += 1;
                match args.get(i) {
                    Some(path) => cli.trace_out = Some(path.clone()),
                    None => {
                        eprintln!("[repro] --trace-out requires a path argument");
                        std::process::exit(2);
                    }
                }
            }
            "--chaos" => {
                i += 1;
                match args.get(i) {
                    Some(spec) => cli.chaos = Some(spec.clone()),
                    None => {
                        eprintln!(
                            "[repro] --chaos requires a spec argument (try 'default' or \
                             'uc.drop=0.05,telem=0.02,seed=7'; see docs/ROBUSTNESS.md)"
                        );
                        std::process::exit(2);
                    }
                }
            }
            "--jobs" => {
                i += 1;
                match args.get(i).and_then(|n| n.parse::<usize>().ok()) {
                    Some(n) => cli.jobs = Some(n),
                    None => {
                        eprintln!("[repro] --jobs requires a number (0 = auto)");
                        std::process::exit(2);
                    }
                }
            }
            "--no-cache" => cli.no_cache = true,
            "--backend" => {
                i += 1;
                match args.get(i) {
                    Some(name) => cli.backend = Some(name.clone()),
                    None => {
                        eprintln!("[repro] --backend requires cycle_accurate or surrogate");
                        std::process::exit(2);
                    }
                }
            }
            flag if flag.starts_with("--") => {
                eprintln!(
                    "[repro] unknown flag '{flag}'. Known: --quick --dash --serve-metrics --trace-out PATH --chaos SPEC --jobs N --no-cache --backend NAME"
                );
                std::process::exit(2);
            }
            id => cli.wanted.push(id.to_string()),
        }
        i += 1;
    }
    if cli.wanted.is_empty() && cli.chaos.is_some() {
        // `repro --chaos SPEC` alone means: run just the chaos harness.
        cli.wanted.push("chaos-sweep".to_string());
    } else if cli.wanted.is_empty() || cli.wanted.iter().any(|w| w == "all") {
        cli.wanted = EXPERIMENTS.iter().map(|s| s.to_string()).collect();
    }
    cli
}

/// Every zoo kind, for `--models` slug resolution.
const SERVE_KINDS: [psca_adapt::ModelKind; 5] = [
    psca_adapt::ModelKind::BestRf,
    psca_adapt::ModelKind::BestMlp,
    psca_adapt::ModelKind::Charstar,
    psca_adapt::ModelKind::SrchFine,
    psca_adapt::ModelKind::SrchCoarse,
];

/// `repro serve`: trains a registry and runs the psca-serve daemon until
/// a client posts `/v1/shutdown` (or the process is signalled).
fn serve_main(args: &[String]) -> ! {
    use psca_serve::{Daemon, ModelRegistry, ServeConfig};
    let mut config = ServeConfig {
        addr: "127.0.0.1:8186".to_string(),
        ..ServeConfig::default()
    };
    let mut seed = 1u64;
    let mut kinds = vec![
        psca_adapt::ModelKind::BestRf,
        psca_adapt::ModelKind::BestMlp,
    ];
    let mut backend_flag: Option<String> = None;
    let usage = "[repro] serve flags: --addr HOST:PORT --workers N --queue N \
                 --max-connections N --read-timeout-ms N --chaos SPEC --slo SPEC|off \
                 --access-log PATH --seed N --backend NAME --models slug[,slug...] \
                 (slugs: best-rf best-mlp charstar srch-fine srch-coarse)";
    // Environment seeds the slow-client deadline; the flag overrides it.
    if let Some(ms) = std::env::var("PSCA_READ_TIMEOUT_MS")
        .ok()
        .and_then(|v| v.trim().parse().ok())
    {
        config.read_timeout_ms = ms;
    }
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        i += 1;
        let value = || {
            args.get(i).cloned().unwrap_or_else(|| {
                eprintln!("[repro] {flag} requires a value\n{usage}");
                std::process::exit(2);
            })
        };
        match flag {
            "--addr" => config.addr = value(),
            "--workers" => config.workers = parse_or_die(&value(), flag),
            "--queue" => config.queue_capacity = parse_or_die(&value(), flag),
            "--max-connections" => config.max_connections = parse_or_die(&value(), flag),
            "--read-timeout-ms" => config.read_timeout_ms = parse_or_die(&value(), flag),
            "--seed" => seed = parse_or_die(&value(), flag),
            "--chaos" => match ChaosSpec::parse(&value()) {
                Ok(spec) => config.chaos = Some(spec),
                Err(e) => {
                    eprintln!("[repro] bad --chaos spec: {e}");
                    std::process::exit(2);
                }
            },
            "--slo" => match psca_obs::SloSpec::parse(&value()) {
                Ok(spec) => config.slo = spec,
                Err(e) => {
                    eprintln!("[repro] bad --slo spec: {e}");
                    std::process::exit(2);
                }
            },
            "--access-log" => config.access_log = Some(std::path::PathBuf::from(value())),
            "--backend" => backend_flag = Some(value()),
            "--models" => {
                kinds = value()
                    .split(',')
                    .map(|slug| {
                        SERVE_KINDS
                            .into_iter()
                            .find(|&k| psca_serve::registry::kind_slug(k) == slug.trim())
                            .unwrap_or_else(|| {
                                eprintln!("[repro] unknown model slug '{slug}'\n{usage}");
                                std::process::exit(2);
                            })
                    })
                    .collect();
            }
            other => {
                eprintln!("[repro] unknown serve flag '{other}'\n{usage}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    psca_obs::init_from_env();
    let mut builder = ExperimentConfig::builder().seed(seed);
    if let Some(backend) = resolve_backend(backend_flag.as_deref()) {
        builder = builder.backend(backend);
    }
    let cfg = builder.build().unwrap_or_else(|e| {
        eprintln!("[repro] bad serve config: {e}");
        std::process::exit(2);
    });
    eprintln!(
        "[repro] training serving registry ({} models)...",
        kinds.len()
    );
    let registry = ModelRegistry::train(cfg, &kinds);
    let daemon = match Daemon::start(config, registry) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("[repro] bind failed: {e}");
            std::process::exit(1);
        }
    };
    // The resolved address goes to stdout so scripts can capture an
    // OS-assigned port (`--addr 127.0.0.1:0`).
    println!("{}", daemon.local_addr());
    eprintln!(
        "[repro] serving on http://{} — POST /v1/shutdown to stop",
        daemon.local_addr()
    );
    daemon.wait();
    eprintln!("[repro] serve: drained and stopped");
    if let Some(path) = psca_obs::trace::finish() {
        eprintln!(
            "[repro] trace: {} (load in https://ui.perfetto.dev)",
            path.display()
        );
    }
    std::process::exit(0)
}

/// Parses a flag value or exits with a usage error.
fn parse_or_die<T: std::str::FromStr>(value: &str, flag: &str) -> T {
    value.parse().unwrap_or_else(|_| {
        eprintln!("[repro] {flag} got unparseable value '{value}'");
        std::process::exit(2);
    })
}

/// `repro loadgen`: seeded open-loop load against a running daemon's
/// `/v1/predict`, summarized as the `BENCH_serve.json` schema on stdout
/// (and to `--out` when given).
fn loadgen_main(args: &[String]) -> ! {
    use psca_bench::loadgen::{self, LoadgenConfig};
    let mut cfg = LoadgenConfig::default();
    let mut model_override: Option<String> = None;
    let mut out: Option<std::path::PathBuf> = None;
    let usage = "[repro] loadgen flags: --addr HOST:PORT --model SLUG --rps N \
                 --duration SECS --connections N --seed N --out PATH";
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        i += 1;
        let value = || {
            args.get(i).cloned().unwrap_or_else(|| {
                eprintln!("[repro] {flag} requires a value\n{usage}");
                std::process::exit(2);
            })
        };
        match flag {
            "--addr" => cfg.addr = value(),
            "--model" => model_override = Some(value()),
            "--rps" => cfg.rps = parse_or_die(&value(), flag),
            "--duration" => cfg.duration_s = parse_or_die(&value(), flag),
            "--connections" => cfg.connections = parse_or_die(&value(), flag),
            "--seed" => cfg.seed = parse_or_die(&value(), flag),
            "--out" => out = Some(std::path::PathBuf::from(value())),
            other => {
                eprintln!("[repro] unknown loadgen flag '{other}'\n{usage}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if cfg.rps == 0 || cfg.duration_s == 0 {
        eprintln!("[repro] loadgen needs --rps and --duration >= 1");
        std::process::exit(2);
    }
    let (slug, dim) = loadgen::discover_model(&cfg.addr).unwrap_or_else(|e| {
        eprintln!("[repro] loadgen: {e}");
        std::process::exit(1);
    });
    cfg.model = model_override.unwrap_or(slug);
    cfg.input_dim = dim;
    eprintln!(
        "[repro] loadgen: {} rps x {}s against http://{} (model {}, dim {}, seed {})",
        cfg.rps, cfg.duration_s, cfg.addr, cfg.model, cfg.input_dim, cfg.seed
    );
    let summary = loadgen::run(&cfg);
    let doc = summary.to_json().to_string();
    println!("{doc}");
    if let Some(path) = out {
        if let Err(e) = std::fs::write(&path, format!("{doc}\n")) {
            eprintln!("[repro] loadgen: cannot write {}: {e}", path.display());
            std::process::exit(1);
        }
        eprintln!("[repro] loadgen: summary written to {}", path.display());
    }
    // A run where nothing succeeded is a failure regardless of any SLO.
    if summary.ok == 0 {
        eprintln!("[repro] loadgen: no request succeeded");
        std::process::exit(1);
    }
    std::process::exit(0)
}

/// `repro slo-check`: offline SLO verdict over a `BENCH_serve.json`
/// summary — the CI gate (`exit 1` on breach).
fn slo_check_main(args: &[String]) -> ! {
    let mut bench = std::path::PathBuf::from("BENCH_serve.json");
    let mut slo = "default".to_string();
    let usage = "[repro] slo-check flags: --bench PATH --slo SPEC|off";
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        i += 1;
        let value = || {
            args.get(i).cloned().unwrap_or_else(|| {
                eprintln!("[repro] {flag} requires a value\n{usage}");
                std::process::exit(2);
            })
        };
        match flag {
            "--bench" => bench = std::path::PathBuf::from(value()),
            "--slo" => slo = value(),
            other => {
                eprintln!("[repro] unknown slo-check flag '{other}'\n{usage}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let spec = match psca_obs::SloSpec::parse(&slo) {
        Ok(Some(spec)) => spec,
        Ok(None) => {
            eprintln!("[repro] slo-check: spec is 'off', trivially passing");
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("[repro] bad --slo spec: {e}");
            std::process::exit(2);
        }
    };
    let text = std::fs::read_to_string(&bench).unwrap_or_else(|e| {
        eprintln!("[repro] slo-check: cannot read {}: {e}", bench.display());
        std::process::exit(1);
    });
    let doc = psca_obs::Json::parse(&text).unwrap_or_else(|e| {
        eprintln!("[repro] slo-check: {} is not JSON: {e}", bench.display());
        std::process::exit(1);
    });
    let num = |key: &str| doc.get(key).and_then(psca_obs::Json::as_f64);
    let violations = spec.check_values(
        num("p99_us"),
        num("availability"),
        num("low_power_residency").or_else(|| num("rsv")),
    );
    eprintln!(
        "[repro] slo-check: {} against {} ({})",
        bench.display(),
        spec.render(),
        if violations.is_empty() {
            "PASS"
        } else {
            "FAIL"
        }
    );
    for v in &violations {
        eprintln!("[repro] slo-check: VIOLATION: {v}");
    }
    std::process::exit(if violations.is_empty() { 0 } else { 1 })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(dispatch(&args))
}

/// Routes a full argument vector to a subcommand. Factored out of
/// `main` so `repro profile <subcommand...>` can run any inner runner
/// and still regain control to write the profile artifacts.
fn dispatch(args: &[String]) -> i32 {
    match args.first().map(String::as_str) {
        Some("serve") => serve_main(&args[1..]),
        Some("loadgen") => loadgen_main(&args[1..]),
        Some("slo-check") => slo_check_main(&args[1..]),
        Some("closed-loop") => closed_loop_main(&args[1..]),
        Some("fleet") => fleet_main(&args[1..]),
        Some("bench") => bench_main(&args[1..]),
        Some("profile") => profile_main(&args[1..]),
        _ => experiments_main(args),
    }
}

/// `repro profile <subcommand...>`: runs any non-daemon repro invocation
/// with the hierarchical self-profiler enabled, then writes
/// `target/obs/profile-<slug>.folded` (collapsed stacks, flamegraph.pl /
/// inferno consumable) plus a JSON summary and prints the self-time
/// table to stderr. The wrapped runner's stdout and result artifacts are
/// byte-identical to an unprofiled run (tests/observability.rs holds the
/// line).
fn profile_main(args: &[String]) -> i32 {
    let usage = "[repro] profile usage: repro profile <closed-loop|bench|EXPERIMENT...> [flags]";
    let Some(first) = args.first() else {
        eprintln!("{usage}");
        return 2;
    };
    if matches!(
        first.as_str(),
        "serve" | "loadgen" | "slo-check" | "profile"
    ) {
        eprintln!(
            "[repro] profile cannot wrap '{first}'; run it with PSCA_PROF=1 instead \
             (the daemon exposes GET /v1/profile)"
        );
        return 2;
    }
    psca_obs::prof::set_enabled(true);
    psca_obs::prof::reset();
    let code = dispatch(args);
    let profile = psca_obs::prof::drain();
    let slug: String = args
        .join("-")
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .take(60)
        .collect();
    let dir = Path::new("target/obs");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("[repro] profile: cannot create {}: {e}", dir.display());
        return code;
    }
    let folded_path = dir.join(format!("profile-{slug}.folded"));
    let json_path = dir.join(format!("profile-{slug}.json"));
    match std::fs::write(&folded_path, profile.folded()) {
        Ok(()) => eprintln!("[repro] profile: {}", folded_path.display()),
        Err(e) => eprintln!(
            "[repro] profile: cannot write {}: {e}",
            folded_path.display()
        ),
    }
    match std::fs::write(&json_path, format!("{}\n", profile.to_json())) {
        Ok(()) => eprintln!("[repro] profile: {}", json_path.display()),
        Err(e) => eprintln!("[repro] profile: cannot write {}: {e}", json_path.display()),
    }
    if profile.is_empty() {
        eprintln!("[repro] profile: no spans recorded (inner runner opened none)");
    } else {
        eprint!("{}", profile.render_table(15));
    }
    code
}

/// The default path: regenerate the requested tables and figures.
fn experiments_main(args: &[String]) -> i32 {
    let cli = parse_cli(args);
    // Parse the chaos spec up front so a typo fails fast, before any
    // corpus simulation.
    let chaos_spec = match &cli.chaos {
        Some(s) => match ChaosSpec::parse(s) {
            Ok(spec) => spec,
            Err(e) => {
                eprintln!("[repro] bad --chaos spec: {e}");
                std::process::exit(2);
            }
        },
        None => ChaosSpec::default_chaos(),
    };
    let mut cfg = if cli.quick {
        ExperimentConfig::quick()
    } else {
        ExperimentConfig::full()
    };
    if let Some(jobs) = cli.jobs {
        cfg.jobs = jobs;
    }
    // Cache policy: --no-cache or PSCA_SWEEP_CACHE=0/off/false disables;
    // PSCA_SWEEP_CACHE_DIR overrides the location. Environment is read
    // only here, in the binary — library code takes explicit config.
    if cli.no_cache
        || matches!(
            std::env::var("PSCA_SWEEP_CACHE").as_deref(),
            Ok("0") | Ok("off") | Ok("false")
        )
    {
        cfg.sweep_cache = None;
    } else if let Ok(dir) = std::env::var("PSCA_SWEEP_CACHE_DIR") {
        if !dir.is_empty() {
            cfg.sweep_cache = Some(std::path::PathBuf::from(dir));
        }
    }
    if let Some(backend) = resolve_backend(cli.backend.as_deref()) {
        cfg.backend = backend;
    }
    // An explicit `--chaos` run is a pass/fail SLA gate: its verdict must
    // come from the reference simulator, not an approximation of it.
    if cli.chaos.is_some() && !cfg.backend.is_reference() {
        eprintln!(
            "[repro] {}",
            psca_adapt::ConfigError::NonReferenceBackend(cfg.backend)
        );
        std::process::exit(2);
    }
    eprintln!(
        "[repro] config: {} (interval {} insts, {} HDTR apps, backend {}, SLA P={:.2}, jobs {}, cache {})",
        if cli.quick { "quick" } else { "full" },
        cfg.interval_insts,
        cfg.hdtr_apps,
        cfg.backend.as_str(),
        cfg.sla.p_sla,
        if cfg.jobs == 0 {
            "auto".to_string()
        } else {
            cfg.jobs.to_string()
        },
        cfg.sweep_cache
            .as_deref()
            .map(|p| p.display().to_string())
            .unwrap_or_else(|| "off".into())
    );
    psca_obs::init_from_env();
    if let Some(path) = &cli.trace_out {
        if !psca_obs::trace::enable(path) {
            eprintln!("[repro] trace recorder already active (PSCA_TRACE?); keeping it");
        }
    }
    if cli.serve_metrics {
        let addr = std::env::var("PSCA_METRICS_ADDR").unwrap_or_else(|_| "127.0.0.1:9185".into());
        psca_obs::exporter::serve(&addr);
    }
    let dash = cli.dash.then(Dashboard::start);

    let run_id = format!(
        "repro-{}{}",
        if cli.quick { "quick" } else { "full" },
        if cli.wanted.len() == EXPERIMENTS.len() {
            String::new()
        } else {
            format!("-{}", cli.wanted.join("+"))
        }
    );
    let mut report = RunReport::new(&run_id);
    report.set("backend", cfg.backend.as_str());
    let mut acc = MetricsSnapshot::default();
    let mut corpora = Corpora::new();
    let mut chaos_failed = false;
    // Prefetch shared corpora before any experiment resets the registry,
    // so corpus-construction metrics land in the accumulated snapshot.
    if cli.wanted.iter().any(|w| NEEDS_HDTR.contains(&w.as_str())) {
        let _span = psca_obs::SpanTimer::start("repro.corpus.hdtr");
        corpora.hdtr(&cfg);
    }
    if cli.wanted.iter().any(|w| NEEDS_SPEC.contains(&w.as_str())) {
        let _span = psca_obs::SpanTimer::start("repro.corpus.spec");
        corpora.spec(&cfg);
    }
    for id in &cli.wanted {
        // The driver's reset_all() at entry scopes the registry to the
        // experiment, so capture everything recorded since the previous
        // reset (the prior experiment, corpus builds, spans) first. The
        // registry is intentionally never reset here: after the loop it
        // still holds the last experiment, keeping /metrics meaningful
        // during a PSCA_METRICS_LINGER_S window.
        acc.absorb(&psca_obs::snapshot());
        // One clock snapshot serves both the span (histogram, trace,
        // profiler) and the report row: `finish()` returns the recorded
        // duration instead of a second `Instant::now()` read.
        let span = psca_obs::SpanTimer::start(&format!("repro.{id}"));
        match id.as_str() {
            "table1" => println!("{}", table1::run(&cfg)),
            "table2" => println!("{}", table2::run(&cfg)),
            "table3" => {
                let hdtr = corpora.hdtr(&cfg).clone();
                println!("{}", table3::run(&cfg, &hdtr));
            }
            "table4" => {
                let hdtr = corpora.hdtr(&cfg).clone();
                println!("{}", table4::run(&cfg, &hdtr));
            }
            "table5" => {
                let hdtr = corpora.hdtr(&cfg).clone();
                let spec = corpora.spec(&cfg).clone();
                println!("{}", table5::run(&cfg, &hdtr, &spec));
            }
            "table6" => {
                let hdtr = corpora.hdtr(&cfg).clone();
                let spec = corpora.spec(&cfg).clone();
                println!("{}", table6::run(&cfg, &hdtr, &spec));
            }
            "fig4" => {
                let hdtr = corpora.hdtr(&cfg).clone();
                println!("{}", fig4::run(&cfg, &hdtr));
            }
            "fig5" => {
                let hdtr = corpora.hdtr(&cfg).clone();
                println!("{}", fig5::run(&cfg, &hdtr));
            }
            "fig6" => {
                let hdtr = corpora.hdtr(&cfg).clone();
                println!("{}", fig6::run(&cfg, &hdtr));
            }
            "fig7" => {
                let spec = corpora.spec(&cfg).clone();
                let f7 = fig7::run(&cfg, &spec);
                println!("{f7}");
                let rows: Vec<(String, f64)> = f7.per_benchmark.clone();
                println!(
                    "{}",
                    psca_bench::chart::bar_chart(
                        "ideal low-power residency",
                        &rows,
                        40,
                        |v| format!("{:.1}%", 100.0 * v)
                    )
                );
            }
            "fig8" => {
                let hdtr = corpora.hdtr(&cfg).clone();
                let spec = corpora.spec(&cfg).clone();
                let f8 = fig8::run(&cfg, &hdtr, &spec);
                println!("{f8}");
                let ppw: Vec<(String, f64)> = f8
                    .rows
                    .iter()
                    .map(|r| (r.kind.name().to_string(), r.overall.ppw_gain))
                    .collect();
                let rsv: Vec<(String, f64)> = f8
                    .rows
                    .iter()
                    .map(|r| (r.kind.name().to_string(), r.overall.rsv))
                    .collect();
                println!(
                    "{}",
                    psca_bench::chart::bar_chart("PPW gain", &ppw, 40, |v| format!(
                        "{:.1}%",
                        100.0 * v
                    ))
                );
                println!(
                    "{}",
                    psca_bench::chart::bar_chart("RSV", &rsv, 40, |v| format!("{:.2}%", 100.0 * v))
                );
            }
            "fig9" => {
                let hdtr = corpora.hdtr(&cfg).clone();
                let spec = corpora.spec(&cfg).clone();
                let f9 = fig9::run(&cfg, &hdtr, &spec);
                println!("{f9}");
                let rsv: Vec<(String, f64)> = f9
                    .rows
                    .iter()
                    .map(|r| (r.name.clone(), r.charstar.rsv))
                    .collect();
                println!(
                    "{}",
                    psca_bench::chart::bar_chart(
                        "CHARSTAR per-benchmark RSV (the blindspot exhibit)",
                        &rsv,
                        40,
                        |v| format!("{:.1}%", 100.0 * v)
                    )
                );
            }
            "fig10" => {
                let hdtr = corpora.hdtr(&cfg).clone();
                let spec = corpora.spec(&cfg).clone();
                println!("{}", fig10::run(&cfg, &hdtr, &spec));
            }
            "ablate-steering" => println!("{}", ablations::steering(&cfg)),
            "ablate-width" => println!("{}", ablations::cluster_width(&cfg)),
            "ablate-dvfs" => {
                let spec = corpora.spec(&cfg).clone();
                println!("{}", ablations::dvfs(&cfg, &spec));
            }
            "ablate-guardrail" => {
                let hdtr = corpora.hdtr(&cfg).clone();
                let spec = corpora.spec(&cfg).clone();
                println!("{}", ablations::guardrail(&cfg, &hdtr, &spec));
            }
            "ablate-horizon" => {
                let hdtr = corpora.hdtr(&cfg).clone();
                let points = ablations::horizon(&cfg, &hdtr);
                println!(
                    "{}",
                    ablations::format_points("prediction horizon", &points)
                );
            }
            "ablate-normalization" => {
                let hdtr = corpora.hdtr(&cfg).clone();
                let points = ablations::normalization(&cfg, &hdtr);
                println!(
                    "{}",
                    ablations::format_points("counter normalization", &points)
                );
            }
            "chaos-sweep" => {
                let sweep = chaos::chaos_sweep(&cfg, &chaos_spec);
                println!("{sweep}");
                if !sweep.pass {
                    chaos_failed = true;
                }
            }
            other => {
                eprintln!("[repro] unknown experiment '{other}'. Known: {EXPERIMENTS:?}");
                std::process::exit(2);
            }
        }
        let wall = span.finish() as f64 / 1e9;
        report.add_phase(id, wall);
        eprintln!("[repro] {id} done in {wall:.1}s\n");
    }
    // Fold in the final experiment (no reset followed it).
    acc.absorb(&psca_obs::snapshot());
    if let Some(dash) = dash {
        dash.stop();
    }
    finalize_report(&mut report, &acc);
    if let Some(path) = psca_obs::trace::finish() {
        eprintln!(
            "[repro] trace: {} (load in https://ui.perfetto.dev)",
            path.display()
        );
    }
    // Keep the metrics endpoints up briefly so scrapers (CI smoke) can
    // observe the finished run before the process exits.
    if let Ok(linger) = std::env::var("PSCA_METRICS_LINGER_S") {
        if let Ok(secs) = linger.trim().parse::<u64>() {
            if psca_obs::exporter::global_addr().is_some() && secs > 0 {
                eprintln!("[repro] lingering {secs}s for metric scrapes");
                std::thread::sleep(std::time::Duration::from_secs(secs));
            }
        }
    }
    psca_obs::exporter::shutdown_global();
    // An explicit `--chaos` run is a gate: SLA budget broken → exit 1.
    if chaos_failed && cli.chaos.is_some() {
        eprintln!("[repro] chaos sweep FAILED its SLA budget");
        return 1;
    }
    0
}

/// `repro closed-loop`: one deterministic closed-loop adaptation run
/// (train one model, record a trace, run the controller) with the
/// summary as JSON on stdout. Stdout is a pure function of the flags —
/// the acceptance target for `repro profile closed-loop` bit-identity.
fn closed_loop_main(args: &[String]) -> i32 {
    use psca_serve::{registry::kind_slug, ModelRegistry};
    use psca_workloads::PhaseGenerator;
    let mut model_slug = "best-rf".to_string();
    let mut archetype_name = "balanced".to_string();
    let mut seed = 1u64;
    let mut windows = 16u64;
    let mut warm_insts = 2_000u64;
    let mut backend_flag: Option<String> = None;
    let usage = "[repro] closed-loop flags: --model SLUG --archetype NAME --seed N \
                 --windows N --warm-insts N --backend NAME \
                 (slugs: best-rf best-mlp charstar srch-fine srch-coarse)";
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        i += 1;
        let value = || {
            args.get(i).cloned().unwrap_or_else(|| {
                eprintln!("[repro] {flag} requires a value\n{usage}");
                std::process::exit(2);
            })
        };
        match flag {
            "--model" => model_slug = value(),
            "--archetype" => archetype_name = value(),
            "--seed" => seed = parse_or_die(&value(), flag),
            "--windows" => windows = parse_or_die(&value(), flag),
            "--warm-insts" => warm_insts = parse_or_die(&value(), flag),
            "--backend" => backend_flag = Some(value()),
            other => {
                eprintln!("[repro] unknown closed-loop flag '{other}'\n{usage}");
                return 2;
            }
        }
        i += 1;
    }
    let Some(archetype) = psca_serve::api::parse_archetype(&archetype_name) else {
        eprintln!("[repro] unknown archetype '{archetype_name}'");
        return 2;
    };
    let Some(kind) = SERVE_KINDS
        .into_iter()
        .find(|&k| kind_slug(k) == model_slug)
    else {
        eprintln!("[repro] unknown model slug '{model_slug}'\n{usage}");
        return 2;
    };
    psca_obs::init_from_env();
    let mut builder = ExperimentConfig::builder().seed(seed);
    if let Some(backend) = resolve_backend(backend_flag.as_deref()) {
        builder = builder.backend(backend);
    }
    let cfg = match builder.build() {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("[repro] bad closed-loop config: {e}");
            return 2;
        }
    };
    eprintln!("[repro] closed-loop: training {model_slug} (seed {seed})...");
    let registry = ModelRegistry::train(cfg, &[kind]);
    let Some(model) = registry.get(&model_slug) else {
        eprintln!("[repro] closed-loop: training produced no '{model_slug}' model");
        return 1;
    };
    let span = psca_obs::SpanTimer::start("repro.closed_loop");
    let run_cfg = registry.config();
    let interval_insts = run_cfg.interval_insts;
    let mut gen = PhaseGenerator::new(archetype.center(), seed);
    let window_insts = windows * model.granularity_insts(interval_insts);
    let (warm, window) = psca_adapt::record_trace(&mut gen, warm_insts, window_insts);
    let result = psca_adapt::ClosedLoopRequest::new(model, &warm, &window, interval_insts)
        .with_backend(run_cfg.backend)
        .run();
    let wall = span.finish() as f64 / 1e9;
    // The summary goes to stdout and carries no wall-clock data, so
    // profiled and unprofiled runs diff clean.
    let doc = Json::obj(vec![
        ("model", model_slug.as_str().into()),
        ("archetype", format!("{archetype:?}").into()),
        ("seed", seed.into()),
        ("backend", run_cfg.backend.as_str().into()),
        ("windows", (result.modes.len() as u64).into()),
        ("instructions", result.instructions.into()),
        ("cycles", result.cycles.into()),
        ("energy", result.energy.into()),
        ("ppw", result.ppw().into()),
        ("low_power_residency", result.low_power_residency.into()),
    ]);
    println!("{doc}");
    eprintln!("[repro] closed-loop done in {wall:.2}s");
    0
}

/// `repro fleet`: N skewed dies, staged firmware rollout with canary
/// cohorts, automatic rollback on RSV regression (docs/FLEET.md). The
/// report JSON on stdout is a pure function of the flags — byte-identical
/// across runs and across `--jobs` settings. Exit 1 iff the rollout
/// rolled back (the CI gate), 2 on usage errors.
fn fleet_main(args: &[String]) -> i32 {
    use psca_fleet::{run_fleet, FleetParams, RolloutSpec, SkewSpec};
    let mut params = FleetParams::default();
    let mut jobs = 0usize;
    let mut out: Option<std::path::PathBuf> = None;
    let mut backend_flag: Option<String> = None;
    let usage = "[repro] fleet flags: --size N --seed N --windows N --skew SPEC|off \
                 --rollout SPEC|off --chaos SPEC --jobs N --backend NAME --bad-image --out PATH";
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        i += 1;
        let value = || {
            args.get(i).cloned().unwrap_or_else(|| {
                eprintln!("[repro] {flag} requires a value\n{usage}");
                std::process::exit(2);
            })
        };
        match flag {
            "--size" => params.size = parse_or_die(&value(), flag),
            "--seed" => params.seed = parse_or_die(&value(), flag),
            "--windows" => params.windows = parse_or_die(&value(), flag),
            "--jobs" => jobs = parse_or_die(&value(), flag),
            "--skew" => match SkewSpec::parse(&value()) {
                Ok(spec) => params.skew = spec,
                Err(e) => {
                    eprintln!("[repro] bad --skew spec: {e}");
                    return 2;
                }
            },
            "--rollout" => match RolloutSpec::parse(&value()) {
                Ok(spec) => params.rollout = spec,
                Err(e) => {
                    eprintln!("[repro] bad --rollout spec: {e}");
                    return 2;
                }
            },
            "--chaos" => match ChaosSpec::parse(&value()) {
                Ok(spec) => params.chaos = Some(spec),
                Err(e) => {
                    eprintln!("[repro] bad --chaos spec: {e}");
                    return 2;
                }
            },
            "--bad-image" => {
                params.bad_image = true;
                i -= 1;
            }
            "--backend" => backend_flag = Some(value()),
            "--out" => out = Some(std::path::PathBuf::from(value())),
            other => {
                eprintln!("[repro] unknown fleet flag '{other}'\n{usage}");
                return 2;
            }
        }
        i += 1;
    }
    if params.size == 0 {
        eprintln!("[repro] --size must be at least 1\n{usage}");
        return 2;
    }
    psca_obs::init_from_env();
    let mut builder = ExperimentConfig::builder().seed(params.seed).jobs(jobs);
    if let Some(backend) = resolve_backend(backend_flag.as_deref()) {
        builder = builder.backend(backend);
    }
    let cfg = match builder.build() {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("[repro] bad fleet config: {e}");
            return 2;
        }
    };
    eprintln!(
        "[repro] fleet: {} dies, seed {}, backend {}, rollout {}...",
        params.size,
        params.seed,
        cfg.backend.as_str(),
        match params.rollout {
            Some(spec) => spec.to_string(),
            None => "off".to_string(),
        }
    );
    let span = psca_obs::SpanTimer::start("repro.fleet");
    let report = run_fleet(&cfg, &params);
    let wall = span.finish() as f64 / 1e9;
    // Human-readable tables to stderr; the deterministic report to stdout.
    eprint!("{report}");
    let doc = report.to_json();
    println!("{doc}");
    if let Some(path) = &out {
        if let Err(e) = std::fs::write(path, format!("{doc}\n")) {
            eprintln!("[repro] fleet: cannot write {}: {e}", path.display());
            return 1;
        }
        eprintln!("[repro] fleet report: {}", path.display());
    }
    // Publish a run report (artifact + live /report endpoint) and honor
    // the CI linger window, like the experiment drivers do.
    let mut run_report = RunReport::new(&format!("fleet-{}", params.seed));
    run_report.add_phase("repro.fleet", wall);
    run_report.set("backend", report.backend.as_str());
    run_report.set("fleet_size", params.size as u64);
    run_report.set("fleet_status", report.status);
    run_report.set("fleet_rsv", report.fleet_rsv);
    run_report.set("fleet_ppw", report.fleet_ppw);
    run_report.set("fleet_quarantined", report.quarantined.len() as u64);
    match run_report.write_with(Path::new("target/obs"), &psca_obs::snapshot()) {
        Ok(path) => eprintln!("[repro] run report: {}", path.display()),
        Err(e) => eprintln!("[repro] failed to write run report: {e}"),
    }
    if let Ok(linger) = std::env::var("PSCA_METRICS_LINGER_S") {
        if let Ok(secs) = linger.trim().parse::<u64>() {
            if psca_obs::exporter::global_addr().is_some() && secs > 0 {
                eprintln!("[repro] lingering {secs}s for metric scrapes");
                std::thread::sleep(std::time::Duration::from_secs(secs));
            }
        }
    }
    psca_obs::exporter::shutdown_global();
    eprintln!(
        "[repro] fleet {} in {wall:.2}s",
        if report.pass {
            "PASS"
        } else {
            "FAIL (rolled back)"
        }
    );
    if report.pass {
        0
    } else {
        1
    }
}

/// `repro bench`: the unified benchmark suite (psca_bench::suite) — runs
/// every bench (or `--only` a subset), attaches the profiler's top
/// self-time paths, and optionally refreshes (`--update`) or gates
/// against (`--check`) the committed `BENCH_*.json` baselines.
fn bench_main(args: &[String]) -> i32 {
    use psca_bench::suite::{self, BenchOpts};
    let mut update = false;
    let mut check = false;
    let mut quick = false;
    let mut seed = 1u64;
    let mut tolerance: Option<f64> = None;
    let mut only: Vec<String> = Vec::new();
    let mut backend_flag: Option<String> = None;
    let usage = "[repro] bench flags: --update --check --quick --seed N --tolerance FRAC \
                 --backend NAME --only name[,name...] \
                 (names: sim_throughput sweep inference serve surrogate)";
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        i += 1;
        let value = || {
            args.get(i).cloned().unwrap_or_else(|| {
                eprintln!("[repro] {flag} requires a value\n{usage}");
                std::process::exit(2);
            })
        };
        match flag {
            "--update" => {
                update = true;
                i -= 1;
            }
            "--check" => {
                check = true;
                i -= 1;
            }
            "--quick" => {
                quick = true;
                i -= 1;
            }
            "--seed" => seed = parse_or_die(&value(), flag),
            "--tolerance" => tolerance = Some(parse_or_die(&value(), flag)),
            "--backend" => backend_flag = Some(value()),
            "--only" => only = value().split(',').map(|s| s.trim().to_string()).collect(),
            other => {
                eprintln!("[repro] unknown bench flag '{other}'\n{usage}");
                return 2;
            }
        }
        i += 1;
    }
    let names: Vec<String> = if only.is_empty() {
        suite::BENCHES.iter().map(|s| s.to_string()).collect()
    } else {
        only
    };
    for name in &names {
        if !suite::BENCHES.contains(&name.as_str()) {
            eprintln!("[repro] unknown bench '{name}'\n{usage}");
            return 2;
        }
    }
    // `repro bench` produces (--update) or gates against (--check) the
    // committed baselines: a verdict-bearing path. Its numbers are only
    // meaningful at reference fidelity, so a surrogate selection — flag
    // or PSCA_BACKEND — is a typed usage error, never silently accepted.
    if let Some(backend) = resolve_backend(backend_flag.as_deref()) {
        if !backend.is_reference() {
            eprintln!(
                "[repro] {}",
                psca_adapt::ConfigError::NonReferenceBackend(backend)
            );
            return 2;
        }
    }
    // Quick runs on loaded CI machines are noisy; default to a wide band
    // there and a tighter one for full local runs.
    let tolerance = tolerance.unwrap_or(if quick { 3.0 } else { 0.5 });
    psca_obs::init_from_env();
    let opts = BenchOpts { quick, seed };
    let dir = Path::new("target/obs");
    let _ = std::fs::create_dir_all(dir);
    let mut results = Vec::new();
    let mut combined = psca_obs::Profile::default();
    for name in &names {
        eprintln!(
            "[repro] bench {name} ({} mode, seed {seed})...",
            if quick { "quick" } else { "full" }
        );
        psca_obs::reset_all();
        psca_obs::prof::set_enabled(true);
        psca_obs::prof::reset();
        let mut result = suite::run_bench(name, &opts).expect("validated bench name");
        let profile = psca_obs::prof::drain();
        result.profile_top = profile.top_self(5);
        // Flamegraph-ready per-bench stacks; CI uploads these on failure.
        let folded_path = dir.join(format!("bench-{name}.folded"));
        if let Err(e) = std::fs::write(&folded_path, profile.folded()) {
            eprintln!("[repro] bench: cannot write {}: {e}", folded_path.display());
        }
        combined.merge(&profile);
        results.push(result);
    }
    // Leave the union in the global profile so `repro profile bench`
    // still writes a meaningful .folded for the whole invocation.
    psca_obs::prof::merge_global(&combined);
    let mut failed = false;
    // A missing or unreadable baseline is an operator problem, not a
    // performance regression: it exits 2 (like a usage error) so CI can
    // tell "run `repro bench --update` and commit" apart from "the code
    // got slower" (exit 1).
    let mut baseline_error = false;
    if check {
        for result in &results {
            match suite::load_baseline(&result.bench) {
                Ok(baseline) => {
                    let violations = suite::check(result, &baseline, tolerance);
                    if violations.is_empty() {
                        eprintln!(
                            "[repro] bench {}: PASS (tolerance {:.0}%)",
                            result.bench,
                            tolerance * 100.0
                        );
                    } else {
                        failed = true;
                        for v in &violations {
                            eprintln!("[repro] bench REGRESSION: {v}");
                        }
                    }
                }
                Err(e) => {
                    baseline_error = true;
                    eprintln!(
                        "[repro] bench {}: no usable baseline ({e}); \
                         run `repro bench --update` and commit the refreshed BENCH_*.json",
                        result.bench
                    );
                }
            }
        }
    }
    if update {
        for result in &results {
            let path = suite::baseline_path(&result.bench);
            match std::fs::write(&path, format!("{}\n", result.to_json())) {
                Ok(()) => eprintln!("[repro] bench baseline updated: {}", path.display()),
                Err(e) => {
                    failed = true;
                    eprintln!("[repro] bench: cannot write {}: {e}", path.display());
                }
            }
        }
    }
    // Machine-readable results for scripting (one array, unified schema).
    println!(
        "{}",
        Json::Arr(results.iter().map(|r| r.to_json()).collect())
    );
    if baseline_error {
        2
    } else if failed {
        1
    } else {
        0
    }
}

/// Derives the headline summary from the accumulated metrics snapshot and
/// writes the run-report artifact to `target/obs/`.
fn finalize_report(report: &mut RunReport, snap: &MetricsSnapshot) {
    let c = |name: &str| snap.counters.get(name).copied().unwrap_or(0);
    let insts = c("cpu.sim.instructions");
    let cycles = c("cpu.sim.cycles");
    let wall = report.total_wall_s();
    report.set("sim_instructions", insts);
    if wall > 0.0 {
        report.set("sim_insts_per_sec", insts as f64 / wall);
    }
    if cycles > 0 {
        report.set(
            "low_power_residency",
            c("cpu.sim.cycles_low_power") as f64 / cycles as f64,
        );
    }
    let windows = c("adapt.windows");
    report.set("windows", windows);
    report.set("windows_gated_low", c("adapt.windows_gated_low"));
    report.set("guardrail_trips", c("adapt.guardrail.trips"));
    report.set("sla_violations", c("adapt.sla.violations"));
    let faults = c("faults.injected");
    if faults > 0 {
        report.set("faults_injected", faults);
        report.set("degrade_transitions", c("adapt.degrade.transitions"));
        report.set("images_rejected", c("uc.image.rejected"));
    }
    // Sweep result cache efficacy: hits / (hits + misses) across every
    // experiment in the run, plus the bytes the run added to the cache.
    let cache_hits = c("exec.cache.hits");
    let cache_misses = c("exec.cache.misses");
    if cache_hits + cache_misses > 0 {
        report.set(
            "sweep_cache_hit_rate",
            cache_hits as f64 / (cache_hits + cache_misses) as f64,
        );
        report.set("sweep_cache_bytes_written", c("exec.cache.bytes_written"));
    }
    let predictions = c("adapt.predictions");
    if predictions > 0 {
        report.set(
            "predictor_accuracy",
            1.0 - c("adapt.mispredictions") as f64 / predictions as f64,
        );
    }
    if let Some(&ppw) = snap.gauges.get("adapt.eval.last_ppw_gain") {
        report.set("last_ppw_gain", ppw);
    }
    if let Some(&rsv) = snap.gauges.get("adapt.eval.last_rsv") {
        report.set("last_rsv", rsv);
    }
    match report.write_with(Path::new("target/obs"), snap) {
        Ok(path) => eprintln!("[repro] run report: {}", path.display()),
        Err(e) => eprintln!("[repro] failed to write run report: {e}"),
    }
    // The report carries wall-clock times, so it goes to stderr: stdout
    // stays a pure function of (config, seed) and two runs of the same
    // experiment grid diff clean regardless of --jobs (CI relies on this).
    eprintln!("{}", report.render());
    psca_obs::flush();
}

/// Live TTY dashboard: repaints a small block of key metrics on stderr
/// every ~500 ms from the global registry.
struct Dashboard {
    stop: Arc<AtomicBool>,
    handle: std::thread::JoinHandle<()>,
}

impl Dashboard {
    const LINES: usize = 7;

    fn start() -> Dashboard {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let handle = std::thread::Builder::new()
            .name("repro-dash".into())
            .spawn(move || {
                let mut painted = false;
                while !stop2.load(Ordering::Relaxed) {
                    if painted {
                        // Move the cursor back up over the previous frame.
                        eprint!("\x1b[{}A", Self::LINES);
                    }
                    eprint!("{}", Self::frame());
                    painted = true;
                    std::thread::sleep(std::time::Duration::from_millis(500));
                }
            })
            .expect("spawn dashboard thread");
        Dashboard { stop, handle }
    }

    fn frame() -> String {
        let snap = psca_obs::snapshot();
        let c = |name: &str| snap.counters.get(name).copied().unwrap_or(0);
        let last = |name: &str| {
            snap.series
                .get(name)
                .and_then(|pts| pts.last())
                .map(|(_, y)| *y)
        };
        let mut out = String::new();
        out.push_str("\x1b[2K── psca live ──────────────────────────\n");
        out.push_str(&format!(
            "\x1b[2K instructions    {:>14}\n",
            c("cpu.sim.instructions")
        ));
        out.push_str(&format!(
            "\x1b[2K intervals       {:>14}\n",
            c("cpu.sim.intervals")
        ));
        out.push_str(&format!(
            "\x1b[2K ipc (last)      {:>14}\n",
            last("cpu.sim.ipc")
                .map(|v| format!("{v:.3}"))
                .unwrap_or_else(|| "-".into())
        ));
        out.push_str(&format!(
            "\x1b[2K windows         {:>14}  gated {}\n",
            c("adapt.windows"),
            c("adapt.windows_gated_low")
        ));
        out.push_str(&format!(
            "\x1b[2K guardrail trips {:>14}\n",
            c("adapt.guardrail.trips")
        ));
        out.push_str(&format!(
            "\x1b[2K sla violations  {:>14}\n",
            c("adapt.sla.violations")
        ));
        out
    }

    fn stop(self) {
        self.stop.store(true, Ordering::Relaxed);
        let _ = self.handle.join();
        eprintln!();
    }
}
