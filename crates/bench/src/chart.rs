//! Minimal ASCII charts so `repro` output *looks* like the paper's
//! figures, not just its tables.

/// Renders a horizontal bar chart. Values may be negative; bars are
/// scaled to the largest magnitude.
///
/// # Examples
///
/// ```
/// use psca_bench::chart::bar_chart;
///
/// let out = bar_chart(
///     "PPW gain",
///     &[("Best RF".into(), 0.219), ("CHARSTAR".into(), 0.184)],
///     30,
///     |v| format!("{:.1}%", 100.0 * v),
/// );
/// assert!(out.contains("Best RF"));
/// assert!(out.contains('#'));
/// ```
pub fn bar_chart(
    title: &str,
    rows: &[(String, f64)],
    width: usize,
    fmt: impl Fn(f64) -> String,
) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    if rows.is_empty() {
        let _ = writeln!(out, "  (no data)");
        return out;
    }
    let label_w = rows.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let max = rows
        .iter()
        .map(|(_, v)| v.abs())
        .fold(f64::MIN_POSITIVE, f64::max);
    for (label, v) in rows {
        let n = ((v.abs() / max) * width as f64).round() as usize;
        let bar = "#".repeat(n.max(usize::from(*v != 0.0)));
        let sign = if *v < 0.0 { "-" } else { "" };
        let _ = writeln!(
            out,
            "  {label:<label_w$} |{sign}{bar:<width$} {}",
            fmt(*v),
            label_w = label_w,
            width = width + 1
        );
    }
    out
}

/// Renders a numeric series as a one-line sparkline.
///
/// # Examples
///
/// ```
/// use psca_bench::chart::sparkline;
///
/// let s = sparkline(&[0.0, 0.5, 1.0]);
/// assert_eq!(s.chars().count(), 3);
/// ```
pub fn sparkline(values: &[f64]) -> String {
    const LEVELS: [char; 8] = [
        '\u{2581}', '\u{2582}', '\u{2583}', '\u{2584}', '\u{2585}', '\u{2586}', '\u{2587}',
        '\u{2588}',
    ];
    if values.is_empty() {
        return String::new();
    }
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &v in values {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    let span = (hi - lo).max(1e-12);
    values
        .iter()
        .map(|&v| {
            let idx = (((v - lo) / span) * (LEVELS.len() - 1) as f64).round() as usize;
            LEVELS[idx.min(LEVELS.len() - 1)]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bars_scale_to_largest_value() {
        let out = bar_chart("t", &[("a".into(), 1.0), ("b".into(), 0.5)], 10, |v| {
            format!("{v}")
        });
        let lines: Vec<&str> = out.lines().collect();
        let count = |s: &str| s.chars().filter(|&c| c == '#').count();
        assert_eq!(count(lines[1]), 10);
        assert_eq!(count(lines[2]), 5);
    }

    #[test]
    fn negative_values_render_with_sign() {
        let out = bar_chart("t", &[("a".into(), -0.4)], 10, |v| format!("{v}"));
        assert!(out.contains("|-"));
    }

    #[test]
    fn empty_chart_is_graceful() {
        let out = bar_chart("t", &[], 10, |v| format!("{v}"));
        assert!(out.contains("no data"));
        assert_eq!(sparkline(&[]), "");
    }

    #[test]
    fn sparkline_monotone_series_uses_range() {
        let s = sparkline(&[0.0, 1.0, 2.0, 3.0]);
        let chars: Vec<char> = s.chars().collect();
        assert_eq!(chars.len(), 4);
        assert!(chars[0] < chars[3]);
    }

    #[test]
    fn sparkline_constant_series_is_flat() {
        let s = sparkline(&[2.0, 2.0, 2.0]);
        let chars: Vec<char> = s.chars().collect();
        assert_eq!(chars[0], chars[1]);
        assert_eq!(chars[1], chars[2]);
    }
}
