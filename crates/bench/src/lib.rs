//! # psca-bench
//!
//! The benchmark harness: Criterion micro-benchmarks (simulator
//! throughput, firmware inference latency, training speed) and the
//! `repro` binary that regenerates every table and figure of the paper.
//!
//! ```text
//! cargo run --release -p psca-bench --bin repro -- all
//! cargo run --release -p psca-bench --bin repro -- fig8 --quick
//! cargo bench
//! ```

#![warn(missing_docs)]

pub mod chart;
pub mod loadgen;
pub mod suite;

use psca_adapt::{CorpusTelemetry, ExperimentConfig};

/// Experiment identifiers accepted by the `repro` binary.
pub const EXPERIMENTS: [&str; 20] = [
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "table6",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "ablate-steering",
    "ablate-guardrail",
    "ablate-width",
    "ablate-dvfs",
    "ablate-horizon",
    "ablate-normalization",
    "chaos-sweep",
];

/// Lazily-built corpora shared across experiments in one `repro` run.
#[derive(Default)]
pub struct Corpora {
    hdtr: Option<CorpusTelemetry>,
    spec: Option<CorpusTelemetry>,
}

impl Corpora {
    /// Creates an empty cache.
    pub fn new() -> Corpora {
        Corpora::default()
    }

    /// The HDTR training corpus (built on first use).
    pub fn hdtr(&mut self, cfg: &ExperimentConfig) -> &CorpusTelemetry {
        if self.hdtr.is_none() {
            eprintln!(
                "[repro] simulating HDTR corpus ({} apps x {} traces x {} intervals, both modes)...",
                cfg.hdtr_apps, cfg.hdtr_traces_per_app, cfg.hdtr_intervals_per_trace
            );
            self.hdtr = Some(CorpusTelemetry::hdtr(cfg));
        }
        self.hdtr.as_ref().unwrap()
    }

    /// The SPEC test corpus (built on first use).
    pub fn spec(&mut self, cfg: &ExperimentConfig) -> &CorpusTelemetry {
        if self.spec.is_none() {
            eprintln!("[repro] simulating SPEC2017 test set (both modes)...");
            self.spec = Some(CorpusTelemetry::spec(cfg));
        }
        self.spec.as_ref().unwrap()
    }
}
