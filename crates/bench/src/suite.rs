//! Unified benchmark suite: one entry point (`repro bench`), one result
//! schema, one regression gate.
//!
//! Historically the repo's perf baselines used three ad-hoc schemas
//! (`BENCH_sim_throughput.json`, `BENCH_sweep.json`, `BENCH_serve.json`)
//! with no comparison tooling. This module unifies them:
//!
//! - every bench emits a [`BenchResult`] — `{schema, bench, unit, seed,
//!   jobs, metrics{...}, profile_top[...]}` — with the self-profiler's
//!   top-5 self-time stacks attached;
//! - [`BenchResult::to_json`] additionally mirrors each bench's legacy
//!   top-level keys so existing consumers (`repro slo-check`, the CI
//!   sweep smoke) keep reading the files for one release (CHANGELOG);
//! - [`check`] compares a current run against a committed baseline with
//!   per-metric noise-aware tolerance bands: metric names carry their
//!   direction (`*_per_sec`/`*speedup*`/`availability` are
//!   higher-is-better, `*_us`/`*_ns`/`*_s` lower-is-better, everything
//!   else informational), and a violation means "regressed past the
//!   band", not "changed at all".
//!
//! The four runners (`run_sim_throughput`, `run_sweep`,
//! `run_inference`, `run_serve`) are plain functions so `repro bench`
//! and the standalone `cargo bench` harnesses share one implementation
//! of each measurement.

use psca_adapt::{CorpusTelemetry, ExperimentConfig, ModelKind};
use psca_cpu::{ClusterSim, CpuConfig, Mode};
use psca_ml::{
    Dataset, LogisticRegression, Matrix, Mlp, MlpConfig, RandomForest, RandomForestConfig,
};
use psca_obs::{Json, NodeStat, SpanTimer};
use psca_uc::FirmwareModel;
use psca_workloads::{Archetype, PhaseGenerator};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::Instant;

/// Canonical bench names, in run order. Each maps to a committed
/// baseline file `BENCH_<name>.json` at the repo root.
pub const BENCHES: [&str; 5] = ["sim_throughput", "sweep", "inference", "serve", "surrogate"];

/// The `schema` tag stamped on every unified baseline document.
pub const SCHEMA: &str = "psca-bench/v1";

/// Options shared by every runner.
#[derive(Debug, Clone, Copy)]
pub struct BenchOpts {
    /// Smaller measurement volumes (CI smoke); workload *shapes* stay
    /// canonical so rate and latency metrics remain comparable to a
    /// full-mode baseline.
    pub quick: bool,
    /// Seed for every seeded component (corpora, loadgen traffic).
    pub seed: u64,
}

impl Default for BenchOpts {
    fn default() -> BenchOpts {
        BenchOpts {
            quick: false,
            seed: 1,
        }
    }
}

/// One bench's outcome in the unified schema.
#[derive(Debug, Clone, Default)]
pub struct BenchResult {
    /// Canonical bench name (one of [`BENCHES`]).
    pub bench: String,
    /// Unit of the bench's primary metric (documentation, not parsing).
    pub unit: String,
    /// Seed the run was driven with.
    pub seed: u64,
    /// Worker parallelism the run used.
    pub jobs: u64,
    /// Flat metric map; names carry direction suffixes (see [`check`]).
    pub metrics: BTreeMap<String, f64>,
    /// The profiler's heaviest self-time stacks during the run.
    pub profile_top: Vec<(String, NodeStat)>,
    /// Non-numeric extras mirrored at the top level (e.g. the serve
    /// bench's `slowest_trace_id`).
    pub extra: Vec<(String, Json)>,
}

/// Serializes a metric value: integral values as JSON integers (the
/// legacy schemas used integers for counts and microsecond quantiles).
fn num_json(v: f64) -> Json {
    if v.is_finite() && v >= 0.0 && v.fract() == 0.0 && v < 9.0e15 {
        Json::UInt(v as u64)
    } else {
        Json::Num(v)
    }
}

impl BenchResult {
    /// The unified document, with the bench's legacy top-level keys
    /// mirrored for one release (see CHANGELOG).
    pub fn to_json(&self) -> Json {
        let metrics = Json::Obj(
            self.metrics
                .iter()
                .map(|(k, v)| (k.clone(), num_json(*v)))
                .collect(),
        );
        let profile = Json::Arr(
            self.profile_top
                .iter()
                .map(|(stack, stat)| {
                    Json::obj(vec![
                        ("stack", stack.as_str().into()),
                        ("self_us", (stat.self_ns / 1_000).into()),
                        ("total_us", (stat.total_ns / 1_000).into()),
                        ("calls", stat.calls.into()),
                    ])
                })
                .collect(),
        );
        let mut pairs: Vec<(String, Json)> = vec![
            ("schema".into(), SCHEMA.into()),
            ("bench".into(), self.bench.as_str().into()),
            ("unit".into(), self.unit.as_str().into()),
            ("seed".into(), self.seed.into()),
            ("jobs".into(), self.jobs.into()),
            ("metrics".into(), metrics),
            ("profile_top".into(), profile),
        ];
        pairs.extend(self.legacy_mirror());
        Json::Obj(pairs)
    }

    /// Legacy top-level mirror keys per bench (empty for benches that
    /// never had a legacy schema).
    fn legacy_mirror(&self) -> Vec<(String, Json)> {
        let m = |k: &str| self.metrics.get(k).copied();
        let mut out: Vec<(String, Json)> = Vec::new();
        match self.bench.as_str() {
            "sim_throughput" => {
                if let Some(v) = m("sim_insts_per_sec") {
                    out.push(("sim_insts_per_sec".into(), num_json(v)));
                }
                let per_case: Vec<(String, Json)> = self
                    .metrics
                    .iter()
                    .filter_map(|(k, v)| {
                        k.strip_prefix("insts_per_sec.")
                            .map(|case| (case.to_string(), num_json(*v)))
                    })
                    .collect();
                if !per_case.is_empty() {
                    out.push(("per_case_insts_per_sec".into(), Json::Obj(per_case)));
                }
            }
            "sweep" => {
                for key in [
                    "cells",
                    "serial_cells_per_sec",
                    "parallel_cells_per_sec",
                    "speedup_vs_serial",
                    "cache_cold_s",
                    "cache_warm_s",
                    "cache_warm_speedup",
                ] {
                    if let Some(v) = m(key) {
                        out.push((key.into(), num_json(v)));
                    }
                }
            }
            "serve" => {
                for key in [
                    "requests",
                    "ok",
                    "errors",
                    "availability",
                    "p50_us",
                    "p95_us",
                    "p99_us",
                    "max_us",
                    "offered_rps",
                    "achieved_rps",
                    "wall_s",
                ] {
                    if let Some(v) = m(key) {
                        out.push((key.into(), num_json(v)));
                    }
                }
            }
            _ => {}
        }
        out.extend(self.extra.iter().cloned());
        out
    }

    /// Parses a baseline document — the unified schema, or any of the
    /// three legacy schemas (detected by the missing `metrics` member,
    /// whose numeric top-level keys become the metric map).
    pub fn from_json(doc: &Json) -> Option<BenchResult> {
        let bench = doc.get("bench").and_then(Json::as_str)?.to_string();
        let mut result = BenchResult {
            bench,
            unit: doc
                .get("unit")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string(),
            seed: doc.get("seed").and_then(Json::as_u64).unwrap_or(0),
            jobs: doc.get("jobs").and_then(Json::as_u64).unwrap_or(0),
            ..BenchResult::default()
        };
        match doc.get("metrics") {
            Some(Json::Obj(pairs)) => {
                for (k, v) in pairs {
                    if let Some(x) = v.as_f64() {
                        result.metrics.insert(k.clone(), x);
                    }
                }
            }
            _ => {
                // Legacy document: every numeric top-level key except the
                // identity fields is a metric; one nested level
                // (`per_case_insts_per_sec`) flattens with a dot.
                let Json::Obj(pairs) = doc else { return None };
                for (k, v) in pairs {
                    if k == "bench" || k == "seed" || k == "jobs" || k == "schema" {
                        continue;
                    }
                    if let Some(x) = v.as_f64() {
                        result.metrics.insert(k.clone(), x);
                    } else if let Json::Obj(nested) = v {
                        for (nk, nv) in nested {
                            if let Some(x) = nv.as_f64() {
                                result.metrics.insert(format!("{k}.{nk}"), x);
                            }
                        }
                    }
                }
                result.jobs = doc.get("jobs").and_then(Json::as_u64).unwrap_or(0);
            }
        }
        Some(result)
    }
}

/// Which way a metric is allowed to drift before it counts as a
/// regression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Throughputs, speedups, rates: regressing means *dropping*.
    HigherBetter,
    /// Latencies and wall times: regressing means *growing*.
    LowerBetter,
    /// Counts and identities: recorded, never gated.
    Informational,
}

/// Classifies a metric by its name. The suite's naming convention *is*
/// the machine-readable direction: rate-like names gate downward drift,
/// time-like names gate upward drift, everything else is informational.
pub fn metric_direction(name: &str) -> Direction {
    if name.contains("per_sec")
        || name.ends_with("rps")
        || name.contains("speedup")
        || name.ends_with("hit_rate")
        || name.ends_with("availability")
    {
        Direction::HigherBetter
    } else if name.ends_with("_us") || name.ends_with("_ns") || name.ends_with("_s") {
        Direction::LowerBetter
    } else {
        Direction::Informational
    }
}

/// One metric outside its tolerance band.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Bench the metric belongs to.
    pub bench: String,
    /// Metric name.
    pub metric: String,
    /// Committed baseline value.
    pub baseline: f64,
    /// Value measured by this run.
    pub current: f64,
    /// Fractional tolerance the comparison used.
    pub tolerance: f64,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let dir = match metric_direction(&self.metric) {
            Direction::HigherBetter => "dropped below",
            Direction::LowerBetter => "grew past",
            Direction::Informational => "drifted from",
        };
        write!(
            f,
            "{}/{}: {:.3} {} baseline {:.3} (tolerance {:.0}%)",
            self.bench,
            self.metric,
            self.current,
            dir,
            self.baseline,
            self.tolerance * 100.0
        )
    }
}

/// Compares a run against its baseline. Only directional metrics
/// present in **both** documents are gated (quick runs and full
/// baselines legitimately differ in counts); a violation means the
/// current value regressed more than `tolerance` (a fraction, e.g.
/// `0.5` = 50%) past the baseline.
pub fn check(current: &BenchResult, baseline: &BenchResult, tolerance: f64) -> Vec<Violation> {
    let mut violations = Vec::new();
    for (name, &base) in &baseline.metrics {
        if !base.is_finite() || base <= 0.0 {
            continue;
        }
        let Some(&cur) = current.metrics.get(name) else {
            continue;
        };
        let regressed = match metric_direction(name) {
            Direction::HigherBetter => cur < base * (1.0 - tolerance).max(0.0),
            Direction::LowerBetter => cur > base * (1.0 + tolerance),
            Direction::Informational => false,
        };
        if regressed {
            violations.push(Violation {
                bench: current.bench.clone(),
                metric: name.clone(),
                baseline: base,
                current: cur,
                tolerance,
            });
        }
    }
    violations
}

/// The workspace root (baseline files live there, tracked in git).
pub fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// The committed baseline path for a bench name.
pub fn baseline_path(bench: &str) -> PathBuf {
    repo_root().join(format!("BENCH_{bench}.json"))
}

/// Loads and parses a committed baseline.
///
/// # Errors
/// A human-readable message when the file is missing, unparseable, or
/// not a bench document.
pub fn load_baseline(bench: &str) -> Result<BenchResult, String> {
    let path = baseline_path(bench);
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let doc = Json::parse(&text).map_err(|e| format!("{} is not JSON: {e}", path.display()))?;
    let result = BenchResult::from_json(&doc)
        .ok_or_else(|| format!("{} is not a bench document", path.display()))?;
    // A document that parses but carries no numeric metrics (a legacy
    // schema this parser can't salvage, or a hand-edited stub) would gate
    // nothing and silently pass; surface it as unusable instead.
    if result.metrics.is_empty() {
        return Err(format!(
            "{} has no usable metrics (legacy or empty schema)",
            path.display()
        ));
    }
    Ok(result)
}

/// Simulator throughput: instructions/sec through the clustered core
/// per (archetype, mode) case, plus the best case as the headline.
pub fn run_sim_throughput(opts: &BenchOpts) -> BenchResult {
    const INTERVAL: u64 = 50_000;
    let total: u64 = if opts.quick { 100_000 } else { 400_000 };
    let mut result = BenchResult {
        bench: "sim_throughput".into(),
        unit: "insts_per_sec".into(),
        seed: opts.seed,
        jobs: 1,
        ..BenchResult::default()
    };
    let mut best = 0.0f64;
    for archetype in [
        Archetype::Balanced,
        Archetype::MemBound,
        Archetype::ScalarIlp,
    ] {
        for mode in [Mode::HighPerf, Mode::LowPower] {
            let case = format!("{archetype:?}.{mode}");
            let mut sim = ClusterSim::new(CpuConfig::skylake_scaled());
            sim.set_mode(mode);
            let mut gen = PhaseGenerator::new(archetype.center(), opts.seed);
            sim.warm_up(&mut gen, 20_000);
            let span = SpanTimer::start(&format!("bench.sim.{case}"));
            let t0 = Instant::now();
            let mut done = 0u64;
            while done < total {
                let r = sim.run_interval(&mut gen, INTERVAL).expect("sim interval");
                std::hint::black_box(r.ipc());
                done += INTERVAL;
            }
            let wall = t0.elapsed().as_secs_f64().max(1e-9);
            drop(span);
            let eps = done as f64 / wall;
            best = best.max(eps);
            result.metrics.insert(format!("insts_per_sec.{case}"), eps);
        }
    }
    result.metrics.insert("sim_insts_per_sec".into(), best);
    result
}

/// Sweep-engine throughput: HDTR corpus cells/sec serial vs parallel,
/// plus cold-vs-warm result-cache timing.
pub fn run_sweep(opts: &BenchOpts) -> BenchResult {
    let base_cfg = || {
        let mut cfg = ExperimentConfig::quick();
        cfg.hdtr_apps = if opts.quick { 24 } else { 48 };
        cfg.hdtr_traces_per_app = 2;
        cfg.seed = opts.seed;
        cfg.sweep_cache = None;
        cfg
    };
    let time_hdtr = |cfg: &ExperimentConfig, label: &str| {
        let span = SpanTimer::start(&format!("bench.sweep.{label}"));
        let t0 = Instant::now();
        let corpus = CorpusTelemetry::hdtr(cfg);
        let wall = t0.elapsed().as_secs_f64();
        drop(span);
        (wall, corpus.traces.len())
    };
    let jobs = psca_exec::resolve_jobs(0) as u64;

    // Warmup pass: touches the allocator and page cache so the serial
    // baseline isn't penalized for going first.
    let mut warm_cfg = base_cfg();
    warm_cfg.jobs = 1;
    let _ = time_hdtr(&warm_cfg, "warmup");

    let mut serial_cfg = base_cfg();
    serial_cfg.jobs = 1;
    let (serial_s, cells) = time_hdtr(&serial_cfg, "serial");

    let mut par_cfg = base_cfg();
    par_cfg.jobs = 0; // auto
    let (par_s, _) = time_hdtr(&par_cfg, "parallel");

    // Cache cold vs warm, in a scratch dir under target/ so repeated
    // runs start cold.
    let cache_dir = repo_root().join("target/sweep-cache-bench");
    let _ = std::fs::remove_dir_all(&cache_dir);
    let mut cached_cfg = base_cfg();
    cached_cfg.jobs = 0;
    cached_cfg.sweep_cache = Some(cache_dir.clone());
    let (cold_s, _) = time_hdtr(&cached_cfg, "cache_cold");
    let (cache_warm_s, _) = time_hdtr(&cached_cfg, "cache_warm");
    let _ = std::fs::remove_dir_all(&cache_dir);

    let mut result = BenchResult {
        bench: "sweep".into(),
        unit: "cells_per_sec".into(),
        seed: opts.seed,
        jobs,
        ..BenchResult::default()
    };
    let m = &mut result.metrics;
    m.insert("cells".into(), cells as f64);
    m.insert(
        "serial_cells_per_sec".into(),
        cells as f64 / serial_s.max(f64::MIN_POSITIVE),
    );
    m.insert(
        "parallel_cells_per_sec".into(),
        cells as f64 / par_s.max(f64::MIN_POSITIVE),
    );
    m.insert(
        "speedup_vs_serial".into(),
        serial_s / par_s.max(f64::MIN_POSITIVE),
    );
    m.insert("cache_cold_s".into(), cold_s);
    m.insert("cache_warm_s".into(), cache_warm_s);
    m.insert(
        "cache_warm_speedup".into(),
        cold_s / cache_warm_s.max(f64::MIN_POSITIVE),
    );
    result
}

/// Firmware inference latency per model class (the host-side analogue
/// of Table 3's operation counts; relative ordering should match).
pub fn run_inference(opts: &BenchOpts) -> BenchResult {
    fn training_set(n: usize, d: usize, seed: u64) -> Dataset {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..d).map(|_| rng.gen::<f64>()).collect())
            .collect();
        let labels: Vec<u8> = rows
            .iter()
            .map(|r| (r.iter().sum::<f64>() > d as f64 / 2.0) as u8)
            .collect();
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        Dataset::new(Matrix::from_rows(&refs), labels, vec![0; n])
    }
    let iters: u64 = if opts.quick { 5_000 } else { 50_000 };
    let data = training_set(600, 12, opts.seed);
    let x = vec![0.4; 12];
    let models = [
        (
            "best_rf_8x8",
            FirmwareModel::Forest(RandomForest::fit(&RandomForestConfig::best_rf(), &data, 2)),
        ),
        (
            "best_mlp_8_8_4",
            FirmwareModel::Mlp(Mlp::fit(&MlpConfig::best_mlp(), &data, 3)),
        ),
        (
            "charstar_mlp_10",
            FirmwareModel::Mlp(Mlp::fit(&MlpConfig::charstar(), &data, 4)),
        ),
        (
            "logistic",
            FirmwareModel::Logistic(LogisticRegression::fit(&data, 1e-4, 100)),
        ),
    ];
    let mut result = BenchResult {
        bench: "inference".into(),
        unit: "ns_per_predict".into(),
        seed: opts.seed,
        jobs: 1,
        ..BenchResult::default()
    };
    for (name, fw) in &models {
        // Warmup, then one timed block.
        for _ in 0..iters / 10 {
            std::hint::black_box(fw.predict(std::hint::black_box(&x)).unwrap());
        }
        let span = SpanTimer::start(&format!("bench.inference.{name}"));
        let t0 = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(fw.predict(std::hint::black_box(&x)).unwrap());
        }
        let wall = t0.elapsed();
        drop(span);
        result.metrics.insert(
            format!("{name}.predict_ns"),
            wall.as_nanos() as f64 / iters as f64,
        );
    }
    result
}

/// Serving-path latency: an in-process daemon (best-rf registry,
/// OS-assigned port) under the seeded open-loop load generator.
///
/// # Panics
/// Panics when the daemon cannot bind a loopback port or model
/// discovery fails against the freshly started daemon.
pub fn run_serve(opts: &BenchOpts) -> BenchResult {
    use crate::loadgen::{self, LoadgenConfig};
    use psca_serve::{Daemon, ModelRegistry, ServeConfig};
    let cfg = ExperimentConfig::builder()
        .seed(opts.seed)
        .build()
        .expect("serve bench config");
    let registry = ModelRegistry::train(cfg, &[ModelKind::BestRf]);
    let serve_cfg = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        ..ServeConfig::default()
    };
    let workers = serve_cfg.workers as u64;
    let daemon = Daemon::start(serve_cfg, registry).expect("serve bench daemon bind");
    let addr = daemon.local_addr().to_string();
    let (slug, dim) = loadgen::discover_model(&addr).expect("serve bench model discovery");
    let lg = LoadgenConfig {
        addr,
        model: slug,
        rps: 50,
        duration_s: if opts.quick { 1 } else { 2 },
        connections: 4,
        seed: opts.seed,
        input_dim: dim,
    };
    let summary = loadgen::run(&lg);
    daemon.shutdown();
    let mut result = BenchResult {
        bench: "serve".into(),
        unit: "us".into(),
        seed: opts.seed,
        jobs: workers,
        ..BenchResult::default()
    };
    let m = &mut result.metrics;
    m.insert("requests".into(), summary.requests as f64);
    m.insert("ok".into(), summary.ok as f64);
    m.insert("errors".into(), summary.errors as f64);
    m.insert("availability".into(), summary.availability);
    m.insert("p50_us".into(), summary.p50_us as f64);
    m.insert("p95_us".into(), summary.p95_us as f64);
    m.insert("p99_us".into(), summary.p99_us as f64);
    m.insert("max_us".into(), summary.max_us as f64);
    m.insert("offered_rps".into(), summary.offered_rps as f64);
    m.insert("achieved_rps".into(), summary.achieved_rps);
    m.insert("wall_s".into(), summary.wall_s);
    result.extra.push((
        "slowest_trace_id".into(),
        summary.slowest_trace_id.as_str().into(),
    ));
    result
}

/// Surrogate fast-path speedup: the same recorded interval stream driven
/// through the reference [`ClusterSim`] (via its `CycleAccurate` backend)
/// and through the learned `Surrogate` backend, per archetype. The
/// headline is the steady-state interval-evaluation speedup; the one-time
/// calibration cost and the per-archetype IPC divergence ride along so a
/// fidelity regression is as visible as a throughput one.
pub fn run_surrogate(opts: &BenchOpts) -> BenchResult {
    use psca_cpu::BackendChoice;
    const INTERVAL: u64 = 50_000;
    const WARM: u64 = 20_000;
    let intervals: u64 = if opts.quick { 8 } else { 40 };
    let cpu = CpuConfig::skylake_scaled();
    // Calibration is a one-time, per-config cost (cached process-wide);
    // measured separately so it doesn't dilute the steady-state speedup.
    let t0 = Instant::now();
    std::hint::black_box(psca_cpu::backend::surrogate_model(&cpu, INTERVAL));
    let calibration_s = t0.elapsed().as_secs_f64();
    let mut result = BenchResult {
        bench: "surrogate".into(),
        unit: "speedup".into(),
        seed: opts.seed,
        jobs: 1,
        ..BenchResult::default()
    };
    let mut wall = [0.0f64; 2]; // [cycle_accurate, surrogate]
    let mut insts = 0u64;
    for archetype in [
        Archetype::Balanced,
        Archetype::MemBound,
        Archetype::ScalarIlp,
    ] {
        let mut gen = PhaseGenerator::new(archetype.center(), opts.seed);
        let (warm, window) = psca_adapt::record_trace(&mut gen, WARM, intervals * INTERVAL);
        let mut ipc = [0.0f64; 2];
        for (bi, choice) in [BackendChoice::CycleAccurate, BackendChoice::Surrogate]
            .into_iter()
            .enumerate()
        {
            let mut backend = choice.build(cpu.clone(), INTERVAL);
            let mut warm_src = warm.clone();
            let mut src = window.clone();
            backend.warm_up(&mut warm_src, WARM);
            let span = SpanTimer::start(&format!("bench.surrogate.{}", choice.as_str()));
            let t0 = Instant::now();
            let mut cycles = 0u64;
            let mut done = 0u64;
            while let Some(r) = backend.run_interval(&mut src, INTERVAL) {
                cycles += r.snapshot.cycles;
                done += r.instructions;
                std::hint::black_box(r.energy);
            }
            wall[bi] += t0.elapsed().as_secs_f64().max(1e-9);
            drop(span);
            ipc[bi] = done as f64 / cycles.max(1) as f64;
            if bi == 0 {
                insts += done;
            }
        }
        // Informational by naming convention: fidelity is gated by
        // tests/surrogate.rs with archetype-specific bounds, not by the
        // perf tolerance band.
        let slug = format!("{archetype:?}").to_lowercase();
        result.metrics.insert(
            format!("ipc_ratio.{slug}"),
            ipc[1] / ipc[0].max(f64::MIN_POSITIVE),
        );
    }
    let m = &mut result.metrics;
    m.insert(
        "insts_per_sec.cycle_accurate".into(),
        insts as f64 / wall[0].max(f64::MIN_POSITIVE),
    );
    m.insert(
        "insts_per_sec.surrogate".into(),
        insts as f64 / wall[1].max(f64::MIN_POSITIVE),
    );
    m.insert(
        "surrogate_speedup".into(),
        wall[0] / wall[1].max(f64::MIN_POSITIVE),
    );
    m.insert("calibration_s".into(), calibration_s);
    result
}

/// Dispatches a runner by canonical bench name.
pub fn run_bench(name: &str, opts: &BenchOpts) -> Option<BenchResult> {
    match name {
        "sim_throughput" => Some(run_sim_throughput(opts)),
        "sweep" => Some(run_sweep(opts)),
        "inference" => Some(run_inference(opts)),
        "serve" => Some(run_serve(opts)),
        "surrogate" => Some(run_surrogate(opts)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result_with(bench: &str, metrics: &[(&str, f64)]) -> BenchResult {
        BenchResult {
            bench: bench.into(),
            unit: "x".into(),
            seed: 1,
            jobs: 2,
            metrics: metrics.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
            ..BenchResult::default()
        }
    }

    #[test]
    fn directions_follow_the_naming_convention() {
        assert_eq!(
            metric_direction("serial_cells_per_sec"),
            Direction::HigherBetter
        );
        assert_eq!(
            metric_direction("cache_warm_speedup"),
            Direction::HigherBetter
        );
        assert_eq!(metric_direction("availability"), Direction::HigherBetter);
        assert_eq!(metric_direction("p99_us"), Direction::LowerBetter);
        assert_eq!(metric_direction("cache_cold_s"), Direction::LowerBetter);
        assert_eq!(
            metric_direction("best_rf_8x8.predict_ns"),
            Direction::LowerBetter
        );
        assert_eq!(metric_direction("cells"), Direction::Informational);
        assert_eq!(metric_direction("requests"), Direction::Informational);
    }

    #[test]
    fn check_passes_inside_the_band_and_fails_outside() {
        let base = result_with(
            "sweep",
            &[("serial_cells_per_sec", 100.0), ("p99_us", 1000.0)],
        );
        // 20% throughput drop, 20% latency growth: inside a 50% band.
        let ok = result_with(
            "sweep",
            &[("serial_cells_per_sec", 80.0), ("p99_us", 1200.0)],
        );
        assert!(check(&ok, &base, 0.5).is_empty());
        // 60% throughput drop: a violation at 50% tolerance.
        let slow = result_with(
            "sweep",
            &[("serial_cells_per_sec", 40.0), ("p99_us", 1200.0)],
        );
        let v = check(&slow, &base, 0.5);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].metric, "serial_cells_per_sec");
        // 3x latency: also a violation (and Display names the direction).
        let laggy = result_with(
            "sweep",
            &[("serial_cells_per_sec", 100.0), ("p99_us", 3000.0)],
        );
        let v = check(&laggy, &base, 0.5);
        assert_eq!(v.len(), 1);
        assert!(v[0].to_string().contains("grew past"));
    }

    #[test]
    fn check_ignores_informational_and_missing_metrics() {
        let base = result_with("sweep", &[("cells", 96.0), ("full_only_per_sec", 50.0)]);
        // `cells` halved (informational) and the baseline-only rate is
        // absent from the current run (quick mode): neither gates.
        let cur = result_with("sweep", &[("cells", 48.0)]);
        assert!(check(&cur, &base, 0.1).is_empty());
    }

    #[test]
    fn check_improvements_never_violate() {
        let base = result_with("serve", &[("achieved_rps", 50.0), ("p99_us", 2000.0)]);
        let fast = result_with("serve", &[("achieved_rps", 500.0), ("p99_us", 20.0)]);
        assert!(check(&fast, &base, 0.1).is_empty());
    }

    #[test]
    fn unified_json_roundtrips() {
        let mut r = result_with("serve", &[("p99_us", 1234.0), ("achieved_rps", 49.5)]);
        r.profile_top.push((
            "serve.request".into(),
            NodeStat {
                calls: 10,
                total_ns: 5_000_000,
                self_ns: 4_000_000,
            },
        ));
        r.extra.push(("slowest_trace_id".into(), "abcd".into()));
        let doc = r.to_json();
        assert_eq!(doc.get("schema").and_then(Json::as_str), Some(SCHEMA));
        // Legacy mirror keys stay readable at the top level.
        assert_eq!(doc.get("p99_us").and_then(Json::as_u64), Some(1234));
        assert_eq!(
            doc.get("slowest_trace_id").and_then(Json::as_str),
            Some("abcd")
        );
        let parsed = BenchResult::from_json(&doc).unwrap();
        assert_eq!(parsed.bench, "serve");
        assert_eq!(parsed.seed, 1);
        assert_eq!(parsed.jobs, 2);
        assert_eq!(parsed.metrics.get("p99_us"), Some(&1234.0));
        // Round-trip serializes identically (metrics are a BTreeMap).
        assert_eq!(
            parsed.metrics,
            BenchResult::from_json(&parsed.to_json()).unwrap().metrics
        );
    }

    #[test]
    fn legacy_documents_parse_into_the_unified_model() {
        let legacy = Json::parse(
            r#"{"bench":"sweep_throughput","cells":96,"jobs":4,
                "serial_cells_per_sec":96.11,"parallel_cells_per_sec":96.29,
                "speedup_vs_serial":1.002,"cache_cold_s":1.007,
                "cache_warm_s":0.003,"cache_warm_speedup":389.8}"#,
        )
        .unwrap();
        let r = BenchResult::from_json(&legacy).unwrap();
        assert_eq!(r.bench, "sweep_throughput");
        assert_eq!(r.metrics.get("cells"), Some(&96.0));
        assert_eq!(r.metrics.get("cache_warm_speedup"), Some(&389.8));
        // Nested legacy objects flatten with a dot.
        let legacy_sim = Json::parse(
            r#"{"bench":"sim_throughput","sim_insts_per_sec":100,
                "per_case_insts_per_sec":{"a/b":50}}"#,
        )
        .unwrap();
        let r = BenchResult::from_json(&legacy_sim).unwrap();
        assert_eq!(r.metrics.get("per_case_insts_per_sec.a/b"), Some(&50.0));
    }
}
