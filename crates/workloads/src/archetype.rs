//! Phase behaviour archetypes and their concrete sampled parameters.
//!
//! An archetype is a *family* of phase behaviours: it fixes the rough shape
//! of the instruction mix, the dependence structure (which determines how
//! the phase responds to issue width), and the memory/branch profile.
//! Concrete phases are sampled from an archetype with per-application
//! jitter, giving the corpus the long-tailed diversity the paper's
//! blindspot analysis depends on (§6.1).

use rand::Rng;

/// A phase behaviour family.
///
/// The two `StreamFp*` archetypes form the engineered *blindspot pair*: they
/// present nearly identical instruction mixes, cache behaviour, and branch
/// behaviour — differing only in dependence structure, which is invisible to
/// the CHARSTAR expert counter set but visible to the dependence-visibility
/// counters PF selection picks (see `DESIGN.md` §4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Archetype {
    /// Wide integer ILP: many independent chains; needs the 8-wide mode.
    ScalarIlp,
    /// Serial integer dependence chains; 4-wide loses nothing.
    DepChain,
    /// Working set far beyond the LLC, random access; memory-bound.
    MemBound,
    /// Loads feeding loads (linked structures); extremely latency-bound.
    PointerChase,
    /// High branch density with hard-to-predict outcomes.
    Branchy,
    /// Streaming FP with many independent chains (blindspot twin, wide).
    StreamFpWide,
    /// Streaming FP with long dependence chains (blindspot twin, serial).
    StreamFpChain,
    /// Large code footprint; front-end / I-cache bound.
    IcacheHeavy,
    /// Store-dominated; store-queue pressure.
    StoreHeavy,
    /// Sparse page access pattern; TLB-bound.
    TlbThrash,
    /// Packed SIMD kernels with moderate-to-high ILP.
    SimdKernel,
    /// Middle-of-the-road mixed behaviour.
    Balanced,
}

impl Archetype {
    /// All archetypes in a fixed order.
    pub const ALL: [Archetype; 12] = [
        Archetype::ScalarIlp,
        Archetype::DepChain,
        Archetype::MemBound,
        Archetype::PointerChase,
        Archetype::Branchy,
        Archetype::StreamFpWide,
        Archetype::StreamFpChain,
        Archetype::IcacheHeavy,
        Archetype::StoreHeavy,
        Archetype::TlbThrash,
        Archetype::SimdKernel,
        Archetype::Balanced,
    ];

    /// Samples concrete phase parameters from this archetype.
    ///
    /// `jitter` in `[0, 1]` scales how far parameters may wander from the
    /// archetype's center — per-application diversity comes from here.
    pub fn sample_params<R: Rng>(self, rng: &mut R, jitter: f64) -> PhaseParams {
        let center = self.center();
        center.jittered(rng, jitter)
    }

    /// The canonical (center) parameters of the archetype.
    pub fn center(self) -> PhaseParams {
        match self {
            Archetype::ScalarIlp => PhaseParams {
                archetype: self,
                ilp_chains: 16,
                cross_chain_frac: 0.10,
                load_frac: 0.18,
                store_frac: 0.06,
                branch_frac: 0.07,
                fp_frac: 0.05,
                mul_frac: 0.10,
                div_frac: 0.001,
                simd_frac: 0.02,
                pointer_chase_frac: 0.0,
                load_chain_frac: 0.2,
                working_set_lines: 256,
                spatial_locality: 0.85,
                page_span: 8,
                branch_taken_bias: 0.6,
                branch_entropy: 0.03,
                code_lines: 96,
                burst_period: 0,
                burst_serial_frac: 0.0,
                burst_serial_chains: 2,
            },
            Archetype::DepChain => PhaseParams {
                archetype: self,
                ilp_chains: 2,
                cross_chain_frac: 0.05,
                load_frac: 0.15,
                store_frac: 0.05,
                branch_frac: 0.12,
                fp_frac: 0.05,
                mul_frac: 0.15,
                div_frac: 0.002,
                simd_frac: 0.0,
                pointer_chase_frac: 0.05,
                load_chain_frac: 0.7,
                working_set_lines: 512,
                spatial_locality: 0.7,
                page_span: 16,
                branch_taken_bias: 0.65,
                branch_entropy: 0.08,
                code_lines: 128,
                burst_period: 0,
                burst_serial_frac: 0.0,
                burst_serial_chains: 2,
            },
            Archetype::MemBound => PhaseParams {
                archetype: self,
                ilp_chains: 5,
                cross_chain_frac: 0.08,
                load_frac: 0.32,
                store_frac: 0.08,
                branch_frac: 0.08,
                fp_frac: 0.10,
                mul_frac: 0.05,
                div_frac: 0.0,
                simd_frac: 0.0,
                pointer_chase_frac: 0.10,
                load_chain_frac: 0.3,
                working_set_lines: 1 << 17, // 8 MiB: beyond LLC
                spatial_locality: 0.15,
                page_span: 2048,
                branch_taken_bias: 0.7,
                branch_entropy: 0.1,
                code_lines: 64,
                burst_period: 0,
                burst_serial_frac: 0.0,
                burst_serial_chains: 2,
            },
            Archetype::PointerChase => PhaseParams {
                archetype: self,
                ilp_chains: 3,
                cross_chain_frac: 0.05,
                load_frac: 0.35,
                store_frac: 0.04,
                branch_frac: 0.12,
                fp_frac: 0.0,
                mul_frac: 0.02,
                div_frac: 0.0,
                simd_frac: 0.0,
                pointer_chase_frac: 0.30,
                load_chain_frac: 0.3,
                working_set_lines: 1 << 14,
                spatial_locality: 0.05,
                page_span: 512,
                branch_taken_bias: 0.55,
                branch_entropy: 0.2,
                code_lines: 80,
                burst_period: 0,
                burst_serial_frac: 0.0,
                burst_serial_chains: 2,
            },
            Archetype::Branchy => PhaseParams {
                archetype: self,
                ilp_chains: 4,
                cross_chain_frac: 0.10,
                load_frac: 0.18,
                store_frac: 0.06,
                branch_frac: 0.26,
                fp_frac: 0.0,
                mul_frac: 0.04,
                div_frac: 0.0,
                simd_frac: 0.0,
                pointer_chase_frac: 0.05,
                load_chain_frac: 0.3,
                working_set_lines: 1024,
                spatial_locality: 0.5,
                page_span: 32,
                branch_taken_bias: 0.5,
                branch_entropy: 0.45,
                code_lines: 256,
                burst_period: 0,
                burst_serial_frac: 0.0,
                burst_serial_chains: 2,
            },
            Archetype::StreamFpWide => PhaseParams {
                archetype: self,
                ilp_chains: 30,
                cross_chain_frac: 0.06,
                load_frac: 0.24,
                store_frac: 0.08,
                branch_frac: 0.06,
                fp_frac: 0.85,
                mul_frac: 0.0,
                div_frac: 0.002,
                simd_frac: 0.05,
                pointer_chase_frac: 0.0,
                load_chain_frac: 0.0,
                working_set_lines: 1 << 12, // 256 KiB streamed
                spatial_locality: 0.995,
                page_span: 64,
                branch_taken_bias: 0.88,
                branch_entropy: 0.04,
                code_lines: 48,
                burst_period: 2000,
                burst_serial_frac: 0.10,
                burst_serial_chains: 2,
            },
            Archetype::StreamFpChain => PhaseParams {
                archetype: self,
                // The blindspot twin: identical profile except dependence
                // structure (recurrences instead of independent lanes).
                ilp_chains: 7,
                cross_chain_frac: 0.06,
                load_frac: 0.24,
                store_frac: 0.08,
                branch_frac: 0.06,
                fp_frac: 0.85,
                mul_frac: 0.0,
                div_frac: 0.002,
                simd_frac: 0.05,
                pointer_chase_frac: 0.0,
                load_chain_frac: 0.0,
                working_set_lines: 1 << 12,
                spatial_locality: 0.995,
                page_span: 64,
                branch_taken_bias: 0.88,
                branch_entropy: 0.04,
                code_lines: 48,
                burst_period: 0,
                burst_serial_frac: 0.0,
                burst_serial_chains: 2,
            },
            Archetype::IcacheHeavy => PhaseParams {
                archetype: self,
                ilp_chains: 4,
                cross_chain_frac: 0.12,
                load_frac: 0.20,
                store_frac: 0.08,
                branch_frac: 0.18,
                fp_frac: 0.02,
                mul_frac: 0.05,
                div_frac: 0.0,
                simd_frac: 0.0,
                pointer_chase_frac: 0.08,
                load_chain_frac: 0.4,
                working_set_lines: 4096,
                spatial_locality: 0.6,
                page_span: 128,
                branch_taken_bias: 0.6,
                branch_entropy: 0.15,
                code_lines: 2048, // 128 KiB of code: L2-resident
                burst_period: 0,
                burst_serial_frac: 0.0,
                burst_serial_chains: 2,
            },
            Archetype::StoreHeavy => PhaseParams {
                archetype: self,
                ilp_chains: 5,
                cross_chain_frac: 0.08,
                load_frac: 0.15,
                store_frac: 0.24,
                branch_frac: 0.08,
                fp_frac: 0.05,
                mul_frac: 0.05,
                div_frac: 0.0,
                simd_frac: 0.02,
                pointer_chase_frac: 0.0,
                load_chain_frac: 0.2,
                working_set_lines: 1 << 12,
                spatial_locality: 0.8,
                page_span: 64,
                branch_taken_bias: 0.7,
                branch_entropy: 0.08,
                code_lines: 96,
                burst_period: 0,
                burst_serial_frac: 0.0,
                burst_serial_chains: 2,
            },
            Archetype::TlbThrash => PhaseParams {
                archetype: self,
                ilp_chains: 5,
                cross_chain_frac: 0.06,
                load_frac: 0.28,
                store_frac: 0.06,
                branch_frac: 0.08,
                fp_frac: 0.05,
                mul_frac: 0.04,
                div_frac: 0.0,
                simd_frac: 0.0,
                pointer_chase_frac: 0.05,
                load_chain_frac: 0.3,
                working_set_lines: 2048, // L2-resident data...
                spatial_locality: 0.1,
                page_span: 2048, // ...scattered one line per page
                branch_taken_bias: 0.65,
                branch_entropy: 0.1,
                code_lines: 72,
                burst_period: 0,
                burst_serial_frac: 0.0,
                burst_serial_chains: 2,
            },
            Archetype::SimdKernel => PhaseParams {
                archetype: self,
                ilp_chains: 18,
                cross_chain_frac: 0.05,
                load_frac: 0.15,
                store_frac: 0.08,
                branch_frac: 0.05,
                fp_frac: 0.20,
                mul_frac: 0.0,
                div_frac: 0.0,
                simd_frac: 0.7,
                pointer_chase_frac: 0.0,
                load_chain_frac: 0.0,
                working_set_lines: 1 << 10,
                spatial_locality: 0.98,
                page_span: 32,
                branch_taken_bias: 0.9,
                branch_entropy: 0.03,
                code_lines: 40,
                burst_period: 0,
                burst_serial_frac: 0.0,
                burst_serial_chains: 2,
            },
            Archetype::Balanced => PhaseParams {
                archetype: self,
                ilp_chains: 3,
                cross_chain_frac: 0.10,
                load_frac: 0.20,
                store_frac: 0.08,
                branch_frac: 0.12,
                fp_frac: 0.15,
                mul_frac: 0.06,
                div_frac: 0.001,
                simd_frac: 0.03,
                pointer_chase_frac: 0.05,
                load_chain_frac: 0.3,
                working_set_lines: 2048,
                spatial_locality: 0.6,
                page_span: 48,
                branch_taken_bias: 0.62,
                branch_entropy: 0.12,
                code_lines: 160,
                burst_period: 0,
                burst_serial_frac: 0.0,
                burst_serial_chains: 2,
            },
        }
    }
}

/// Concrete parameters of one phase, sampled from an [`Archetype`].
///
/// Fractions refer to the dynamic instruction stream; `ilp_chains` is the
/// number of parallel register dependence chains the generator maintains —
/// the dataflow ILP ceiling of the phase, and the single most important
/// determinant of whether the 4-wide low-power mode meets the SLA.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseParams {
    /// Archetype this phase was sampled from.
    pub archetype: Archetype,
    /// Number of parallel dependence chains (1..=16).
    pub ilp_chains: u32,
    /// Fraction of compute ops reading a second, different chain.
    pub cross_chain_frac: f64,
    /// Fraction of instructions that are loads.
    pub load_frac: f64,
    /// Fraction of instructions that are stores.
    pub store_frac: f64,
    /// Fraction of instructions that are branches.
    pub branch_frac: f64,
    /// Of compute ops, the fraction on the FP stack.
    pub fp_frac: f64,
    /// Of integer compute ops, the fraction that are multiplies.
    pub mul_frac: f64,
    /// Of compute ops, the fraction that are divides.
    pub div_frac: f64,
    /// Of compute ops, the fraction that are SIMD.
    pub simd_frac: f64,
    /// Of loads, the fraction whose address depends on a prior load.
    pub pointer_chase_frac: f64,
    /// Of non-chased loads, the fraction whose address depends on the
    /// compute chain (serializing) rather than on independent induction
    /// arithmetic (streaming).
    pub load_chain_frac: f64,
    /// Distinct 64-byte data lines in the working set.
    pub working_set_lines: u64,
    /// Probability the next access is sequential rather than random.
    pub spatial_locality: f64,
    /// Distinct 4-KiB pages the working set spans.
    pub page_span: u64,
    /// Probability a conditional branch is taken.
    pub branch_taken_bias: f64,
    /// Branch outcome irregularity: 0 = deterministic, 1 = coin flip.
    pub branch_entropy: f64,
    /// Distinct 64-byte instruction lines (code footprint).
    pub code_lines: u64,
    /// Intra-phase burst period in instructions (0 = uniform behaviour).
    ///
    /// Bursty phases alternate between a wide region using all
    /// `ilp_chains` chains and a serial region using `burst_serial_chains`
    /// — the shape of loop nests that mix vectorizable inner loops with
    /// serial reductions. Burstiness is what makes a phase width-sensitive
    /// at a *moderate average IPC*.
    pub burst_period: u64,
    /// Fraction of the burst period spent in the serial region.
    pub burst_serial_frac: f64,
    /// Chain count of the serial region.
    pub burst_serial_chains: u32,
}

impl PhaseParams {
    /// Returns a jittered copy: each field wanders multiplicatively by up to
    /// `±jitter` (fractions are clamped to valid ranges).
    pub fn jittered<R: Rng>(&self, rng: &mut R, jitter: f64) -> PhaseParams {
        let mut p = *self;
        let mut jf = |v: f64| -> f64 {
            let f = 1.0 + jitter * (rng.gen::<f64>() * 2.0 - 1.0);
            v * f
        };
        p.cross_chain_frac = jf(p.cross_chain_frac).clamp(0.0, 0.5);
        p.load_frac = jf(p.load_frac).clamp(0.0, 0.45);
        p.store_frac = jf(p.store_frac).clamp(0.0, 0.35);
        p.branch_frac = jf(p.branch_frac).clamp(0.0, 0.35);
        p.fp_frac = jf(p.fp_frac).clamp(0.0, 1.0);
        p.mul_frac = jf(p.mul_frac).clamp(0.0, 0.5);
        p.div_frac = jf(p.div_frac).clamp(0.0, 0.05);
        p.simd_frac = jf(p.simd_frac).clamp(0.0, 0.9);
        p.pointer_chase_frac = jf(p.pointer_chase_frac).clamp(0.0, 0.95);
        p.load_chain_frac = jf(p.load_chain_frac).clamp(0.0, 1.0);
        p.spatial_locality = jf(p.spatial_locality).clamp(0.0, 0.99);
        p.branch_taken_bias = jf(p.branch_taken_bias).clamp(0.05, 0.95);
        p.branch_entropy = jf(p.branch_entropy).clamp(0.0, 1.0);
        let ji = |v: u64, rng: &mut R| -> u64 {
            let f = 1.0 + jitter * (rng.gen::<f64>() * 2.0 - 1.0);
            ((v as f64 * f).round() as u64).max(1)
        };
        p.working_set_lines = ji(p.working_set_lines, rng);
        // Keep at most 64 lines per page (the generator's in-page slot
        // space), and never more pages than lines.
        p.page_span = ji(p.page_span, rng)
            .clamp(p.working_set_lines.div_ceil(64), p.working_set_lines.max(1));
        p.code_lines = ji(p.code_lines, rng).max(4);
        let fc = 1.0 + jitter * (rng.gen::<f64>() * 2.0 - 1.0);
        p.ilp_chains = ((p.ilp_chains as f64 * fc).round() as u32).clamp(1, 32);
        if p.burst_period > 0 {
            let f = 1.0 + jitter * (rng.gen::<f64>() * 2.0 - 1.0);
            p.burst_period = ((p.burst_period as f64 * f).round() as u64).max(64);
            let f = 1.0 + jitter * (rng.gen::<f64>() * 2.0 - 1.0);
            p.burst_serial_frac = (p.burst_serial_frac * f).clamp(0.05, 0.9);
        }
        p
    }

    /// Fraction of instructions that are compute (not memory or branch).
    pub fn compute_frac(&self) -> f64 {
        (1.0 - self.load_frac - self.store_frac - self.branch_frac).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn centers_are_valid() {
        for a in Archetype::ALL {
            let p = a.center();
            assert!(p.load_frac + p.store_frac + p.branch_frac < 1.0, "{a:?}");
            assert!(p.ilp_chains >= 1 && p.ilp_chains <= 32, "{a:?}");
            assert!(p.working_set_lines >= 1, "{a:?}");
            assert!(p.page_span >= 1, "{a:?}");
            assert!(p.compute_frac() > 0.0, "{a:?}");
        }
    }

    #[test]
    fn blindspot_pair_differs_only_in_dependence_structure() {
        let wide = Archetype::StreamFpWide.center();
        let chain = Archetype::StreamFpChain.center();
        assert_ne!(wide.ilp_chains, chain.ilp_chains);
        assert_eq!(wide.load_frac, chain.load_frac);
        assert_eq!(wide.store_frac, chain.store_frac);
        assert_eq!(wide.branch_frac, chain.branch_frac);
        assert_eq!(wide.working_set_lines, chain.working_set_lines);
        assert_eq!(wide.branch_entropy, chain.branch_entropy);
        assert_eq!(wide.code_lines, chain.code_lines);
    }

    #[test]
    fn jitter_stays_in_valid_ranges() {
        let mut rng = StdRng::seed_from_u64(1);
        for a in Archetype::ALL {
            for _ in 0..50 {
                let p = a.sample_params(&mut rng, 0.5);
                assert!(p.load_frac >= 0.0 && p.load_frac <= 0.45);
                assert!(p.branch_taken_bias >= 0.05 && p.branch_taken_bias <= 0.95);
                assert!(p.ilp_chains >= 1 && p.ilp_chains <= 32);
                assert!(p.page_span <= p.working_set_lines.max(1));
                assert!(p.code_lines >= 4);
            }
        }
    }

    #[test]
    fn zero_jitter_is_identity_for_fractions() {
        let mut rng = StdRng::seed_from_u64(2);
        let c = Archetype::Balanced.center();
        let p = c.jittered(&mut rng, 0.0);
        assert_eq!(p, c);
    }

    #[test]
    fn jitter_produces_diversity() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = Archetype::Balanced.sample_params(&mut rng, 0.4);
        let b = Archetype::Balanced.sample_params(&mut rng, 0.4);
        assert_ne!(a, b);
    }
}
