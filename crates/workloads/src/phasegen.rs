//! The phase instruction synthesizer.
//!
//! [`PhaseGenerator`] turns a [`PhaseParams`] into a deterministic stream of
//! dynamic instructions whose dataflow, memory, and branch structure realize
//! the phase's promised behaviour. The generator is the bridge between the
//! statistical workload models and the structural CPU simulator: nothing
//! downstream ever sees the parameters, only the instruction stream.

use crate::archetype::PhaseParams;
use psca_trace::{BranchInfo, Instruction, MemRef, OpClass, Reg, TraceSource};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Base virtual address of the synthetic data segment.
const DATA_BASE: u64 = 0x1000_0000;
/// Base virtual address of the synthetic code segment.
const CODE_BASE: u64 = 0x0040_0000;

/// Number of rotating scratch registers receiving load results.
const SCRATCH_REGS: usize = 4;

/// Streams instructions realizing one phase.
///
/// Dependence structure: the generator maintains `ilp_chains` register
/// chains (integer chains in `r8..`, FP chains in `f0..`). Each compute
/// instruction extends one chain round-robin, reading the chain's last
/// destination — so the dataflow ILP ceiling equals the chain count.
/// Loads feed chains; pointer-chasing loads feed their own address.
///
/// # Examples
///
/// ```
/// use psca_workloads::{Archetype, PhaseGenerator};
/// use psca_trace::TraceSource;
///
/// let params = Archetype::DepChain.center();
/// let mut gen = PhaseGenerator::new(params, 42);
/// let inst = gen.next_instruction().unwrap();
/// assert!(inst.is_well_formed());
/// ```
#[derive(Debug, Clone)]
pub struct PhaseGenerator {
    params: PhaseParams,
    rng: StdRng,
    /// Last destination register of each chain.
    chain_regs: Vec<Reg>,
    /// Next chain to extend.
    chain_cursor: usize,
    /// Pointer register for chased loads.
    ptr_reg: Reg,
    /// Scratch registers receiving load results.
    scratch_regs: [Reg; SCRATCH_REGS],
    /// Rotating cursor over the scratch registers.
    scratch_cursor: usize,
    /// Current sequential data cursor (line index within working set).
    data_line: u64,
    /// Byte-granular streaming cursor within the working set.
    data_byte: u64,
    /// Current code line index.
    code_line: u64,
    /// Sub-line instruction slot (for PC generation).
    code_slot: u64,
    /// Per-branch-site deterministic outcome pattern phase.
    branch_phase: u64,
    /// Instructions emitted so far (drives burst alternation).
    emitted: u64,
}

impl PhaseGenerator {
    /// Creates a generator for the given phase with a deterministic seed.
    pub fn new(params: PhaseParams, seed: u64) -> PhaseGenerator {
        let n = (params.ilp_chains as usize).min(32);
        let chain_regs = (0..n)
            .map(|i| {
                // Chains span both register banks so up to 32 distinct
                // chains exist; FP-heavy phases fill the FP bank first so
                // low chain counts stay on the FP stack.
                let (first_fp, i) = (params.fp_frac > 0.5, i);
                match (first_fp, i < 16) {
                    (true, true) => Reg::fp(i as u8),
                    (true, false) => Reg::int((8 + (i - 16)) as u8),
                    (false, true) => Reg::int((8 + i) as u8),
                    (false, false) => Reg::fp((i - 16) as u8),
                }
            })
            .collect();
        PhaseGenerator {
            params,
            rng: StdRng::seed_from_u64(seed),
            chain_regs,
            chain_cursor: 0,
            ptr_reg: Reg::int(24),
            scratch_regs: [Reg::int(0), Reg::int(1), Reg::int(2), Reg::int(3)],
            scratch_cursor: 0,
            data_line: 0,
            data_byte: 0,
            code_line: 0,
            code_slot: 0,
            branch_phase: 0,
            emitted: 0,
        }
    }

    /// The phase parameters this generator realizes.
    pub fn params(&self) -> &PhaseParams {
        &self.params
    }

    /// Current program counter.
    fn pc(&self) -> u64 {
        CODE_BASE + self.code_line * 64 + (self.code_slot % 16) * 4
    }

    /// Advances the PC: walk the code footprint sequentially, wrapping.
    fn advance_pc(&mut self) {
        self.code_slot += 1;
        if self.code_slot.is_multiple_of(16) {
            self.code_line = (self.code_line + 1) % self.params.code_lines;
        }
    }

    /// Picks the next data address according to locality parameters.
    ///
    /// Sequential accesses advance 8 bytes at a time (streaming through a
    /// cache line touches it 8 times, as real element-wise kernels do);
    /// non-sequential accesses jump to a random line in the working set.
    fn next_data_addr(&mut self) -> u64 {
        let ws = self.params.working_set_lines.max(1);
        if self.rng.gen::<f64>() < self.params.spatial_locality {
            self.data_byte = (self.data_byte + 8) % (ws * 64);
        } else {
            self.data_line = self.rng.gen_range(0..ws);
            self.data_byte = self.data_line * 64 + self.rng.gen_range(0..8u64) * 8;
        }
        let line = self.data_byte / 64;
        self.line_to_addr(line) + self.data_byte % 64
    }

    /// Maps a working-set line index to a virtual address spread over the
    /// configured page span.
    ///
    /// Consecutive lines share a page (so sequential streams have page
    /// locality); a per-page salt staggers the in-page slot so that sparse
    /// pages do not alias onto a few cache sets.
    fn line_to_addr(&self, line: u64) -> u64 {
        let ws = self.params.working_set_lines.max(1);
        let pages = self.params.page_span.max(1);
        let lpp = ws.div_ceil(pages).clamp(1, 64);
        let page = (line / lpp) % pages;
        // The per-page slot salt must be *hashed*: a linear salt like
        // `page * k % 64` aliases with the page's low bits and collapses
        // sparse-page working sets onto a handful of cache sets.
        let salt = (page.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 58) % 64;
        let slot = (line % lpp + salt) % 64;
        DATA_BASE + page * 4096 + slot * 64
    }

    /// Number of chains active at the current position (bursty phases
    /// alternate between wide and serial regions).
    fn active_chains(&self) -> usize {
        let p = &self.params;
        if p.burst_period == 0 {
            return self.chain_regs.len();
        }
        let pos = self.emitted % p.burst_period;
        let wide_len = ((1.0 - p.burst_serial_frac) * p.burst_period as f64).round() as u64;
        if pos < wide_len {
            self.chain_regs.len()
        } else {
            (p.burst_serial_chains as usize).clamp(1, self.chain_regs.len())
        }
    }

    /// Next chain register, round-robin over the active chains, returning
    /// `(read, write)` regs.
    fn next_chain(&mut self) -> (Reg, Reg) {
        let n = self.active_chains();
        let c = self.chain_cursor % n;
        self.chain_cursor = (self.chain_cursor + 1) % n;
        let r = self.chain_regs[c];
        (r, r)
    }

    /// A register from a different chain, for cross-chain reads.
    fn other_chain(&mut self) -> Option<Reg> {
        if self.chain_regs.len() < 2 {
            return None;
        }
        let c = self.rng.gen_range(0..self.chain_regs.len());
        Some(self.chain_regs[c])
    }

    fn gen_compute(&mut self) -> Instruction {
        let p = self.params;
        let (src, dst) = self.next_chain();
        // Second operand: occasionally another chain (coupling), else a
        // recently-loaded value (recurrences like `acc += a[i] * b` read
        // the load result but the dependence chain flows through `acc`).
        let second = if self.rng.gen::<f64>() < p.cross_chain_frac {
            self.other_chain()
        } else if self.rng.gen::<f64>() < 0.5 {
            Some(self.scratch_regs[self.scratch_cursor % SCRATCH_REGS])
        } else {
            None
        };
        let u: f64 = self.rng.gen();
        let op = if u < p.simd_frac {
            if self.rng.gen::<f64>() < p.fp_frac {
                OpClass::SimdFp
            } else {
                OpClass::SimdInt
            }
        } else if self.rng.gen::<f64>() < p.div_frac {
            if self.rng.gen::<f64>() < p.fp_frac {
                OpClass::FpDiv
            } else {
                OpClass::IntDiv
            }
        } else if self.rng.gen::<f64>() < p.fp_frac {
            match self.rng.gen_range(0..3) {
                0 => OpClass::FpAdd,
                1 => OpClass::FpMul,
                _ => OpClass::FpFma,
            }
        } else if self.rng.gen::<f64>() < p.mul_frac {
            OpClass::IntMul
        } else {
            OpClass::IntAlu
        };
        Instruction::alu(op, Some(dst), [Some(src), second])
    }

    fn gen_load(&mut self) -> Instruction {
        let p = self.params;
        if self.rng.gen::<f64>() < p.pointer_chase_frac {
            // Chased load: address depends on the previous chased load's
            // result; the loaded value becomes the next pointer.
            let ws = p.working_set_lines.max(1);
            let line = self.rng.gen_range(0..ws);
            let addr = self.line_to_addr(line);
            Instruction::load(self.ptr_reg, Some(self.ptr_reg), MemRef::new(addr, 8))
        } else {
            let addr = self.next_data_addr();
            // Loads land in scratch registers (they feed chains as second
            // operands, they do not restart them). With probability
            // `load_chain_frac` the *address* depends on the chain (index
            // arithmetic in the dependence path — serial code); otherwise
            // the address comes from independent induction arithmetic.
            self.scratch_cursor = self.scratch_cursor.wrapping_add(1);
            let dst = self.scratch_regs[self.scratch_cursor % SCRATCH_REGS];
            let idx = if self.rng.gen::<f64>() < p.load_chain_frac {
                let (src, _) = self.next_chain();
                Some(src)
            } else {
                None
            };
            Instruction::load(dst, idx, MemRef::new(addr, 8))
        }
    }

    fn gen_store(&mut self) -> Instruction {
        let addr = self.next_data_addr();
        let (src, _) = self.next_chain();
        Instruction::store(Some(src), None, MemRef::new(addr, 8))
    }

    fn gen_branch(&mut self) -> (Instruction, u64) {
        let p = self.params;
        self.branch_phase = self.branch_phase.wrapping_add(1);
        // Each branch site has a dominant direction (learnable by the
        // direction predictor) plus an entropy-controlled random component
        // (not learnable) — matching how biased real branches behave.
        let taken = if self.rng.gen::<f64>() < p.branch_entropy {
            self.rng.gen::<f64>() < p.branch_taken_bias
        } else {
            p.branch_taken_bias >= 0.5
        };
        // One stable branch site per code line: real code has a bounded set
        // of static branch PCs, which is what makes direction prediction
        // learnable at all.
        let site_pc = CODE_BASE + self.code_line * 64 + 60;
        let target = if taken {
            // Backward branch to a small set of stable targets.
            CODE_BASE + (self.branch_phase % 4) * 64
        } else {
            site_pc + 4
        };
        // Branches resolve off cheap induction arithmetic, not the FP/data
        // chains, so they complete quickly (sources: none).
        let inst = if self.rng.gen::<f64>() < 0.03 {
            // Indirect branches rotate among a small target set; the BTB
            // mispredicts only when the target changed since last visit.
            Instruction::indirect_branch(None, BranchInfo::new(taken, target))
        } else {
            Instruction::cond_branch([None, None], BranchInfo::new(taken, target))
        };
        (inst, site_pc)
    }
}

impl TraceSource for PhaseGenerator {
    fn next_instruction(&mut self) -> Option<Instruction> {
        let p = self.params;
        let u: f64 = self.rng.gen();
        let (inst, pc) = if u < p.load_frac {
            (self.gen_load(), self.pc())
        } else if u < p.load_frac + p.store_frac {
            (self.gen_store(), self.pc())
        } else if u < p.load_frac + p.store_frac + p.branch_frac {
            self.gen_branch()
        } else {
            (self.gen_compute(), self.pc())
        };
        self.advance_pc();
        self.emitted += 1;
        Some(inst.at_pc(pc))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::archetype::Archetype;
    use psca_trace::TraceStats;

    fn stats_for(a: Archetype, n: u64) -> TraceStats {
        let mut g = PhaseGenerator::new(a.center(), 7);
        let mut stats = TraceStats::default();
        for _ in 0..n {
            stats.observe(&g.next_instruction().unwrap());
        }
        stats
    }

    #[test]
    fn generator_is_deterministic() {
        let p = Archetype::Balanced.center();
        let mut a = PhaseGenerator::new(p, 5);
        let mut b = PhaseGenerator::new(p, 5);
        for _ in 0..500 {
            assert_eq!(a.next_instruction(), b.next_instruction());
        }
    }

    #[test]
    fn generated_instructions_are_well_formed() {
        for a in Archetype::ALL {
            let mut g = PhaseGenerator::new(a.center(), 3);
            for _ in 0..2000 {
                let inst = g.next_instruction().unwrap();
                assert!(inst.is_well_formed(), "{a:?}: {inst:?}");
            }
        }
    }

    #[test]
    fn mix_matches_params_within_tolerance() {
        for a in [
            Archetype::MemBound,
            Archetype::Branchy,
            Archetype::StoreHeavy,
        ] {
            let p = a.center();
            let stats = stats_for(a, 50_000);
            let loads = stats.fraction(psca_trace::OpClass::Load);
            assert!(
                (loads - p.load_frac).abs() < 0.02,
                "{a:?}: loads {loads} vs {}",
                p.load_frac
            );
            assert!(
                (stats.branch_fraction() - p.branch_frac).abs() < 0.02,
                "{a:?}: branches"
            );
        }
    }

    #[test]
    fn fp_archetypes_emit_fp_ops() {
        let stats = stats_for(Archetype::StreamFpWide, 20_000);
        assert!(
            stats.fp_fraction() > 0.3,
            "fp fraction {}",
            stats.fp_fraction()
        );
    }

    #[test]
    fn working_set_respected() {
        let mut p = Archetype::Balanced.center();
        p.working_set_lines = 8;
        p.page_span = 2;
        let mut g = PhaseGenerator::new(p, 1);
        let mut lines = std::collections::HashSet::new();
        for _ in 0..5000 {
            if let Some(m) = g.next_instruction().unwrap().mem {
                lines.insert(m.addr >> 6);
            }
        }
        // Non-chased accesses stay within ~8 lines; pointer chases may add
        // a handful more, so allow modest slack.
        assert!(lines.len() <= 16, "touched {} lines", lines.len());
    }

    #[test]
    fn pc_stays_in_code_footprint() {
        let p = Archetype::IcacheHeavy.center();
        let mut g = PhaseGenerator::new(p, 2);
        for _ in 0..10_000 {
            let inst = g.next_instruction().unwrap();
            let line = (inst.pc - CODE_BASE) / 64;
            assert!(line < p.code_lines);
        }
    }

    #[test]
    fn blindspot_twins_have_matching_mixes() {
        let w = stats_for(Archetype::StreamFpWide, 40_000);
        let c = stats_for(Archetype::StreamFpChain, 40_000);
        assert!((w.mem_fraction() - c.mem_fraction()).abs() < 0.02);
        assert!((w.branch_fraction() - c.branch_fraction()).abs() < 0.02);
        assert!((w.fp_fraction() - c.fp_fraction()).abs() < 0.05);
    }
}
