//! Application categories of the HDTR corpus (Table 1).

use crate::archetype::Archetype;

/// One of the six application categories the paper's training corpus spans
/// (Table 1: HPC & performance, cloud & security, AI & analytics, web &
/// productivity, multimedia, games/rendering/augmented reality).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Category {
    /// High-performance computing and performance benchmarks (server).
    HpcPerf,
    /// Cloud and security workloads (server).
    CloudSecurity,
    /// AI and data analytics (server).
    AiAnalytics,
    /// Web browsers and productivity tools (client).
    WebProductivity,
    /// Multimedia (client).
    Multimedia,
    /// Games, rendering, and augmented reality (client).
    GamesRendering,
}

impl Category {
    /// All categories in Table 1 order.
    pub const ALL: [Category; 6] = [
        Category::HpcPerf,
        Category::CloudSecurity,
        Category::AiAnalytics,
        Category::WebProductivity,
        Category::Multimedia,
        Category::GamesRendering,
    ];

    /// Table 1 application counts per category (sums to 593).
    pub const PAPER_APP_COUNTS: [usize; 6] = [176, 75, 34, 171, 80, 57];

    /// Human-readable name matching Table 1.
    pub fn name(self) -> &'static str {
        match self {
            Category::HpcPerf => "HPC & Perf.",
            Category::CloudSecurity => "Cloud & Security",
            Category::AiAnalytics => "AI & Analytics",
            Category::WebProductivity => "Web & Productivity",
            Category::Multimedia => "Multimedia",
            Category::GamesRendering => "Games, Rendering & Aug. Reality",
        }
    }

    /// Whether the category is a server category in Table 1.
    pub fn is_server(self) -> bool {
        matches!(
            self,
            Category::HpcPerf | Category::CloudSecurity | Category::AiAnalytics
        )
    }

    /// Archetype sampling weights for applications in this category.
    ///
    /// Weights encode which behaviours each category is rich in. Note that
    /// [`Archetype::StreamFpWide`] — the wide half of the blindspot pair —
    /// is *rare everywhere*: real client/server corpora contain little
    /// wide-vector HPC-style FP streaming, which is exactly why SPEC FP
    /// benchmarks fall into an expert-counter blindspot (§7.1).
    pub fn archetype_weights(self) -> [(Archetype, f64); 12] {
        use Archetype::*;
        match self {
            Category::HpcPerf => [
                (ScalarIlp, 1.5),
                (DepChain, 1.0),
                (MemBound, 1.5),
                (PointerChase, 0.5),
                (Branchy, 0.5),
                (StreamFpWide, 0.15),
                (StreamFpChain, 1.5),
                (IcacheHeavy, 0.3),
                (StoreHeavy, 0.7),
                (TlbThrash, 0.7),
                (SimdKernel, 1.0),
                (Balanced, 1.0),
            ],
            Category::CloudSecurity => [
                (ScalarIlp, 1.0),
                (DepChain, 1.3),
                (MemBound, 1.2),
                (PointerChase, 1.5),
                (Branchy, 1.2),
                (StreamFpWide, 0.01),
                (StreamFpChain, 0.3),
                (IcacheHeavy, 1.5),
                (StoreHeavy, 1.0),
                (TlbThrash, 1.0),
                (SimdKernel, 0.4),
                (Balanced, 1.2),
            ],
            Category::AiAnalytics => [
                (ScalarIlp, 1.0),
                (DepChain, 0.7),
                (MemBound, 1.5),
                (PointerChase, 1.0),
                (Branchy, 0.5),
                (StreamFpWide, 0.10),
                (StreamFpChain, 1.0),
                (IcacheHeavy, 0.4),
                (StoreHeavy, 0.8),
                (TlbThrash, 0.8),
                (SimdKernel, 1.8),
                (Balanced, 0.8),
            ],
            Category::WebProductivity => [
                (ScalarIlp, 0.8),
                (DepChain, 1.5),
                (MemBound, 0.8),
                (PointerChase, 1.8),
                (Branchy, 1.8),
                (StreamFpWide, 0.01),
                (StreamFpChain, 0.1),
                (IcacheHeavy, 1.8),
                (StoreHeavy, 1.0),
                (TlbThrash, 0.6),
                (SimdKernel, 0.2),
                (Balanced, 1.3),
            ],
            Category::Multimedia => [
                (ScalarIlp, 1.2),
                (DepChain, 0.8),
                (MemBound, 0.8),
                (PointerChase, 0.5),
                (Branchy, 0.6),
                (StreamFpWide, 0.06),
                (StreamFpChain, 0.8),
                (IcacheHeavy, 0.5),
                (StoreHeavy, 1.2),
                (TlbThrash, 0.4),
                (SimdKernel, 2.0),
                (Balanced, 1.0),
            ],
            Category::GamesRendering => [
                (ScalarIlp, 1.3),
                (DepChain, 0.8),
                (MemBound, 1.0),
                (PointerChase, 1.0),
                (Branchy, 1.0),
                (StreamFpWide, 0.06),
                (StreamFpChain, 0.9),
                (IcacheHeavy, 0.8),
                (StoreHeavy, 1.0),
                (TlbThrash, 0.5),
                (SimdKernel, 1.5),
                (Balanced, 1.0),
            ],
        }
    }
}

impl std::fmt::Display for Category {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_counts_sum_to_593() {
        assert_eq!(Category::PAPER_APP_COUNTS.iter().sum::<usize>(), 593);
    }

    #[test]
    fn weights_cover_all_archetypes_positively() {
        for c in Category::ALL {
            let w = c.archetype_weights();
            assert_eq!(w.len(), Archetype::ALL.len());
            for (a, wt) in w {
                assert!(wt > 0.0, "{c:?}/{a:?}");
            }
            let set: std::collections::HashSet<_> = w.iter().map(|(a, _)| *a).collect();
            assert_eq!(set.len(), Archetype::ALL.len());
        }
    }

    #[test]
    fn stream_fp_wide_is_rare_everywhere() {
        for c in Category::ALL {
            let w = c.archetype_weights();
            let total: f64 = w.iter().map(|(_, x)| x).sum();
            let wide = w
                .iter()
                .find(|(a, _)| *a == Archetype::StreamFpWide)
                .unwrap()
                .1;
            assert!(wide / total < 0.05, "{c:?} over-represents the blindspot");
        }
    }

    #[test]
    fn server_client_split_matches_table1() {
        assert!(Category::HpcPerf.is_server());
        assert!(!Category::Multimedia.is_server());
        let server: usize = Category::ALL
            .iter()
            .zip(Category::PAPER_APP_COUNTS)
            .filter(|(c, _)| c.is_server())
            .map(|(_, n)| n)
            .sum();
        assert_eq!(server, 285);
    }
}
