//! # psca-workloads
//!
//! Synthetic workload substrate for the PSCA reproduction.
//!
//! The paper trains on a proprietary corpus of 2,648 traces from 593 real
//! client and server applications (the high-diversity training set, HDTR;
//! Table 1) and tests on SPEC CPU 2017 traced over 118 workloads / 571
//! SimPoints (Table 2). Neither corpus can be redistributed, so this crate
//! *synthesizes* statistically analogous workloads (see `DESIGN.md` §1):
//!
//! - [`Archetype`] — ~a dozen phase behaviour families (dependence-chained,
//!   wide-ILP, memory-bound, pointer-chasing, branchy, streaming FP, …)
//!   whose parameters determine how a phase responds to issue width, and
//!   therefore whether the low-power (4-wide) mode meets the SLA;
//! - [`PhaseParams`] / [`PhaseGenerator`] — concrete sampled phases and the
//!   instruction synthesizer that realizes them as a `psca_trace` stream;
//! - [`ApplicationModel`] — a Markov chain over phases with per-application
//!   parameter jitter; one application × one input seed = one *workload*,
//!   matching the paper's definition (§4.1);
//! - [`Category`] and [`hdtr_corpus`] — the six application categories of
//!   Table 1 with their archetype priors, and the HDTR corpus builder;
//! - [`spec`] — the 20 named SPEC2017-like benchmarks of Table 2, with the
//!   paper's per-benchmark workload counts and SimPoint schedule.

#![warn(missing_docs)]

mod app;
mod archetype;
mod category;
mod hdtr;
mod phasegen;
pub mod spec;

pub use app::{AppTrace, ApplicationModel};
pub use archetype::{Archetype, PhaseParams};
pub use category::Category;
pub use hdtr::{composition, hdtr_corpus, HdtrApp, HdtrComposition};
pub use phasegen::PhaseGenerator;
