//! The SPEC CPU 2017-like test suite (Table 2).
//!
//! The paper evaluates on 20 SPEC2017 benchmarks traced over 118 workloads
//! (application × input; Table 2's per-benchmark counts actually sum to
//! 117, which we reproduce verbatim) and 571 SimPoints. This module synthesizes a
//! named benchmark suite with the same inventory and with per-benchmark
//! phase profiles chosen to mimic each benchmark's published behaviour
//! (e.g. `605.mcf_s` is pointer-chasing and memory-bound, `625.x264_s` is
//! wide-ILP and vectorizable, `654.roms_s` streams floating-point data with
//! a dependence structure that sits in the expert-counter blindspot).
//!
//! None of these archetype profiles appear verbatim in HDTR applications —
//! the suite is out-of-sample by construction, as in the paper (§4.1).

use crate::app::ApplicationModel;
use crate::archetype::Archetype;
use crate::category::Category;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Static description of one SPEC2017-like benchmark.
#[derive(Debug, Clone)]
pub struct SpecBenchmark {
    /// Benchmark name as in Table 2 (e.g. `"605.mcf_s"`).
    pub name: &'static str,
    /// Whether the benchmark is in the FP suite.
    pub is_fp: bool,
    /// Number of application inputs (workloads) traced, per Table 2.
    pub workload_count: usize,
    /// Archetype profile: the phases this benchmark is built from.
    pub profile: &'static [Archetype],
}

/// The 20 benchmarks of Table 2 with the paper's workload counts.
///
/// The archetype profiles encode each benchmark's published character.
pub const SPEC_BENCHMARKS: [SpecBenchmark; 20] = [
    // ---- integer suite ----
    SpecBenchmark {
        name: "600.perlbench_s",
        is_fp: false,
        workload_count: 4,
        profile: &[
            Archetype::Branchy,
            Archetype::ScalarIlp,
            Archetype::IcacheHeavy,
            Archetype::ScalarIlp,
        ],
    },
    SpecBenchmark {
        name: "602.gcc_s",
        is_fp: false,
        workload_count: 7,
        profile: &[
            Archetype::IcacheHeavy,
            Archetype::PointerChase,
            Archetype::Branchy,
            Archetype::ScalarIlp,
        ],
    },
    SpecBenchmark {
        name: "605.mcf_s",
        is_fp: false,
        workload_count: 7,
        profile: &[
            Archetype::PointerChase,
            Archetype::MemBound,
            Archetype::ScalarIlp,
        ],
    },
    SpecBenchmark {
        name: "620.omnetpp_s",
        is_fp: false,
        workload_count: 9,
        profile: &[
            Archetype::PointerChase,
            Archetype::DepChain,
            Archetype::Branchy,
            Archetype::Balanced,
        ],
    },
    SpecBenchmark {
        name: "623.xalancbmk_s",
        is_fp: false,
        workload_count: 2,
        profile: &[
            Archetype::PointerChase,
            Archetype::ScalarIlp,
            Archetype::IcacheHeavy,
            Archetype::ScalarIlp,
        ],
    },
    SpecBenchmark {
        name: "625.x264_s",
        is_fp: false,
        workload_count: 12,
        profile: &[
            Archetype::ScalarIlp,
            Archetype::SimdKernel,
            Archetype::ScalarIlp,
        ],
    },
    SpecBenchmark {
        name: "631.deepsjeng_s",
        is_fp: false,
        workload_count: 12,
        profile: &[
            Archetype::Branchy,
            Archetype::ScalarIlp,
            Archetype::DepChain,
            Archetype::ScalarIlp,
        ],
    },
    SpecBenchmark {
        name: "641.leela_s",
        is_fp: false,
        workload_count: 10,
        profile: &[
            Archetype::Branchy,
            Archetype::PointerChase,
            Archetype::ScalarIlp,
            Archetype::ScalarIlp,
        ],
    },
    SpecBenchmark {
        name: "648.exchange2_s",
        is_fp: false,
        workload_count: 5,
        profile: &[
            Archetype::ScalarIlp,
            Archetype::ScalarIlp,
            Archetype::ScalarIlp,
            Archetype::Branchy,
        ],
    },
    SpecBenchmark {
        name: "657.xz_s",
        is_fp: false,
        workload_count: 5,
        profile: &[
            Archetype::DepChain,
            Archetype::MemBound,
            Archetype::ScalarIlp,
        ],
    },
    // ---- floating-point suite ----
    SpecBenchmark {
        name: "603.bwaves_s",
        is_fp: true,
        workload_count: 5,
        profile: &[
            Archetype::StreamFpChain,
            Archetype::MemBound,
            Archetype::StreamFpChain,
        ],
    },
    SpecBenchmark {
        name: "607.cactuBSSN_s",
        is_fp: true,
        workload_count: 6,
        profile: &[
            Archetype::StreamFpChain,
            Archetype::MemBound,
            Archetype::TlbThrash,
            Archetype::ScalarIlp,
        ],
    },
    SpecBenchmark {
        name: "619.lbm_s",
        is_fp: true,
        workload_count: 3,
        profile: &[
            Archetype::MemBound,
            Archetype::StreamFpChain,
            Archetype::StoreHeavy,
            Archetype::ScalarIlp,
        ],
    },
    SpecBenchmark {
        name: "621.wrf_s",
        is_fp: true,
        workload_count: 1,
        profile: &[
            Archetype::Balanced,
            Archetype::StreamFpChain,
            Archetype::ScalarIlp,
            Archetype::Branchy,
        ],
    },
    SpecBenchmark {
        name: "627.cam4_s",
        is_fp: true,
        workload_count: 1,
        profile: &[
            Archetype::Balanced,
            Archetype::Branchy,
            Archetype::StreamFpChain,
            Archetype::ScalarIlp,
        ],
    },
    SpecBenchmark {
        name: "628.pop2_s",
        is_fp: true,
        workload_count: 1,
        profile: &[
            Archetype::StreamFpChain,
            Archetype::MemBound,
            Archetype::Balanced,
        ],
    },
    SpecBenchmark {
        name: "638.imagick_s",
        is_fp: true,
        workload_count: 12,
        profile: &[
            Archetype::SimdKernel,
            Archetype::ScalarIlp,
            Archetype::SimdKernel,
        ],
    },
    SpecBenchmark {
        name: "644.nab_s",
        is_fp: true,
        workload_count: 5,
        profile: &[
            Archetype::StreamFpChain,
            Archetype::StreamFpChain,
            Archetype::DepChain,
        ],
    },
    SpecBenchmark {
        name: "649.fotonik3d_s",
        is_fp: true,
        workload_count: 5,
        profile: &[
            Archetype::StreamFpWide,
            Archetype::StreamFpChain,
            Archetype::StreamFpWide,
            Archetype::MemBound,
        ],
    },
    SpecBenchmark {
        name: "654.roms_s",
        is_fp: true,
        workload_count: 5,
        // The blindspot benchmark: rich in the wide streaming-FP archetype
        // that expert counters cannot separate from its gateable twin.
        profile: &[
            Archetype::StreamFpWide,
            Archetype::StreamFpChain,
            Archetype::StreamFpWide,
        ],
    },
];

/// Total SimPoints the paper's test set contains.
pub const PAPER_TOTAL_SIMPOINTS: usize = 571;

/// One workload (application input) of a SPEC benchmark.
#[derive(Debug, Clone)]
pub struct SpecWorkload {
    /// Input seed for [`ApplicationModel::trace`].
    pub input: u64,
    /// Number of SimPoints traced from this workload.
    pub simpoints: usize,
}

/// A realized SPEC-like benchmark: model plus workload schedule.
#[derive(Debug, Clone)]
pub struct SpecApp {
    /// Static benchmark description.
    pub bench: SpecBenchmark,
    /// The synthesized application model.
    pub app: ApplicationModel,
    /// Workload (input) schedule with SimPoint counts.
    pub workloads: Vec<SpecWorkload>,
}

impl SpecApp {
    /// Total SimPoints across this benchmark's workloads.
    pub fn total_simpoints(&self) -> usize {
        self.workloads.iter().map(|w| w.simpoints).sum()
    }
}

/// Builds the full 20-benchmark suite with 118 workloads and exactly
/// [`PAPER_TOTAL_SIMPOINTS`] SimPoints.
///
/// `mean_phase_len` sets phase dwell in instructions (scaled down from the
/// paper's multi-million-instruction phases; see `DESIGN.md` §1).
pub fn spec_suite(seed: u64, mean_phase_len: u64) -> Vec<SpecApp> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5bec);
    let total_workloads: usize = SPEC_BENCHMARKS.iter().map(|b| b.workload_count).sum();
    // 571 = 4 * 118 + 99: the first `extra` workloads get 5 SimPoints.
    let base = PAPER_TOTAL_SIMPOINTS / total_workloads;
    let extra = PAPER_TOTAL_SIMPOINTS - base * total_workloads;
    let mut wl_index = 0usize;
    SPEC_BENCHMARKS
        .iter()
        .map(|bench| {
            // Benchmarks are idiosyncratic: their phases sit further from
            // archetype centers than typical HDTR applications sample, so
            // a model trained only on (the rest of) SPEC generalizes worse
            // than one trained on a high-diversity corpus — the §6.1
            // premise Figure 10's first step measures.
            let phases = bench
                .profile
                .iter()
                .map(|a| a.sample_params(&mut rng, 0.22))
                .collect();
            let cat = if bench.is_fp {
                Category::HpcPerf
            } else {
                Category::CloudSecurity
            };
            let app_seed: u64 = rng.gen();
            let app =
                ApplicationModel::from_phases(bench.name, cat, phases, mean_phase_len, app_seed);
            let workloads = (0..bench.workload_count)
                .map(|i| {
                    let simpoints = if wl_index < extra { base + 1 } else { base };
                    wl_index += 1;
                    SpecWorkload {
                        input: (i + 1) as u64,
                        simpoints,
                    }
                })
                .collect();
            SpecApp {
                bench: bench.clone(),
                app,
                workloads,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_matches_table2_inventory() {
        let suite = spec_suite(1, 2000);
        assert_eq!(suite.len(), 20);
        let workloads: usize = suite.iter().map(|a| a.workloads.len()).sum();
        // The paper's prose says 118 workloads, but Table 2's per-benchmark
        // counts sum to 117; we reproduce the table verbatim.
        assert_eq!(workloads, 117);
        let simpoints: usize = suite.iter().map(|a| a.total_simpoints()).sum();
        assert_eq!(simpoints, PAPER_TOTAL_SIMPOINTS);
    }

    #[test]
    fn int_fp_split_matches_table2() {
        let ints: usize = SPEC_BENCHMARKS.iter().filter(|b| !b.is_fp).count();
        assert_eq!(ints, 10);
        let int_workloads: usize = SPEC_BENCHMARKS
            .iter()
            .filter(|b| !b.is_fp)
            .map(|b| b.workload_count)
            .sum();
        assert_eq!(int_workloads, 73);
    }

    #[test]
    fn suite_is_deterministic() {
        let a = spec_suite(9, 2000);
        let b = spec_suite(9, 2000);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.app.phases(), y.app.phases());
        }
    }

    #[test]
    fn roms_is_rich_in_the_blindspot_archetype() {
        let suite = spec_suite(1, 2000);
        let roms = suite.iter().find(|a| a.bench.name == "654.roms_s").unwrap();
        let wide = roms
            .app
            .archetypes()
            .iter()
            .filter(|a| **a == Archetype::StreamFpWide)
            .count();
        assert!(wide >= 2);
    }

    #[test]
    fn benchmark_names_match_table2_spelling() {
        let names: Vec<_> = SPEC_BENCHMARKS.iter().map(|b| b.name).collect();
        assert!(names.contains(&"600.perlbench_s"));
        assert!(names.contains(&"654.roms_s"));
        assert!(names.contains(&"649.fotonik3d_s"));
        let set: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(set.len(), 20);
    }
}
