//! Application models: Markov chains over sampled phases.

use crate::archetype::{Archetype, PhaseParams};
use crate::category::Category;
use crate::phasegen::PhaseGenerator;
use psca_trace::{Instruction, TraceSource};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A synthetic application: a small set of concrete phases plus a Markov
/// transition structure and phase-duration statistics.
///
/// One application executed on one input is a *workload* (§4.1); inputs are
/// modeled as seeds that shift phase durations, the initial phase, and the
/// dwell pattern, while the phases themselves (the "code") stay fixed.
#[derive(Debug, Clone)]
pub struct ApplicationModel {
    name: String,
    category: Category,
    phases: Vec<PhaseParams>,
    /// Row-stochastic transition matrix between phases.
    transition: Vec<Vec<f64>>,
    /// Mean instructions per phase visit.
    mean_phase_len: u64,
    /// Seed identifying the application ("its code").
    seed: u64,
}

impl ApplicationModel {
    /// Synthesizes an application of the given category.
    ///
    /// `jitter` controls how far phase parameters wander from archetype
    /// centers (per-application uniqueness); `mean_phase_len` is the mean
    /// dwell per phase visit in instructions.
    pub fn synth(
        name: impl Into<String>,
        category: Category,
        seed: u64,
        mean_phase_len: u64,
    ) -> ApplicationModel {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5CA1_AB1E);
        let weights = category.archetype_weights();
        let n_phases = rng.gen_range(2..=5usize);
        let phases: Vec<PhaseParams> = (0..n_phases)
            .map(|_| {
                let a = sample_weighted(&mut rng, &weights);
                a.sample_params(&mut rng, 0.35)
            })
            .collect();
        let transition = random_stochastic_matrix(&mut rng, n_phases);
        ApplicationModel {
            name: name.into(),
            category,
            phases,
            transition,
            mean_phase_len,
            seed,
        }
    }

    /// Builds an application from explicit phases and a uniform transition
    /// structure — used by the SPEC-like suite, where benchmark profiles
    /// are fixed by hand.
    pub fn from_phases(
        name: impl Into<String>,
        category: Category,
        phases: Vec<PhaseParams>,
        mean_phase_len: u64,
        seed: u64,
    ) -> ApplicationModel {
        assert!(
            !phases.is_empty(),
            "an application needs at least one phase"
        );
        let n = phases.len();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x00F1_E1D5);
        let transition = random_stochastic_matrix(&mut rng, n);
        ApplicationModel {
            name: name.into(),
            category,
            phases,
            transition,
            mean_phase_len,
            seed,
        }
    }

    /// Application name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Application category.
    pub fn category(&self) -> Category {
        self.category
    }

    /// The application's concrete phases.
    pub fn phases(&self) -> &[PhaseParams] {
        &self.phases
    }

    /// Archetypes present in this application.
    pub fn archetypes(&self) -> Vec<Archetype> {
        self.phases.iter().map(|p| p.archetype).collect()
    }

    /// Creates the workload trace for a given input seed.
    ///
    /// The same `(application, input)` pair always yields the identical
    /// instruction stream. The stream is unbounded; cap it with
    /// [`TraceSource::take_insts`].
    pub fn trace(&self, input: u64) -> AppTrace {
        let mut rng = StdRng::seed_from_u64(self.seed ^ input.wrapping_mul(0x9E37_79B9));
        let start = rng.gen_range(0..self.phases.len());
        let gen_seed: u64 = rng.gen();
        let mut trace = AppTrace {
            app: self.clone(),
            rng,
            current: start,
            generator: PhaseGenerator::new(self.phases[start], gen_seed),
            remaining_in_phase: 0,
        };
        trace.remaining_in_phase = trace.sample_phase_len();
        trace
    }
}

/// A workload instruction stream produced by [`ApplicationModel::trace`].
#[derive(Debug, Clone)]
pub struct AppTrace {
    app: ApplicationModel,
    rng: StdRng,
    current: usize,
    generator: PhaseGenerator,
    remaining_in_phase: u64,
}

impl AppTrace {
    /// Index of the phase currently executing.
    pub fn current_phase(&self) -> usize {
        self.current
    }

    fn sample_phase_len(&mut self) -> u64 {
        // Uniform in [0.5, 1.5] × mean keeps phases long relative to the
        // telemetry interval, so per-phase telemetry is stationary.
        let m = self.app.mean_phase_len as f64;
        (m * (0.5 + self.rng.gen::<f64>())).round() as u64
    }

    fn transition(&mut self) {
        let row = &self.app.transition[self.current];
        let u: f64 = self.rng.gen();
        let mut acc = 0.0;
        let mut next = self.current;
        for (j, &p) in row.iter().enumerate() {
            acc += p;
            if u < acc {
                next = j;
                break;
            }
        }
        self.current = next;
        let gen_seed: u64 = self.rng.gen();
        self.generator = PhaseGenerator::new(self.app.phases[next], gen_seed);
        self.remaining_in_phase = self.sample_phase_len();
        // Resolved once per process — phase transitions fire inside the
        // trace generation hot loop.
        static TRANSITIONS: std::sync::OnceLock<std::sync::Arc<psca_obs::Counter>> =
            std::sync::OnceLock::new();
        TRANSITIONS
            .get_or_init(|| psca_obs::counter("workloads.phase_transitions"))
            .inc();
    }
}

impl TraceSource for AppTrace {
    fn next_instruction(&mut self) -> Option<Instruction> {
        if self.remaining_in_phase == 0 {
            self.transition();
        }
        self.remaining_in_phase -= 1;
        self.generator.next_instruction()
    }
}

fn sample_weighted<R: Rng>(rng: &mut R, weights: &[(Archetype, f64)]) -> Archetype {
    let total: f64 = weights.iter().map(|(_, w)| w).sum();
    let mut u = rng.gen::<f64>() * total;
    for &(a, w) in weights {
        if u < w {
            return a;
        }
        u -= w;
    }
    weights[weights.len() - 1].0
}

fn random_stochastic_matrix<R: Rng>(rng: &mut R, n: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|i| {
            let mut row: Vec<f64> = (0..n)
                .map(|j| if i == j { 0.05 } else { rng.gen::<f64>() + 0.1 })
                .collect();
            let s: f64 = row.iter().sum();
            for v in &mut row {
                *v /= s;
            }
            row
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synth_is_deterministic() {
        let a = ApplicationModel::synth("app", Category::HpcPerf, 11, 5000);
        let b = ApplicationModel::synth("app", Category::HpcPerf, 11, 5000);
        assert_eq!(a.phases(), b.phases());
    }

    #[test]
    fn different_seeds_give_different_apps() {
        let a = ApplicationModel::synth("a", Category::HpcPerf, 1, 5000);
        let b = ApplicationModel::synth("b", Category::HpcPerf, 2, 5000);
        assert_ne!(a.phases(), b.phases());
    }

    #[test]
    fn trace_is_deterministic_per_input() {
        let app = ApplicationModel::synth("app", Category::Multimedia, 3, 2000);
        let mut t1 = app.trace(9);
        let mut t2 = app.trace(9);
        for _ in 0..5000 {
            assert_eq!(t1.next_instruction(), t2.next_instruction());
        }
    }

    #[test]
    fn different_inputs_give_different_workloads() {
        let app = ApplicationModel::synth("app", Category::Multimedia, 3, 2000);
        let mut t1 = app.trace(1);
        let mut t2 = app.trace(2);
        let same = (0..1000)
            .filter(|_| t1.next_instruction() == t2.next_instruction())
            .count();
        assert!(same < 1000);
    }

    #[test]
    fn phases_transition_over_time() {
        let app = ApplicationModel::synth("app", Category::GamesRendering, 5, 500);
        let mut t = app.trace(0);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..20_000 {
            t.next_instruction();
            seen.insert(t.current_phase());
        }
        assert!(seen.len() >= 2, "only saw phases {seen:?}");
    }

    #[test]
    fn transition_rows_are_stochastic() {
        let app = ApplicationModel::synth("app", Category::CloudSecurity, 8, 1000);
        for row in &app.transition {
            let s: f64 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
            assert!(row.iter().all(|&p| p >= 0.0));
        }
    }

    #[test]
    fn from_phases_requires_nonempty() {
        let p = Archetype::Balanced.center();
        let app = ApplicationModel::from_phases("x", Category::HpcPerf, vec![p], 1000, 0);
        assert_eq!(app.phases().len(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn from_phases_rejects_empty() {
        let _ = ApplicationModel::from_phases("x", Category::HpcPerf, vec![], 1000, 0);
    }
}
