//! The high-diversity training corpus (HDTR) builder.
//!
//! The paper's HDTR set spans 2,648 traces of 593 applications over six
//! categories (Table 1). [`hdtr_corpus`] synthesizes a corpus with the same
//! category proportions at any scale, so the training-set-diversity
//! experiments (Figure 4) can sweep corpus size directly.

use crate::app::ApplicationModel;
use crate::category::Category;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Composition summary of a generated corpus, mirroring Table 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HdtrComposition {
    /// `(category, application count)` in Table 1 order.
    pub per_category: Vec<(Category, usize)>,
    /// Total applications.
    pub total_apps: usize,
    /// Total traces (workload recordings) across all applications.
    pub total_traces: usize,
}

impl std::fmt::Display for HdtrComposition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "HDTR corpus: {} traces of {} applications",
            self.total_traces, self.total_apps
        )?;
        for (c, n) in &self.per_category {
            writeln!(f, "  {:35} {:>5}", c.name(), n)?;
        }
        Ok(())
    }
}

/// An application in the HDTR corpus together with its trace inputs.
#[derive(Debug, Clone)]
pub struct HdtrApp {
    /// The application model.
    pub app: ApplicationModel,
    /// Input seeds — one per recorded trace of this application.
    pub inputs: Vec<u64>,
}

/// Builds an HDTR-like corpus with `total_apps` applications distributed
/// over the six categories in Table 1 proportions.
///
/// Each application gets 2–8 trace inputs (averaging ≈4.5, matching the
/// paper's 2,648 / 593). `mean_phase_len` sets phase dwell in instructions.
///
/// # Panics
/// Panics if `total_apps == 0`.
pub fn hdtr_corpus(seed: u64, total_apps: usize, mean_phase_len: u64) -> Vec<HdtrApp> {
    assert!(
        total_apps > 0,
        "corpus must contain at least one application"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let paper_total: usize = Category::PAPER_APP_COUNTS.iter().sum();
    let mut corpus = Vec::with_capacity(total_apps);
    let mut assigned = 0usize;
    for (ci, cat) in Category::ALL.iter().enumerate() {
        // Largest-remainder style proportional allocation.
        let share = Category::PAPER_APP_COUNTS[ci] * total_apps;
        let n = if ci == Category::ALL.len() - 1 {
            total_apps - assigned
        } else {
            (share + paper_total / 2) / paper_total
        };
        let n = n.min(total_apps - assigned);
        for k in 0..n {
            let app_seed: u64 = rng.gen();
            let name = format!("{}-{k:03}", cat_slug(*cat));
            let app = ApplicationModel::synth(name, *cat, app_seed, mean_phase_len);
            let n_traces = rng.gen_range(2..=8usize);
            let inputs = (0..n_traces as u64).map(|i| i + 1).collect();
            corpus.push(HdtrApp { app, inputs });
        }
        assigned += n;
    }
    // If rounding under-allocated (can happen for tiny corpora), top up
    // from the largest category.
    let mut k = corpus.len();
    while corpus.len() < total_apps {
        let app_seed: u64 = rng.gen();
        let name = format!("hpc-extra-{k:03}");
        let app = ApplicationModel::synth(name, Category::HpcPerf, app_seed, mean_phase_len);
        corpus.push(HdtrApp {
            app,
            inputs: vec![1, 2, 3],
        });
        k += 1;
    }
    corpus.truncate(total_apps);
    corpus
}

/// Summarizes a corpus in Table 1 form.
pub fn composition(corpus: &[HdtrApp]) -> HdtrComposition {
    let per_category = Category::ALL
        .iter()
        .map(|c| (*c, corpus.iter().filter(|a| a.app.category() == *c).count()))
        .collect();
    HdtrComposition {
        per_category,
        total_apps: corpus.len(),
        total_traces: corpus.iter().map(|a| a.inputs.len()).sum(),
    }
}

fn cat_slug(c: Category) -> &'static str {
    match c {
        Category::HpcPerf => "hpc",
        Category::CloudSecurity => "cloud",
        Category::AiAnalytics => "ai",
        Category::WebProductivity => "web",
        Category::Multimedia => "media",
        Category::GamesRendering => "games",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_has_requested_size() {
        let corpus = hdtr_corpus(1, 60, 2000);
        assert_eq!(corpus.len(), 60);
    }

    #[test]
    fn corpus_is_deterministic() {
        let a = hdtr_corpus(5, 30, 2000);
        let b = hdtr_corpus(5, 30, 2000);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.app.name(), y.app.name());
            assert_eq!(x.app.phases(), y.app.phases());
            assert_eq!(x.inputs, y.inputs);
        }
    }

    #[test]
    fn category_proportions_match_table1() {
        let corpus = hdtr_corpus(2, 593, 2000);
        let comp = composition(&corpus);
        assert_eq!(comp.total_apps, 593);
        for ((_, n), &paper) in comp
            .per_category
            .iter()
            .zip(Category::PAPER_APP_COUNTS.iter())
        {
            let diff = (*n as i64 - paper as i64).abs();
            assert!(diff <= 3, "category count {n} vs paper {paper}");
        }
    }

    #[test]
    fn traces_average_about_4_5_per_app() {
        let corpus = hdtr_corpus(3, 200, 2000);
        let comp = composition(&corpus);
        let avg = comp.total_traces as f64 / comp.total_apps as f64;
        assert!((3.5..=5.5).contains(&avg), "avg traces/app = {avg}");
    }

    #[test]
    fn app_names_are_unique() {
        let corpus = hdtr_corpus(4, 100, 2000);
        let names: std::collections::HashSet<_> =
            corpus.iter().map(|a| a.app.name().to_string()).collect();
        assert_eq!(names.len(), corpus.len());
    }

    #[test]
    #[should_panic(expected = "at least one application")]
    fn empty_corpus_rejected() {
        let _ = hdtr_corpus(0, 0, 1000);
    }
}
