//! Scoped-thread work-stealing job pool.
//!
//! The pool is built entirely on `std`: cells are distributed round-robin
//! across per-worker deques, each worker pops from the front of its own
//! deque and steals from the back of its neighbours' once it runs dry.
//! Results are written into a slot per cell, so the output order always
//! matches the input order regardless of which worker ran which cell.

use std::collections::VecDeque;
use std::sync::Mutex;

/// Resolves a requested worker count to an effective one.
///
/// `0` means "auto": use `PSCA_JOBS` if set to a positive integer,
/// otherwise [`std::thread::available_parallelism`].
pub fn resolve_jobs(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    if let Ok(v) = std::env::var("PSCA_JOBS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Maps `f` over `items` on up to `jobs` workers, preserving input order.
///
/// `f` receives `(cell_index, item)`. With `jobs <= 1` (or a single item)
/// the map runs inline on the calling thread — same code path a worker
/// would take, so results are identical by construction. A panic inside
/// `f` propagates to the caller once the scope joins.
///
/// The caller's request-scoped trace context (if any) is forwarded to
/// every worker thread, so spans recorded inside `f` stay attributed to
/// the request that fanned out — observability only, never affecting
/// results.
pub fn map_indexed<T, R, F>(jobs: usize, items: Vec<T>, f: &F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    if jobs <= 1 || n <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, t)| f(i, t))
            .collect();
    }
    let ctx = psca_obs::ctx::current();
    let workers = jobs.min(n);
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let queues: Vec<Mutex<VecDeque<usize>>> = (0..workers)
        .map(|w| Mutex::new((0..n).filter(|i| i % workers == w).collect()))
        .collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for w in 0..workers {
            let queues = &queues;
            let slots = &slots;
            let results = &results;
            scope.spawn(move || {
                let _ctx_guard = ctx.map(psca_obs::ctx::attach);
                loop {
                    // Bind the owned-queue pop before matching on it: a
                    // `match` scrutinee's temporaries (here the queue's
                    // MutexGuard) live to the end of the match, so
                    // stealing inside the None arm would hold our own
                    // queue's lock while taking a neighbour's — workers
                    // going dry together then hold-and-wait in a cycle
                    // and the sweep deadlocks.
                    let own = queues[w].lock().unwrap().pop_front();
                    let idx = match own {
                        Some(i) => Some(i),
                        None => (1..workers)
                            .find_map(|off| queues[(w + off) % workers].lock().unwrap().pop_back()),
                    };
                    let Some(i) = idx else { break };
                    let Some(item) = slots[i].lock().unwrap().take() else {
                        continue;
                    };
                    let out = f(i, item);
                    *results[i].lock().unwrap() = Some(out);
                }
            });
        }
    });

    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .unwrap()
                .expect("every cell index was executed exactly once")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..97).collect();
        let out = map_indexed(4, items.clone(), &|i, x| {
            assert_eq!(i, x);
            x * 3
        });
        assert_eq!(out, (0..97).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let items: Vec<u64> = (0..50).collect();
        let f = |_i: usize, x: u64| x.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17);
        let serial = map_indexed(1, items.clone(), &f);
        let parallel = map_indexed(8, items, &f);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn more_workers_than_items() {
        let out = map_indexed(16, vec![1, 2, 3], &|_, x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn every_cell_runs_exactly_once() {
        let ran = AtomicUsize::new(0);
        let out = map_indexed(3, (0..200).collect::<Vec<_>>(), &|_, x: i32| {
            ran.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(out.len(), 200);
        assert_eq!(ran.load(Ordering::Relaxed), 200);
    }

    #[test]
    fn steal_path_never_holds_own_queue_lock() {
        // Regression: the steal arm used to run with the worker's own
        // queue guard still held (a match-scrutinee temporary lives to
        // the end of the match), so workers going dry together could
        // hold-and-wait in a cycle. Hammer many tiny sweeps; the
        // watchdog turns a recurrence into a failure instead of a hung
        // test suite.
        let (tx, rx) = std::sync::mpsc::channel();
        std::thread::spawn(move || {
            for round in 0..200u64 {
                let items: Vec<u64> = (0..64).collect();
                let out = map_indexed(8, items, &|_, x| x ^ round);
                assert_eq!(out.len(), 64);
            }
            tx.send(()).unwrap();
        });
        rx.recv_timeout(std::time::Duration::from_secs(60))
            .expect("parallel sweeps deadlocked in the steal path");
    }

    #[test]
    fn workers_inherit_callers_trace_context() {
        let ctx = psca_obs::TraceCtx::mint();
        let _guard = psca_obs::ctx::attach(ctx);
        let seen = map_indexed(4, (0..16).collect::<Vec<u32>>(), &|_, _| {
            psca_obs::ctx::current().map(|c| c.trace_id)
        });
        assert!(seen.iter().all(|t| *t == Some(ctx.trace_id)));
    }

    #[test]
    fn resolve_jobs_passes_through_explicit_counts() {
        assert_eq!(resolve_jobs(1), 1);
        assert_eq!(resolve_jobs(7), 7);
        assert!(resolve_jobs(0) >= 1);
    }
}
