//! # psca-exec — parallel sweep engine
//!
//! Std-only (no external dependencies, matching `psca-obs` / `psca-faults`)
//! execution engine for the repro pipeline's embarrassingly parallel
//! sweeps. Three layers:
//!
//! - [`pool`]: a scoped-thread work-stealing job pool with order-preserving
//!   results ([`pool::map_indexed`]).
//! - [`digest`]: stable FNV-1a 64 content digests for cache keys.
//! - [`cache`] + [`sweep`]: the [`Sweep`] abstraction — fans independent
//!   (workload, config, seed) cells across `--jobs N` workers with
//!   bit-identical-to-serial merges, fronted by a persistent
//!   content-addressed result cache under `target/sweep-cache/`.
//!
//! See `docs/PERFORMANCE.md` for the architecture and determinism
//! contract, and `crates/obs/src/shard.rs` for how order-sensitive time
//! series survive parallel execution.

pub mod cache;
pub mod digest;
pub mod pool;
pub mod sweep;

pub use cache::SweepCache;
pub use digest::{fnv1a, Digest};
pub use pool::{map_indexed, resolve_jobs};
pub use sweep::Sweep;
