//! Persistent content-addressed result cache for sweep cells.
//!
//! Each cell result is stored as `<dir>/<key:016x>.bin` where `key` is the
//! caller's content digest over everything that determines the cell's
//! output (workload identity, config fields, seeds, codec schema). Files
//! are written to a temporary name, fsynced, and atomically renamed into
//! place (with a directory fsync sealing the rename), so concurrent
//! workers — or concurrent processes, or a crash mid-publish — never
//! observe a half-written entry. A corrupt or undecodable entry is
//! treated as a miss and overwritten; in particular a zero-length file
//! (the tell-tale of a create that never got its data flushed) reads as
//! a miss instead of reaching the JSON decoder.

use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// A directory-backed cell result cache.
#[derive(Debug, Clone)]
pub struct SweepCache {
    dir: PathBuf,
}

impl SweepCache {
    /// Opens (without creating) a cache rooted at `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        SweepCache { dir: dir.into() }
    }

    /// The default on-disk location, relative to the working directory.
    pub fn default_dir() -> PathBuf {
        PathBuf::from("target/sweep-cache")
    }

    /// The cache's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn entry_path(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{key:016x}.bin"))
    }

    /// Returns the stored bytes for `key`, or `None` on a miss.
    ///
    /// A zero-length entry is a truncated publish from a crashed writer
    /// (no valid cell result encodes to zero bytes); it is reported as a
    /// miss so the cell recomputes and overwrites it.
    pub fn load(&self, key: u64) -> Option<Vec<u8>> {
        let bytes = std::fs::read(self.entry_path(key)).ok()?;
        if bytes.is_empty() {
            psca_obs::counter("exec.cache.corrupt").inc();
            return None;
        }
        Some(bytes)
    }

    /// Stores `bytes` under `key` via fsync + atomic temp-file rename.
    ///
    /// The temp file is flushed to stable storage before the rename and
    /// the parent directory is fsynced after it, so a crash at any point
    /// leaves either no entry or the complete one — never a truncated
    /// file under the final name.
    ///
    /// Failures are swallowed: the cache is an accelerator, never a
    /// correctness dependency, so a read-only disk just means re-simulating.
    pub fn store(&self, key: u64, bytes: &[u8]) {
        if std::fs::create_dir_all(&self.dir).is_err() {
            return;
        }
        let seq = TMP_SEQ.fetch_add(1, Ordering::Relaxed);
        let tmp = self
            .dir
            .join(format!(".tmp-{}-{seq}-{key:016x}", std::process::id()));
        let publish = || -> std::io::Result<()> {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(bytes)?;
            f.sync_all()?;
            std::fs::rename(&tmp, self.entry_path(key))?;
            // Make the rename itself durable. Directory fsync is
            // best-effort: not every platform lets you open a directory.
            if let Ok(d) = std::fs::File::open(&self.dir) {
                let _ = d.sync_all();
            }
            Ok(())
        };
        if publish().is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("psca-exec-cache-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn store_then_load_roundtrips() {
        let dir = scratch("roundtrip");
        let cache = SweepCache::new(&dir);
        assert_eq!(cache.load(0xdead_beef), None);
        cache.store(0xdead_beef, b"cell-result");
        assert_eq!(cache.load(0xdead_beef), Some(b"cell-result".to_vec()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn distinct_keys_do_not_collide() {
        let dir = scratch("keys");
        let cache = SweepCache::new(&dir);
        cache.store(1, b"one");
        cache.store(2, b"two");
        assert_eq!(cache.load(1), Some(b"one".to_vec()));
        assert_eq!(cache.load(2), Some(b"two".to_vec()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn zero_length_entry_reads_as_miss_and_is_overwritable() {
        let dir = scratch("truncated");
        let cache = SweepCache::new(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        // Simulate a crash mid-publish: the final name exists but holds
        // no bytes.
        std::fs::write(cache.dir().join(format!("{:016x}.bin", 7u64)), b"").unwrap();
        assert_eq!(cache.load(7), None);
        cache.store(7, b"recomputed");
        assert_eq!(cache.load(7), Some(b"recomputed".to_vec()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn overwrite_replaces_entry() {
        let dir = scratch("overwrite");
        let cache = SweepCache::new(&dir);
        cache.store(9, b"old");
        cache.store(9, b"new");
        assert_eq!(cache.load(9), Some(b"new".to_vec()));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
