//! Persistent content-addressed result cache for sweep cells.
//!
//! Each cell result is stored as `<dir>/<key:016x>.bin` where `key` is the
//! caller's content digest over everything that determines the cell's
//! output (workload identity, config fields, seeds, codec schema). Files
//! are written to a temporary name and atomically renamed into place, so
//! concurrent workers — or concurrent processes — never observe a
//! half-written entry. A corrupt or undecodable entry is treated as a
//! miss and overwritten.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// A directory-backed cell result cache.
#[derive(Debug, Clone)]
pub struct SweepCache {
    dir: PathBuf,
}

impl SweepCache {
    /// Opens (without creating) a cache rooted at `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        SweepCache { dir: dir.into() }
    }

    /// The default on-disk location, relative to the working directory.
    pub fn default_dir() -> PathBuf {
        PathBuf::from("target/sweep-cache")
    }

    /// The cache's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn entry_path(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{key:016x}.bin"))
    }

    /// Returns the stored bytes for `key`, or `None` on a miss.
    pub fn load(&self, key: u64) -> Option<Vec<u8>> {
        std::fs::read(self.entry_path(key)).ok()
    }

    /// Stores `bytes` under `key` via an atomic temp-file rename.
    ///
    /// Failures are swallowed: the cache is an accelerator, never a
    /// correctness dependency, so a read-only disk just means re-simulating.
    pub fn store(&self, key: u64, bytes: &[u8]) {
        if std::fs::create_dir_all(&self.dir).is_err() {
            return;
        }
        let seq = TMP_SEQ.fetch_add(1, Ordering::Relaxed);
        let tmp = self
            .dir
            .join(format!(".tmp-{}-{seq}-{key:016x}", std::process::id()));
        if std::fs::write(&tmp, bytes).is_ok()
            && std::fs::rename(&tmp, self.entry_path(key)).is_err()
        {
            let _ = std::fs::remove_file(&tmp);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("psca-exec-cache-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn store_then_load_roundtrips() {
        let dir = scratch("roundtrip");
        let cache = SweepCache::new(&dir);
        assert_eq!(cache.load(0xdead_beef), None);
        cache.store(0xdead_beef, b"cell-result");
        assert_eq!(cache.load(0xdead_beef), Some(b"cell-result".to_vec()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn distinct_keys_do_not_collide() {
        let dir = scratch("keys");
        let cache = SweepCache::new(&dir);
        cache.store(1, b"one");
        cache.store(2, b"two");
        assert_eq!(cache.load(1), Some(b"one".to_vec()));
        assert_eq!(cache.load(2), Some(b"two".to_vec()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn overwrite_replaces_entry() {
        let dir = scratch("overwrite");
        let cache = SweepCache::new(&dir);
        cache.store(9, b"old");
        cache.store(9, b"new");
        assert_eq!(cache.load(9), Some(b"new".to_vec()));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
