//! FNV-1a 64-bit content digests for sweep cache keys.
//!
//! The digest is stable across runs, platforms, and compiler versions —
//! unlike `std::hash::DefaultHasher`, whose output is explicitly allowed
//! to change — so it is safe to persist as an on-disk cache key.

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a 64 digest builder.
#[derive(Debug, Clone, Copy)]
pub struct Digest(u64);

impl Default for Digest {
    fn default() -> Self {
        Self::new()
    }
}

impl Digest {
    /// Starts a fresh digest at the FNV offset basis.
    pub fn new() -> Self {
        Digest(FNV_OFFSET)
    }

    /// Folds raw bytes into the digest.
    pub fn write_bytes(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Folds a `u64` (little-endian) into the digest.
    pub fn write_u64(&mut self, v: u64) -> &mut Self {
        self.write_bytes(&v.to_le_bytes())
    }

    /// Folds a `u32` (little-endian) into the digest.
    pub fn write_u32(&mut self, v: u32) -> &mut Self {
        self.write_bytes(&v.to_le_bytes())
    }

    /// Folds an `f64` via its IEEE-754 bit pattern.
    pub fn write_f64(&mut self, v: f64) -> &mut Self {
        self.write_u64(v.to_bits())
    }

    /// Folds a length-prefixed string so `("ab","c")` ≠ `("a","bc")`.
    pub fn write_str(&mut self, s: &str) -> &mut Self {
        self.write_u64(s.len() as u64).write_bytes(s.as_bytes())
    }

    /// Returns the final 64-bit digest.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// One-shot FNV-1a 64 over a byte slice.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut d = Digest::new();
    d.write_bytes(bytes);
    d.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_known_fnv1a_vectors() {
        // Reference values for the classic FNV-1a 64 test strings.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn length_prefix_prevents_concat_collisions() {
        let mut a = Digest::new();
        a.write_str("ab").write_str("c");
        let mut b = Digest::new();
        b.write_str("a").write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn builder_is_deterministic() {
        let mk = || {
            let mut d = Digest::new();
            d.write_u64(42)
                .write_f64(1.5)
                .write_str("cell")
                .write_u32(7);
            d.finish()
        };
        assert_eq!(mk(), mk());
    }
}
