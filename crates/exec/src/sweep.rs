//! The `Sweep` abstraction: fan independent (workload, config, seed) cells
//! across the worker pool with results that are bit-identical to a serial
//! run, plus an optional persistent result cache.
//!
//! Determinism contract:
//! - every cell derives its RNG stream from data carried *in the cell*
//!   (the caller's responsibility — all PSCA corpora already seed this way),
//! - results are merged back in cell-index order ([`pool::map_indexed`]),
//! - order-sensitive observability (time series) recorded inside a cell is
//!   captured in a per-cell shard and replayed into the global registry in
//!   cell-index order, so the registry ends up in the same state a serial
//!   run would produce. Counters and histograms are commutative atomics
//!   and need no special handling.
//!
//! Nested sweeps (a `Sweep::run` issued from inside another sweep's cell)
//! automatically degrade to inline serial execution: no thread
//! oversubscription, and inner series recordings flow into the enclosing
//! cell's shard in deterministic order.

use std::path::Path;
use std::time::Instant;

use crate::cache::SweepCache;
use crate::pool;
use psca_obs::shard;

/// A parallel sweep over independent cells.
#[derive(Debug, Clone)]
pub struct Sweep {
    label: String,
    jobs: usize,
    cache: Option<SweepCache>,
}

impl Sweep {
    /// Creates a sweep. `label` names the sweep in exec metrics.
    /// Jobs default to auto (`PSCA_JOBS` or `available_parallelism`).
    pub fn new(label: &str) -> Self {
        Sweep {
            label: label.to_string(),
            jobs: 0,
            cache: None,
        }
    }

    /// Sets the worker count. `0` = auto.
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// Enables the persistent result cache under `dir` (`None` disables).
    pub fn cache_dir(mut self, dir: Option<&Path>) -> Self {
        self.cache = dir.map(SweepCache::new);
        self
    }

    /// The worker count this sweep will actually use right now: nested
    /// sweeps always run inline to avoid oversubscribing the pool.
    pub fn effective_jobs(&self) -> usize {
        if shard::is_active() {
            1
        } else {
            pool::resolve_jobs(self.jobs)
        }
    }

    /// Runs `f` over every cell, returning results in cell order.
    pub fn run<T, R, F>(&self, cells: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        self.dispatch(cells, |cell| CellOutcome::Computed(f(cell)))
    }

    /// Runs `f` over every cell with the persistent cache in front.
    ///
    /// `key` must digest everything that determines the cell's output
    /// (workload identity, config fields, seeds, codec schema version).
    /// `encode`/`decode` are the on-disk codec; a `decode` returning
    /// `None` (corrupt or stale entry) falls back to recomputing.
    pub fn run_cached<T, R, K, E, D, F>(
        &self,
        cells: Vec<T>,
        key: K,
        encode: E,
        decode: D,
        f: F,
    ) -> Vec<R>
    where
        T: Send,
        R: Send,
        K: Fn(&T) -> u64 + Sync,
        E: Fn(&R) -> Vec<u8> + Sync,
        D: Fn(&[u8]) -> Option<R> + Sync,
        F: Fn(&T) -> R + Sync,
    {
        let cache = self.cache.as_ref();
        let results = self.dispatch(cells, |cell| {
            let Some(cache) = cache else {
                return CellOutcome::Computed(f(cell));
            };
            let k = key(cell);
            if let Some(hit) = cache.load(k).and_then(|bytes| decode(&bytes)) {
                psca_obs::counter("exec.cache.hits").inc();
                return CellOutcome::Cached(hit);
            }
            psca_obs::counter("exec.cache.misses").inc();
            let out = f(cell);
            let bytes = encode(&out);
            cache.store(k, &bytes);
            psca_obs::counter("exec.cache.stores").inc();
            psca_obs::counter("exec.cache.bytes_written").add(bytes.len() as u64);
            CellOutcome::Computed(out)
        });
        // Cumulative hit rate since the last registry reset, surfaced as
        // a gauge so `/metrics` and run reports can show cache efficacy
        // without consumers re-deriving it from two counters.
        let hits = psca_obs::counter("exec.cache.hits").get();
        let misses = psca_obs::counter("exec.cache.misses").get();
        if hits + misses > 0 {
            psca_obs::gauge("exec.cache.hit_rate").set(hits as f64 / (hits + misses) as f64);
        }
        results
    }

    fn dispatch<T, R, G>(&self, cells: Vec<T>, g: G) -> Vec<R>
    where
        T: Send,
        R: Send,
        G: Fn(&T) -> CellOutcome<R> + Sync,
    {
        let n = cells.len();
        let jobs = self.effective_jobs().min(n.max(1));
        let start = Instant::now();
        let results = if jobs <= 1 {
            // Inline path: series push straight into the registry (or the
            // enclosing cell's shard) in cell order — exactly the order the
            // sharded parallel path replays below.
            pool::map_indexed(1, cells, &|_, cell: T| {
                let t0 = Instant::now();
                let out = g(&cell).into_inner();
                psca_obs::histogram("exec.cell_us").record(t0.elapsed().as_micros() as u64);
                out
            })
        } else {
            let sharded = pool::map_indexed(jobs, cells, &|_, cell: T| {
                let t0 = Instant::now();
                shard::begin_cell();
                let out = g(&cell);
                let rec = shard::end_cell();
                psca_obs::histogram("exec.cell_us").record(t0.elapsed().as_micros() as u64);
                (out, rec)
            });
            sharded
                .into_iter()
                .map(|(out, rec)| {
                    shard::replay(&rec);
                    out.into_inner()
                })
                .collect()
        };
        let wall = start.elapsed().as_secs_f64().max(1e-9);
        psca_obs::counter("exec.cells").add(n as u64);
        psca_obs::counter(&format!("exec.sweep.{}.cells", self.label)).add(n as u64);
        psca_obs::gauge("exec.jobs").set(jobs as f64);
        psca_obs::gauge("exec.cells_per_sec").set(n as f64 / wall);
        results
    }
}

enum CellOutcome<R> {
    Computed(R),
    Cached(R),
}

impl<R> CellOutcome<R> {
    fn into_inner(self) -> R {
        match self {
            CellOutcome::Computed(r) | CellOutcome::Cached(r) => r,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digest::Digest;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn run_preserves_order_across_jobs_counts() {
        let cells: Vec<u64> = (0..40).collect();
        let f = |&c: &u64| c.wrapping_mul(0x1234_5678_9abc_def1);
        let serial = Sweep::new("t").jobs(1).run(cells.clone(), f);
        let parallel = Sweep::new("t").jobs(6).run(cells, f);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn series_merge_is_deterministic_across_jobs_counts() {
        let cells: Vec<u64> = (0..16).collect();
        let record = |&c: &u64| {
            psca_obs::series_handle("exec.test.series").push(c as f64);
            c
        };
        psca_obs::series("exec.test.series").reset();
        let _ = Sweep::new("t").jobs(1).run(cells.clone(), record);
        let serial = psca_obs::series("exec.test.series").snapshot();
        psca_obs::series("exec.test.series").reset();
        let _ = Sweep::new("t").jobs(4).run(cells, record);
        let parallel = psca_obs::series("exec.test.series").snapshot();
        assert_eq!(
            serial.iter().map(|p| p.1).collect::<Vec<_>>(),
            parallel.iter().map(|p| p.1).collect::<Vec<_>>()
        );
    }

    #[test]
    fn nested_sweeps_run_inline() {
        let outer: Vec<u64> = (0..4).collect();
        let out = Sweep::new("outer").jobs(4).run(outer, |&o| {
            let inner = Sweep::new("inner").jobs(4);
            assert_eq!(inner.effective_jobs(), 1, "nested sweep must inline");
            inner.run((0..3).collect::<Vec<u64>>(), |&i| o * 10 + i)
        });
        assert_eq!(out[1], vec![10, 11, 12]);
    }

    #[test]
    fn cache_hits_skip_recompute_and_match_cold_run() {
        let dir = std::env::temp_dir().join(format!("psca-exec-sweep-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let computed = AtomicUsize::new(0);
        let run = |dir: &PathBuf| {
            Sweep::new("t").jobs(2).cache_dir(Some(dir)).run_cached(
                (0..10u64).collect::<Vec<_>>(),
                |&c| {
                    let mut d = Digest::new();
                    d.write_str("sweep-test").write_u64(c);
                    d.finish()
                },
                |r: &u64| r.to_le_bytes().to_vec(),
                |b: &[u8]| Some(u64::from_le_bytes(b.try_into().ok()?)),
                |&c| {
                    computed.fetch_add(1, Ordering::Relaxed);
                    c * c
                },
            )
        };
        let cold = run(&dir);
        assert_eq!(computed.load(Ordering::Relaxed), 10);
        let warm = run(&dir);
        assert_eq!(
            computed.load(Ordering::Relaxed),
            10,
            "warm run must not recompute"
        );
        assert_eq!(cold, warm);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
