//! Property-based tests of crate-local ML invariants.

use proptest::prelude::*;
use psca_ml::histogram::HistogramFeaturizer;
use psca_ml::{Dataset, DecisionTree, Matrix, Standardizer};

fn dataset_strategy() -> impl Strategy<Value = Dataset> {
    (2usize..40, 1usize..5, any::<u64>()).prop_map(|(n, d, seed)| {
        let mut x = seed;
        let mut next = move || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (x >> 33) as f64 / (1u64 << 31) as f64
        };
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..d).map(|_| next() * 10.0 - 5.0).collect())
            .collect();
        let labels: Vec<u8> = rows.iter().map(|r| (r[0] > 0.0) as u8).collect();
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        Dataset::new(Matrix::from_rows(&refs), labels, vec![0; n])
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Grown trees never exceed their depth bound and always produce
    /// probabilities in [0, 1] for arbitrary data.
    #[test]
    fn tree_respects_depth_and_probability_bounds(
        data in dataset_strategy(),
        depth in 1usize..10,
    ) {
        let tree = DecisionTree::fit(&data, depth, 1, None, 7);
        prop_assert!(tree.depth() <= depth);
        for i in 0..data.len() {
            let p = tree.predict_proba(data.sample(i).0);
            prop_assert!((0.0..=1.0).contains(&p));
        }
    }

    /// Standardization is invertible up to floating-point error.
    #[test]
    fn standardizer_is_affine_invertible(data in dataset_strategy()) {
        let std = Standardizer::fit(&data);
        let t = std.transform_dataset(&data);
        // Any two samples' ordering along each dimension is preserved
        // (standardization is monotone per feature).
        for j in 0..data.dim() {
            for a in 0..data.len() {
                for b in 0..data.len() {
                    let raw = data.features().get(a, j) <= data.features().get(b, j);
                    let tr = t.features().get(a, j) <= t.features().get(b, j);
                    prop_assert_eq!(raw, tr);
                }
            }
        }
    }

    /// Histograms are normalized distributions for any window.
    #[test]
    fn histograms_are_distributions(
        values in prop::collection::vec(prop::collection::vec(0.0f64..100.0, 2), 2..30),
        buckets in 1usize..12,
    ) {
        let refs: Vec<&[f64]> = values.iter().map(|r| r.as_slice()).collect();
        let h = HistogramFeaturizer::fit(&refs, buckets);
        let f = h.featurize(&refs);
        prop_assert_eq!(f.len(), 2 * buckets);
        let per_counter_total: f64 = f[..buckets].iter().sum();
        prop_assert!((per_counter_total - 1.0).abs() < 1e-9);
        prop_assert!(f.iter().all(|v| *v >= 0.0));
    }

    /// Matrix transpose is an involution and matmul agrees with matvec.
    #[test]
    fn matrix_algebra_consistency(
        rows in 1usize..6,
        cols in 1usize..6,
        seed in any::<u64>(),
    ) {
        let mut x = seed;
        let mut next = move || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(99);
            (x >> 33) as f64 / (1u64 << 31) as f64 - 1.0
        };
        let mut m = Matrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m.set(r, c, next());
            }
        }
        prop_assert_eq!(m.transpose().transpose(), m.clone());
        let v: Vec<f64> = (0..cols).map(|_| next()).collect();
        let via_vec = m.matvec(&v);
        let vm = Matrix::from_vec(cols, 1, v);
        let via_mat = m.matmul(&vm);
        for (r, &vv) in via_vec.iter().enumerate() {
            prop_assert!((vv - via_mat.get(r, 0)).abs() < 1e-9);
        }
    }
}
