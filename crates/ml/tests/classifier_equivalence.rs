//! Proves `&dyn Classifier` dispatch is bit-for-bit identical to direct
//! inherent calls for every model family, on every probe row.
//!
//! The trait impls are thin forwarders, so any divergence here means a
//! trait impl silently re-implemented (rather than delegated to) model
//! logic — exactly the duplication the trait exists to remove.

use psca_ml::gbdt::{Gbdt, GbdtConfig};
use psca_ml::{
    Classifier, Dataset, DecisionTree, KernelSvm, LinearSvm, LogisticRegression, Matrix, Mlp,
    MlpConfig, RandomForest, RandomForestConfig,
};

/// Small deterministic binary dataset: label = (x0 + 0.3*x1 > 0).
fn toy_dataset(n: usize, dim: usize, seed: u64) -> Dataset {
    let mut s = seed;
    let mut next = move || {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (s >> 33) as f64 / (1u64 << 31) as f64
    };
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..dim).map(|_| next() * 4.0 - 2.0).collect())
        .collect();
    let labels: Vec<u8> = rows
        .iter()
        .map(|r| (r[0] + 0.3 * r[1] > 0.0) as u8)
        .collect();
    let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
    Dataset::new(Matrix::from_rows(&refs), labels, vec![0; n])
}

/// Probe rows independent of the training data.
fn probes(dim: usize) -> Vec<Vec<f64>> {
    (0..16)
        .map(|i| {
            (0..dim)
                .map(|j| ((i * dim + j) as f64).sin() * 1.5)
                .collect()
        })
        .collect()
}

/// Asserts trait-object and direct calls agree exactly (f64 bit pattern
/// for probabilities, equality for decisions) on every probe.
fn assert_bit_identical<M, P, D>(model: &M, dim: usize, direct_proba: P, direct_predict: D)
where
    M: Classifier,
    P: Fn(&M, &[f64]) -> f64,
    D: Fn(&M, &[f64]) -> bool,
{
    let dynamic: &dyn Classifier = model;
    for x in probes(dim) {
        let via_trait = dynamic.predict_proba(&x);
        let via_direct = direct_proba(model, &x);
        assert_eq!(
            via_trait.to_bits(),
            via_direct.to_bits(),
            "predict_proba diverged: trait {via_trait} vs direct {via_direct}"
        );
        assert_eq!(dynamic.predict(&x), direct_predict(model, &x));
    }
}

#[test]
fn logistic_trait_matches_direct() {
    let data = toy_dataset(64, 3, 11);
    let model = LogisticRegression::fit(&data, 1e-3, 50);
    assert_eq!(Classifier::n_features(&model), Some(3));
    assert_bit_identical(
        &model,
        3,
        LogisticRegression::predict_proba,
        LogisticRegression::predict,
    );
}

#[test]
fn mlp_trait_matches_direct() {
    let data = toy_dataset(64, 3, 12);
    let cfg = MlpConfig {
        epochs: 5,
        ..MlpConfig::best_mlp()
    };
    let model = Mlp::fit(&cfg, &data, 3);
    assert_eq!(Classifier::n_features(&model), Some(3));
    assert_bit_identical(&model, 3, Mlp::predict_proba, Mlp::predict);
}

#[test]
fn gbdt_trait_matches_direct() {
    let data = toy_dataset(64, 3, 13);
    let model = Gbdt::fit(&GbdtConfig::default(), &data);
    assert_eq!(Classifier::n_features(&model), None);
    assert_bit_identical(&model, 3, Gbdt::predict_proba, Gbdt::predict);
}

#[test]
fn forest_trait_matches_direct() {
    let data = toy_dataset(64, 3, 14);
    let model = RandomForest::fit(&RandomForestConfig::best_rf(), &data, 5);
    assert_eq!(Classifier::n_features(&model), Some(3));
    assert_bit_identical(
        &model,
        3,
        RandomForest::predict_proba,
        RandomForest::predict,
    );
}

#[test]
fn tree_trait_matches_direct() {
    let data = toy_dataset(64, 3, 15);
    let model = DecisionTree::fit(&data, 4, 1, None, 7);
    assert_eq!(Classifier::n_features(&model), Some(3));
    assert_bit_identical(
        &model,
        3,
        DecisionTree::predict_proba,
        |m: &DecisionTree, x: &[f64]| m.predict_proba(x) >= 0.5,
    );
}

#[test]
fn linear_svm_trait_matches_direct() {
    let data = toy_dataset(64, 3, 16);
    let model = LinearSvm::fit(&data, 1e-3, 200, 9);
    assert_eq!(Classifier::n_features(&model), Some(3));
    assert_bit_identical(
        &model,
        3,
        |m: &LinearSvm, x: &[f64]| 1.0 / (1.0 + (-m.decision(x)).exp()),
        LinearSvm::predict,
    );
}

#[test]
fn kernel_svm_trait_matches_direct() {
    let data = toy_dataset(64, 3, 17);
    let model = KernelSvm::fit_chi2(&data, 1e-3, 100, 32, 21);
    assert_eq!(Classifier::n_features(&model), Some(3));
    assert_bit_identical(
        &model,
        3,
        |m: &KernelSvm, x: &[f64]| 1.0 / (1.0 + (-m.decision(x)).exp()),
        KernelSvm::predict,
    );
}
