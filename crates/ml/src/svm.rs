//! Support vector machines: a Pegasos-trained linear SVM (optionally
//! ensembled, as in Table 3's "5 SVM Ensemble") and a budgeted χ²-kernel
//! SVM ("χ² Kernel, Max Support Vectors 1,000", Table 3).

use crate::dataset::Dataset;
use crate::linalg::dot;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A linear SVM trained with the Pegasos stochastic sub-gradient method.
///
/// # Examples
///
/// ```
/// use psca_ml::{Dataset, LinearSvm, Matrix};
///
/// let x = Matrix::from_rows(&[&[-1.0], &[-2.0], &[1.0], &[2.0]]);
/// let data = Dataset::new(x, vec![0, 0, 1, 1], vec![0; 4]);
/// let svm = LinearSvm::fit(&data, 1e-3, 2000, 1);
/// assert!(svm.predict(&[1.5]));
/// assert!(!svm.predict(&[-1.5]));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LinearSvm {
    weights: Vec<f64>,
    bias: f64,
}

impl LinearSvm {
    /// Trains with regularization `lambda` for `iters` stochastic steps.
    ///
    /// # Panics
    /// Panics if the dataset is empty.
    pub fn fit(data: &Dataset, lambda: f64, iters: usize, seed: u64) -> LinearSvm {
        assert!(!data.is_empty(), "cannot fit on an empty dataset");
        let mut rng = StdRng::seed_from_u64(seed);
        let d = data.dim();
        let mut w = vec![0.0; d];
        let mut b = 0.0;
        for t in 1..=iters {
            let i = rng.gen_range(0..data.len());
            let (x, yl) = data.sample(i);
            let y = if yl == 1 { 1.0 } else { -1.0 };
            let eta = 1.0 / (lambda * t as f64);
            let margin = y * (dot(&w, x) + b);
            for wj in w.iter_mut() {
                *wj *= 1.0 - eta * lambda;
            }
            if margin < 1.0 {
                for (wj, &xj) in w.iter_mut().zip(x) {
                    *wj += eta * y * xj;
                }
                b += eta * y;
            }
        }
        LinearSvm {
            weights: w,
            bias: b,
        }
    }

    /// Signed decision score (positive → class 1).
    ///
    /// # Panics
    /// Panics if `x` has wrong dimensionality.
    pub fn decision(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.weights.len(), "dimension mismatch");
        dot(&self.weights, x) + self.bias
    }

    /// Class prediction.
    pub fn predict(&self, x: &[f64]) -> bool {
        self.decision(x) > 0.0
    }

    /// Fitted weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Trains an ensemble of `n` SVMs on bootstrap resamples and returns
    /// them (majority vote at inference), as in Table 3's linear-SVM row.
    pub fn fit_ensemble(
        data: &Dataset,
        n: usize,
        lambda: f64,
        iters: usize,
        seed: u64,
    ) -> Vec<LinearSvm> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let idx: Vec<usize> = (0..data.len())
                    .map(|_| rng.gen_range(0..data.len()))
                    .collect();
                LinearSvm::fit(&data.subset(&idx), lambda, iters, rng.gen())
            })
            .collect()
    }
}

/// The additive χ² kernel `k(x, y) = Σ 2·xᵢyᵢ / (xᵢ + yᵢ)` over
/// nonnegative features (standard for histogram-like counter data).
pub fn chi2_kernel(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(&x, &y)| {
            let s = x + y;
            if s.abs() < 1e-12 {
                0.0
            } else {
                2.0 * x * y / s
            }
        })
        .sum()
}

/// A kernel SVM trained by budgeted kernelized Pegasos: the support set is
/// capped (the paper budgets 1,000 support vectors) by dropping the
/// lowest-|α| vector when full.
#[derive(Debug, Clone)]
pub struct KernelSvm {
    support: Vec<Vec<f64>>,
    alphas: Vec<f64>,
    lambda: f64,
    steps: usize,
}

impl KernelSvm {
    /// Trains with the χ² kernel.
    ///
    /// # Panics
    /// Panics if the dataset is empty or `budget == 0`.
    pub fn fit_chi2(
        data: &Dataset,
        lambda: f64,
        iters: usize,
        budget: usize,
        seed: u64,
    ) -> KernelSvm {
        assert!(!data.is_empty(), "cannot fit on an empty dataset");
        assert!(budget >= 1, "support-vector budget must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut svm = KernelSvm {
            support: Vec::new(),
            alphas: Vec::new(),
            lambda,
            steps: 0,
        };
        for t in 1..=iters {
            let i = rng.gen_range(0..data.len());
            let (x, yl) = data.sample(i);
            let y = if yl == 1 { 1.0 } else { -1.0 };
            let f = svm.raw_decision(x) / (lambda * t as f64);
            if y * f < 1.0 {
                svm.support.push(x.to_vec());
                svm.alphas.push(y);
                if svm.support.len() > budget {
                    // Drop the weakest support vector.
                    let (weakest, _) = svm
                        .alphas
                        .iter()
                        .enumerate()
                        .min_by(|a, b| {
                            a.1.abs()
                                .partial_cmp(&b.1.abs())
                                .unwrap_or(std::cmp::Ordering::Equal)
                        })
                        .unwrap();
                    svm.support.swap_remove(weakest);
                    svm.alphas.swap_remove(weakest);
                }
            }
            svm.steps = t;
        }
        svm
    }

    fn raw_decision(&self, x: &[f64]) -> f64 {
        self.support
            .iter()
            .zip(&self.alphas)
            .map(|(sv, &a)| a * chi2_kernel(sv, x))
            .sum()
    }

    /// Signed decision score (positive → class 1).
    pub fn decision(&self, x: &[f64]) -> f64 {
        if self.steps == 0 {
            return 0.0;
        }
        self.raw_decision(x) / (self.lambda * self.steps as f64)
    }

    /// Class prediction.
    pub fn predict(&self, x: &[f64]) -> bool {
        self.decision(x) > 0.0
    }

    /// Number of retained support vectors.
    pub fn num_support_vectors(&self) -> usize {
        self.support.len()
    }

    /// Input dimensionality, if any support vectors are retained.
    pub fn dim(&self) -> Option<usize> {
        self.support.first().map(|sv| sv.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linalg::Matrix;

    fn blobs(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..n {
            let y = rng.gen::<bool>();
            let cx = if y { 2.0 } else { 0.5 };
            rows.push(vec![
                cx + rng.gen::<f64>() * 0.8,
                cx + rng.gen::<f64>() * 0.8,
            ]);
            labels.push(y as u8);
        }
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        Dataset::new(Matrix::from_rows(&refs), labels, vec![0; n])
    }

    #[test]
    fn linear_svm_separates_blobs() {
        let data = blobs(400, 1);
        let svm = LinearSvm::fit(&data, 1e-3, 20_000, 2);
        let acc = (0..data.len())
            .filter(|&i| {
                let (x, y) = data.sample(i);
                svm.predict(x) == (y == 1)
            })
            .count() as f64
            / data.len() as f64;
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn chi2_kernel_properties() {
        let a = [1.0, 2.0, 0.0];
        let b = [1.0, 2.0, 0.0];
        // k(x, x) = sum(x) for the additive chi2 kernel.
        assert!((chi2_kernel(&a, &b) - 3.0).abs() < 1e-12);
        // symmetry
        let c = [0.5, 0.1, 3.0];
        assert!((chi2_kernel(&a, &c) - chi2_kernel(&c, &a)).abs() < 1e-12);
        // zeros are safe
        assert_eq!(chi2_kernel(&[0.0], &[0.0]), 0.0);
    }

    #[test]
    fn kernel_svm_separates_blobs() {
        let data = blobs(300, 3);
        let svm = KernelSvm::fit_chi2(&data, 1e-3, 4_000, 1000, 4);
        let acc = (0..data.len())
            .filter(|&i| {
                let (x, y) = data.sample(i);
                svm.predict(x) == (y == 1)
            })
            .count() as f64
            / data.len() as f64;
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn kernel_svm_respects_budget() {
        let data = blobs(500, 5);
        let svm = KernelSvm::fit_chi2(&data, 1e-3, 5_000, 50, 6);
        assert!(svm.num_support_vectors() <= 50);
    }

    #[test]
    fn ensemble_has_requested_size() {
        let data = blobs(200, 7);
        let ens = LinearSvm::fit_ensemble(&data, 5, 1e-3, 2_000, 8);
        assert_eq!(ens.len(), 5);
        let votes = ens.iter().filter(|s| s.predict(&[2.5, 2.5])).count();
        assert!(votes >= 3, "majority should vote positive");
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_rejected() {
        let d = Dataset::new(Matrix::zeros(0, 1), vec![], vec![]);
        let _ = LinearSvm::fit(&d, 1e-3, 10, 1);
    }
}
