//! Group-aware k-fold cross-validation (§4.3).
//!
//! Each fold is an independent randomized 80/20 partition *by application*
//! (group id): all telemetry from one application lands entirely in the
//! tuning set or entirely in the validation set, so telemetry reflecting
//! common code sections never appears on both sides — which would make
//! validation metrics overestimate performance on unseen applications.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// One tuning/validation split as sample-index lists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fold {
    /// Tuning (training) sample indices.
    pub tune: Vec<usize>,
    /// Validation sample indices.
    pub validate: Vec<usize>,
}

/// Generates `k` randomized group-aware splits. `validate_frac` of the
/// distinct groups (rounded, at least one) goes to validation in each fold.
///
/// The paper uses `k = 32` folds of 80/20 splits (§4.3).
///
/// # Panics
/// Panics if `groups` is empty or `validate_frac` is not in `(0, 1)`.
pub fn group_folds(groups: &[u32], k: usize, validate_frac: f64, seed: u64) -> Vec<Fold> {
    assert!(!groups.is_empty(), "no samples to split");
    assert!(
        validate_frac > 0.0 && validate_frac < 1.0,
        "validate_frac must be in (0, 1)"
    );
    let mut distinct: Vec<u32> = {
        let mut seen = std::collections::HashSet::new();
        groups.iter().copied().filter(|g| seen.insert(*g)).collect()
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let n_val = ((distinct.len() as f64 * validate_frac).round() as usize)
        .clamp(1, distinct.len().saturating_sub(1).max(1));
    (0..k)
        .map(|_| {
            distinct.shuffle(&mut rng);
            let val_groups: std::collections::HashSet<u32> =
                distinct[..n_val].iter().copied().collect();
            let mut tune = Vec::new();
            let mut validate = Vec::new();
            for (i, g) in groups.iter().enumerate() {
                if val_groups.contains(g) {
                    validate.push(i);
                } else {
                    tune.push(i);
                }
            }
            Fold { tune, validate }
        })
        .collect()
}

/// Leave-one-group-out folds: one fold per distinct group, with that
/// group's samples as validation (used for SPEC-only training, §7.2
/// footnote, and application-specific evaluation, §7.3).
///
/// # Panics
/// Panics if `groups` is empty.
pub fn leave_one_group_out(groups: &[u32]) -> Vec<Fold> {
    assert!(!groups.is_empty(), "no samples to split");
    let mut distinct: Vec<u32> = {
        let mut seen = std::collections::HashSet::new();
        groups.iter().copied().filter(|g| seen.insert(*g)).collect()
    };
    distinct.sort_unstable();
    distinct
        .iter()
        .map(|&held| {
            let mut tune = Vec::new();
            let mut validate = Vec::new();
            for (i, &g) in groups.iter().enumerate() {
                if g == held {
                    validate.push(i);
                } else {
                    tune.push(i);
                }
            }
            Fold { tune, validate }
        })
        .collect()
}

/// Mean and population standard deviation of a metric across folds.
pub fn mean_std(values: &[f64]) -> (f64, f64) {
    if values.is_empty() {
        return (0.0, 0.0);
    }
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
    (mean, var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn folds_never_split_a_group() {
        let groups: Vec<u32> = (0..100).map(|i| i / 10).collect();
        for fold in group_folds(&groups, 8, 0.2, 1) {
            let tune_groups: std::collections::HashSet<u32> =
                fold.tune.iter().map(|&i| groups[i]).collect();
            let val_groups: std::collections::HashSet<u32> =
                fold.validate.iter().map(|&i| groups[i]).collect();
            assert!(tune_groups.is_disjoint(&val_groups));
            assert_eq!(fold.tune.len() + fold.validate.len(), 100);
        }
    }

    #[test]
    fn validate_fraction_approximate() {
        let groups: Vec<u32> = (0..200).map(|i| i / 10).collect(); // 20 groups
        let folds = group_folds(&groups, 4, 0.2, 2);
        for fold in folds {
            let val_groups: std::collections::HashSet<u32> =
                fold.validate.iter().map(|&i| groups[i]).collect();
            assert_eq!(val_groups.len(), 4); // 20% of 20
        }
    }

    #[test]
    fn folds_differ_across_k() {
        let groups: Vec<u32> = (0..100).map(|i| i / 5).collect();
        let folds = group_folds(&groups, 8, 0.2, 3);
        let distinct: std::collections::HashSet<Vec<usize>> =
            folds.iter().map(|f| f.validate.clone()).collect();
        assert!(distinct.len() > 1, "folds should be randomized");
    }

    #[test]
    fn folds_deterministic_per_seed() {
        let groups: Vec<u32> = (0..50).map(|i| i / 5).collect();
        assert_eq!(
            group_folds(&groups, 3, 0.2, 7),
            group_folds(&groups, 3, 0.2, 7)
        );
    }

    #[test]
    fn loo_has_one_fold_per_group() {
        let groups = [0u32, 0, 1, 1, 2];
        let folds = leave_one_group_out(&groups);
        assert_eq!(folds.len(), 3);
        assert_eq!(folds[0].validate, vec![0, 1]);
        assert_eq!(folds[2].validate, vec![4]);
        assert_eq!(folds[1].tune, vec![0, 1, 4]);
    }

    #[test]
    fn mean_std_basics() {
        let (m, s) = mean_std(&[1.0, 2.0, 3.0]);
        assert!((m - 2.0).abs() < 1e-12);
        assert!((s - (2.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(mean_std(&[]), (0.0, 0.0));
    }

    #[test]
    fn single_group_still_splits() {
        let groups = [0u32, 0, 0];
        let folds = group_folds(&groups, 1, 0.2, 1);
        // With one group, everything must land in validation (n_val >= 1).
        assert_eq!(folds[0].validate.len(), 3);
    }
}
