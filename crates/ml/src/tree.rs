//! CART decision trees grown by entropy minimization, as the paper's
//! random-forest models are built ("an open source implementation of the
//! CART algorithm that greedily grows trees by partitioning tuning samples
//! into groups to minimize label entropy", §7).

use crate::dataset::Dataset;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;

/// One node of a decision tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Node {
    /// Internal split: `feature < threshold` goes left, else right.
    Split {
        /// Feature index compared.
        feature: usize,
        /// Split threshold.
        threshold: f64,
        /// Left child index.
        left: usize,
        /// Right child index.
        right: usize,
    },
    /// Leaf holding the probability of the positive class.
    Leaf {
        /// P(y = 1) among training samples reaching the leaf.
        prob: f64,
    },
}

/// A binary CART decision tree.
///
/// # Examples
///
/// ```
/// use psca_ml::{Dataset, DecisionTree, Matrix};
///
/// let x = Matrix::from_rows(&[&[0.1], &[0.2], &[0.8], &[0.9]]);
/// let data = Dataset::new(x, vec![0, 0, 1, 1], vec![0; 4]);
/// let tree = DecisionTree::fit(&data, 4, 1, None, 1);
/// assert!(tree.predict_proba(&[0.95]) > 0.5);
/// assert!(tree.predict_proba(&[0.05]) < 0.5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionTree {
    nodes: Vec<Node>,
    max_depth: usize,
    num_features: usize,
}

impl DecisionTree {
    /// Grows a tree.
    ///
    /// `max_features`: number of candidate features per split (`None` =
    /// all; random forests pass √d). `seed` drives feature subsampling.
    ///
    /// # Panics
    /// Panics if the dataset is empty or `max_depth == 0`.
    pub fn fit(
        data: &Dataset,
        max_depth: usize,
        min_leaf: usize,
        max_features: Option<usize>,
        seed: u64,
    ) -> DecisionTree {
        assert!(!data.is_empty(), "cannot grow a tree on an empty dataset");
        assert!(max_depth >= 1, "max_depth must be at least 1");
        let mut rng = rand::SeedableRng::seed_from_u64(seed);
        let mut tree = DecisionTree {
            nodes: Vec::new(),
            max_depth,
            num_features: data.dim(),
        };
        let idx: Vec<usize> = (0..data.len()).collect();
        tree.grow(data, idx, 0, min_leaf.max(1), max_features, &mut rng);
        tree
    }

    fn grow(
        &mut self,
        data: &Dataset,
        idx: Vec<usize>,
        depth: usize,
        min_leaf: usize,
        max_features: Option<usize>,
        rng: &mut StdRng,
    ) -> usize {
        let pos = idx.iter().filter(|&&i| data.labels()[i] == 1).count();
        let prob = pos as f64 / idx.len() as f64;
        if depth >= self.max_depth || idx.len() < 2 * min_leaf || pos == 0 || pos == idx.len() {
            self.nodes.push(Node::Leaf { prob });
            return self.nodes.len() - 1;
        }
        let candidates: Vec<usize> = match max_features {
            Some(k) if k < data.dim() => {
                let mut all: Vec<usize> = (0..data.dim()).collect();
                all.shuffle(rng);
                all.truncate(k.max(1));
                all
            }
            _ => (0..data.dim()).collect(),
        };
        let best = best_split(data, &idx, &candidates, min_leaf);
        let Some((feature, threshold)) = best else {
            self.nodes.push(Node::Leaf { prob });
            return self.nodes.len() - 1;
        };
        let (li, ri): (Vec<usize>, Vec<usize>) = idx
            .into_iter()
            .partition(|&i| data.features().get(i, feature) < threshold);
        let node_at = self.nodes.len();
        self.nodes.push(Node::Leaf { prob }); // placeholder
        let left = self.grow(data, li, depth + 1, min_leaf, max_features, rng);
        let right = self.grow(data, ri, depth + 1, min_leaf, max_features, rng);
        self.nodes[node_at] = Node::Split {
            feature,
            threshold,
            left,
            right,
        };
        node_at
    }

    /// Probability of the positive class.
    ///
    /// # Panics
    /// Panics if `x` has wrong dimensionality.
    pub fn predict_proba(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.num_features, "dimension mismatch");
        let mut at = 0;
        let mut hops = 0;
        loop {
            match self.nodes[at] {
                Node::Leaf { prob } => return prob,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    at = if x[feature] < threshold { left } else { right };
                }
            }
            hops += 1;
            debug_assert!(hops <= self.max_depth + 1, "cycle in tree");
        }
    }

    /// Number of nodes actually allocated.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The configured maximum depth.
    pub fn max_depth(&self) -> usize {
        self.max_depth
    }

    /// Depth of the deepest leaf.
    pub fn depth(&self) -> usize {
        fn walk(nodes: &[Node], at: usize) -> usize {
            match nodes[at] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + walk(nodes, left).max(walk(nodes, right)),
            }
        }
        walk(&self.nodes, 0)
    }

    /// Node storage for firmware-footprint accounting.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Input dimensionality the tree was trained on.
    pub fn num_features(&self) -> usize {
        self.num_features
    }

    /// Reconstructs a tree from its node array — the firmware-image
    /// deserialization path.
    ///
    /// # Panics
    /// Panics if the array is empty, any child index or feature is out of
    /// range, or children do not strictly follow their parents (which
    /// guarantees the traversal terminates).
    pub fn from_nodes(nodes: Vec<Node>, max_depth: usize, num_features: usize) -> DecisionTree {
        assert!(!nodes.is_empty(), "a tree needs at least one node");
        for (i, n) in nodes.iter().enumerate() {
            if let Node::Split {
                feature,
                left,
                right,
                ..
            } = n
            {
                assert!(*feature < num_features, "feature out of range");
                assert!(
                    *left < nodes.len() && *right < nodes.len(),
                    "child index out of range"
                );
                assert!(*left > i && *right > i, "children must follow parents");
            }
        }
        DecisionTree {
            nodes,
            max_depth,
            num_features,
        }
    }
}

/// Finds the `(feature, threshold)` minimizing weighted label entropy, or
/// `None` when no split improves on the parent.
fn best_split(
    data: &Dataset,
    idx: &[usize],
    candidates: &[usize],
    min_leaf: usize,
) -> Option<(usize, f64)> {
    let n = idx.len() as f64;
    let total_pos = idx.iter().filter(|&&i| data.labels()[i] == 1).count() as f64;
    let parent = entropy(total_pos / n);
    let mut best: Option<(f64, usize, f64)> = None;
    let mut sorted: Vec<(f64, u8)> = Vec::with_capacity(idx.len());
    for &f in candidates {
        sorted.clear();
        sorted.extend(
            idx.iter()
                .map(|&i| (data.features().get(i, f), data.labels()[i])),
        );
        sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        let mut left_pos = 0.0;
        let mut left_n = 0.0;
        for w in 0..sorted.len() - 1 {
            left_pos += sorted[w].1 as f64;
            left_n += 1.0;
            if sorted[w].0 == sorted[w + 1].0 {
                continue; // cannot split between equal values
            }
            if (left_n as usize) < min_leaf || (idx.len() - left_n as usize) < min_leaf {
                continue;
            }
            let right_n = n - left_n;
            let right_pos = total_pos - left_pos;
            let h = (left_n / n) * entropy(left_pos / left_n)
                + (right_n / n) * entropy(right_pos / right_n);
            let gain = parent - h;
            if gain > 1e-12 && best.is_none_or(|(g, _, _)| gain > g) {
                let threshold = 0.5 * (sorted[w].0 + sorted[w + 1].0);
                best = Some((gain, f, threshold));
            }
        }
    }
    best.map(|(_, f, t)| (f, t))
}

fn entropy(p: f64) -> f64 {
    if p <= 0.0 || p >= 1.0 {
        return 0.0;
    }
    -p * p.log2() - (1.0 - p) * (1.0 - p).log2()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linalg::Matrix;

    fn grid_dataset() -> Dataset {
        // y = (x0 > 0.5) AND (x1 > 0.5): needs depth 2.
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..20 {
            for j in 0..20 {
                let x0 = i as f64 / 19.0;
                let x1 = j as f64 / 19.0;
                rows.push(vec![x0, x1]);
                labels.push(((x0 > 0.5) && (x1 > 0.5)) as u8);
            }
        }
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        Dataset::new(Matrix::from_rows(&refs), labels, vec![0; 400])
    }

    #[test]
    fn learns_axis_aligned_and() {
        let data = grid_dataset();
        let tree = DecisionTree::fit(&data, 4, 1, None, 1);
        assert!(tree.predict_proba(&[0.9, 0.9]) > 0.9);
        assert!(tree.predict_proba(&[0.9, 0.1]) < 0.1);
        assert!(tree.predict_proba(&[0.1, 0.9]) < 0.1);
    }

    #[test]
    fn depth_limit_respected() {
        let data = grid_dataset();
        for d in 1..6 {
            let tree = DecisionTree::fit(&data, d, 1, None, 1);
            assert!(tree.depth() <= d, "depth {} > {d}", tree.depth());
        }
    }

    #[test]
    fn pure_node_becomes_leaf() {
        let x = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0]]);
        let data = Dataset::new(x, vec![1, 1, 1], vec![0; 3]);
        let tree = DecisionTree::fit(&data, 8, 1, None, 1);
        assert_eq!(tree.num_nodes(), 1);
        assert_eq!(tree.predict_proba(&[5.0]), 1.0);
    }

    #[test]
    fn min_leaf_prevents_tiny_splits() {
        let data = grid_dataset();
        let tree = DecisionTree::fit(&data, 10, 150, None, 1);
        // With min_leaf=150 of 400 samples, at most ~1 level of splitting.
        assert!(tree.depth() <= 2);
    }

    #[test]
    fn deterministic_given_seed() {
        let data = grid_dataset();
        let a = DecisionTree::fit(&data, 4, 1, Some(1), 9);
        let b = DecisionTree::fit(&data, 4, 1, Some(1), 9);
        assert_eq!(a, b);
    }

    #[test]
    fn constant_features_yield_single_leaf() {
        let x = Matrix::from_rows(&[&[1.0], &[1.0], &[1.0], &[1.0]]);
        let data = Dataset::new(x, vec![0, 1, 0, 1], vec![0; 4]);
        let tree = DecisionTree::fit(&data, 4, 1, None, 1);
        assert_eq!(tree.num_nodes(), 1);
        assert_eq!(tree.predict_proba(&[1.0]), 0.5);
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_dataset_rejected() {
        let d = Dataset::new(Matrix::zeros(0, 1), vec![], vec![]);
        let _ = DecisionTree::fit(&d, 2, 1, None, 1);
    }
}
