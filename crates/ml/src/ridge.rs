//! L2-regularized linear regression (ridge).
//!
//! The surrogate performance backend (`psca-cpu`) fuses analytical
//! throughput bounds with a small learned residual; that residual is a
//! ridge fit because it must be cheap to evaluate per interval, stable
//! under the tiny calibration sets a post-silicon die can afford, and
//! bit-deterministic (the normal equations below involve no iteration
//! order that depends on threading or allocation).

use crate::linalg::Matrix;

/// A fitted ridge regressor `y ≈ w·x + b`.
#[derive(Debug, Clone, PartialEq)]
pub struct Ridge {
    weights: Vec<f64>,
    intercept: f64,
}

impl Ridge {
    /// Fits `y ≈ w·x + b` by solving the regularized normal equations
    /// `(XᵀX + λI) w = Xᵀy` with a partial-pivoting Gaussian solve.
    ///
    /// The intercept is recovered from the feature/target means and is
    /// not penalized. `lambda <= 0` is clamped to a small positive value
    /// so the system stays well-posed even with collinear features.
    ///
    /// # Panics
    /// Panics if `x` has no rows or `y.len() != x.rows()`.
    pub fn fit(x: &Matrix, y: &[f64], lambda: f64) -> Ridge {
        assert!(x.rows() > 0, "cannot fit ridge on an empty design matrix");
        assert_eq!(y.len(), x.rows(), "target length must match rows");
        let n = x.rows();
        let d = x.cols();
        let lambda = lambda.max(1e-9);

        // Center features and targets so the intercept absorbs the means.
        let mut x_mean = vec![0.0; d];
        for r in 0..n {
            for (m, v) in x_mean.iter_mut().zip(x.row(r)) {
                *m += v;
            }
        }
        for m in x_mean.iter_mut() {
            *m /= n as f64;
        }
        let y_mean = y.iter().sum::<f64>() / n as f64;

        // A = XcᵀXc + λI, b = Xcᵀyc.
        let mut a = vec![0.0; d * d];
        let mut b = vec![0.0; d];
        for (r, &yv) in y.iter().enumerate().take(n) {
            let row = x.row(r);
            let yc = yv - y_mean;
            for i in 0..d {
                let xi = row[i] - x_mean[i];
                b[i] += xi * yc;
                for j in i..d {
                    a[i * d + j] += xi * (row[j] - x_mean[j]);
                }
            }
        }
        for i in 0..d {
            for j in 0..i {
                a[i * d + j] = a[j * d + i];
            }
            a[i * d + i] += lambda;
        }

        let weights = solve(&mut a, &mut b, d);
        let intercept = y_mean - weights.iter().zip(&x_mean).map(|(w, m)| w * m).sum::<f64>();
        Ridge { weights, intercept }
    }

    /// Predicted value for one feature vector.
    ///
    /// # Panics
    /// Panics if `x.len() != n_features()`.
    #[inline]
    pub fn predict(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.weights.len(), "feature dim mismatch");
        self.intercept + self.weights.iter().zip(x).map(|(w, v)| w * v).sum::<f64>()
    }

    /// Number of input features.
    pub fn n_features(&self) -> usize {
        self.weights.len()
    }

    /// The fitted coefficient vector.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The fitted intercept.
    pub fn intercept(&self) -> f64 {
        self.intercept
    }
}

/// In-place Gaussian elimination with partial pivoting on a dense
/// row-major `d × d` system. The λ ridge on the diagonal keeps pivots
/// bounded away from zero for any real design matrix.
fn solve(a: &mut [f64], b: &mut [f64], d: usize) -> Vec<f64> {
    for col in 0..d {
        let mut pivot = col;
        for r in col + 1..d {
            if a[r * d + col].abs() > a[pivot * d + col].abs() {
                pivot = r;
            }
        }
        if pivot != col {
            for j in 0..d {
                a.swap(col * d + j, pivot * d + j);
            }
            b.swap(col, pivot);
        }
        let diag = a[col * d + col];
        if diag.abs() < 1e-18 {
            continue; // degenerate direction: leave weight at 0
        }
        for r in col + 1..d {
            let f = a[r * d + col] / diag;
            if f == 0.0 {
                continue;
            }
            for j in col..d {
                a[r * d + j] -= f * a[col * d + j];
            }
            b[r] -= f * b[col];
        }
    }
    let mut w = vec![0.0; d];
    for col in (0..d).rev() {
        let mut acc = b[col];
        for j in col + 1..d {
            acc -= a[col * d + j] * w[j];
        }
        let diag = a[col * d + col];
        w[col] = if diag.abs() < 1e-18 { 0.0 } else { acc / diag };
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_exact_linear_relation() {
        // y = 2a - 3b + 5
        let rows: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![i as f64 * 0.3, (i % 7) as f64])
            .collect();
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let x = Matrix::from_rows(&refs);
        let y: Vec<f64> = rows.iter().map(|r| 2.0 * r[0] - 3.0 * r[1] + 5.0).collect();
        let m = Ridge::fit(&x, &y, 1e-8);
        assert!((m.weights()[0] - 2.0).abs() < 1e-4, "{:?}", m.weights());
        assert!((m.weights()[1] + 3.0).abs() < 1e-4);
        assert!((m.intercept() - 5.0).abs() < 1e-3);
        assert!((m.predict(&[1.0, 1.0]) - 4.0).abs() < 1e-3);
    }

    #[test]
    fn regularization_shrinks_weights() {
        let rows: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64]).collect();
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let x = Matrix::from_rows(&refs);
        let y: Vec<f64> = rows.iter().map(|r| 4.0 * r[0]).collect();
        let loose = Ridge::fit(&x, &y, 1e-8);
        let tight = Ridge::fit(&x, &y, 1e6);
        assert!(tight.weights()[0].abs() < loose.weights()[0].abs());
    }

    #[test]
    fn collinear_features_stay_finite() {
        // Second column duplicates the first: XᵀX is singular without λ.
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64, i as f64]).collect();
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let x = Matrix::from_rows(&refs);
        let y: Vec<f64> = (0..10).map(|i| i as f64 * 6.0).collect();
        let m = Ridge::fit(&x, &y, 1e-3);
        assert!(m.weights().iter().all(|w| w.is_finite()));
        assert!((m.predict(&[4.0, 4.0]) - 24.0).abs() < 0.5);
    }

    #[test]
    fn fit_is_deterministic() {
        let rows: Vec<Vec<f64>> = (0..25)
            .map(|i| vec![(i * 17 % 11) as f64, (i * 3 % 5) as f64, i as f64])
            .collect();
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let x = Matrix::from_rows(&refs);
        let y: Vec<f64> = rows.iter().map(|r| r[0] - r[1] + 0.1 * r[2]).collect();
        let a = Ridge::fit(&x, &y, 1e-4);
        let b = Ridge::fit(&x, &y, 1e-4);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_design_panics() {
        let _ = Ridge::fit(&Matrix::zeros(0, 2), &[], 1.0);
    }
}
