//! L2-regularized logistic regression fit with L-BFGS, as the paper's
//! SRCH baseline is ("we train by fitting a logistic regression using an
//! open source implementation of the L-BFGS algorithm", §7).

use crate::dataset::Dataset;

/// A binary logistic-regression classifier.
///
/// # Examples
///
/// ```
/// use psca_ml::{Dataset, LogisticRegression, Matrix};
///
/// let x = Matrix::from_rows(&[&[-2.0], &[-1.0], &[1.0], &[2.0]]);
/// let data = Dataset::new(x, vec![0, 0, 1, 1], vec![0; 4]);
/// let lr = LogisticRegression::fit(&data, 1e-4, 100);
/// assert!(lr.predict_proba(&[1.5]) > 0.5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LogisticRegression {
    weights: Vec<f64>,
    bias: f64,
    threshold: f64,
}

impl LogisticRegression {
    /// Fits by minimizing L2-regularized log-loss with L-BFGS (history
    /// size 8, backtracking Armijo line search).
    ///
    /// # Panics
    /// Panics if the dataset is empty.
    pub fn fit(data: &Dataset, l2: f64, max_iters: usize) -> LogisticRegression {
        assert!(!data.is_empty(), "cannot fit on an empty dataset");
        let _span = psca_obs::SpanTimer::start("ml.logistic.fit");
        let d = data.dim();
        // Parameter vector: [weights..., bias].
        let mut theta = vec![0.0; d + 1];
        let f_g = |theta: &[f64]| loss_grad(data, theta, l2);
        lbfgs(&mut theta, f_g, max_iters, 8);
        LogisticRegression {
            weights: theta[..d].to_vec(),
            bias: theta[d],
            threshold: 0.5,
        }
    }

    /// Reconstructs a model from fitted parameters — the firmware-image
    /// deserialization path.
    pub fn from_parts(weights: Vec<f64>, bias: f64, threshold: f64) -> LogisticRegression {
        LogisticRegression {
            weights,
            bias,
            threshold: threshold.clamp(0.0, 1.0),
        }
    }

    /// P(y = 1 | x).
    ///
    /// # Panics
    /// Panics if `x` has wrong dimensionality.
    pub fn predict_proba(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.weights.len(), "dimension mismatch");
        sigmoid(crate::linalg::dot(&self.weights, x) + self.bias)
    }

    /// Thresholded prediction.
    pub fn predict(&self, x: &[f64]) -> bool {
        self.predict_proba(x) >= self.threshold
    }

    /// Fitted weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Fitted intercept.
    pub fn bias(&self) -> f64 {
        self.bias
    }

    /// The decision threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Adjusts the decision threshold.
    pub fn set_threshold(&mut self, t: f64) {
        self.threshold = t.clamp(0.0, 1.0);
    }
}

fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

/// Mean log-loss and its gradient over the dataset (bias unregularized).
fn loss_grad(data: &Dataset, theta: &[f64], l2: f64) -> (f64, Vec<f64>) {
    let d = data.dim();
    let n = data.len() as f64;
    let mut loss = 0.0;
    let mut grad = vec![0.0; d + 1];
    for i in 0..data.len() {
        let (x, y) = data.sample(i);
        let z = crate::linalg::dot(&theta[..d], x) + theta[d];
        let p = sigmoid(z);
        let yf = y as f64;
        // Numerically-stable BCE.
        loss += softplus(z) - yf * z;
        let e = p - yf;
        for (g, &xi) in grad[..d].iter_mut().zip(x) {
            *g += e * xi;
        }
        grad[d] += e;
    }
    loss /= n;
    for g in grad.iter_mut() {
        *g /= n;
    }
    for j in 0..d {
        loss += 0.5 * l2 * theta[j] * theta[j];
        grad[j] += l2 * theta[j];
    }
    (loss, grad)
}

fn softplus(z: f64) -> f64 {
    if z > 30.0 {
        z
    } else if z < -30.0 {
        0.0
    } else {
        (1.0 + z.exp()).ln()
    }
}

/// Minimizes `f` with L-BFGS (two-loop recursion) and Armijo backtracking.
fn lbfgs<F: Fn(&[f64]) -> (f64, Vec<f64>)>(
    theta: &mut [f64],
    f: F,
    max_iters: usize,
    history: usize,
) {
    let n = theta.len();
    let (mut loss, mut grad) = f(theta);
    let mut s_list: Vec<Vec<f64>> = Vec::new();
    let mut y_list: Vec<Vec<f64>> = Vec::new();
    for _ in 0..max_iters {
        let gnorm = crate::linalg::norm(&grad);
        if gnorm < 1e-8 {
            break;
        }
        // Two-loop recursion for the search direction.
        let mut q = grad.clone();
        let m = s_list.len();
        let mut alphas = vec![0.0; m];
        for i in (0..m).rev() {
            let rho = 1.0 / crate::linalg::dot(&y_list[i], &s_list[i]);
            let a = rho * crate::linalg::dot(&s_list[i], &q);
            alphas[i] = a;
            for (qj, yj) in q.iter_mut().zip(&y_list[i]) {
                *qj -= a * yj;
            }
        }
        let gamma = if m > 0 {
            let sy = crate::linalg::dot(&s_list[m - 1], &y_list[m - 1]);
            let yy = crate::linalg::dot(&y_list[m - 1], &y_list[m - 1]);
            (sy / yy).max(1e-8)
        } else {
            1.0
        };
        for qj in q.iter_mut() {
            *qj *= gamma;
        }
        for i in 0..m {
            let rho = 1.0 / crate::linalg::dot(&y_list[i], &s_list[i]);
            let beta = rho * crate::linalg::dot(&y_list[i], &q);
            for (qj, sj) in q.iter_mut().zip(&s_list[i]) {
                *qj += (alphas[i] - beta) * sj;
            }
        }
        // q is the descent direction scaled; step = -q.
        let dir: Vec<f64> = q.iter().map(|v| -v).collect();
        let slope = crate::linalg::dot(&grad, &dir);
        if slope >= 0.0 {
            // Fall back to steepest descent if curvature breaks down.
            s_list.clear();
            y_list.clear();
            continue;
        }
        let mut step = 1.0;
        let mut new_theta = vec![0.0; n];
        let mut accepted = false;
        for _ in 0..30 {
            for i in 0..n {
                new_theta[i] = theta[i] + step * dir[i];
            }
            let (nl, _) = f(&new_theta);
            if nl <= loss + 1e-4 * step * slope {
                accepted = true;
                break;
            }
            step *= 0.5;
        }
        if !accepted {
            break;
        }
        let (nl, ng) = f(&new_theta);
        let s: Vec<f64> = (0..n).map(|i| new_theta[i] - theta[i]).collect();
        let y: Vec<f64> = (0..n).map(|i| ng[i] - grad[i]).collect();
        if crate::linalg::dot(&s, &y) > 1e-12 {
            s_list.push(s);
            y_list.push(y);
            if s_list.len() > history {
                s_list.remove(0);
                y_list.remove(0);
            }
        }
        theta.copy_from_slice(&new_theta);
        loss = nl;
        grad = ng;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linalg::Matrix;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn linear_dataset(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..n {
            let a = rng.gen::<f64>() * 4.0 - 2.0;
            let b = rng.gen::<f64>() * 4.0 - 2.0;
            rows.push(vec![a, b]);
            labels.push((2.0 * a - b + 0.3 > 0.0) as u8);
        }
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        Dataset::new(Matrix::from_rows(&refs), labels, vec![0; n])
    }

    #[test]
    fn fits_linear_boundary() {
        let data = linear_dataset(500, 1);
        let lr = LogisticRegression::fit(&data, 1e-6, 200);
        let acc = (0..data.len())
            .filter(|&i| {
                let (x, y) = data.sample(i);
                lr.predict(x) == (y == 1)
            })
            .count() as f64
            / data.len() as f64;
        assert!(acc > 0.97, "accuracy {acc}");
        // Direction of weights should match the generator.
        assert!(lr.weights()[0] > 0.0);
        assert!(lr.weights()[1] < 0.0);
    }

    #[test]
    fn regularization_shrinks_weights() {
        let data = linear_dataset(300, 2);
        let loose = LogisticRegression::fit(&data, 1e-8, 200);
        let tight = LogisticRegression::fit(&data, 1.0, 200);
        let n_loose = crate::linalg::norm(loose.weights());
        let n_tight = crate::linalg::norm(tight.weights());
        assert!(n_tight < n_loose, "{n_tight} !< {n_loose}");
    }

    #[test]
    fn lbfgs_minimizes_quadratic() {
        // f(x) = (x0-3)^2 + 10 (x1+1)^2
        let mut x = vec![0.0, 0.0];
        lbfgs(
            &mut x,
            |x| {
                let f = (x[0] - 3.0).powi(2) + 10.0 * (x[1] + 1.0).powi(2);
                let g = vec![2.0 * (x[0] - 3.0), 20.0 * (x[1] + 1.0)];
                (f, g)
            },
            100,
            8,
        );
        assert!((x[0] - 3.0).abs() < 1e-5, "{x:?}");
        assert!((x[1] + 1.0).abs() < 1e-5, "{x:?}");
    }

    #[test]
    fn probabilities_calibrated_on_separable_data() {
        let data = linear_dataset(400, 3);
        let lr = LogisticRegression::fit(&data, 1e-4, 200);
        assert!(lr.predict_proba(&[2.0, -2.0]) > 0.9);
        assert!(lr.predict_proba(&[-2.0, 2.0]) < 0.1);
    }

    #[test]
    fn deterministic() {
        let data = linear_dataset(100, 4);
        let a = LogisticRegression::fit(&data, 1e-4, 50);
        let b = LogisticRegression::fit(&data, 1e-4, 50);
        assert_eq!(a, b);
    }
}
