//! The [`Classifier`] trait: one typed surface over every model class.
//!
//! Historically each model (`logistic`, `mlp`, `gbdt`, `forest`, `svm`,
//! `tree`) exposed its own inherent `predict`/`predict_proba` pair, and
//! every consumer — firmware packing, experiment tables, the serving
//! daemon — re-matched on the concrete type. `Classifier` collapses those
//! six duplicated APIs into a single object-safe trait so call sites can
//! hold a `&dyn Classifier` and stay agnostic of the model family.
//!
//! Implementations forward to the inherent methods verbatim, so
//! trait-object dispatch is bit-for-bit identical to direct calls (an
//! equivalence test in this module enforces that). Margin-based models
//! without a native probability ([`LinearSvm`], [`KernelSvm`]) squash
//! their decision value through the logistic sigmoid — the same mapping
//! `psca-uc` firmware uses for χ² SVM scores.

use crate::forest::RandomForest;
use crate::gbdt::Gbdt;
use crate::logistic::LogisticRegression;
use crate::mlp::Mlp;
use crate::svm::{KernelSvm, LinearSvm};
use crate::tree::DecisionTree;

/// A binary gating classifier: feature vector in, HighPerf-probability and
/// thresholded decision out.
///
/// Object-safe on purpose: the serving daemon, `zoo.rs`, and `table3.rs`
/// all dispatch through `&dyn Classifier`.
pub trait Classifier {
    /// Probability (or squashed score) in `[0, 1]` that the positive
    /// class — "next window wants HighPerf" — is correct for `x`.
    fn predict_proba(&self, x: &[f64]) -> f64;

    /// Thresholded class decision for `x`.
    ///
    /// Uses the model's own tuned threshold where it has one, matching
    /// the inherent `predict` exactly.
    fn predict(&self, x: &[f64]) -> bool;

    /// Expected input dimension, when the model records one.
    ///
    /// `None` means the model cannot state its dimension statically
    /// (e.g. [`Gbdt`], whose trees only store split indices); callers
    /// that need strict validation must supply the dimension out of band.
    fn n_features(&self) -> Option<usize>;
}

/// Logistic sigmoid used to map unbounded SVM margins into `[0, 1]`.
///
/// Matches the χ²-SVM score mapping in `psca-uc` firmware bit-for-bit.
fn sigmoid(margin: f64) -> f64 {
    1.0 / (1.0 + (-margin).exp())
}

impl Classifier for LogisticRegression {
    fn predict_proba(&self, x: &[f64]) -> f64 {
        LogisticRegression::predict_proba(self, x)
    }

    fn predict(&self, x: &[f64]) -> bool {
        LogisticRegression::predict(self, x)
    }

    fn n_features(&self) -> Option<usize> {
        Some(self.weights().len())
    }
}

impl Classifier for Mlp {
    fn predict_proba(&self, x: &[f64]) -> f64 {
        Mlp::predict_proba(self, x)
    }

    fn predict(&self, x: &[f64]) -> bool {
        Mlp::predict(self, x)
    }

    fn n_features(&self) -> Option<usize> {
        Some(self.layer_weights(0).0.cols())
    }
}

impl Classifier for Gbdt {
    fn predict_proba(&self, x: &[f64]) -> f64 {
        Gbdt::predict_proba(self, x)
    }

    fn predict(&self, x: &[f64]) -> bool {
        Gbdt::predict(self, x)
    }

    fn n_features(&self) -> Option<usize> {
        None
    }
}

impl Classifier for RandomForest {
    fn predict_proba(&self, x: &[f64]) -> f64 {
        RandomForest::predict_proba(self, x)
    }

    fn predict(&self, x: &[f64]) -> bool {
        RandomForest::predict(self, x)
    }

    fn n_features(&self) -> Option<usize> {
        self.trees().first().map(|t| t.num_features())
    }
}

impl Classifier for DecisionTree {
    fn predict_proba(&self, x: &[f64]) -> f64 {
        DecisionTree::predict_proba(self, x)
    }

    fn predict(&self, x: &[f64]) -> bool {
        DecisionTree::predict_proba(self, x) >= 0.5
    }

    fn n_features(&self) -> Option<usize> {
        Some(self.num_features())
    }
}

impl Classifier for LinearSvm {
    fn predict_proba(&self, x: &[f64]) -> f64 {
        sigmoid(self.decision(x))
    }

    fn predict(&self, x: &[f64]) -> bool {
        LinearSvm::predict(self, x)
    }

    fn n_features(&self) -> Option<usize> {
        Some(self.weights().len())
    }
}

impl Classifier for KernelSvm {
    fn predict_proba(&self, x: &[f64]) -> f64 {
        sigmoid(self.decision(x))
    }

    fn predict(&self, x: &[f64]) -> bool {
        KernelSvm::predict(self, x)
    }

    fn n_features(&self) -> Option<usize> {
        self.dim()
    }
}
