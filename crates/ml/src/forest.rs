//! Random forests: bagged CART trees with feature subsampling.
//!
//! The paper's best adaptation model is a random forest of 8 trees with
//! maximum depth 8 (§6.3), and its application-specific variant *combines*
//! a forest trained on high-diversity data with one trained on the target
//! application (§7.3) — supported here by [`RandomForest::combine`].

use crate::dataset::Dataset;
use crate::tree::DecisionTree;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random-forest hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RandomForestConfig {
    /// Number of trees in the ensemble.
    pub num_trees: usize,
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum samples per leaf.
    pub min_leaf: usize,
}

impl RandomForestConfig {
    /// The paper's Best RF: 8 trees of depth 8 (§6.3).
    pub fn best_rf() -> RandomForestConfig {
        RandomForestConfig {
            num_trees: 8,
            max_depth: 8,
            min_leaf: 2,
        }
    }
}

impl Default for RandomForestConfig {
    fn default() -> RandomForestConfig {
        RandomForestConfig::best_rf()
    }
}

/// A bagged ensemble of CART trees voting by averaged leaf probability.
///
/// # Examples
///
/// ```
/// use psca_ml::{Dataset, Matrix, RandomForest, RandomForestConfig};
///
/// let x = Matrix::from_rows(&[
///     &[0.00], &[0.05], &[0.10], &[0.15], &[0.20],
///     &[0.80], &[0.85], &[0.90], &[0.95], &[1.00],
/// ]);
/// let data = Dataset::new(x, vec![0, 0, 0, 0, 0, 1, 1, 1, 1, 1], vec![0; 10]);
/// let rf = RandomForest::fit(&RandomForestConfig::default(), &data, 1);
/// assert!(rf.predict_proba(&[0.95]) > 0.5);
/// ```
#[derive(Debug, Clone)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
    threshold: f64,
}

impl RandomForest {
    /// Trains a forest with bootstrap sampling and √d feature subsampling.
    ///
    /// # Panics
    /// Panics if the dataset is empty or `cfg.num_trees == 0`.
    pub fn fit(cfg: &RandomForestConfig, data: &Dataset, seed: u64) -> RandomForest {
        assert!(cfg.num_trees >= 1, "forest needs at least one tree");
        assert!(!data.is_empty(), "cannot train on an empty dataset");
        let _span = psca_obs::SpanTimer::start("ml.rf.fit");
        let mut rng = StdRng::seed_from_u64(seed);
        let max_features = Some(((data.dim() as f64).sqrt().ceil() as usize).max(1));
        let trees = (0..cfg.num_trees)
            .map(|_| {
                let idx: Vec<usize> = (0..data.len())
                    .map(|_| rng.gen_range(0..data.len()))
                    .collect();
                let boot = data.subset(&idx);
                DecisionTree::fit(&boot, cfg.max_depth, cfg.min_leaf, max_features, rng.gen())
            })
            .collect();
        RandomForest {
            trees,
            threshold: 0.5,
        }
    }

    /// Average leaf probability across the ensemble.
    ///
    /// # Panics
    /// Panics if `x` has wrong dimensionality.
    pub fn predict_proba(&self, x: &[f64]) -> f64 {
        self.trees.iter().map(|t| t.predict_proba(x)).sum::<f64>() / self.trees.len() as f64
    }

    /// Thresholded prediction.
    pub fn predict(&self, x: &[f64]) -> bool {
        self.predict_proba(x) >= self.threshold
    }

    /// The decision threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Adjusts the decision threshold (sensitivity tuning, §6.3).
    pub fn set_threshold(&mut self, t: f64) {
        self.threshold = t.clamp(0.0, 1.0);
    }

    /// The ensemble's trees.
    pub fn trees(&self) -> &[DecisionTree] {
        &self.trees
    }

    /// Reconstructs a forest from trees and a threshold — the
    /// firmware-image deserialization path.
    ///
    /// # Panics
    /// Panics if `trees` is empty.
    pub fn from_trees(trees: Vec<DecisionTree>, threshold: f64) -> RandomForest {
        assert!(!trees.is_empty(), "a forest needs at least one tree");
        RandomForest {
            trees,
            threshold: threshold.clamp(0.0, 1.0),
        }
    }

    /// Split-frequency feature importance: how often each feature is used
    /// as a split across the ensemble, normalized to sum to 1.
    ///
    /// The paper leans on interpretability when arguing for its training
    /// procedures (§1, §6); split counts show which counters a deployed
    /// forest actually consults.
    ///
    /// # Panics
    /// Panics if `num_features` is smaller than a feature index used by a
    /// tree.
    pub fn feature_importance(&self, num_features: usize) -> Vec<f64> {
        let mut counts = vec![0.0f64; num_features];
        for tree in &self.trees {
            for node in tree.nodes() {
                if let crate::tree::Node::Split { feature, .. } = node {
                    counts[*feature] += 1.0;
                }
            }
        }
        let total: f64 = counts.iter().sum();
        if total > 0.0 {
            for c in counts.iter_mut() {
                *c /= total;
            }
        }
        counts
    }

    /// Merges two forests into one ensemble (the paper's
    /// application-specific model combines a 4-tree HDTR forest with a
    /// 4-tree application forest into one 8-tree forest, §7.3).
    pub fn combine(&self, other: &RandomForest) -> RandomForest {
        let mut trees = self.trees.clone();
        trees.extend(other.trees.iter().cloned());
        RandomForest {
            trees,
            threshold: 0.5 * (self.threshold + other.threshold),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linalg::Matrix;

    fn noisy_dataset(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..n {
            let x0 = rng.gen::<f64>();
            let x1 = rng.gen::<f64>();
            let noise = rng.gen::<f64>();
            rows.push(vec![x0, x1, noise]);
            let y = (x0 + 0.5 * x1 > 0.8) as u8;
            labels.push(if rng.gen::<f64>() < 0.05 { 1 - y } else { y });
        }
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        Dataset::new(Matrix::from_rows(&refs), labels, vec![0; n])
    }

    #[test]
    fn forest_beats_chance_on_noisy_data() {
        let train = noisy_dataset(800, 1);
        let test = noisy_dataset(400, 2);
        let rf = RandomForest::fit(&RandomForestConfig::best_rf(), &train, 3);
        let acc = (0..test.len())
            .filter(|&i| {
                let (x, y) = test.sample(i);
                rf.predict(x) == (y == 1)
            })
            .count() as f64
            / test.len() as f64;
        assert!(acc > 0.85, "accuracy {acc}");
    }

    #[test]
    fn config_matches_paper_best() {
        let cfg = RandomForestConfig::best_rf();
        assert_eq!(cfg.num_trees, 8);
        assert_eq!(cfg.max_depth, 8);
    }

    #[test]
    fn deterministic_per_seed() {
        let data = noisy_dataset(200, 4);
        let a = RandomForest::fit(&RandomForestConfig::best_rf(), &data, 5);
        let b = RandomForest::fit(&RandomForestConfig::best_rf(), &data, 5);
        assert_eq!(
            a.predict_proba(&[0.4, 0.3, 0.9]),
            b.predict_proba(&[0.4, 0.3, 0.9])
        );
    }

    #[test]
    fn combine_concatenates_trees() {
        let data = noisy_dataset(200, 6);
        let a = RandomForest::fit(
            &RandomForestConfig {
                num_trees: 4,
                max_depth: 8,
                min_leaf: 2,
            },
            &data,
            1,
        );
        let b = RandomForest::fit(
            &RandomForestConfig {
                num_trees: 4,
                max_depth: 8,
                min_leaf: 2,
            },
            &data,
            2,
        );
        let c = a.combine(&b);
        assert_eq!(c.trees().len(), 8);
        let p = c.predict_proba(&[0.5, 0.5, 0.5]);
        let expect = 0.5 * (a.predict_proba(&[0.5, 0.5, 0.5]) + b.predict_proba(&[0.5, 0.5, 0.5]));
        assert!((p - expect).abs() < 1e-12);
    }

    #[test]
    fn feature_importance_finds_the_signal() {
        // Label depends only on feature 0; noise features 1 and 2 should
        // receive far less split mass.
        let train = noisy_dataset(600, 9);
        let rf = RandomForest::fit(&RandomForestConfig::best_rf(), &train, 10);
        let imp = rf.feature_importance(3);
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(
            imp[0] > imp[2],
            "signal feature {:?} should dominate noise",
            imp
        );
    }

    #[test]
    fn probabilities_bounded() {
        let data = noisy_dataset(100, 7);
        let rf = RandomForest::fit(&RandomForestConfig::best_rf(), &data, 8);
        for i in 0..data.len() {
            let p = rf.predict_proba(data.sample(i).0);
            assert!((0.0..=1.0).contains(&p));
        }
    }
}
