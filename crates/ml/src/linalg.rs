//! Dense row-major matrices and the handful of operations the library
//! needs (products, transpose, covariance).

use std::fmt;

/// A dense row-major `f64` matrix.
///
/// # Examples
///
/// ```
/// use psca_ml::Matrix;
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Matrix::identity(2);
/// let c = a.matmul(&b);
/// assert_eq!(c.get(1, 0), 3.0);
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the identity matrix of size `n`.
    pub fn identity(n: usize) -> Matrix {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    /// Panics if rows have differing lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Matrix {
        let r = rows.len();
        let c = rows.first().map_or(0, |x| x.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Builds a matrix from a flat row-major vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Matrix {
        assert_eq!(data.len(), rows * cols, "shape mismatch");
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    ///
    /// # Panics
    /// Panics on out-of-bounds access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c]
    }

    /// Element setter.
    ///
    /// # Panics
    /// Panics on out-of-bounds access.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c] = v;
    }

    /// Borrow of one row.
    ///
    /// # Panics
    /// Panics if `r >= rows()`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of one row.
    ///
    /// # Panics
    /// Panics if `r >= rows()`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(r < self.rows, "row out of bounds");
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self * other`.
    ///
    /// # Panics
    /// Panics if inner dimensions disagree.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "inner dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                let orow = other.row(k);
                let out_row = out.row_mut(i);
                for (j, &b) in orow.iter().enumerate() {
                    out_row[j] += a * b;
                }
            }
        }
        out
    }

    /// Matrix-vector product.
    ///
    /// # Panics
    /// Panics if `v.len() != cols()`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "dimension mismatch");
        (0..self.rows).map(|i| dot(self.row(i), v)).collect()
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.set(j, i, self.get(i, j));
            }
        }
        out
    }

    /// Covariance matrix of the columns (population normalization).
    ///
    /// Rows are observations, columns are variables; the result is
    /// `cols × cols`.
    pub fn column_covariance(&self) -> Matrix {
        let n = self.rows.max(1) as f64;
        let means: Vec<f64> = (0..self.cols)
            .map(|j| (0..self.rows).map(|i| self.get(i, j)).sum::<f64>() / n)
            .collect();
        let mut cov = Matrix::zeros(self.cols, self.cols);
        for i in 0..self.rows {
            let row = self.row(i);
            for a in 0..self.cols {
                let da = row[a] - means[a];
                if da == 0.0 {
                    continue;
                }
                let cov_row = cov.row_mut(a);
                for (b, &rb) in row.iter().enumerate() {
                    cov_row[b] += da * (rb - means[b]);
                }
            }
        }
        for v in cov.data.iter_mut() {
            *v /= n;
        }
        cov
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(8) {
            writeln!(f, "  {:?}", self.row(i))?;
        }
        if self.rows > 8 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

/// Inner product of two equal-length slices.
///
/// # Panics
/// Panics if lengths differ.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm of a slice.
#[inline]
pub fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let c = a.matmul(&Matrix::identity(3));
        assert_eq!(a, c);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.row(0), &[19.0, 22.0]);
        assert_eq!(c.row(1), &[43.0, 50.0]);
    }

    #[test]
    fn transpose_roundtrips() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.matvec(&[1.0, 1.0]), vec![3.0, 7.0]);
    }

    #[test]
    fn covariance_of_identical_columns_is_rank_one() {
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[2.0, 2.0], &[3.0, 3.0]]);
        let cov = a.column_covariance();
        let v = 2.0 / 3.0;
        for i in 0..2 {
            for j in 0..2 {
                assert!((cov.get(i, j) - v).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn covariance_of_independent_columns_is_diagonalish() {
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[-1.0, 0.0], &[0.0, 1.0], &[0.0, -1.0]]);
        let cov = a.column_covariance();
        assert!(cov.get(0, 1).abs() < 1e-12);
        assert!(cov.get(0, 0) > 0.0);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn matmul_rejects_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert!((norm(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
    }
}
