//! Multi-layer perceptrons with ReLU activations, trained by
//! backpropagation with the Adam optimizer (Kingma & Ba), as the paper's
//! MLP adaptation models are (§5, §7).

use crate::dataset::Dataset;
use crate::linalg::Matrix;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// MLP topology and training hyperparameters.
#[derive(Debug, Clone, PartialEq)]
pub struct MlpConfig {
    /// Hidden-layer widths ("filters per layer" in the paper's terms).
    pub hidden: Vec<usize>,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Training epochs.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// L2 weight decay.
    pub weight_decay: f64,
}

impl MlpConfig {
    /// The paper's Best MLP topology: 3 layers of 8/8/4 filters (§6.3).
    pub fn best_mlp() -> MlpConfig {
        MlpConfig {
            hidden: vec![8, 8, 4],
            ..MlpConfig::default()
        }
    }

    /// The CHARSTAR baseline topology: 1 layer of 10 filters (§7).
    pub fn charstar() -> MlpConfig {
        MlpConfig {
            hidden: vec![10],
            ..MlpConfig::default()
        }
    }
}

impl Default for MlpConfig {
    fn default() -> MlpConfig {
        MlpConfig {
            hidden: vec![8, 8, 4],
            learning_rate: 3e-3,
            epochs: 30,
            batch_size: 64,
            weight_decay: 1e-5,
        }
    }
}

#[derive(Debug, Clone)]
struct Layer {
    /// `out × in` weights.
    w: Matrix,
    b: Vec<f64>,
    // Adam state
    mw: Matrix,
    vw: Matrix,
    mb: Vec<f64>,
    vb: Vec<f64>,
}

impl Layer {
    fn new(input: usize, output: usize, rng: &mut StdRng) -> Layer {
        let scale = (2.0 / input as f64).sqrt();
        let mut w = Matrix::zeros(output, input);
        for r in 0..output {
            for c in 0..input {
                w.set(r, c, (rng.gen::<f64>() * 2.0 - 1.0) * scale);
            }
        }
        Layer {
            mw: Matrix::zeros(output, input),
            vw: Matrix::zeros(output, input),
            mb: vec![0.0; output],
            vb: vec![0.0; output],
            b: vec![0.0; output],
            w,
        }
    }
}

/// A binary-classification MLP (sigmoid output head).
///
/// # Examples
///
/// ```
/// use psca_ml::{Dataset, Matrix, Mlp, MlpConfig};
///
/// // Learn y = x0 > 0.
/// let rows: Vec<Vec<f64>> = (0..200).map(|i| vec![(i as f64 - 100.0) / 50.0]).collect();
/// let labels: Vec<u8> = rows.iter().map(|r| (r[0] > 0.0) as u8).collect();
/// let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
/// let data = Dataset::new(Matrix::from_rows(&refs), labels, vec![0; 200]);
/// let mlp = Mlp::fit(&MlpConfig::default(), &data, 2);
/// assert!(mlp.predict_proba(&[1.0]) > 0.5);
/// assert!(mlp.predict_proba(&[-1.0]) < 0.5);
/// ```
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Layer>,
    threshold: f64,
    adam_t: u64,
}

impl Mlp {
    /// Trains an MLP on the dataset.
    ///
    /// # Panics
    /// Panics if the dataset is empty.
    pub fn fit(cfg: &MlpConfig, data: &Dataset, seed: u64) -> Mlp {
        assert!(!data.is_empty(), "cannot train on an empty dataset");
        let _span = psca_obs::SpanTimer::start("ml.mlp.fit");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut dims = vec![data.dim()];
        dims.extend_from_slice(&cfg.hidden);
        dims.push(1);
        let layers = dims
            .windows(2)
            .map(|w| Layer::new(w[0], w[1], &mut rng))
            .collect();
        let mut mlp = Mlp {
            layers,
            threshold: 0.5,
            adam_t: 0,
        };
        let mut order: Vec<usize> = (0..data.len()).collect();
        for _ in 0..cfg.epochs {
            order.shuffle(&mut rng);
            for chunk in order.chunks(cfg.batch_size) {
                mlp.train_batch(cfg, data, chunk);
            }
        }
        mlp
    }

    /// Reconstructs an MLP from layer weights (rows = filters), biases,
    /// and a decision threshold — the firmware-image deserialization path.
    ///
    /// # Panics
    /// Panics if layer shapes do not chain (layer `i`'s filter count must
    /// equal layer `i+1`'s input width) or the output layer is not 1-wide.
    pub fn from_layers(layers: Vec<(Matrix, Vec<f64>)>, threshold: f64) -> Mlp {
        assert!(!layers.is_empty(), "an MLP needs at least one layer");
        for pair in layers.windows(2) {
            assert_eq!(
                pair[0].0.rows(),
                pair[1].0.cols(),
                "layer shapes do not chain"
            );
        }
        let last = layers.last().unwrap();
        assert_eq!(last.0.rows(), 1, "output layer must have one unit");
        let layers = layers
            .into_iter()
            .map(|(w, b)| {
                assert_eq!(w.rows(), b.len(), "bias arity mismatch");
                Layer {
                    mw: Matrix::zeros(w.rows(), w.cols()),
                    vw: Matrix::zeros(w.rows(), w.cols()),
                    mb: vec![0.0; b.len()],
                    vb: vec![0.0; b.len()],
                    b,
                    w,
                }
            })
            .collect();
        Mlp {
            layers,
            threshold: threshold.clamp(0.0, 1.0),
            adam_t: 0,
        }
    }

    /// Hidden+output layer count (the paper counts hidden layers).
    pub fn num_hidden_layers(&self) -> usize {
        self.layers.len().saturating_sub(1)
    }

    /// Total trainable parameters.
    pub fn num_parameters(&self) -> usize {
        self.layers
            .iter()
            .map(|l| l.w.rows() * l.w.cols() + l.b.len())
            .sum()
    }

    /// Weights of layer `i` (rows = filters).
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn layer_weights(&self, i: usize) -> (&Matrix, &[f64]) {
        (&self.layers[i].w, &self.layers[i].b)
    }

    /// Number of layers including the output head.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// The decision threshold applied by [`Mlp::predict`].
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Adjusts the decision threshold (the paper tunes "sensitivity" to
    /// keep tuning-set SLA violations below 1%, §6.3).
    pub fn set_threshold(&mut self, t: f64) {
        self.threshold = t.clamp(0.0, 1.0);
    }

    /// Probability that the positive (gate) class is correct.
    ///
    /// # Panics
    /// Panics if `x` has wrong dimensionality.
    pub fn predict_proba(&self, x: &[f64]) -> f64 {
        let (acts, _) = self.forward(x);
        sigmoid(acts.last().unwrap()[0])
    }

    /// Thresholded prediction.
    pub fn predict(&self, x: &[f64]) -> bool {
        self.predict_proba(x) >= self.threshold
    }

    /// Forward pass returning pre-activations (`z`) and activations.
    fn forward(&self, x: &[f64]) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
        let mut zs = Vec::with_capacity(self.layers.len());
        let mut activations = Vec::with_capacity(self.layers.len() + 1);
        activations.push(x.to_vec());
        let mut cur = x.to_vec();
        for (li, layer) in self.layers.iter().enumerate() {
            let mut z = layer.w.matvec(&cur);
            for (zi, bi) in z.iter_mut().zip(&layer.b) {
                *zi += bi;
            }
            let last = li == self.layers.len() - 1;
            let a: Vec<f64> = if last {
                z.clone() // linear head; sigmoid applied in the loss
            } else {
                z.iter().map(|&v| v.max(0.0)).collect()
            };
            zs.push(z);
            activations.push(a.clone());
            cur = a;
        }
        (zs, activations)
    }

    fn train_batch(&mut self, cfg: &MlpConfig, data: &Dataset, idx: &[usize]) {
        let nl = self.layers.len();
        let mut grads_w: Vec<Matrix> = self
            .layers
            .iter()
            .map(|l| Matrix::zeros(l.w.rows(), l.w.cols()))
            .collect();
        let mut grads_b: Vec<Vec<f64>> = self.layers.iter().map(|l| vec![0.0; l.b.len()]).collect();
        for &i in idx {
            let (x, y) = data.sample(i);
            let (zs, acts) = self.forward(x);
            // BCE with logits: dL/dz_out = sigmoid(z) - y.
            let mut delta = vec![sigmoid(zs[nl - 1][0]) - y as f64];
            for li in (0..nl).rev() {
                let input = &acts[li];
                for (r, &d) in delta.iter().enumerate() {
                    grads_b[li][r] += d;
                    let grow = grads_w[li].row_mut(r);
                    for (gc, &xin) in grow.iter_mut().zip(input) {
                        *gc += d * xin;
                    }
                }
                if li > 0 {
                    let mut next = vec![0.0; self.layers[li].w.cols()];
                    for (r, &d) in delta.iter().enumerate() {
                        let wrow = self.layers[li].w.row(r);
                        for (nv, &w) in next.iter_mut().zip(wrow) {
                            *nv += d * w;
                        }
                    }
                    // ReLU derivative of the previous layer.
                    for (nv, &z) in next.iter_mut().zip(&zs[li - 1]) {
                        if z <= 0.0 {
                            *nv = 0.0;
                        }
                    }
                    delta = next;
                }
            }
        }
        // Adam update.
        self.adam_t += 1;
        let t = self.adam_t as f64;
        let (b1, b2, eps): (f64, f64, f64) = (0.9, 0.999, 1e-8);
        let bc1 = 1.0 - b1.powf(t);
        let bc2 = 1.0 - b2.powf(t);
        let scale = 1.0 / idx.len() as f64;
        for (li, layer) in self.layers.iter_mut().enumerate() {
            for (r, &gb) in grads_b[li].iter().enumerate() {
                for c in 0..layer.w.cols() {
                    let g = grads_w[li].get(r, c) * scale + cfg.weight_decay * layer.w.get(r, c);
                    let m = b1 * layer.mw.get(r, c) + (1.0 - b1) * g;
                    let v = b2 * layer.vw.get(r, c) + (1.0 - b2) * g * g;
                    layer.mw.set(r, c, m);
                    layer.vw.set(r, c, v);
                    let step = cfg.learning_rate * (m / bc1) / ((v / bc2).sqrt() + eps);
                    layer.w.set(r, c, layer.w.get(r, c) - step);
                }
                let g = gb * scale;
                let m = b1 * layer.mb[r] + (1.0 - b1) * g;
                let v = b2 * layer.vb[r] + (1.0 - b2) * g * g;
                layer.mb[r] = m;
                layer.vb[r] = v;
                layer.b[r] -= cfg.learning_rate * (m / bc1) / ((v / bc2).sqrt() + eps);
            }
        }
    }
}

#[inline]
fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_dataset(n: usize) -> Dataset {
        let mut rng = StdRng::seed_from_u64(5);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..n {
            let a = rng.gen::<f64>() * 2.0 - 1.0;
            let b = rng.gen::<f64>() * 2.0 - 1.0;
            rows.push(vec![a, b]);
            labels.push(((a > 0.0) != (b > 0.0)) as u8);
        }
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        Dataset::new(Matrix::from_rows(&refs), labels, vec![0; n])
    }

    #[test]
    fn learns_xor_nonlinear_boundary() {
        let data = xor_dataset(600);
        let cfg = MlpConfig {
            hidden: vec![16, 8],
            epochs: 120,
            learning_rate: 5e-3,
            ..MlpConfig::default()
        };
        let mlp = Mlp::fit(&cfg, &data, 3);
        let acc = (0..data.len())
            .filter(|&i| {
                let (x, y) = data.sample(i);
                mlp.predict(x) == (y == 1)
            })
            .count() as f64
            / data.len() as f64;
        assert!(acc > 0.9, "XOR accuracy {acc}");
    }

    #[test]
    fn training_is_deterministic_per_seed() {
        let data = xor_dataset(100);
        let a = Mlp::fit(&MlpConfig::default(), &data, 7);
        let b = Mlp::fit(&MlpConfig::default(), &data, 7);
        assert_eq!(a.predict_proba(&[0.3, -0.4]), b.predict_proba(&[0.3, -0.4]));
        let c = Mlp::fit(&MlpConfig::default(), &data, 8);
        assert_ne!(a.predict_proba(&[0.3, -0.4]), c.predict_proba(&[0.3, -0.4]));
    }

    #[test]
    fn parameter_count_matches_topology() {
        let data = xor_dataset(10);
        let cfg = MlpConfig {
            hidden: vec![8, 8, 4],
            epochs: 1,
            ..MlpConfig::default()
        };
        let mlp = Mlp::fit(&cfg, &data, 1);
        // 2->8: 24, 8->8: 72, 8->4: 36, 4->1: 5
        assert_eq!(mlp.num_parameters(), 24 + 72 + 36 + 5);
        assert_eq!(mlp.num_layers(), 4);
        assert_eq!(mlp.num_hidden_layers(), 3);
    }

    #[test]
    fn threshold_moves_decision() {
        let data = xor_dataset(200);
        let mut mlp = Mlp::fit(&MlpConfig::default(), &data, 2);
        mlp.set_threshold(1.0);
        assert!(!mlp.predict(&[0.5, -0.5]));
        mlp.set_threshold(0.0);
        assert!(mlp.predict(&[0.5, -0.5]));
    }

    #[test]
    fn probabilities_are_valid() {
        let data = xor_dataset(50);
        let mlp = Mlp::fit(&MlpConfig::default(), &data, 2);
        for i in 0..data.len() {
            let p = mlp.predict_proba(data.sample(i).0);
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_dataset_rejected() {
        let d = Dataset::new(Matrix::zeros(0, 2), vec![], vec![]);
        let _ = Mlp::fit(&MlpConfig::default(), &d, 1);
    }
}
