//! Counter selection for telemetry information content (§6.2).
//!
//! Three stages, exactly as the paper describes:
//!
//! 1. **Low-activity screen** — drop counters that read zero for more than
//!    15% of a trace in more than 5% of traces;
//! 2. **Standard-deviation screen** — drop the bottom 50% of counters by
//!    standard deviation (lowest signal-to-noise);
//! 3. **PF Counter Selection** (Algorithm 1) — the Perona–Freeman spectral
//!    grouping adaptation: repeatedly eigendecompose the counter
//!    covariance, find the cluster of statistically-interchangeable
//!    counters expressed by similar large-magnitude coefficients of the
//!    *second* eigenvector, keep its representative, and remove the group.

use crate::eig::top_eigenpairs;
use crate::linalg::Matrix;

/// Result of the two heuristic screens: indices of surviving counters
/// (into the original stream space).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScreenResult {
    /// Surviving stream indices.
    pub kept: Vec<usize>,
    /// Streams dropped by the low-activity screen.
    pub dropped_low_activity: usize,
    /// Streams dropped by the standard-deviation screen.
    pub dropped_low_std: usize,
}

/// Applies the paper's low-activity screen across per-trace matrices.
///
/// `traces` holds one matrix per trace (rows = intervals, cols = streams).
/// A stream is flagged in a trace if it reads zero for more than
/// `zero_frac` (paper: 15%) of the trace, and dropped if flagged in more
/// than `flag_frac` (paper: 5%) of traces.
///
/// # Panics
/// Panics if `traces` is empty or stream counts differ.
pub fn low_activity_screen(traces: &[&Matrix], zero_frac: f64, flag_frac: f64) -> Vec<usize> {
    assert!(!traces.is_empty(), "need at least one trace");
    let cols = traces[0].cols();
    let mut flags = vec![0usize; cols];
    for m in traces {
        assert_eq!(m.cols(), cols, "stream count mismatch");
        for (c, flag) in flags.iter_mut().enumerate() {
            let zeros = (0..m.rows()).filter(|&r| m.get(r, c) == 0.0).count();
            if zeros as f64 > zero_frac * m.rows() as f64 {
                *flag += 1;
            }
        }
    }
    let limit = flag_frac * traces.len() as f64;
    (0..cols).filter(|&c| (flags[c] as f64) <= limit).collect()
}

/// Drops the bottom half of the given streams by standard deviation over
/// the pooled data.
///
/// # Panics
/// Panics if `kept` is empty.
pub fn std_screen(pooled: &Matrix, kept: &[usize]) -> Vec<usize> {
    assert!(!kept.is_empty(), "no streams to screen");
    let n = pooled.rows().max(1) as f64;
    let mut stds: Vec<(f64, usize)> = kept
        .iter()
        .map(|&c| {
            let mean = (0..pooled.rows()).map(|r| pooled.get(r, c)).sum::<f64>() / n;
            let var = (0..pooled.rows())
                .map(|r| {
                    let d = pooled.get(r, c) - mean;
                    d * d
                })
                .sum::<f64>()
                / n;
            (var.sqrt(), c)
        })
        .collect();
    stds.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
    let keep = kept.len().div_ceil(2);
    let mut out: Vec<usize> = stds[..keep].iter().map(|&(_, c)| c).collect();
    out.sort_unstable();
    out
}

/// Runs both screens with the paper's thresholds (15% / 5%, bottom 50%).
pub fn paper_screens(traces: &[&Matrix], pooled: &Matrix) -> ScreenResult {
    let after_low = low_activity_screen(traces, 0.15, 0.05);
    let dropped_low_activity = pooled.cols() - after_low.len();
    let kept = std_screen(pooled, &after_low);
    let dropped_low_std = after_low.len() - kept.len();
    ScreenResult {
        kept,
        dropped_low_activity,
        dropped_low_std,
    }
}

/// PF Counter Selection (Algorithm 1): picks `r` representatives of the
/// spectral clusters of the counter covariance.
///
/// `data` has rows = intervals, columns = the screened counters (the
/// caller projects with the screen result first). `tau` is the similarity
/// threshold on second-eigenvector coefficient ratios (the paper's `τ_s`).
/// Returns indices *into `data`'s columns* in selection order.
///
/// Counters are standardized internally so selection reflects correlation
/// structure rather than raw scale.
///
/// # Panics
/// Panics if `r == 0`, `r > data.cols()`, or `tau` is not in `(0, 1]`.
pub fn pf_counter_selection(data: &Matrix, r: usize, tau: f64) -> Vec<usize> {
    assert!(r >= 1, "must select at least one counter");
    assert!(r <= data.cols(), "cannot select more counters than exist");
    assert!(tau > 0.0 && tau <= 1.0, "tau must be in (0, 1]");
    // Standardize columns.
    let n = data.rows().max(1) as f64;
    let mut std_data = data.clone();
    for c in 0..std_data.cols() {
        let mean = (0..std_data.rows())
            .map(|r| std_data.get(r, c))
            .sum::<f64>()
            / n;
        let var = (0..std_data.rows())
            .map(|r| {
                let d = std_data.get(r, c) - mean;
                d * d
            })
            .sum::<f64>()
            / n;
        let s = var.sqrt().max(1e-12);
        for row in 0..std_data.rows() {
            let v = (std_data.get(row, c) - mean) / s;
            std_data.set(row, c, v);
        }
    }
    let mut active: Vec<usize> = (0..data.cols()).collect();
    let mut selected = Vec::with_capacity(r);
    while selected.len() < r && !active.is_empty() {
        if active.len() == 1 {
            selected.push(active[0]);
            break;
        }
        // Covariance of the active columns.
        let mut sub = Matrix::zeros(std_data.rows(), active.len());
        for row in 0..std_data.rows() {
            for (j, &c) in active.iter().enumerate() {
                sub.set(row, j, std_data.get(row, c));
            }
        }
        let cov = sub.column_covariance();
        let (_, vecs) = top_eigenpairs(&cov, 2, 300);
        let e2 = vecs.row(1);
        // Representative: the largest |coefficient| of the 2nd eigenvector.
        let (rep_j, rep_v) = e2
            .iter()
            .enumerate()
            .max_by(|a, b| {
                a.1.abs()
                    .partial_cmp(&b.1.abs())
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|(j, v)| (j, v.abs()))
            .unwrap();
        selected.push(active[rep_j]);
        // Remove the whole similar-coefficient group (including rep).
        let group: Vec<usize> = e2
            .iter()
            .enumerate()
            .filter(|(_, v)| rep_v > 0.0 && v.abs() / rep_v > tau)
            .map(|(j, _)| j)
            .collect();
        let group_set: std::collections::HashSet<usize> = group.into_iter().collect();
        active = active
            .iter()
            .enumerate()
            .filter(|(j, _)| !group_set.contains(j) && *j != rep_j)
            .map(|(_, &c)| c)
            .collect();
    }
    // If grouping removed everything before reaching r, top up arbitrarily
    // from unselected columns (rare for reasonable tau).
    let chosen: std::collections::HashSet<usize> = selected.iter().copied().collect();
    let mut extras = (0..data.cols()).filter(|c| !chosen.contains(c));
    while selected.len() < r {
        match extras.next() {
            Some(c) => selected.push(c),
            None => break,
        }
    }
    selected
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Builds data with three latent factors expressed by redundant groups
    /// of columns: cols 0–2 follow factor A, 3–5 factor B, 6 factor C.
    fn redundant_data(n: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut m = Matrix::zeros(n, 7);
        for r in 0..n {
            let a = rng.gen::<f64>() * 2.0 - 1.0;
            let b = rng.gen::<f64>() * 2.0 - 1.0;
            let c = rng.gen::<f64>() * 2.0 - 1.0;
            let eps = |rng: &mut StdRng| (rng.gen::<f64>() - 0.5) * 0.05;
            m.set(r, 0, a + eps(&mut rng));
            m.set(r, 1, 2.0 * a + eps(&mut rng));
            m.set(r, 2, -a + eps(&mut rng));
            m.set(r, 3, b + eps(&mut rng));
            m.set(r, 4, 0.5 * b + eps(&mut rng));
            m.set(r, 5, b + eps(&mut rng));
            m.set(r, 6, c + eps(&mut rng));
        }
        m
    }

    #[test]
    fn pf_selects_one_counter_per_latent_factor() {
        let data = redundant_data(400, 1);
        let picked = pf_counter_selection(&data, 3, 0.6);
        assert_eq!(picked.len(), 3);
        let factor = |c: usize| match c {
            0..=2 => 'A',
            3..=5 => 'B',
            _ => 'C',
        };
        let factors: std::collections::HashSet<char> = picked.iter().map(|&c| factor(c)).collect();
        assert_eq!(factors.len(), 3, "picked {picked:?} — redundant selection");
    }

    #[test]
    fn pf_is_deterministic() {
        let data = redundant_data(200, 2);
        assert_eq!(
            pf_counter_selection(&data, 3, 0.6),
            pf_counter_selection(&data, 3, 0.6)
        );
    }

    #[test]
    fn low_activity_screen_drops_mostly_zero_streams() {
        // Stream 1 is zero 50% of the time in every trace.
        let mut t1 = Matrix::zeros(20, 2);
        let mut t2 = Matrix::zeros(20, 2);
        for r in 0..20 {
            t1.set(r, 0, 1.0 + r as f64);
            t2.set(r, 0, 2.0 + r as f64);
            if r % 2 == 0 {
                t1.set(r, 1, 1.0);
                t2.set(r, 1, 1.0);
            }
        }
        let kept = low_activity_screen(&[&t1, &t2], 0.15, 0.05);
        assert_eq!(kept, vec![0]);
    }

    #[test]
    fn std_screen_keeps_high_variance_half() {
        let mut m = Matrix::zeros(50, 4);
        for r in 0..50 {
            m.set(r, 0, r as f64); // huge std
            m.set(r, 1, (r % 2) as f64); // small std
            m.set(r, 2, r as f64 * 0.5); // large std
            m.set(r, 3, 0.001 * (r % 3) as f64); // tiny std
        }
        let kept = std_screen(&m, &[0, 1, 2, 3]);
        assert_eq!(kept, vec![0, 2]);
    }

    #[test]
    fn paper_screens_compose() {
        let data = redundant_data(100, 3);
        let res = paper_screens(&[&data], &data);
        assert!(!res.kept.is_empty());
        assert_eq!(
            res.kept.len() + res.dropped_low_activity + res.dropped_low_std,
            7
        );
    }

    #[test]
    #[should_panic(expected = "more counters than exist")]
    fn pf_rejects_r_too_large() {
        let data = redundant_data(50, 4);
        let _ = pf_counter_selection(&data, 8, 0.6);
    }
}
