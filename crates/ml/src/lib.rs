//! # psca-ml
//!
//! A from-scratch machine-learning library implementing every model class
//! and training procedure the paper uses — with no external ML dependency,
//! so the entire adaptation pipeline is a single Rust workspace:
//!
//! - [`Mlp`] — multi-layer perceptrons with ReLU activations trained by
//!   backpropagation with the Adam optimizer (§5, §6.3);
//! - [`DecisionTree`] / [`RandomForest`] — CART trees grown by entropy
//!   minimization, bagged into forests (§5, Best RF);
//! - [`LogisticRegression`] — fit with L-BFGS (§7, SRCH baseline);
//! - [`LinearSvm`] / [`KernelSvm`] — Pegasos linear SVMs and budgeted
//!   χ²-kernel SVMs (§5, Table 3);
//! - [`spectral`] — the Perona–Freeman spectral counter-selection
//!   algorithm (Algorithm 1, §6.2) plus the low-activity and
//!   standard-deviation screens;
//! - [`Dataset`], [`crossval`], [`metrics`] — group-aware k-fold cross
//!   validation (all telemetry from one application lands on one side of
//!   the split, §4.3) and the paper's prediction metrics;
//! - [`histogram`] — counter-histogram featurization for the SRCH
//!   baseline (Dubach et al.);
//! - [`linalg`] / [`eig`] — the dense matrix and symmetric-eigensolver
//!   substrate everything above is built on;
//! - [`Classifier`] — the object-safe trait unifying every model family
//!   behind one `predict` / `predict_proba` / `n_features` surface.

#![warn(missing_docs)]

pub mod classifier;
pub mod crossval;
pub mod eig;
pub mod gbdt;
pub mod histogram;
pub mod kmeans;
pub mod linalg;
pub mod metrics;
pub mod ridge;
pub mod spectral;

mod dataset;
mod forest;
mod logistic;
mod mlp;
mod svm;
mod tree;

pub use classifier::Classifier;
pub use dataset::{Dataset, Standardizer};
pub use forest::{RandomForest, RandomForestConfig};
pub use linalg::Matrix;
pub use logistic::LogisticRegression;
pub use mlp::{Mlp, MlpConfig};
pub use ridge::Ridge;
pub use svm::{KernelSvm, LinearSvm};
pub use tree::{DecisionTree, Node};
