//! Labeled datasets with application-group bookkeeping.

use crate::linalg::Matrix;

/// A binary-labeled dataset with per-sample group ids.
///
/// Groups identify the *application* each interval came from; the paper's
/// cross-validation assigns whole applications to one side of each split
/// so common code sections never leak across (§4.3).
#[derive(Debug, Clone)]
pub struct Dataset {
    features: Matrix,
    labels: Vec<u8>,
    groups: Vec<u32>,
}

impl Dataset {
    /// Creates a dataset.
    ///
    /// # Panics
    /// Panics if lengths disagree or labels are not 0/1.
    pub fn new(features: Matrix, labels: Vec<u8>, groups: Vec<u32>) -> Dataset {
        assert_eq!(features.rows(), labels.len(), "labels length mismatch");
        assert_eq!(features.rows(), groups.len(), "groups length mismatch");
        assert!(labels.iter().all(|&y| y <= 1), "labels must be 0/1");
        Dataset {
            features,
            labels,
            groups,
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset has no samples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.features.cols()
    }

    /// The feature matrix.
    pub fn features(&self) -> &Matrix {
        &self.features
    }

    /// The labels.
    pub fn labels(&self) -> &[u8] {
        &self.labels
    }

    /// The group (application) ids.
    pub fn groups(&self) -> &[u32] {
        &self.groups
    }

    /// Feature row of sample `i`.
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    pub fn sample(&self, i: usize) -> (&[f64], u8) {
        (self.features.row(i), self.labels[i])
    }

    /// Fraction of positive labels.
    pub fn positive_rate(&self) -> f64 {
        if self.labels.is_empty() {
            return 0.0;
        }
        self.labels.iter().map(|&y| y as u32).sum::<u32>() as f64 / self.labels.len() as f64
    }

    /// A new dataset containing the given sample indices, in order.
    ///
    /// # Panics
    /// Panics if any index is out of bounds.
    pub fn subset(&self, idx: &[usize]) -> Dataset {
        let mut m = Matrix::zeros(idx.len(), self.dim());
        let mut labels = Vec::with_capacity(idx.len());
        let mut groups = Vec::with_capacity(idx.len());
        for (r, &i) in idx.iter().enumerate() {
            m.row_mut(r).copy_from_slice(self.features.row(i));
            labels.push(self.labels[i]);
            groups.push(self.groups[i]);
        }
        Dataset::new(m, labels, groups)
    }

    /// A new dataset keeping only the given feature columns.
    pub fn select_features(&self, cols: &[usize]) -> Dataset {
        let mut m = Matrix::zeros(self.len(), cols.len());
        for r in 0..self.len() {
            let row = self.features.row(r);
            for (j, &c) in cols.iter().enumerate() {
                m.set(r, j, row[c]);
            }
        }
        Dataset::new(m, self.labels.clone(), self.groups.clone())
    }

    /// Distinct group ids in first-appearance order.
    pub fn distinct_groups(&self) -> Vec<u32> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for &g in &self.groups {
            if seen.insert(g) {
                out.push(g);
            }
        }
        out
    }

    /// Concatenates datasets with identical dimensionality.
    ///
    /// # Panics
    /// Panics if `parts` is empty or dims differ.
    pub fn concat(parts: &[&Dataset]) -> Dataset {
        assert!(!parts.is_empty(), "cannot concat zero datasets");
        let dim = parts[0].dim();
        let total: usize = parts.iter().map(|d| d.len()).sum();
        let mut m = Matrix::zeros(total, dim);
        let mut labels = Vec::with_capacity(total);
        let mut groups = Vec::with_capacity(total);
        let mut r = 0;
        for d in parts {
            assert_eq!(d.dim(), dim, "dimension mismatch");
            for i in 0..d.len() {
                m.row_mut(r).copy_from_slice(d.features.row(i));
                r += 1;
            }
            labels.extend_from_slice(&d.labels);
            groups.extend_from_slice(&d.groups);
        }
        Dataset::new(m, labels, groups)
    }
}

/// Per-feature standardization (zero mean, unit variance) fitted on a
/// training set and applied to any sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Standardizer {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl Standardizer {
    /// Fits to a dataset's features.
    pub fn fit(data: &Dataset) -> Standardizer {
        let n = data.len().max(1) as f64;
        let d = data.dim();
        let mut means = vec![0.0; d];
        for i in 0..data.len() {
            for (m, v) in means.iter_mut().zip(data.features().row(i)) {
                *m += v;
            }
        }
        for m in means.iter_mut() {
            *m /= n;
        }
        let mut stds = vec![0.0; d];
        for i in 0..data.len() {
            for (s, (v, m)) in stds
                .iter_mut()
                .zip(data.features().row(i).iter().zip(&means))
            {
                let dvi = v - m;
                *s += dvi * dvi;
            }
        }
        for s in stds.iter_mut() {
            *s = (*s / n).sqrt();
            if *s < 1e-12 {
                *s = 1.0; // constant feature: leave centered at zero
            }
        }
        Standardizer { means, stds }
    }

    /// Transforms one sample in place.
    ///
    /// # Panics
    /// Panics if dimensionality differs from the fitted data.
    pub fn transform(&self, x: &mut [f64]) {
        assert_eq!(x.len(), self.means.len(), "dimension mismatch");
        for ((v, m), s) in x.iter_mut().zip(&self.means).zip(&self.stds) {
            *v = (*v - m) / s;
        }
    }

    /// Returns a transformed copy of a dataset.
    pub fn transform_dataset(&self, data: &Dataset) -> Dataset {
        let mut m = data.features().clone();
        for r in 0..m.rows() {
            self.transform(m.row_mut(r));
        }
        Dataset::new(m, data.labels().to_vec(), data.groups().to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        let m = Matrix::from_rows(&[&[1.0, 10.0], &[2.0, 20.0], &[3.0, 30.0], &[4.0, 40.0]]);
        Dataset::new(m, vec![0, 1, 0, 1], vec![0, 0, 1, 1])
    }

    #[test]
    fn accessors() {
        let d = toy();
        assert_eq!(d.len(), 4);
        assert_eq!(d.dim(), 2);
        assert_eq!(d.positive_rate(), 0.5);
        assert_eq!(d.distinct_groups(), vec![0, 1]);
        assert_eq!(d.sample(2), (&[3.0, 30.0][..], 0));
    }

    #[test]
    fn subset_selects_rows() {
        let d = toy().subset(&[3, 0]);
        assert_eq!(d.len(), 2);
        assert_eq!(d.sample(0).0, &[4.0, 40.0]);
        assert_eq!(d.labels(), &[1, 0]);
        assert_eq!(d.groups(), &[1, 0]);
    }

    #[test]
    fn select_features_projects_columns() {
        let d = toy().select_features(&[1]);
        assert_eq!(d.dim(), 1);
        assert_eq!(d.sample(1).0, &[20.0]);
    }

    #[test]
    fn concat_stacks() {
        let a = toy();
        let b = toy();
        let c = Dataset::concat(&[&a, &b]);
        assert_eq!(c.len(), 8);
        assert_eq!(c.sample(4).0, &[1.0, 10.0]);
    }

    #[test]
    fn standardizer_zero_mean_unit_std() {
        let d = toy();
        let s = Standardizer::fit(&d);
        let t = s.transform_dataset(&d);
        for j in 0..2 {
            let mean: f64 = (0..4).map(|i| t.features().get(i, j)).sum::<f64>() / 4.0;
            let var: f64 = (0..4).map(|i| t.features().get(i, j).powi(2)).sum::<f64>() / 4.0;
            assert!(mean.abs() < 1e-12);
            assert!((var - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn standardizer_constant_feature_is_safe() {
        let m = Matrix::from_rows(&[&[5.0], &[5.0]]);
        let d = Dataset::new(m, vec![0, 1], vec![0, 1]);
        let s = Standardizer::fit(&d);
        let t = s.transform_dataset(&d);
        assert_eq!(t.features().get(0, 0), 0.0);
    }

    #[test]
    #[should_panic(expected = "labels must be 0/1")]
    fn rejects_bad_labels() {
        let m = Matrix::zeros(1, 1);
        let _ = Dataset::new(m, vec![2], vec![0]);
    }
}
