//! Symmetric eigendecomposition.
//!
//! Two solvers: a cyclic Jacobi rotation method (full spectrum, exact, for
//! small-to-medium matrices) and deflated power iteration (leading `k`
//! eigenpairs, used by PF counter selection where only the second
//! eigenvector of a 308×308 covariance matrix is needed per round).

use crate::linalg::{dot, norm, Matrix};

/// Full eigendecomposition of a symmetric matrix by cyclic Jacobi.
///
/// Returns `(eigenvalues, eigenvectors)` sorted by descending eigenvalue;
/// eigenvectors are the *rows* of the returned matrix.
///
/// # Panics
/// Panics if `a` is not square.
pub fn jacobi_eigen(a: &Matrix, max_sweeps: usize, tol: f64) -> (Vec<f64>, Matrix) {
    assert_eq!(a.rows(), a.cols(), "matrix must be square");
    let n = a.rows();
    let mut m = a.clone();
    let mut v = Matrix::identity(n);
    for _ in 0..max_sweeps {
        let mut off = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                off += m.get(i, j) * m.get(i, j);
            }
        }
        if off.sqrt() < tol {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m.get(p, q);
                if apq.abs() < 1e-300 {
                    continue;
                }
                let app = m.get(p, p);
                let aqq = m.get(q, q);
                let theta = 0.5 * (aqq - app) / apq;
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Update m = J^T m J for rotation J in plane (p, q).
                for k in 0..n {
                    let mkp = m.get(k, p);
                    let mkq = m.get(k, q);
                    m.set(k, p, c * mkp - s * mkq);
                    m.set(k, q, s * mkp + c * mkq);
                }
                for k in 0..n {
                    let mpk = m.get(p, k);
                    let mqk = m.get(q, k);
                    m.set(p, k, c * mpk - s * mqk);
                    m.set(q, k, s * mpk + c * mqk);
                }
                for k in 0..n {
                    let vkp = v.get(k, p);
                    let vkq = v.get(k, q);
                    v.set(k, p, c * vkp - s * vkq);
                    v.set(k, q, s * vkp + c * vkq);
                }
            }
        }
    }
    let mut pairs: Vec<(f64, usize)> = (0..n).map(|i| (m.get(i, i), i)).collect();
    pairs.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
    let values: Vec<f64> = pairs.iter().map(|(e, _)| *e).collect();
    let mut vectors = Matrix::zeros(n, n);
    for (row, (_, col)) in pairs.iter().enumerate() {
        for k in 0..n {
            vectors.set(row, k, v.get(k, *col));
        }
    }
    (values, vectors)
}

/// Leading `k` eigenpairs of a symmetric positive-semidefinite matrix via
/// power iteration with deflation.
///
/// Returns `(eigenvalues, eigenvectors)` with eigenvectors as rows, sorted
/// by descending eigenvalue. Deterministic (fixed starting vectors).
///
/// # Panics
/// Panics if `a` is not square or `k > n`.
pub fn top_eigenpairs(a: &Matrix, k: usize, iters: usize) -> (Vec<f64>, Matrix) {
    assert_eq!(a.rows(), a.cols(), "matrix must be square");
    let n = a.rows();
    assert!(k <= n, "cannot extract more eigenpairs than the dimension");
    let mut values = Vec::with_capacity(k);
    let mut vectors = Matrix::zeros(k, n);
    for e in 0..k {
        // Deterministic start: varying dense vector to avoid orthogonal
        // degenerate starts.
        let mut x: Vec<f64> = (0..n)
            .map(|i| 1.0 + ((i * 37 + e * 101) % 97) as f64 / 97.0)
            .collect();
        orthogonalize(&mut x, &vectors, e);
        normalize(&mut x);
        let mut lambda = 0.0;
        for _ in 0..iters {
            let mut y = a.matvec(&x);
            orthogonalize(&mut y, &vectors, e);
            let ny = norm(&y);
            if ny < 1e-12 {
                // Null space reached: eigenvalue 0, keep a valid vector.
                lambda = 0.0;
                break;
            }
            for v in y.iter_mut() {
                *v /= ny;
            }
            lambda = dot(&y, &a.matvec(&y));
            x = y;
        }
        values.push(lambda);
        vectors.row_mut(e).copy_from_slice(&x);
    }
    (values, vectors)
}

fn orthogonalize(x: &mut [f64], basis: &Matrix, count: usize) {
    for b in 0..count {
        let row = basis.row(b);
        let proj = dot(x, row);
        for (xi, bi) in x.iter_mut().zip(row) {
            *xi -= proj * bi;
        }
    }
}

fn normalize(x: &mut [f64]) {
    let n = norm(x);
    if n > 1e-300 {
        for v in x.iter_mut() {
            *v /= n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(rows: &[&[f64]]) -> Matrix {
        Matrix::from_rows(rows)
    }

    #[test]
    fn jacobi_diagonal_matrix() {
        let a = sym(&[&[3.0, 0.0], &[0.0, 1.0]]);
        let (vals, vecs) = jacobi_eigen(&a, 50, 1e-12);
        assert!((vals[0] - 3.0).abs() < 1e-9);
        assert!((vals[1] - 1.0).abs() < 1e-9);
        assert!(vecs.get(0, 0).abs() > 0.99);
    }

    #[test]
    fn jacobi_known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let a = sym(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let (vals, vecs) = jacobi_eigen(&a, 50, 1e-12);
        assert!((vals[0] - 3.0).abs() < 1e-9);
        assert!((vals[1] - 1.0).abs() < 1e-9);
        // eigenvector of 3 is (1,1)/sqrt(2)
        let v0 = vecs.row(0);
        assert!((v0[0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-6);
    }

    #[test]
    fn jacobi_reconstructs_matrix() {
        let a = sym(&[&[4.0, 1.0, 0.5], &[1.0, 3.0, 0.2], &[0.5, 0.2, 1.0]]);
        let (vals, vecs) = jacobi_eigen(&a, 100, 1e-14);
        // A = V^T diag(vals) V with eigenvectors as rows of V.
        let mut recon = Matrix::zeros(3, 3);
        for i in 0..3 {
            for j in 0..3 {
                let mut s = 0.0;
                for (e, &val) in vals.iter().enumerate() {
                    s += val * vecs.get(e, i) * vecs.get(e, j);
                }
                recon.set(i, j, s);
            }
        }
        for i in 0..3 {
            for j in 0..3 {
                assert!((recon.get(i, j) - a.get(i, j)).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn power_iteration_matches_jacobi() {
        let a = sym(&[&[4.0, 1.0, 0.5], &[1.0, 3.0, 0.2], &[0.5, 0.2, 1.0]]);
        let (jv, _) = jacobi_eigen(&a, 100, 1e-14);
        let (pv, pvec) = top_eigenpairs(&a, 2, 500);
        assert!((jv[0] - pv[0]).abs() < 1e-6, "{jv:?} vs {pv:?}");
        assert!((jv[1] - pv[1]).abs() < 1e-6);
        // Eigenvectors orthonormal.
        assert!(dot(pvec.row(0), pvec.row(1)).abs() < 1e-6);
        assert!((norm(pvec.row(0)) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn power_iteration_handles_rank_deficiency() {
        // Rank-1 matrix: second eigenvalue ~0.
        let a = sym(&[&[1.0, 1.0], &[1.0, 1.0]]);
        let (vals, _) = top_eigenpairs(&a, 2, 300);
        assert!((vals[0] - 2.0).abs() < 1e-6);
        assert!(vals[1].abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn jacobi_rejects_non_square() {
        let _ = jacobi_eigen(&Matrix::zeros(2, 3), 10, 1e-9);
    }
}
