//! Gradient-boosted decision trees (extension beyond the paper's §5 zoo).
//!
//! The paper argues a *variety* of ML model classes fit the firmware
//! budget; boosted depth-limited trees are the natural next candidate
//! after random forests — same branch-free traversal kernel (Listing 2),
//! different ensemble semantics (additive stage-wise fit of the logistic
//! loss instead of bagging).

use crate::dataset::Dataset;
use crate::linalg::Matrix;

/// One node of a regression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum RegNode {
    /// `feature < threshold` goes left.
    Split {
        /// Feature compared.
        feature: usize,
        /// Split threshold.
        threshold: f64,
        /// Left child index.
        left: usize,
        /// Right child index.
        right: usize,
    },
    /// Leaf carrying an additive logit contribution.
    Leaf {
        /// Stage value added to the ensemble logit.
        value: f64,
    },
}

/// A depth-limited regression tree fit to gradient residuals.
#[derive(Debug, Clone, PartialEq)]
pub struct RegressionTree {
    nodes: Vec<RegNode>,
    max_depth: usize,
}

impl RegressionTree {
    fn fit(
        x: &Matrix,
        targets: &[f64],
        idx: &[usize],
        max_depth: usize,
        min_leaf: usize,
    ) -> RegressionTree {
        let mut tree = RegressionTree {
            nodes: Vec::new(),
            max_depth,
        };
        tree.grow(x, targets, idx.to_vec(), 0, min_leaf);
        tree
    }

    fn grow(
        &mut self,
        x: &Matrix,
        t: &[f64],
        idx: Vec<usize>,
        depth: usize,
        min_leaf: usize,
    ) -> usize {
        let mean = idx.iter().map(|&i| t[i]).sum::<f64>() / idx.len().max(1) as f64;
        if depth >= self.max_depth || idx.len() < 2 * min_leaf {
            self.nodes.push(RegNode::Leaf { value: mean });
            return self.nodes.len() - 1;
        }
        let mut best: Option<(f64, usize, f64)> = None; // (sse gain, feature, threshold)
        let parent_sse: f64 = idx.iter().map(|&i| (t[i] - mean) * (t[i] - mean)).sum();
        let mut sorted: Vec<(f64, f64)> = Vec::with_capacity(idx.len());
        for f in 0..x.cols() {
            sorted.clear();
            sorted.extend(idx.iter().map(|&i| (x.get(i, f), t[i])));
            sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
            let total: f64 = sorted.iter().map(|(_, v)| v).sum();
            let mut left_sum = 0.0;
            let mut left_sq = 0.0;
            let total_sq: f64 = sorted.iter().map(|(_, v)| v * v).sum();
            for w in 0..sorted.len() - 1 {
                left_sum += sorted[w].1;
                left_sq += sorted[w].1 * sorted[w].1;
                if sorted[w].0 == sorted[w + 1].0 {
                    continue;
                }
                let nl = (w + 1) as f64;
                let nr = (sorted.len() - w - 1) as f64;
                if (nl as usize) < min_leaf || (nr as usize) < min_leaf {
                    continue;
                }
                let right_sum = total - left_sum;
                let right_sq = total_sq - left_sq;
                let sse =
                    (left_sq - left_sum * left_sum / nl) + (right_sq - right_sum * right_sum / nr);
                let gain = parent_sse - sse;
                if gain > 1e-12 && best.is_none_or(|(g, _, _)| gain > g) {
                    best = Some((gain, f, 0.5 * (sorted[w].0 + sorted[w + 1].0)));
                }
            }
        }
        let Some((_, feature, threshold)) = best else {
            self.nodes.push(RegNode::Leaf { value: mean });
            return self.nodes.len() - 1;
        };
        let (li, ri): (Vec<usize>, Vec<usize>) = idx
            .into_iter()
            .partition(|&i| x.get(i, feature) < threshold);
        let at = self.nodes.len();
        self.nodes.push(RegNode::Leaf { value: mean });
        let left = self.grow(x, t, li, depth + 1, min_leaf);
        let right = self.grow(x, t, ri, depth + 1, min_leaf);
        self.nodes[at] = RegNode::Split {
            feature,
            threshold,
            left,
            right,
        };
        at
    }

    /// Additive logit contribution for a sample.
    pub fn value(&self, x: &[f64]) -> f64 {
        let mut at = 0;
        loop {
            match self.nodes[at] {
                RegNode::Leaf { value } => return value,
                RegNode::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => at = if x[feature] < threshold { left } else { right },
            }
        }
    }

    /// Configured depth bound.
    pub fn max_depth(&self) -> usize {
        self.max_depth
    }

    /// Node storage (for firmware footprint accounting).
    pub fn nodes(&self) -> &[RegNode] {
        &self.nodes
    }
}

/// GBDT hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GbdtConfig {
    /// Boosting stages.
    pub num_trees: usize,
    /// Depth of each stage tree.
    pub max_depth: usize,
    /// Shrinkage (learning rate).
    pub learning_rate: f64,
    /// Minimum samples per leaf.
    pub min_leaf: usize,
}

impl Default for GbdtConfig {
    fn default() -> GbdtConfig {
        GbdtConfig {
            num_trees: 8,
            max_depth: 4,
            learning_rate: 0.3,
            min_leaf: 2,
        }
    }
}

/// A gradient-boosted tree classifier (logistic loss).
///
/// # Examples
///
/// ```
/// use psca_ml::gbdt::{Gbdt, GbdtConfig};
/// use psca_ml::{Dataset, Matrix};
///
/// let x = Matrix::from_rows(&[&[0.0], &[0.2], &[0.8], &[1.0]]);
/// let data = Dataset::new(x, vec![0, 0, 1, 1], vec![0; 4]);
/// let model = Gbdt::fit(&GbdtConfig::default(), &data);
/// assert!(model.predict_proba(&[0.9]) > 0.5);
/// assert!(model.predict_proba(&[0.1]) < 0.5);
/// ```
#[derive(Debug, Clone)]
pub struct Gbdt {
    trees: Vec<RegressionTree>,
    base_logit: f64,
    learning_rate: f64,
    threshold: f64,
}

impl Gbdt {
    /// Fits by stage-wise gradient descent on the logistic loss.
    ///
    /// # Panics
    /// Panics if the dataset is empty or `cfg.num_trees == 0`.
    pub fn fit(cfg: &GbdtConfig, data: &Dataset) -> Gbdt {
        assert!(!data.is_empty(), "cannot fit on an empty dataset");
        assert!(cfg.num_trees >= 1, "need at least one stage");
        let n = data.len();
        let pos = data.positive_rate().clamp(1e-6, 1.0 - 1e-6);
        let base_logit = (pos / (1.0 - pos)).ln();
        let mut logits = vec![base_logit; n];
        let mut trees = Vec::with_capacity(cfg.num_trees);
        let idx: Vec<usize> = (0..n).collect();
        for _ in 0..cfg.num_trees {
            // Negative gradient of the logistic loss: y − σ(logit).
            let residuals: Vec<f64> = (0..n)
                .map(|i| data.labels()[i] as f64 - sigmoid(logits[i]))
                .collect();
            let tree = RegressionTree::fit(
                data.features(),
                &residuals,
                &idx,
                cfg.max_depth,
                cfg.min_leaf,
            );
            for (i, logit) in logits.iter_mut().enumerate() {
                *logit += cfg.learning_rate * tree.value(data.features().row(i));
            }
            trees.push(tree);
        }
        Gbdt {
            trees,
            base_logit,
            learning_rate: cfg.learning_rate,
            threshold: 0.5,
        }
    }

    /// P(y = 1 | x).
    pub fn predict_proba(&self, x: &[f64]) -> f64 {
        let logit = self.base_logit
            + self.learning_rate * self.trees.iter().map(|t| t.value(x)).sum::<f64>();
        sigmoid(logit)
    }

    /// Thresholded prediction.
    pub fn predict(&self, x: &[f64]) -> bool {
        self.predict_proba(x) >= self.threshold
    }

    /// Decision threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Adjusts the decision threshold (sensitivity tuning).
    pub fn set_threshold(&mut self, t: f64) {
        self.threshold = t.clamp(0.0, 1.0);
    }

    /// The boosting stages.
    pub fn trees(&self) -> &[RegressionTree] {
        &self.trees
    }
}

fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn xor_data(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..n {
            let a = rng.gen::<f64>() * 2.0 - 1.0;
            let b = rng.gen::<f64>() * 2.0 - 1.0;
            rows.push(vec![a, b]);
            labels.push(((a > 0.0) != (b > 0.0)) as u8);
        }
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        Dataset::new(Matrix::from_rows(&refs), labels, vec![0; n])
    }

    #[test]
    fn learns_nonlinear_xor() {
        let data = xor_data(500, 1);
        let cfg = GbdtConfig {
            num_trees: 30,
            max_depth: 3,
            learning_rate: 0.4,
            min_leaf: 2,
        };
        let model = Gbdt::fit(&cfg, &data);
        let acc = (0..data.len())
            .filter(|&i| {
                let (x, y) = data.sample(i);
                model.predict(x) == (y == 1)
            })
            .count() as f64
            / data.len() as f64;
        assert!(acc > 0.93, "XOR accuracy {acc}");
    }

    #[test]
    fn more_stages_reduce_training_loss() {
        let data = xor_data(300, 2);
        let loss = |model: &Gbdt| -> f64 {
            (0..data.len())
                .map(|i| {
                    let (x, y) = data.sample(i);
                    let p = model.predict_proba(x).clamp(1e-9, 1.0 - 1e-9);
                    if y == 1 {
                        -p.ln()
                    } else {
                        -(1.0 - p).ln()
                    }
                })
                .sum::<f64>()
                / data.len() as f64
        };
        let small = Gbdt::fit(
            &GbdtConfig {
                num_trees: 2,
                ..GbdtConfig::default()
            },
            &data,
        );
        let large = Gbdt::fit(
            &GbdtConfig {
                num_trees: 20,
                ..GbdtConfig::default()
            },
            &data,
        );
        assert!(loss(&large) < loss(&small));
    }

    #[test]
    fn stage_trees_respect_depth() {
        let data = xor_data(200, 3);
        let model = Gbdt::fit(&GbdtConfig::default(), &data);
        for t in model.trees() {
            fn depth(nodes: &[RegNode], at: usize) -> usize {
                match nodes[at] {
                    RegNode::Leaf { .. } => 0,
                    RegNode::Split { left, right, .. } => {
                        1 + depth(nodes, left).max(depth(nodes, right))
                    }
                }
            }
            assert!(depth(t.nodes(), 0) <= t.max_depth());
        }
    }

    #[test]
    fn probabilities_bounded_and_deterministic() {
        let data = xor_data(100, 4);
        let a = Gbdt::fit(&GbdtConfig::default(), &data);
        let b = Gbdt::fit(&GbdtConfig::default(), &data);
        for i in 0..data.len() {
            let p = a.predict_proba(data.sample(i).0);
            assert!((0.0..=1.0).contains(&p));
            assert_eq!(p, b.predict_proba(data.sample(i).0));
        }
    }

    #[test]
    fn base_rate_is_the_empty_model() {
        let data = xor_data(100, 5);
        let model = Gbdt::fit(
            &GbdtConfig {
                num_trees: 1,
                max_depth: 1,
                learning_rate: 0.0,
                min_leaf: 1,
            },
            &data,
        );
        let p = model.predict_proba(&[0.0, 0.0]);
        assert!((p - data.positive_rate()).abs() < 1e-9);
    }
}
