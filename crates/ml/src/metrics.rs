//! Prediction metrics in the paper's formulation (§4.2).
//!
//! The positive class (`y = 1`) means "the low-power mode meets the SLA —
//! gate Cluster 2". Consequently:
//!
//! - a **true positive** is a seized gating opportunity;
//! - a **false positive** risks an SLA violation;
//! - a **false negative** is a missed gating opportunity;
//! - **PGOS** (percentage of gating opportunities seized, Eq. 1) is the
//!   recall of the positive class;
//! - **RSV** (rate of SLA violations, Eqs. 2–4) is the fraction of
//!   `W`-prediction windows whose expected false-positive indicator
//!   exceeds 0.5.

/// Confusion counts under the paper's class orientation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Confusion {
    /// Correct low-power predictions.
    pub tp: u64,
    /// Incorrect low-power predictions (risking SLA violations).
    pub fp: u64,
    /// Correct high-performance predictions.
    pub tn: u64,
    /// Missed gating opportunities.
    pub fn_: u64,
}

impl Confusion {
    /// Tallies predictions against ground truth.
    ///
    /// # Panics
    /// Panics if lengths differ.
    pub fn from_predictions(truth: &[u8], pred: &[u8]) -> Confusion {
        assert_eq!(truth.len(), pred.len(), "length mismatch");
        let mut c = Confusion::default();
        for (&y, &p) in truth.iter().zip(pred) {
            match (y, p) {
                (1, 1) => c.tp += 1,
                (0, 1) => c.fp += 1,
                (0, 0) => c.tn += 1,
                (1, 0) => c.fn_ += 1,
                _ => panic!("labels must be 0/1"),
            }
        }
        c
    }

    /// Total predictions tallied.
    pub fn total(&self) -> u64 {
        self.tp + self.fp + self.tn + self.fn_
    }

    /// Overall accuracy.
    pub fn accuracy(&self) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        (self.tp + self.tn) as f64 / self.total() as f64
    }

    /// PGOS (Eq. 1): recall of gating opportunities.
    pub fn pgos(&self) -> f64 {
        let denom = self.tp + self.fn_;
        if denom == 0 {
            return 0.0;
        }
        self.tp as f64 / denom as f64
    }

    /// Precision of gating decisions.
    pub fn precision(&self) -> f64 {
        let denom = self.tp + self.fp;
        if denom == 0 {
            return 0.0;
        }
        self.tp as f64 / denom as f64
    }

    /// False-positive rate (fraction of high-performance intervals that
    /// were wrongly gated).
    pub fn false_positive_rate(&self) -> f64 {
        let denom = self.fp + self.tn;
        if denom == 0 {
            return 0.0;
        }
        self.fp as f64 / denom as f64
    }
}

/// RSV (Eqs. 2–4): splits the prediction sequence into consecutive
/// windows of `w` predictions; a window "violates" when the mean
/// false-positive indicator over it exceeds 0.5. Returns the fraction of
/// violating windows.
///
/// Windows shorter than `w` at the end of the trace are evaluated over the
/// samples they contain ("we compute RSV across the complete set of
/// samples spanning a trace", §4.2).
///
/// # Panics
/// Panics if `w == 0` or lengths differ.
pub fn rate_of_sla_violations(truth: &[u8], pred: &[u8], w: usize) -> f64 {
    assert!(w >= 1, "window must be positive");
    assert_eq!(truth.len(), pred.len(), "length mismatch");
    if truth.is_empty() {
        return 0.0;
    }
    let mut violations = 0usize;
    let mut windows = 0usize;
    let mut i = 0;
    while i < truth.len() {
        let end = (i + w).min(truth.len());
        let mut fp = 0usize;
        for k in i..end {
            if pred[k] == 1 && truth[k] == 0 {
                fp += 1;
            }
        }
        let expectation = fp as f64 / (end - i) as f64;
        if expectation > 0.5 {
            violations += 1;
        }
        windows += 1;
        i = end;
    }
    violations as f64 / windows as f64
}

/// Area under the ROC curve for scores against binary truth — summarizes
/// a model's full sensitivity/threshold trade-off (§6.3 adjusts decision
/// thresholds, so threshold-free comparison matters during screening).
///
/// Computed via the Mann–Whitney statistic with tie correction. Returns
/// 0.5 when either class is absent.
///
/// # Panics
/// Panics if lengths differ.
pub fn roc_auc(truth: &[u8], scores: &[f64]) -> f64 {
    assert_eq!(truth.len(), scores.len(), "length mismatch");
    let pos = truth.iter().filter(|&&y| y == 1).count();
    let neg = truth.len() - pos;
    if pos == 0 || neg == 0 {
        return 0.5;
    }
    // Rank the scores (average ranks for ties).
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| {
        scores[a]
            .partial_cmp(&scores[b])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut ranks = vec![0.0f64; scores.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && scores[idx[j + 1]] == scores[idx[i]] {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            ranks[k] = avg_rank;
        }
        i = j + 1;
    }
    let rank_sum_pos: f64 = truth
        .iter()
        .zip(&ranks)
        .filter(|(&y, _)| y == 1)
        .map(|(_, &r)| r)
        .sum();
    let u = rank_sum_pos - pos as f64 * (pos as f64 + 1.0) / 2.0;
    u / (pos as f64 * neg as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auc_perfect_separation_is_one() {
        let truth = [0, 0, 1, 1];
        let scores = [0.1, 0.2, 0.8, 0.9];
        assert!((roc_auc(&truth, &scores) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn auc_inverted_separation_is_zero() {
        let truth = [1, 1, 0, 0];
        let scores = [0.1, 0.2, 0.8, 0.9];
        assert!(roc_auc(&truth, &scores).abs() < 1e-12);
    }

    #[test]
    fn auc_random_scores_near_half() {
        let truth: Vec<u8> = (0..1000).map(|i| (i % 2) as u8).collect();
        let scores: Vec<f64> = (0..1000)
            .map(|i| ((i * 2654435761u64) % 1000) as f64 / 1000.0)
            .collect();
        let auc = roc_auc(&truth, &scores);
        assert!((auc - 0.5).abs() < 0.06, "auc {auc}");
    }

    #[test]
    fn auc_handles_ties_and_degenerate_classes() {
        let truth = [0, 1, 0, 1];
        let scores = [0.5, 0.5, 0.5, 0.5];
        assert!((roc_auc(&truth, &scores) - 0.5).abs() < 1e-12);
        assert_eq!(roc_auc(&[1, 1], &[0.2, 0.9]), 0.5);
    }

    #[test]
    fn confusion_counts_each_cell() {
        let truth = [1, 1, 0, 0, 1, 0];
        let pred = [1, 0, 1, 0, 1, 0];
        let c = Confusion::from_predictions(&truth, &pred);
        assert_eq!(c.tp, 2);
        assert_eq!(c.fn_, 1);
        assert_eq!(c.fp, 1);
        assert_eq!(c.tn, 2);
        assert!((c.accuracy() - 4.0 / 6.0).abs() < 1e-12);
        assert!((c.pgos() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.false_positive_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn pgos_is_recall_of_positive_class() {
        let truth = [1, 1, 1, 1, 0];
        let pred = [1, 1, 0, 0, 0];
        let c = Confusion::from_predictions(&truth, &pred);
        assert!((c.pgos() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn rsv_zero_for_perfect_predictions() {
        let truth = [0, 1, 0, 1, 0, 1, 0, 1];
        assert_eq!(rate_of_sla_violations(&truth, &truth, 4), 0.0);
    }

    #[test]
    fn rsv_detects_systematic_false_positives() {
        // All intervals are truly high-performance but always gated.
        let truth = vec![0u8; 32];
        let pred = vec![1u8; 32];
        assert_eq!(rate_of_sla_violations(&truth, &pred, 8), 1.0);
    }

    #[test]
    fn rsv_ignores_spurious_mistakes() {
        // One false positive per 8-wide window: expectation 0.125 < 0.5.
        let truth = vec![0u8; 32];
        let mut pred = vec![0u8; 32];
        for i in (0..32).step_by(8) {
            pred[i] = 1;
        }
        assert_eq!(rate_of_sla_violations(&truth, &pred, 8), 0.0);
    }

    #[test]
    fn rsv_false_negatives_never_violate() {
        // Missing opportunities hurts PGOS, not RSV.
        let truth = vec![1u8; 16];
        let pred = vec![0u8; 16];
        assert_eq!(rate_of_sla_violations(&truth, &pred, 4), 0.0);
    }

    #[test]
    fn rsv_handles_trailing_partial_window() {
        let truth = [0, 0, 0, 0, 0];
        let pred = [0, 0, 0, 1, 1];
        // Windows of 4: first clean, second (1 sample short... 1 element)
        // -> [0..4) has 1 fp -> 0.25; [4..5) has 1 fp of 1 -> 1.0 > 0.5.
        assert_eq!(rate_of_sla_violations(&truth, &pred, 4), 0.5);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn rsv_rejects_zero_window() {
        let _ = rate_of_sla_violations(&[0], &[0], 0);
    }
}
