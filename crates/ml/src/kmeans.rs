//! k-means clustering (Lloyd's algorithm with k-means++ seeding).
//!
//! Used by the SimPoint methodology (`psca-workloads::simpoints`): program
//! intervals are clustered by basic-block vector, and one representative
//! per cluster is simulated in detail — exactly how the paper's
//! 200M-instruction SimPoints are chosen.

use crate::linalg::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Result of a k-means run.
#[derive(Debug, Clone)]
pub struct KMeans {
    /// Cluster centroids (rows).
    pub centroids: Matrix,
    /// Cluster assignment per input row.
    pub assignment: Vec<usize>,
    /// Final within-cluster sum of squared distances.
    pub inertia: f64,
    /// Number of samples per cluster.
    pub sizes: Vec<usize>,
}

impl KMeans {
    /// Index of the sample closest to each centroid — the "representative"
    /// of each cluster (SimPoint selection uses exactly this).
    pub fn representatives(&self, data: &Matrix) -> Vec<usize> {
        let k = self.centroids.rows();
        let mut best: Vec<(f64, usize)> = vec![(f64::INFINITY, usize::MAX); k];
        for r in 0..data.rows() {
            let c = self.assignment[r];
            let d = dist2(data.row(r), self.centroids.row(c));
            if d < best[c].0 {
                best[c] = (d, r);
            }
        }
        best.into_iter()
            .filter(|(_, r)| *r != usize::MAX)
            .map(|(_, r)| r)
            .collect()
    }
}

#[inline]
fn dist2(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Runs k-means with k-means++ seeding.
///
/// `k` is clamped to the number of rows. Runs at most `max_iters` Lloyd
/// iterations or until assignments stabilize.
///
/// # Panics
/// Panics if `data` has no rows or `k == 0`.
pub fn kmeans(data: &Matrix, k: usize, max_iters: usize, seed: u64) -> KMeans {
    assert!(data.rows() > 0, "cannot cluster zero samples");
    assert!(k >= 1, "need at least one cluster");
    let k = k.min(data.rows());
    let mut rng = StdRng::seed_from_u64(seed);
    let d = data.cols();

    // k-means++ seeding.
    let mut centroids = Matrix::zeros(k, d);
    let first = rng.gen_range(0..data.rows());
    centroids.row_mut(0).copy_from_slice(data.row(first));
    let mut min_d2: Vec<f64> = (0..data.rows())
        .map(|r| dist2(data.row(r), centroids.row(0)))
        .collect();
    for c in 1..k {
        let total: f64 = min_d2.iter().sum();
        let pick = if total <= 0.0 {
            rng.gen_range(0..data.rows())
        } else {
            let mut u = rng.gen::<f64>() * total;
            let mut chosen = data.rows() - 1;
            for (r, &w) in min_d2.iter().enumerate() {
                if u < w {
                    chosen = r;
                    break;
                }
                u -= w;
            }
            chosen
        };
        centroids.row_mut(c).copy_from_slice(data.row(pick));
        for (r, slot) in min_d2.iter_mut().enumerate() {
            let nd = dist2(data.row(r), centroids.row(c));
            if nd < *slot {
                *slot = nd;
            }
        }
    }

    // Lloyd iterations.
    let mut assignment = vec![0usize; data.rows()];
    for _ in 0..max_iters {
        let mut changed = false;
        for (r, slot) in assignment.iter_mut().enumerate() {
            let mut best = (f64::INFINITY, 0usize);
            for c in 0..k {
                let dd = dist2(data.row(r), centroids.row(c));
                if dd < best.0 {
                    best = (dd, c);
                }
            }
            if *slot != best.1 {
                *slot = best.1;
                changed = true;
            }
        }
        if !changed {
            break;
        }
        let mut sums = Matrix::zeros(k, d);
        let mut counts = vec![0usize; k];
        for (r, &c) in assignment.iter().enumerate() {
            counts[c] += 1;
            let row = data.row(r);
            for (s, &v) in sums.row_mut(c).iter_mut().zip(row) {
                *s += v;
            }
        }
        for (c, &count) in counts.iter().enumerate() {
            if count == 0 {
                // Re-seed an empty cluster at the farthest point.
                let far = (0..data.rows())
                    .max_by(|&a, &b| {
                        let da = dist2(data.row(a), centroids.row(assignment[a]));
                        let db = dist2(data.row(b), centroids.row(assignment[b]));
                        da.partial_cmp(&db).unwrap_or(std::cmp::Ordering::Equal)
                    })
                    .unwrap();
                centroids.row_mut(c).copy_from_slice(data.row(far));
            } else {
                for (cv, &s) in centroids.row_mut(c).iter_mut().zip(sums.row(c)) {
                    *cv = s / count as f64;
                }
            }
        }
    }
    let mut sizes = vec![0usize; k];
    let mut inertia = 0.0;
    for r in 0..data.rows() {
        sizes[assignment[r]] += 1;
        inertia += dist2(data.row(r), centroids.row(assignment[r]));
    }
    KMeans {
        centroids,
        assignment,
        inertia,
        sizes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> Matrix {
        let mut rows = Vec::new();
        for i in 0..30 {
            let j = i as f64 * 0.01;
            rows.push(vec![0.0 + j, 0.0 + j]);
            rows.push(vec![10.0 + j, 10.0 + j]);
            rows.push(vec![0.0 + j, 10.0 - j]);
        }
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        Matrix::from_rows(&refs)
    }

    #[test]
    fn recovers_well_separated_blobs() {
        let data = blobs();
        let km = kmeans(&data, 3, 100, 1);
        assert_eq!(km.sizes.iter().sum::<usize>(), 90);
        // Every cluster holds exactly one blob (30 points).
        let mut sizes = km.sizes.clone();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![30, 30, 30]);
        // Points of the same blob share a cluster.
        for i in 0..30 {
            assert_eq!(km.assignment[3 * i], km.assignment[0]);
            assert_eq!(km.assignment[3 * i + 1], km.assignment[1]);
        }
    }

    #[test]
    fn representatives_are_members_of_their_cluster() {
        let data = blobs();
        let km = kmeans(&data, 3, 100, 2);
        let reps = km.representatives(&data);
        assert_eq!(reps.len(), 3);
        for (c, &r) in reps.iter().enumerate() {
            assert_eq!(km.assignment[r], c);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let data = blobs();
        let a = kmeans(&data, 3, 100, 7);
        let b = kmeans(&data, 3, 100, 7);
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.inertia, b.inertia);
    }

    #[test]
    fn more_clusters_never_increase_inertia() {
        let data = blobs();
        let i2 = kmeans(&data, 2, 100, 3).inertia;
        let i3 = kmeans(&data, 3, 100, 3).inertia;
        let i6 = kmeans(&data, 6, 100, 3).inertia;
        assert!(i3 <= i2 + 1e-9);
        assert!(i6 <= i3 + 1e-9);
    }

    #[test]
    fn k_clamped_to_samples() {
        let data = Matrix::from_rows(&[&[1.0], &[2.0]]);
        let km = kmeans(&data, 10, 50, 1);
        assert_eq!(km.centroids.rows(), 2);
    }

    #[test]
    #[should_panic(expected = "zero samples")]
    fn empty_data_rejected() {
        let _ = kmeans(&Matrix::zeros(0, 2), 2, 10, 1);
    }
}
