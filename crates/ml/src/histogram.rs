//! Counter-histogram featurization for the SRCH baseline (§7).
//!
//! Dubach et al.'s method "encodes counter data as a histogram over a
//! window of time": each counter's per-interval samples are bucketed into
//! 10 bins, tallies accumulate over the window, and the normalized
//! histogram becomes the model's input feature vector.

/// Per-counter histogram featurizer with bucket ranges fitted on training
/// data.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramFeaturizer {
    /// Per-counter `(min, max)` ranges.
    ranges: Vec<(f64, f64)>,
    buckets: usize,
}

impl HistogramFeaturizer {
    /// Fits bucket ranges to per-interval counter rows.
    ///
    /// # Panics
    /// Panics if `rows` is empty or `buckets == 0`.
    pub fn fit(rows: &[&[f64]], buckets: usize) -> HistogramFeaturizer {
        assert!(!rows.is_empty(), "no rows to fit");
        assert!(buckets >= 1, "need at least one bucket");
        let dim = rows[0].len();
        let mut ranges = vec![(f64::INFINITY, f64::NEG_INFINITY); dim];
        for row in rows {
            assert_eq!(row.len(), dim, "ragged rows");
            for (r, &v) in ranges.iter_mut().zip(*row) {
                r.0 = r.0.min(v);
                r.1 = r.1.max(v);
            }
        }
        for r in ranges.iter_mut() {
            if r.1 - r.0 < 1e-12 {
                r.1 = r.0 + 1.0;
            }
        }
        HistogramFeaturizer { ranges, buckets }
    }

    /// Number of counters.
    pub fn num_counters(&self) -> usize {
        self.ranges.len()
    }

    /// Output feature dimensionality (`counters × buckets`).
    pub fn feature_dim(&self) -> usize {
        self.ranges.len() * self.buckets
    }

    /// Bucket index of a value for counter `c`.
    fn bucket(&self, c: usize, v: f64) -> usize {
        let (lo, hi) = self.ranges[c];
        let t = ((v - lo) / (hi - lo)).clamp(0.0, 1.0);
        ((t * self.buckets as f64) as usize).min(self.buckets - 1)
    }

    /// Featurizes a window of per-interval counter rows into one
    /// normalized histogram vector.
    ///
    /// # Panics
    /// Panics if the window is empty or rows have wrong arity.
    pub fn featurize(&self, window: &[&[f64]]) -> Vec<f64> {
        assert!(!window.is_empty(), "empty window");
        let mut out = vec![0.0; self.feature_dim()];
        for row in window {
            assert_eq!(row.len(), self.ranges.len(), "arity mismatch");
            for (c, &v) in row.iter().enumerate() {
                out[c * self.buckets + self.bucket(c, v)] += 1.0;
            }
        }
        let n = window.len() as f64;
        for v in out.iter_mut() {
            *v /= n;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_cover_range() {
        let rows: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64]).collect();
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let h = HistogramFeaturizer::fit(&refs, 10);
        assert_eq!(h.feature_dim(), 10);
        let f = h.featurize(&refs);
        // Uniform data → each bucket gets ~10%.
        for &v in &f {
            assert!((v - 0.1).abs() < 0.02, "bucket {v}");
        }
        let total: f64 = f.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn out_of_range_values_clamp() {
        let rows = [vec![0.0], vec![1.0]];
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let h = HistogramFeaturizer::fit(&refs, 4);
        let window = [vec![-100.0], vec![100.0]];
        let wrefs: Vec<&[f64]> = window.iter().map(|r| r.as_slice()).collect();
        let f = h.featurize(&wrefs);
        assert!((f[0] - 0.5).abs() < 1e-9);
        assert!((f[3] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn constant_counter_is_safe() {
        let rows = [vec![7.0], vec![7.0]];
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let h = HistogramFeaturizer::fit(&refs, 5);
        let f = h.featurize(&refs);
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn multi_counter_layout() {
        let rows = [vec![0.0, 10.0], vec![1.0, 20.0]];
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let h = HistogramFeaturizer::fit(&refs, 2);
        assert_eq!(h.num_counters(), 2);
        assert_eq!(h.feature_dim(), 4);
        let f = h.featurize(&refs[..1]);
        // First counter value 0.0 → bucket 0; second counter 10.0 → bucket 0.
        assert_eq!(f, vec![1.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "empty window")]
    fn empty_window_rejected() {
        let rows = [vec![0.0]];
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let h = HistogramFeaturizer::fit(&refs, 2);
        let _ = h.featurize(&[]);
    }
}
