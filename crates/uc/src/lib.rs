//! # psca-uc
//!
//! The microcontroller substrate: ML inference in firmware (§5).
//!
//! The paper deploys adaptation models on an *existing* on-die
//! microcontroller (500 MHz, 1-wide, integer + scalar FP, no SIMD) of
//! which 50% of cycles are safely available. Because the CPU runs at
//! 16,000 MIPS, the µC gets `L / 32` operations per `L`-instruction
//! prediction interval, half of which (`L / 64`) may be spent on
//! inference — Table 3's budget panel.
//!
//! This crate provides:
//!
//! - [`McuSpec`] / [`ops_budget`] — the budget arithmetic of Table 3;
//! - [`OpCounter`] — explicit load/arithmetic/compare accounting mirroring
//!   the paper's hand-optimized firmware listings (Listings 1 & 2);
//! - [`FirmwareModel`] — op-counted, branch-free-style inference for every
//!   model class (MLP, random forest with trees padded to constant depth,
//!   logistic regression, linear-SVM ensembles, χ²-kernel SVMs), producing
//!   bit-identical decisions to the `psca-ml` models they wrap;
//! - memory-footprint accounting per model class.

#![warn(missing_docs)]

mod budget;
mod firmware;
pub mod image;
mod opcount;

pub use budget::{finest_granularity, ops_budget, BudgetRow, CpuSpec, McuSpec};
pub use firmware::{FirmwareError, FirmwareModel};
pub use opcount::OpCounter;
