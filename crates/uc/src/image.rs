//! Firmware images: the byte format pushed to CPUs in the field.
//!
//! The paper's post-silicon story (§3.2) hinges on adaptation models being
//! plain firmware: a data-center operator installs a new model through
//! existing infrastructure-management software, and the CPU's power and
//! performance character changes. This module is that artifact — a
//! self-describing little-endian binary encoding of a trained
//! [`FirmwareModel`], with bit-exact round-tripping.
//!
//! Layout: magic `PSCA`, format version, model tag, decision threshold,
//! then a per-class payload (layer shapes + weights for MLPs, node arrays
//! for forests, coefficients for logistic regression). Version 2 appends
//! a little-endian CRC-32 of everything before it, so bit flips in
//! transit are detected before the payload is even parsed; version-1
//! images (no checksum) remain readable. Decoding also runs
//! [`FirmwareModel::validate`], rejecting images whose weights are NaN
//! or infinite — the "validated firmware images" rung of the robustness
//! story (docs/ROBUSTNESS.md).

use crate::firmware::{FirmwareError, FirmwareModel};
use psca_ml::{DecisionTree, LogisticRegression, Matrix, Mlp, Node, RandomForest};
use std::fmt;

/// Errors raised while encoding or decoding a firmware image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ImageError {
    /// The model class cannot be deployed as firmware (χ²-kernel SVMs
    /// exceed every µC budget; Table 3).
    Unsupported(&'static str),
    /// The byte stream is not a firmware image.
    BadMagic,
    /// The format version is unknown.
    BadVersion(u8),
    /// The byte stream ended prematurely or a field is out of range.
    Corrupt(&'static str),
    /// The CRC-32 trailer does not match the image contents.
    ChecksumMismatch,
    /// The payload parsed but the model failed weight-sanity validation.
    InvalidModel(FirmwareError),
}

impl fmt::Display for ImageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImageError::Unsupported(what) => {
                write!(f, "model class not deployable as firmware: {what}")
            }
            ImageError::BadMagic => f.write_str("not a PSCA firmware image"),
            ImageError::BadVersion(v) => write!(f, "unsupported image version {v}"),
            ImageError::Corrupt(what) => write!(f, "corrupt firmware image: {what}"),
            ImageError::ChecksumMismatch => f.write_str("firmware image checksum mismatch"),
            ImageError::InvalidModel(e) => write!(f, "firmware image failed validation: {e}"),
        }
    }
}

impl std::error::Error for ImageError {}

const MAGIC: &[u8; 4] = b"PSCA";
/// Current format version: payload followed by a CRC-32 trailer.
const VERSION: u8 = 2;
/// Legacy version without a checksum trailer; still decodable.
const VERSION_NO_CRC: u8 = 1;

/// Bitwise CRC-32 (IEEE 802.3 polynomial, reflected). Hand-rolled so the
/// image format stays dependency-free.
fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// FNV-1a fingerprint of an encoded image blob.
///
/// Fleet tooling uses this as a compact content id when reporting which
/// image version is installed on each die: two byte-identical images have
/// equal fingerprints, and any reencoding that changes a single weight
/// changes it. Deliberately *not* the trailer's CRC-32: a version-2 blob
/// ends with the CRC of its payload, and CRC-32 of `payload ++ crc` is
/// the same residue constant for every payload, so reusing the trailer
/// polynomial over the whole blob would fingerprint every image
/// identically.
pub fn fingerprint(bytes: &[u8]) -> u32 {
    let mut h = 0x811C_9DC5u32;
    for &b in bytes {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

const TAG_MLP: u8 = 0;
const TAG_FOREST: u8 = 1;
const TAG_LOGISTIC: u8 = 2;

struct Writer(Vec<u8>);

impl Writer {
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
}

struct Reader<'a> {
    data: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ImageError> {
        if self.at + n > self.data.len() {
            return Err(ImageError::Corrupt("unexpected end of image"));
        }
        let s = &self.data[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, ImageError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, ImageError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32, ImageError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn f64(&mut self) -> Result<f64, ImageError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn done(&self) -> bool {
        self.at == self.data.len()
    }
}

/// Encodes a trained model as a firmware image.
///
/// # Errors
/// Returns [`ImageError::Unsupported`] for SVM variants, which the paper's
/// budget analysis rules out for deployment.
pub fn encode(model: &FirmwareModel) -> Result<Vec<u8>, ImageError> {
    let mut w = Writer(Vec::new());
    w.0.extend_from_slice(MAGIC);
    w.u8(VERSION);
    match model {
        FirmwareModel::Mlp(m) => {
            w.u8(TAG_MLP);
            w.f64(m.threshold());
            w.u8(m.num_layers() as u8);
            for li in 0..m.num_layers() {
                let (weights, biases) = m.layer_weights(li);
                w.u16(weights.rows() as u16);
                w.u16(weights.cols() as u16);
                for r in 0..weights.rows() {
                    for c in 0..weights.cols() {
                        w.f64(weights.get(r, c));
                    }
                }
                for &b in biases {
                    w.f64(b);
                }
            }
        }
        FirmwareModel::Forest(forest) => {
            w.u8(TAG_FOREST);
            w.f64(forest.threshold());
            w.u16(forest.trees().len() as u16);
            for tree in forest.trees() {
                w.u16(tree.max_depth() as u16);
                w.u16(tree.num_features() as u16);
                w.u32(tree.nodes().len() as u32);
                for node in tree.nodes() {
                    match node {
                        Node::Leaf { prob } => {
                            w.u8(0);
                            w.f64(*prob);
                        }
                        Node::Split {
                            feature,
                            threshold,
                            left,
                            right,
                        } => {
                            w.u8(1);
                            w.u16(*feature as u16);
                            w.f64(*threshold);
                            w.u32(*left as u32);
                            w.u32(*right as u32);
                        }
                    }
                }
            }
        }
        FirmwareModel::Logistic(lr) => {
            w.u8(TAG_LOGISTIC);
            w.f64(lr.threshold());
            w.u16(lr.weights().len() as u16);
            for &v in lr.weights() {
                w.f64(v);
            }
            w.f64(lr.bias());
        }
        FirmwareModel::SvmEnsemble(_) => {
            return Err(ImageError::Unsupported("linear SVM ensemble"))
        }
        FirmwareModel::Chi2Svm(_) => return Err(ImageError::Unsupported("chi^2 kernel SVM")),
        FirmwareModel::Gbdt(_) => {
            // Deployable in principle, but the image format pins the §5
            // model classes; extend with a new tag before shipping GBDTs.
            return Err(ImageError::Unsupported("gradient-boosted trees"));
        }
    }
    let crc = crc32(&w.0);
    w.u32(crc);
    Ok(w.0)
}

/// Decodes a firmware image back into a runnable model.
///
/// # Errors
/// Returns a descriptive [`ImageError`] for malformed inputs; decoding
/// never panics on untrusted bytes.
pub fn decode(bytes: &[u8]) -> Result<FirmwareModel, ImageError> {
    let mut header = Reader { data: bytes, at: 0 };
    if header.take(4)? != MAGIC {
        return Err(ImageError::BadMagic);
    }
    let version = header.u8()?;
    let body = match version {
        VERSION_NO_CRC => bytes,
        VERSION => {
            // The last four bytes are a little-endian CRC-32 of the rest.
            if bytes.len() < 9 {
                return Err(ImageError::Corrupt("unexpected end of image"));
            }
            let (payload, trailer) = bytes.split_at(bytes.len() - 4);
            let stored = u32::from_le_bytes(trailer.try_into().unwrap());
            if crc32(payload) != stored {
                return Err(ImageError::ChecksumMismatch);
            }
            payload
        }
        v => return Err(ImageError::BadVersion(v)),
    };
    let mut r = Reader { data: body, at: 5 };
    let tag = r.u8()?;
    let threshold = r.f64()?;
    if !(0.0..=1.0).contains(&threshold) {
        return Err(ImageError::Corrupt("threshold out of range"));
    }
    let model = match tag {
        TAG_MLP => {
            let n_layers = r.u8()? as usize;
            if n_layers == 0 {
                return Err(ImageError::Corrupt("MLP with zero layers"));
            }
            let mut layers = Vec::with_capacity(n_layers);
            for _ in 0..n_layers {
                let rows = r.u16()? as usize;
                let cols = r.u16()? as usize;
                if rows == 0 || cols == 0 || rows * cols > 1 << 20 {
                    return Err(ImageError::Corrupt("implausible layer shape"));
                }
                let mut m = Matrix::zeros(rows, cols);
                for row in 0..rows {
                    for col in 0..cols {
                        let v = r.f64()?;
                        m.set(row, col, v);
                    }
                }
                let mut biases = Vec::with_capacity(rows);
                for _ in 0..rows {
                    biases.push(r.f64()?);
                }
                layers.push((m, biases));
            }
            // Validate chaining before handing to the panicking constructor.
            for pair in layers.windows(2) {
                if pair[0].0.rows() != pair[1].0.cols() {
                    return Err(ImageError::Corrupt("MLP layer shapes do not chain"));
                }
            }
            if layers.last().unwrap().0.rows() != 1 {
                return Err(ImageError::Corrupt("MLP output layer must be 1-wide"));
            }
            FirmwareModel::Mlp(Mlp::from_layers(layers, threshold))
        }
        TAG_FOREST => {
            let n_trees = r.u16()? as usize;
            if n_trees == 0 {
                return Err(ImageError::Corrupt("forest with zero trees"));
            }
            let mut trees = Vec::with_capacity(n_trees);
            for _ in 0..n_trees {
                let max_depth = r.u16()? as usize;
                let num_features = r.u16()? as usize;
                let n_nodes = r.u32()? as usize;
                if n_nodes == 0 || n_nodes > 1 << 22 {
                    return Err(ImageError::Corrupt("implausible node count"));
                }
                let mut nodes = Vec::with_capacity(n_nodes);
                for i in 0..n_nodes {
                    match r.u8()? {
                        0 => nodes.push(Node::Leaf { prob: r.f64()? }),
                        1 => {
                            let feature = r.u16()? as usize;
                            let threshold = r.f64()?;
                            let left = r.u32()? as usize;
                            let right = r.u32()? as usize;
                            if feature >= num_features
                                || left >= n_nodes
                                || right >= n_nodes
                                || left <= i
                                || right <= i
                            {
                                return Err(ImageError::Corrupt("malformed split node"));
                            }
                            nodes.push(Node::Split {
                                feature,
                                threshold,
                                left,
                                right,
                            });
                        }
                        _ => return Err(ImageError::Corrupt("unknown node tag")),
                    }
                }
                trees.push(DecisionTree::from_nodes(nodes, max_depth, num_features));
            }
            FirmwareModel::Forest(RandomForest::from_trees(trees, threshold))
        }
        TAG_LOGISTIC => {
            let d = r.u16()? as usize;
            let mut weights = Vec::with_capacity(d);
            for _ in 0..d {
                weights.push(r.f64()?);
            }
            let bias = r.f64()?;
            FirmwareModel::Logistic(LogisticRegression::from_parts(weights, bias, threshold))
        }
        _ => return Err(ImageError::Corrupt("unknown model tag")),
    };
    if !r.done() {
        return Err(ImageError::Corrupt("trailing bytes"));
    }
    // Weight-sanity check at load: a checksum proves the bytes arrived
    // intact, not that the encoded weights were sane to begin with.
    model.validate().map_err(ImageError::InvalidModel)?;
    psca_obs::counter("uc.image.loaded").inc();
    Ok(model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use psca_ml::{Dataset, MlpConfig, RandomForestConfig};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn dataset(n: usize, d: usize) -> Dataset {
        let mut rng = StdRng::seed_from_u64(1);
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..d).map(|_| rng.gen::<f64>()).collect())
            .collect();
        let labels: Vec<u8> = rows.iter().map(|r| (r[0] > 0.5) as u8).collect();
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        Dataset::new(Matrix::from_rows(&refs), labels, vec![0; n])
    }

    fn roundtrip_matches(model: &FirmwareModel, d: usize) {
        let image = encode(model).unwrap();
        let back = decode(&image).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..200 {
            let x: Vec<f64> = (0..d).map(|_| rng.gen::<f64>() * 4.0 - 2.0).collect();
            assert_eq!(model.predict(&x).unwrap(), back.predict(&x).unwrap());
            assert!((model.score(&x).unwrap() - back.score(&x).unwrap()).abs() < 1e-12);
        }
    }

    #[test]
    fn mlp_image_roundtrips_bit_exact() {
        let data = dataset(300, 12);
        let mut mlp = Mlp::fit(&MlpConfig::best_mlp(), &data, 5);
        mlp.set_threshold(0.7);
        roundtrip_matches(&FirmwareModel::Mlp(mlp), 12);
    }

    #[test]
    fn forest_image_roundtrips_bit_exact() {
        let data = dataset(400, 12);
        let mut rf = RandomForest::fit(&RandomForestConfig::best_rf(), &data, 6);
        rf.set_threshold(0.65);
        roundtrip_matches(&FirmwareModel::Forest(rf), 12);
    }

    #[test]
    fn logistic_image_roundtrips_bit_exact() {
        let data = dataset(200, 8);
        let lr = LogisticRegression::fit(&data, 1e-4, 100);
        roundtrip_matches(&FirmwareModel::Logistic(lr), 8);
    }

    #[test]
    fn fingerprint_distinguishes_crc_trailed_blobs() {
        // The CRC residue trap: every version-2 blob ends with the CRC of
        // its payload, so CRC-32 over the whole blob is the same constant
        // for *every* image. The fingerprint must not fall into it.
        let a = encode(&FirmwareModel::Logistic(LogisticRegression::from_parts(
            vec![1.0, 2.0],
            0.0,
            0.5,
        )))
        .unwrap();
        let b = encode(&FirmwareModel::Logistic(LogisticRegression::from_parts(
            vec![1.0, 2.0],
            0.0,
            0.25,
        )))
        .unwrap();
        assert_ne!(a, b);
        assert_ne!(fingerprint(&a), fingerprint(&b));
        assert_eq!(fingerprint(&a), fingerprint(&a.clone()));
    }

    #[test]
    fn svms_are_rejected() {
        let data = dataset(100, 4);
        let svm = psca_ml::LinearSvm::fit(&data, 1e-3, 500, 1);
        let err = encode(&FirmwareModel::SvmEnsemble(vec![svm])).unwrap_err();
        assert!(matches!(err, ImageError::Unsupported(_)));
    }

    #[test]
    fn garbage_is_rejected_not_panicked() {
        assert_eq!(
            decode(b"PSC").unwrap_err(),
            ImageError::Corrupt("unexpected end of image")
        );
        assert_eq!(decode(b"nope").unwrap_err(), ImageError::BadMagic);
        assert_eq!(decode(b"XXXX\x01\x00").unwrap_err(), ImageError::BadMagic);
        let mut truncated = encode(&FirmwareModel::Logistic(LogisticRegression::from_parts(
            vec![1.0, 2.0],
            0.0,
            0.5,
        )))
        .unwrap();
        truncated.pop();
        // Truncation shifts the CRC trailer, so it reads as a checksum
        // failure (or as truncation if the image becomes too short).
        assert!(matches!(
            decode(&truncated).unwrap_err(),
            ImageError::Corrupt(_) | ImageError::ChecksumMismatch
        ));
    }

    #[test]
    fn checksum_catches_payload_bit_flips() {
        let data = dataset(200, 8);
        let lr = LogisticRegression::fit(&data, 1e-4, 100);
        let image = encode(&FirmwareModel::Logistic(lr)).unwrap();
        // Flip one bit in every payload byte position past the header;
        // the CRC trailer must catch each one.
        for idx in 6..image.len() - 4 {
            let mut corrupted = image.clone();
            corrupted[idx] ^= 0x10;
            assert_eq!(
                decode(&corrupted).unwrap_err(),
                ImageError::ChecksumMismatch,
                "flip at byte {idx} must be caught"
            );
        }
    }

    #[test]
    fn legacy_v1_images_without_checksum_still_decode() {
        let lr = LogisticRegression::from_parts(vec![1.0, -0.5], 0.25, 0.5);
        let model = FirmwareModel::Logistic(lr);
        let mut v1 = encode(&model).unwrap();
        v1.truncate(v1.len() - 4); // strip the CRC trailer
        v1[4] = 1; // mark as the pre-checksum format
        let back = decode(&v1).unwrap();
        let x = [0.3, 0.7];
        assert_eq!(model.predict(&x).unwrap(), back.predict(&x).unwrap());
    }

    #[test]
    fn nan_weights_are_rejected_at_load() {
        let lr = LogisticRegression::from_parts(vec![1.0, f64::NAN], 0.0, 0.5);
        let image = encode(&FirmwareModel::Logistic(lr)).unwrap();
        // The image is well-formed (checksum valid) but the weights are
        // garbage: load-time validation must reject it.
        assert!(matches!(
            decode(&image).unwrap_err(),
            ImageError::InvalidModel(crate::FirmwareError::NonFiniteParameter(_))
        ));
    }

    #[test]
    fn fuzzed_mutations_never_panic() {
        let data = dataset(150, 6);
        let rf = RandomForest::fit(&RandomForestConfig::best_rf(), &data, 7);
        let image = encode(&FirmwareModel::Forest(rf)).unwrap();
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..500 {
            let mut corrupted = image.clone();
            let idx = rng.gen_range(0..corrupted.len());
            corrupted[idx] ^= 1u8 << rng.gen_range(0..8);
            let _ = decode(&corrupted); // must not panic; error or value both fine
        }
    }

    #[test]
    fn version_mismatch_detected() {
        let lr = LogisticRegression::from_parts(vec![1.0], 0.0, 0.5);
        let mut image = encode(&FirmwareModel::Logistic(lr)).unwrap();
        image[4] = 9; // bump version byte
        assert_eq!(decode(&image).unwrap_err(), ImageError::BadVersion(9));
    }
}
