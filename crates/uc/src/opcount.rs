//! Explicit firmware operation accounting.
//!
//! The paper's firmware listings (Listings 1 & 2) count loads, multiplies,
//! adds, and compares of hand-optimized x87-style routines. [`OpCounter`]
//! mirrors that accounting so every [`crate::FirmwareModel`] inference
//! reports exactly how many µC operations it would execute.

/// Operation tally of one firmware routine execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounter {
    /// Memory loads (weight/threshold/node fetches).
    pub loads: u64,
    /// Multiplications.
    pub muls: u64,
    /// Additions / subtractions.
    pub adds: u64,
    /// Divisions.
    pub divs: u64,
    /// Comparisons / conditional moves.
    pub compares: u64,
    /// Other scalar ops (address arithmetic, conversions).
    pub other: u64,
}

impl OpCounter {
    /// A zeroed counter.
    pub fn new() -> OpCounter {
        OpCounter::default()
    }

    /// Total operations.
    pub fn total(&self) -> u64 {
        self.loads + self.muls + self.adds + self.divs + self.compares + self.other
    }

    /// Accounts one inner product of length `n` in the style of
    /// Listing 1: per element a weight load, a multiply, and an add (the
    /// bias starts out resident in the accumulator register, as in the
    /// hand-optimized listing, so it costs nothing extra).
    pub fn inner_product(&mut self, n: usize) {
        self.loads += n as u64;
        self.muls += n as u64;
        self.adds += n as u64;
    }

    /// Accounts one ReLU (compare + multiply, as in Listing 1).
    pub fn relu(&mut self) {
        self.compares += 1;
        self.muls += 1;
    }

    /// Accounts one branch-free decision-tree level in the style of
    /// Listing 2: node-threshold load, counter load, compare, and the
    /// conditional-move/address arithmetic that selects the child.
    pub fn tree_level(&mut self) {
        self.loads += 2;
        self.compares += 1;
        self.other += 4;
    }

    /// Accounts a χ² kernel evaluation of dimension `n`:
    /// per element two loads, an add, two multiplies, and a divide.
    pub fn chi2_kernel(&mut self, n: usize) {
        self.loads += 2 * n as u64;
        self.adds += n as u64;
        self.muls += 2 * n as u64;
        self.divs += n as u64;
    }
}

impl std::ops::Add for OpCounter {
    type Output = OpCounter;
    fn add(self, rhs: OpCounter) -> OpCounter {
        OpCounter {
            loads: self.loads + rhs.loads,
            muls: self.muls + rhs.muls,
            adds: self.adds + rhs.adds,
            divs: self.divs + rhs.divs,
            compares: self.compares + rhs.compares,
            other: self.other + rhs.other,
        }
    }
}

impl std::fmt::Display for OpCounter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} ops (ld {}, mul {}, add {}, div {}, cmp {}, other {})",
            self.total(),
            self.loads,
            self.muls,
            self.adds,
            self.divs,
            self.compares,
            self.other
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inner_product_cost_matches_listing1() {
        let mut c = OpCounter::new();
        c.inner_product(4);
        assert_eq!(c.loads, 4);
        assert_eq!(c.muls, 4);
        assert_eq!(c.adds, 4);
        assert_eq!(c.total(), 12);
    }

    #[test]
    fn tree_level_cost_is_constant() {
        let mut c = OpCounter::new();
        c.tree_level();
        let one = c.total();
        c.tree_level();
        assert_eq!(c.total(), 2 * one);
    }

    #[test]
    fn add_combines_fields() {
        let mut a = OpCounter::new();
        a.inner_product(3);
        let mut b = OpCounter::new();
        b.relu();
        let c = a + b;
        assert_eq!(c.total(), a.total() + b.total());
    }

    #[test]
    fn display_contains_total() {
        let mut c = OpCounter::new();
        c.chi2_kernel(2);
        assert!(c.to_string().contains(&c.total().to_string()));
    }
}
