//! Op-counted firmware inference for every model class of §5.
//!
//! Each variant wraps a trained `psca-ml` model and reproduces its
//! decision bit-for-bit while accounting the µC operations the paper's
//! hand-optimized firmware would execute:
//!
//! - MLP filters are inner products + ReLU (Listing 1);
//! - random-forest trees are branch-free traversals padded to constant
//!   depth with trivial comparisons (Listing 2), "so each prediction
//!   requires the same computational cost, simplifying budgeting";
//! - logistic regression avoids `exp()` entirely for decisions by
//!   thresholding the logit (the paper notes `exp()` costs ~60 ops);
//! - SVM ensembles vote over per-SVM inner products;
//! - χ²-kernel SVMs pay a kernel evaluation per support vector, which is
//!   why Table 3 rules them out (~121k ops).

use crate::opcount::OpCounter;
use psca_ml::gbdt::Gbdt;
use psca_ml::{Classifier, KernelSvm, LinearSvm, LogisticRegression, Mlp, Node, RandomForest};
use std::fmt;

/// Typed firmware inference/validation errors. Field-deployed firmware
/// must never panic on bad input — a malformed feature vector or a
/// corrupted weight becomes a recoverable error the degradation ladder
/// can act on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FirmwareError {
    /// The input feature vector has the wrong dimensionality.
    DimensionMismatch {
        /// Dimensionality the model was trained for.
        expected: usize,
        /// Dimensionality of the offending input.
        got: usize,
    },
    /// A model parameter is NaN or infinite (names the component).
    NonFiniteParameter(&'static str),
}

impl fmt::Display for FirmwareError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FirmwareError::DimensionMismatch { expected, got } => {
                write!(
                    f,
                    "input dimension mismatch: expected {expected}, got {got}"
                )
            }
            FirmwareError::NonFiniteParameter(what) => {
                write!(f, "non-finite model parameter in {what}")
            }
        }
    }
}

impl std::error::Error for FirmwareError {}

/// A trained adaptation model compiled for the microcontroller.
#[derive(Debug, Clone)]
pub enum FirmwareModel {
    /// Multi-layer perceptron (Listing 1 style).
    Mlp(Mlp),
    /// Random forest with constant-cost padded trees (Listing 2 style).
    Forest(RandomForest),
    /// Logistic regression (decision by logit threshold).
    Logistic(LogisticRegression),
    /// Majority-voted linear-SVM ensemble.
    SvmEnsemble(Vec<LinearSvm>),
    /// Budgeted χ²-kernel SVM.
    Chi2Svm(KernelSvm),
    /// Gradient-boosted trees (extension beyond the paper's §5 zoo; same
    /// branch-free traversal kernel as forests).
    Gbdt(Gbdt),
}

impl FirmwareModel {
    /// Short model-class name as used in Table 3.
    pub fn class_name(&self) -> &'static str {
        match self {
            FirmwareModel::Mlp(_) => "Multi Layer Perceptron",
            FirmwareModel::Forest(_) => "Random Forest",
            FirmwareModel::Logistic(_) => "Regression",
            FirmwareModel::SvmEnsemble(_) => "Support Vector Machine (Linear)",
            FirmwareModel::Chi2Svm(_) => "Support Vector Machine (Chi2)",
            FirmwareModel::Gbdt(_) => "Gradient Boosted Trees",
        }
    }

    /// The wrapped [`Classifier`], for every variant that holds a single
    /// model. SVM ensembles vote over several classifiers and keep their
    /// dedicated paths in [`predict`](FirmwareModel::predict) /
    /// [`score`](FirmwareModel::score).
    fn inner_classifier(&self) -> Option<&dyn Classifier> {
        match self {
            FirmwareModel::Mlp(m) => Some(m),
            FirmwareModel::Forest(m) => Some(m),
            FirmwareModel::Logistic(m) => Some(m),
            FirmwareModel::SvmEnsemble(_) => None,
            FirmwareModel::Chi2Svm(m) => Some(m),
            FirmwareModel::Gbdt(m) => Some(m),
        }
    }

    /// Input dimensionality the model was trained for, where the model
    /// class records it (GBDT regression trees do not).
    pub fn input_dim(&self) -> Option<usize> {
        match self {
            FirmwareModel::SvmEnsemble(ms) => ms.first().map(|s| s.weights().len()),
            _ => self.inner_classifier().and_then(|c| c.n_features()),
        }
    }

    fn check_dim(&self, x: &[f64]) -> Result<(), FirmwareError> {
        match self.input_dim() {
            Some(expected) if expected != x.len() => {
                psca_obs::counter("uc.firmware.dim_errors").inc();
                Err(FirmwareError::DimensionMismatch {
                    expected,
                    got: x.len(),
                })
            }
            _ => Ok(()),
        }
    }

    /// Gating decision, identical to the wrapped model's.
    ///
    /// # Errors
    /// Returns [`FirmwareError::DimensionMismatch`] if `x` has the wrong
    /// dimensionality; never panics on malformed input.
    pub fn predict(&self, x: &[f64]) -> Result<bool, FirmwareError> {
        self.check_dim(x)?;
        Ok(match self {
            FirmwareModel::SvmEnsemble(ms) => {
                let votes = ms.iter().filter(|s| Classifier::predict(*s, x)).count();
                2 * votes > ms.len()
            }
            _ => self
                .inner_classifier()
                .expect("every non-ensemble variant wraps a single classifier")
                .predict(x),
        })
    }

    /// Continuous decision score: a probability for MLP/forest/logistic
    /// models, a vote fraction for SVM ensembles, and a margin-squashed
    /// value for kernel SVMs. Used for threshold (sensitivity) tuning.
    ///
    /// # Errors
    /// Returns [`FirmwareError::DimensionMismatch`] if `x` has the wrong
    /// dimensionality; never panics on malformed input.
    pub fn score(&self, x: &[f64]) -> Result<f64, FirmwareError> {
        self.check_dim(x)?;
        Ok(match self {
            FirmwareModel::SvmEnsemble(ms) => {
                ms.iter().filter(|s| Classifier::predict(*s, x)).count() as f64
                    / ms.len().max(1) as f64
            }
            _ => self
                .inner_classifier()
                .expect("every non-ensemble variant wraps a single classifier")
                .predict_proba(x),
        })
    }

    /// Weight-sanity check: every reachable model parameter must be
    /// finite. Run at image load (and before OTA deployment) so corrupted
    /// weights are rejected instead of silently steering the cluster.
    /// χ²-kernel SVM support vectors are not exposed for inspection, but
    /// that class is not deployable as firmware anyway (Table 3).
    ///
    /// # Errors
    /// Returns [`FirmwareError::NonFiniteParameter`] naming the first
    /// offending component.
    pub fn validate(&self) -> Result<(), FirmwareError> {
        let finite = |ok: bool, what: &'static str| {
            if ok {
                Ok(())
            } else {
                Err(FirmwareError::NonFiniteParameter(what))
            }
        };
        match self {
            FirmwareModel::Mlp(m) => {
                for li in 0..m.num_layers() {
                    let (w, b) = m.layer_weights(li);
                    for r in 0..w.rows() {
                        for c in 0..w.cols() {
                            finite(w.get(r, c).is_finite(), "MLP weight")?;
                        }
                    }
                    finite(b.iter().all(|v| v.is_finite()), "MLP bias")?;
                }
                finite(m.threshold().is_finite(), "MLP threshold")
            }
            FirmwareModel::Forest(m) => {
                for tree in m.trees() {
                    for node in tree.nodes() {
                        match node {
                            Node::Leaf { prob } => finite(prob.is_finite(), "forest leaf")?,
                            Node::Split { threshold, .. } => {
                                finite(threshold.is_finite(), "forest split")?
                            }
                        }
                    }
                }
                finite(m.threshold().is_finite(), "forest threshold")
            }
            FirmwareModel::Logistic(m) => {
                finite(m.weights().iter().all(|v| v.is_finite()), "logistic weight")?;
                finite(m.bias().is_finite(), "logistic bias")?;
                finite(m.threshold().is_finite(), "logistic threshold")
            }
            FirmwareModel::SvmEnsemble(ms) => {
                for s in ms {
                    finite(s.weights().iter().all(|v| v.is_finite()), "SVM weight")?;
                }
                Ok(())
            }
            FirmwareModel::Chi2Svm(_) => Ok(()),
            FirmwareModel::Gbdt(m) => {
                for tree in m.trees() {
                    for node in tree.nodes() {
                        match node {
                            psca_ml::gbdt::RegNode::Leaf { value } => {
                                finite(value.is_finite(), "GBDT leaf")?
                            }
                            psca_ml::gbdt::RegNode::Split { threshold, .. } => {
                                finite(threshold.is_finite(), "GBDT split")?
                            }
                        }
                    }
                }
                finite(m.threshold().is_finite(), "GBDT threshold")
            }
        }
    }

    /// Sets the decision threshold on the wrapped model where supported
    /// (MLP, forest, logistic). SVM variants keep their margin decision.
    pub fn set_threshold(&mut self, t: f64) {
        match self {
            FirmwareModel::Mlp(m) => m.set_threshold(t),
            FirmwareModel::Forest(m) => m.set_threshold(t),
            FirmwareModel::Logistic(m) => m.set_threshold(t),
            FirmwareModel::SvmEnsemble(_) | FirmwareModel::Chi2Svm(_) => {}
            FirmwareModel::Gbdt(m) => m.set_threshold(t),
        }
    }

    /// Gating decision plus the exact firmware operation tally.
    ///
    /// # Errors
    /// Returns [`FirmwareError::DimensionMismatch`] if `x` has the wrong
    /// dimensionality.
    pub fn predict_counted(&self, x: &[f64]) -> Result<(bool, OpCounter), FirmwareError> {
        self.check_dim(x)?;
        let mut ops = OpCounter::new();
        match self {
            FirmwareModel::Mlp(m) => {
                let mut width = x.len();
                for li in 0..m.num_layers() {
                    let (w, _) = m.layer_weights(li);
                    for _ in 0..w.rows() {
                        ops.inner_product(width);
                        if li + 1 < m.num_layers() {
                            ops.relu();
                        }
                    }
                    width = w.rows();
                }
                ops.compares += 1; // logit vs threshold
            }
            FirmwareModel::Forest(m) => {
                for tree in m.trees() {
                    // Padded to the configured max depth (Listing 2).
                    for _ in 0..tree.max_depth() {
                        ops.tree_level();
                    }
                    ops.loads += 1; // leaf probability
                    ops.adds += 1; // vote accumulation
                }
                ops.compares += 1; // majority threshold
            }
            FirmwareModel::Logistic(m) => {
                ops.inner_product(m.weights().len());
                ops.compares += 1;
            }
            FirmwareModel::SvmEnsemble(ms) => {
                for s in ms {
                    ops.inner_product(s.weights().len());
                    ops.compares += 1;
                    ops.adds += 1; // vote
                }
                ops.compares += 1;
            }
            FirmwareModel::Chi2Svm(m) => {
                let dim = m.dim().unwrap_or(x.len());
                for _ in 0..m.num_support_vectors() {
                    ops.chi2_kernel(dim);
                    ops.loads += 1; // alpha
                    ops.muls += 1;
                    ops.adds += 1;
                }
                ops.divs += 1; // 1 / (lambda t) scale
                ops.compares += 1;
            }
            FirmwareModel::Gbdt(m) => {
                for tree in m.trees() {
                    for _ in 0..tree.max_depth() {
                        ops.tree_level();
                    }
                    ops.loads += 1; // leaf value
                    ops.adds += 1; // logit accumulation
                }
                ops.muls += 1; // shrinkage scale
                ops.compares += 1; // logit vs threshold (no exp needed)
            }
        }
        psca_obs::histogram("uc.firmware.ops_per_prediction").record(ops.total());
        Ok((self.predict(x)?, ops))
    }

    /// Operations per prediction (constant for a given model).
    pub fn ops_per_prediction(&self, num_inputs: usize) -> u64 {
        let x = vec![0.0; self.input_dim().unwrap_or(num_inputs)];
        self.predict_counted(&x)
            .expect("probe vector matches model dimensionality")
            .1
            .total()
    }

    /// Model parameter storage in bytes.
    ///
    /// MLP/LR/SVM coefficients are 4-byte quantities; tree nodes take 10
    /// bytes (feature id, threshold, child offset) with the full
    /// `2^depth` balanced-array layout the paper's accounting uses (e.g.
    /// a depth-16 tree = 655.36 KB, Table 3).
    pub fn memory_footprint_bytes(&self) -> u64 {
        match self {
            FirmwareModel::Mlp(m) => 4 * m.num_parameters() as u64,
            FirmwareModel::Forest(m) => m
                .trees()
                .iter()
                .map(|t| 10u64 * (1u64 << t.max_depth()))
                .sum(),
            FirmwareModel::Logistic(m) => 4 * (m.weights().len() as u64 + 1),
            FirmwareModel::SvmEnsemble(ms) => {
                ms.iter().map(|s| 4 * (s.weights().len() as u64 + 1)).sum()
            }
            FirmwareModel::Chi2Svm(m) => {
                let dim = m.dim().unwrap_or(0) as u64;
                m.num_support_vectors() as u64 * (4 * dim + 4)
            }
            FirmwareModel::Gbdt(m) => m
                .trees()
                .iter()
                .map(|t| 10u64 * (1u64 << t.max_depth()))
                .sum(),
        }
    }
}

/// A firmware image is itself a [`Classifier`], so the serving daemon and
/// experiment runners can hold `&dyn Classifier` without caring whether a
/// model is raw or firmware-packed.
///
/// # Panics
/// The trait has the concrete models' assert-on-bad-input contract, so
/// these methods panic on a dimension mismatch. Field code that must not
/// panic keeps using the fallible [`predict`](FirmwareModel::predict) /
/// [`score`](FirmwareModel::score).
impl Classifier for FirmwareModel {
    fn predict_proba(&self, x: &[f64]) -> f64 {
        self.score(x).expect("input dimension matches the model")
    }

    fn predict(&self, x: &[f64]) -> bool {
        FirmwareModel::predict(self, x).expect("input dimension matches the model")
    }

    fn n_features(&self) -> Option<usize> {
        self.input_dim()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psca_ml::{Dataset, Matrix, MlpConfig, RandomForestConfig};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn dataset(n: usize, d: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..n {
            let row: Vec<f64> = (0..d).map(|_| rng.gen::<f64>()).collect();
            labels.push((row.iter().sum::<f64>() > d as f64 / 2.0) as u8);
            rows.push(row);
        }
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        Dataset::new(Matrix::from_rows(&refs), labels, vec![0; n])
    }

    #[test]
    fn firmware_decisions_match_wrapped_models() {
        let data = dataset(300, 12, 1);
        let mlp = Mlp::fit(&MlpConfig::best_mlp(), &data, 2);
        let rf = RandomForest::fit(&RandomForestConfig::best_rf(), &data, 3);
        let fw_mlp = FirmwareModel::Mlp(mlp.clone());
        let fw_rf = FirmwareModel::Forest(rf.clone());
        for i in 0..data.len() {
            let x = data.sample(i).0;
            assert_eq!(fw_mlp.predict(x).unwrap(), mlp.predict(x));
            assert_eq!(fw_rf.predict(x).unwrap(), rf.predict(x));
            let (d, _) = fw_rf.predict_counted(x).unwrap();
            assert_eq!(d, rf.predict(x));
        }
    }

    #[test]
    fn wrong_dimensionality_is_a_typed_error_not_a_panic() {
        let data = dataset(200, 12, 2);
        let mlp = FirmwareModel::Mlp(Mlp::fit(&MlpConfig::best_mlp(), &data, 2));
        let lr = FirmwareModel::Logistic(LogisticRegression::fit(&data, 1e-4, 50));
        for fw in [&mlp, &lr] {
            assert_eq!(fw.input_dim(), Some(12));
            for bad in [vec![0.0; 3], vec![0.0; 13], Vec::new()] {
                let err = fw.predict(&bad).unwrap_err();
                assert_eq!(
                    err,
                    FirmwareError::DimensionMismatch {
                        expected: 12,
                        got: bad.len()
                    }
                );
                assert!(fw.score(&bad).is_err());
                assert!(fw.predict_counted(&bad).is_err());
            }
            assert!(fw.predict(&[0.0; 12]).is_ok());
        }
    }

    #[test]
    fn validate_rejects_non_finite_weights() {
        let good =
            FirmwareModel::Logistic(LogisticRegression::from_parts(vec![1.0, -2.0], 0.5, 0.5));
        assert!(good.validate().is_ok());
        let bad = FirmwareModel::Logistic(LogisticRegression::from_parts(
            vec![1.0, f64::NAN],
            0.5,
            0.5,
        ));
        assert_eq!(
            bad.validate().unwrap_err(),
            FirmwareError::NonFiniteParameter("logistic weight")
        );
        let bad_bias = FirmwareModel::Logistic(LogisticRegression::from_parts(
            vec![1.0, 2.0],
            f64::INFINITY,
            0.5,
        ));
        assert!(bad_bias.validate().is_err());
        let data = dataset(200, 8, 3);
        let mlp = FirmwareModel::Mlp(Mlp::fit(&MlpConfig::best_mlp(), &data, 4));
        assert!(mlp.validate().is_ok());
    }

    #[test]
    fn best_mlp_ops_are_near_the_papers_678() {
        // 3 layers of 8/8/4 filters on 12 counters → paper reports 678.
        let data = dataset(100, 12, 4);
        let mlp = Mlp::fit(&MlpConfig::best_mlp(), &data, 1);
        let ops = FirmwareModel::Mlp(mlp).ops_per_prediction(12);
        assert!(
            (550..=800).contains(&ops),
            "Best-MLP ops {ops} out of plausible range around 678"
        );
    }

    #[test]
    fn best_rf_ops_are_near_the_papers_538() {
        // 8 trees, depth 8 → paper reports 538.
        let data = dataset(600, 12, 5);
        let rf = RandomForest::fit(&RandomForestConfig::best_rf(), &data, 2);
        let ops = FirmwareModel::Forest(rf).ops_per_prediction(12);
        assert!(
            (400..=700).contains(&ops),
            "Best-RF ops {ops} out of plausible range around 538"
        );
    }

    #[test]
    fn forest_cost_is_input_independent() {
        let data = dataset(300, 12, 6);
        let rf = FirmwareModel::Forest(RandomForest::fit(&RandomForestConfig::best_rf(), &data, 2));
        let (_, a) = rf.predict_counted(&[0.0; 12]).unwrap();
        let (_, b) = rf.predict_counted(&[1.0; 12]).unwrap();
        assert_eq!(a.total(), b.total(), "padded trees must cost the same");
    }

    #[test]
    fn chi2_svm_is_an_order_of_magnitude_costlier() {
        let data = dataset(800, 12, 7);
        let svm = psca_ml::KernelSvm::fit_chi2(&data, 1e-3, 3_000, 1000, 8);
        let fw = FirmwareModel::Chi2Svm(svm);
        let ops = fw.ops_per_prediction(12);
        let data2 = dataset(300, 12, 9);
        let mlp_ops =
            FirmwareModel::Mlp(Mlp::fit(&MlpConfig::best_mlp(), &data2, 1)).ops_per_prediction(12);
        assert!(ops > 10 * mlp_ops, "chi2 {ops} vs mlp {mlp_ops}");
    }

    #[test]
    fn depth16_tree_footprint_matches_table3() {
        let data = dataset(400, 12, 10);
        let tree = psca_ml::DecisionTree::fit(&data, 16, 1, None, 1);
        let forest_of_one = {
            // Use the accounting formula directly via a single-tree forest.
            10u64 * (1u64 << tree.max_depth())
        };
        assert_eq!(forest_of_one, 655_360); // 655.36 KB, as in Table 3
    }

    #[test]
    fn logistic_footprint_is_tiny() {
        let data = dataset(200, 12, 11);
        let lr = LogisticRegression::fit(&data, 1e-4, 50);
        let fw = FirmwareModel::Logistic(lr);
        assert_eq!(fw.memory_footprint_bytes(), 52);
        assert!(fw.ops_per_prediction(12) < 60);
    }

    #[test]
    fn ensemble_votes_majority() {
        let data = dataset(300, 4, 12);
        let ens = LinearSvm::fit_ensemble(&data, 5, 1e-3, 3_000, 13);
        let fw = FirmwareModel::SvmEnsemble(ens.clone());
        let x = vec![0.9; 4];
        let votes = ens.iter().filter(|s| s.predict(&x)).count();
        assert_eq!(fw.predict(&x).unwrap(), 2 * votes > 5);
    }
}
