//! The microcontroller computation-budget arithmetic of Table 3.

/// The host CPU's instruction throughput.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuSpec {
    /// Clock in MHz.
    pub clock_mhz: u64,
    /// Peak issue width.
    pub width: u32,
}

impl CpuSpec {
    /// The paper's CPU: 2.0 GHz, 8-wide → 16,000 MIPS.
    pub fn paper() -> CpuSpec {
        CpuSpec {
            clock_mhz: 2000,
            width: 8,
        }
    }

    /// Peak instruction throughput in MIPS.
    pub fn mips(&self) -> u64 {
        self.clock_mhz * self.width as u64
    }
}

/// The on-die microcontroller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct McuSpec {
    /// Clock in MHz (1-wide → MIPS = MHz).
    pub clock_mhz: u64,
    /// Fraction of cycles safely available for inference.
    pub available: f64,
}

impl McuSpec {
    /// The paper's µC: 500 MHz, 1-wide, 50% duty available (§3, §5).
    pub fn paper() -> McuSpec {
        McuSpec {
            clock_mhz: 500,
            available: 0.5,
        }
    }

    /// Instruction throughput in MIPS.
    pub fn mips(&self) -> u64 {
        self.clock_mhz
    }
}

/// One row of Table 3's budget panel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BudgetRow {
    /// Prediction granularity in CPU instructions.
    pub granularity: u64,
    /// Maximum µC ops that elapse during one interval.
    pub max_ops: u64,
    /// Ops available for a prediction (after the duty factor).
    pub budget: u64,
}

/// Computes the Table 3 budget row for a prediction granularity.
///
/// With the paper's specs the computation ratio is 1:32, giving e.g.
/// 312 max ops / 156 budget at 10k instructions.
///
/// # Panics
/// Panics if `granularity == 0`.
pub fn ops_budget(cpu: &CpuSpec, mcu: &McuSpec, granularity: u64) -> BudgetRow {
    assert!(granularity > 0, "granularity must be positive");
    let max_ops = granularity * mcu.mips() / cpu.mips();
    let budget = (max_ops as f64 * mcu.available) as u64;
    BudgetRow {
        granularity,
        max_ops,
        budget,
    }
}

/// The finest granularity (multiple of `step`) whose budget covers
/// `ops_per_prediction`, capped at `max_granularity`. Returns `None` when
/// even the cap is insufficient.
pub fn finest_granularity(
    cpu: &CpuSpec,
    mcu: &McuSpec,
    ops_per_prediction: u64,
    step: u64,
    max_granularity: u64,
) -> Option<u64> {
    let mut g = step;
    while g <= max_granularity {
        if ops_budget(cpu, mcu, g).budget >= ops_per_prediction {
            return Some(g);
        }
        g += step;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_budget_rows_match_paper() {
        let cpu = CpuSpec::paper();
        let mcu = McuSpec::paper();
        // (granularity, max ops, budget) from Table 3's left panel.
        for (g, max, budget) in [
            (10_000u64, 312u64, 156u64),
            (20_000, 625, 312),
            (30_000, 937, 468),
            (40_000, 1_250, 625),
            (50_000, 1_562, 781),
            (60_000, 1_875, 937),
            (100_000, 3_125, 1_562),
        ] {
            let row = ops_budget(&cpu, &mcu, g);
            assert_eq!(row.max_ops, max, "max ops at {g}");
            assert_eq!(row.budget, budget, "budget at {g}");
        }
    }

    #[test]
    fn paper_specs() {
        assert_eq!(CpuSpec::paper().mips(), 16_000);
        assert_eq!(McuSpec::paper().mips(), 500);
    }

    #[test]
    fn finest_granularity_picks_paper_intervals() {
        let cpu = CpuSpec::paper();
        let mcu = McuSpec::paper();
        // CHARSTAR: 292 ops → 20k (§7).
        assert_eq!(
            finest_granularity(&cpu, &mcu, 292, 10_000, 100_000),
            Some(20_000)
        );
        // Best RF: 538 ops → 40k (§7).
        assert_eq!(
            finest_granularity(&cpu, &mcu, 538, 10_000, 100_000),
            Some(40_000)
        );
        // Best MLP: 678 ops → 50k (§7).
        assert_eq!(
            finest_granularity(&cpu, &mcu, 678, 10_000, 100_000),
            Some(50_000)
        );
        // SRCH: 572 ops → 40k (§7).
        assert_eq!(
            finest_granularity(&cpu, &mcu, 572, 10_000, 100_000),
            Some(40_000)
        );
        // χ² SVM at 121k ops never fits.
        assert_eq!(
            finest_granularity(&cpu, &mcu, 121_000, 10_000, 100_000),
            None
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_granularity_rejected() {
        let _ = ops_budget(&CpuSpec::paper(), &McuSpec::paper(), 0);
    }
}
