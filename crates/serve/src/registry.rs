//! Named trained-model registry backing the daemon's endpoints.
//!
//! Models are trained once at daemon startup from a deterministic
//! synthetic corpus (seeded by the experiment config), then served
//! read-only: every worker thread holds the registry behind an `Arc` and
//! prediction never mutates model state.

use psca_adapt::TrainedAdaptModel;
use psca_adapt::{collect_paired, zoo, CorpusTelemetry, ExperimentConfig, ModelKind};
use psca_obs::Json;
use psca_workloads::{Archetype, PhaseGenerator};

/// URL-safe registry slug for a model kind (`GET /v1/models` names).
pub fn kind_slug(kind: ModelKind) -> &'static str {
    match kind {
        ModelKind::BestRf => "best-rf",
        ModelKind::BestMlp => "best-mlp",
        ModelKind::Charstar => "charstar",
        ModelKind::SrchFine => "srch-fine",
        ModelKind::SrchCoarse => "srch-coarse",
    }
}

/// Read-only collection of named [`TrainedAdaptModel`]s plus the config
/// they were trained under (the closed-loop endpoint reuses its
/// `interval_insts` and sub-seeds).
#[derive(Debug)]
pub struct ModelRegistry {
    cfg: ExperimentConfig,
    models: Vec<(String, TrainedAdaptModel)>,
}

impl ModelRegistry {
    /// An empty registry over `cfg`.
    pub fn new(cfg: ExperimentConfig) -> ModelRegistry {
        ModelRegistry {
            cfg,
            models: Vec::new(),
        }
    }

    /// Trains the requested zoo kinds on a small deterministic corpus
    /// (four phase archetypes spanning gateable → wide behaviour) and
    /// registers each under its [`kind_slug`].
    pub fn train(cfg: ExperimentConfig, kinds: &[ModelKind]) -> ModelRegistry {
        let _span = psca_obs::SpanTimer::start("serve.registry.train");
        let mut traces = Vec::new();
        for (i, a) in [
            Archetype::DepChain,
            Archetype::ScalarIlp,
            Archetype::MemBound,
            Archetype::Balanced,
        ]
        .iter()
        .enumerate()
        {
            let seed = cfg.sub_seed("serve-corpus") ^ (i as u64);
            let mut gen = PhaseGenerator::new(a.center(), seed);
            traces.push(collect_paired(
                &mut gen,
                cfg.hdtr_warmup_insts,
                24,
                cfg.interval_insts,
                i as u32,
                "serve",
                1,
            ));
        }
        let corpus = CorpusTelemetry { traces };
        let mut reg = ModelRegistry::new(cfg);
        for &kind in kinds {
            let model = zoo::train(kind, &corpus, &reg.cfg);
            reg.insert(kind_slug(kind), model);
        }
        reg
    }

    /// The default serving registry: the paper's two deployable "best"
    /// models, trained quickly.
    pub fn default_quick(seed: u64) -> ModelRegistry {
        let cfg = ExperimentConfig::builder()
            .seed(seed)
            .build()
            .expect("quick preset is always valid");
        ModelRegistry::train(cfg, &[ModelKind::BestRf, ModelKind::BestMlp])
    }

    /// Registers `model` under `name` (replacing any previous holder).
    pub fn insert(&mut self, name: &str, model: TrainedAdaptModel) {
        if let Some(slot) = self.models.iter_mut().find(|(n, _)| n == name) {
            slot.1 = model;
        } else {
            self.models.push((name.to_string(), model));
        }
    }

    /// Looks a model up by registry name.
    pub fn get(&self, name: &str) -> Option<&TrainedAdaptModel> {
        self.models.iter().find(|(n, _)| n == name).map(|(_, m)| m)
    }

    /// Registered names, in insertion order.
    pub fn names(&self) -> Vec<&str> {
        self.models.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// True when no model is registered.
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }

    /// The experiment config the models were trained under.
    pub fn config(&self) -> &ExperimentConfig {
        &self.cfg
    }

    /// The `GET /v1/models` document: name, kind, per-mode input
    /// dimensions, granularity, and the firmware op budget actually used.
    pub fn models_json(&self) -> Json {
        let items = self
            .models
            .iter()
            .map(|(name, m)| {
                Json::obj(vec![
                    ("name", name.as_str().into()),
                    ("kind", m.kind.name().into()),
                    (
                        "input_dim_hi",
                        m.fw_hi
                            .input_dim()
                            .map_or(Json::Null, |d| (d as u64).into()),
                    ),
                    (
                        "input_dim_lo",
                        m.fw_lo
                            .input_dim()
                            .map_or(Json::Null, |d| (d as u64).into()),
                    ),
                    ("granularity_intervals", (m.granularity as u64).into()),
                    (
                        "granularity_insts",
                        m.granularity_insts(self.cfg.interval_insts).into(),
                    ),
                    ("ops_per_prediction", m.ops_per_prediction.into()),
                ])
            })
            .collect();
        Json::obj(vec![
            ("interval_insts", self.cfg.interval_insts.into()),
            ("models", Json::Arr(items)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_trains_and_describes_models() {
        let reg = ModelRegistry::default_quick(7);
        assert_eq!(reg.names(), vec!["best-rf", "best-mlp"]);
        assert_eq!(reg.len(), 2);
        let rf = reg.get("best-rf").unwrap();
        assert!(rf.ops_per_prediction > 0);
        assert!(reg.get("nonexistent").is_none());
        let doc = reg.models_json();
        let models = doc.get("models").and_then(Json::as_arr).unwrap();
        assert_eq!(models.len(), 2);
        assert_eq!(
            models[0].get("name").and_then(Json::as_str),
            Some("best-rf")
        );
        assert!(models[0]
            .get("input_dim_hi")
            .and_then(Json::as_u64)
            .is_some());
    }

    #[test]
    fn insert_replaces_by_name() {
        let a = ModelRegistry::default_quick(7);
        let mut b = ModelRegistry::new(a.config().clone());
        b.insert("m", a.get("best-rf").unwrap().clone());
        b.insert("m", a.get("best-mlp").unwrap().clone());
        assert_eq!(b.len(), 1);
        assert_eq!(b.get("m").unwrap().kind.name(), "Best MLP");
    }
}
