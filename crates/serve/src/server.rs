//! The daemon: a multi-threaded TCP/HTTP server with a bounded request
//! queue, explicit backpressure, per-endpoint metrics, optional chaos on
//! the serving path, and graceful drain-on-shutdown.
//!
//! The transport extends the single-threaded head-only reader of
//! `psca_obs::exporter` with `Content-Length` body reads, a worker pool
//! (accept thread pushes connections into a `Mutex<VecDeque>` guarded by
//! condvars, workers pop), and the same std-only discipline: no external
//! HTTP or threading dependency anywhere.
//!
//! Every request is request-scoped observable: a
//! [`psca_obs::TraceCtx`] is parsed from an inbound `traceparent` header
//! (or minted at ingress) and attached to the handling worker, so queue
//! wait, the `serve.request` span, closed-loop windows, and sim
//! intervals all land in one Perfetto tree; the response echoes the
//! `traceparent`. Per-request outcomes feed the SLO engine
//! (`GET /v1/slo`), the flight recorder (`GET /v1/debug/requests`,
//! postmortem dumps to `target/obs/` on 5xx / SLO alert / degradation
//! escalation), the latency histogram's exemplar, and — when
//! `PSCA_ACCESS_LOG` or [`ServeConfig::access_log`] is set — a JSONL
//! access log. Under `PSCA_PROF=1` the hierarchical self-profiler
//! accumulates per-stack self time, scrapeable live via
//! `GET /v1/profile` (top self-time nodes since the last scrape). None
//! of this changes any computed result: responses are bit-identical
//! with tracing or profiling on or off.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use psca_adapt::{record_trace, ClosedLoopRequest};
use psca_faults::{ChaosSpec, FaultInjector, PredictionFault};
use psca_obs::event::EventSink;
use psca_obs::{
    EventRecord, FieldValue, Json, JsonlSink, Level, RequestRecord, SloEngine, SloSpec, TraceCtx,
};
use psca_workloads::PhaseGenerator;

use crate::api::{self, ApiError, ClosedLoopSpec, PredictRequest};
use crate::registry::ModelRegistry;

/// Upper bound on the request head (request line + headers).
const MAX_HEAD_BYTES: usize = 8 * 1024;

/// Where flight-recorder postmortems are dumped.
const POSTMORTEM_DIR: &str = "target/obs";

/// Daemon tuning knobs. `Default` gives a loopback daemon on an
/// OS-assigned port with auto-sized workers and a 64-deep queue.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` for an OS-assigned loopback port).
    pub addr: String,
    /// Worker threads; `0` resolves via `PSCA_JOBS` / available cores.
    pub workers: usize,
    /// Bounded queue depth; connections past this are answered `429`.
    pub queue_capacity: usize,
    /// Ceiling on queued + in-flight connections; past it, `503`.
    pub max_connections: usize,
    /// Largest accepted request body.
    pub max_body_bytes: usize,
    /// Per-connection read deadline (milliseconds) covering both the
    /// header and body reads; a client that stalls past it gets a typed
    /// `408` instead of pinning the worker. `repro serve` seeds this
    /// from `--read-timeout-ms` / `PSCA_READ_TIMEOUT_MS`.
    pub read_timeout_ms: u64,
    /// Optional chaos injected on the prediction endpoints.
    pub chaos: Option<ChaosSpec>,
    /// Service-level objective evaluated per request (`GET /v1/slo`);
    /// `None` disables the engine.
    pub slo: Option<SloSpec>,
    /// JSONL access-log path; falls back to the `PSCA_ACCESS_LOG`
    /// environment variable when unset.
    pub access_log: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 0,
            queue_capacity: 64,
            max_connections: 256,
            max_body_bytes: 1 << 20,
            read_timeout_ms: 5_000,
            chaos: None,
            slo: Some(SloSpec::default()),
            access_log: None,
        }
    }
}

/// One accepted connection, stamped so the worker that pops it can
/// attribute queue wait.
struct Queued {
    stream: TcpStream,
    enqueued: Instant,
}

/// State shared between the accept thread and the worker pool.
struct Shared {
    registry: ModelRegistry,
    config: ServeConfig,
    local_addr: SocketAddr,
    jobs: usize,
    queue: Mutex<VecDeque<Queued>>,
    work_ready: Condvar,
    idle: Condvar,
    stop: AtomicBool,
    hold: AtomicBool,
    /// Readiness: false until the worker pool is spawned; `/readyz`
    /// answers 503 until then (and again while held or stopping).
    ready: AtomicBool,
    inflight: AtomicUsize,
    chaos: Option<Mutex<FaultInjector>>,
    /// Daemon start time — the epoch for SLO windows and flight-recorder
    /// timestamps.
    epoch: Instant,
    slo: Option<Mutex<SloEngine>>,
    /// Rising-edge latch for SLO alert postmortems: dump once per alert
    /// episode, not per request while the alert stays active.
    slo_alerted: AtomicBool,
    /// Dedicated access-log sink (not installed globally, so only access
    /// lines land in the file).
    access: Option<JsonlSink>,
}

impl Shared {
    fn queue_depth_gauge(&self, depth: usize) {
        psca_obs::gauge("serve.queue.depth").set(depth as f64);
    }

    fn inflight_gauge(&self) {
        psca_obs::gauge("serve.inflight").set(self.inflight.load(Ordering::Relaxed) as f64);
    }

    /// Milliseconds since the daemon started (SLO/recorder timebase).
    fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis().min(u128::from(u64::MAX)) as u64
    }

    /// Wakes everyone: workers (to drain and exit), `quiesce` waiters,
    /// and the accept thread (via a dummy loopback connection).
    fn trigger_stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        {
            // Take the queue lock so a worker blocked in `wait` cannot
            // miss the notification.
            let _q = self.queue.lock().unwrap();
            self.work_ready.notify_all();
            self.idle.notify_all();
        }
        let _ = TcpStream::connect_timeout(&self.local_addr, Duration::from_millis(200));
    }

    /// Folds one finished request into the observability stack: SLO
    /// engine, flight recorder (with postmortem dumps on 5xx, an SLO
    /// alert's rising edge, or a degradation escalation), and the access
    /// log. Pure observability — called after the response is written.
    #[allow(clippy::too_many_arguments)]
    fn finish_request(
        &self,
        outcome: &RequestOutcome,
        endpoint: &str,
        method: &str,
        path: &str,
        trace_id: &str,
        latency_us: u64,
        queue_us: u64,
    ) {
        let now_ms = self.now_ms();
        let status = outcome.status;
        // Probe/scrape endpoints stay out of the SLO and never trigger
        // postmortems: a failing readiness probe is the daemon *reporting*
        // unreadiness, not failing a request.
        let probe = matches!(endpoint, "healthz" | "readyz" | "metrics");
        if probe {
            self.record_and_log(
                outcome, endpoint, method, path, trace_id, latency_us, queue_us,
            );
            return;
        }
        if let Some(slo) = &self.slo {
            let mut engine = slo.lock().unwrap();
            engine.observe(now_ms, latency_us, status >= 500);
            let alerting = !engine.status(now_ms).ok();
            drop(engine);
            psca_obs::gauge("serve.slo.alerting").set(if alerting { 1.0 } else { 0.0 });
            if alerting {
                if !self.slo_alerted.swap(true, Ordering::SeqCst) {
                    self.dump_postmortem("slo-alert");
                }
            } else {
                self.slo_alerted.store(false, Ordering::SeqCst);
            }
        }
        self.record_and_log(
            outcome, endpoint, method, path, trace_id, latency_us, queue_us,
        );
        if status >= 500 {
            self.dump_postmortem("http-5xx");
        }
        if outcome.escalations > 0 {
            self.dump_postmortem("tier-escalation");
        }
    }

    /// Flight-recorder push + access-log line for one finished request.
    #[allow(clippy::too_many_arguments)]
    fn record_and_log(
        &self,
        outcome: &RequestOutcome,
        endpoint: &str,
        method: &str,
        path: &str,
        trace_id: &str,
        latency_us: u64,
        queue_us: u64,
    ) {
        psca_obs::recorder::global().push(RequestRecord {
            seq: 0,
            ts_ms: self.now_ms(),
            trace_id: trace_id.to_string(),
            endpoint: endpoint.to_string(),
            status: outcome.status,
            latency_us,
            queue_us,
            error_class: outcome.error_class.clone(),
            note: outcome.note.clone(),
        });
        if let Some(sink) = &self.access {
            sink.write_event(&EventRecord {
                level: Level::Info,
                name: "serve.access".to_string(),
                fields: vec![
                    (
                        "trace_id".to_string(),
                        FieldValue::Str(trace_id.to_string()),
                    ),
                    ("method".to_string(), FieldValue::Str(method.to_string())),
                    ("path".to_string(), FieldValue::Str(path.to_string())),
                    (
                        "endpoint".to_string(),
                        FieldValue::Str(endpoint.to_string()),
                    ),
                    (
                        "status".to_string(),
                        FieldValue::U64(u64::from(outcome.status)),
                    ),
                    ("latency_us".to_string(), FieldValue::U64(latency_us)),
                    ("queue_us".to_string(), FieldValue::U64(queue_us)),
                ],
                ts_us: unix_ts_us(),
            });
            sink.flush();
        }
    }

    fn dump_postmortem(&self, reason: &str) {
        if let Some(path) =
            psca_obs::recorder::global().dump(std::path::Path::new(POSTMORTEM_DIR), reason)
        {
            psca_obs::counter("serve.postmortems").inc();
            if psca_obs::enabled(Level::Warn) {
                psca_obs::emit(
                    Level::Warn,
                    "serve.postmortem",
                    &[
                        ("reason", reason.into()),
                        ("path", path.display().to_string().into()),
                    ],
                );
            }
        }
    }
}

/// Microseconds since the Unix epoch (0 when the clock is unavailable).
fn unix_ts_us() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_micros().min(u128::from(u64::MAX)) as u64)
        .unwrap_or(0)
}

/// A running daemon. Dropping it shuts it down and joins every thread.
pub struct Daemon {
    shared: Arc<Shared>,
    accept: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Daemon {
    /// Binds, trains nothing (the registry arrives pre-trained), and
    /// starts the accept thread plus worker pool.
    ///
    /// # Errors
    /// Propagates the bind failure if `config.addr` is unavailable.
    pub fn start(config: ServeConfig, registry: ModelRegistry) -> io::Result<Daemon> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let jobs = psca_exec::resolve_jobs(config.workers);
        let chaos = config
            .chaos
            .clone()
            .filter(ChaosSpec::any_enabled)
            .map(|spec| Mutex::new(FaultInjector::new(spec)));
        let slo = config
            .slo
            .clone()
            .map(|spec| Mutex::new(SloEngine::new(spec)));
        let access_path = config.access_log.clone().or_else(|| {
            std::env::var("PSCA_ACCESS_LOG")
                .ok()
                .filter(|p| !p.trim().is_empty())
                .map(PathBuf::from)
        });
        let access = match access_path {
            Some(path) => match JsonlSink::create(&path) {
                Ok(sink) => Some(sink),
                Err(e) => {
                    eprintln!("psca-serve: cannot open access log {}: {e}", path.display());
                    None
                }
            },
            None => None,
        };
        let shared = Arc::new(Shared {
            registry,
            config,
            local_addr,
            jobs,
            queue: Mutex::new(VecDeque::new()),
            work_ready: Condvar::new(),
            idle: Condvar::new(),
            stop: AtomicBool::new(false),
            hold: AtomicBool::new(false),
            ready: AtomicBool::new(false),
            inflight: AtomicUsize::new(0),
            chaos,
            epoch: Instant::now(),
            slo,
            slo_alerted: AtomicBool::new(false),
            access,
        });
        if psca_obs::enabled(psca_obs::Level::Info) {
            psca_obs::emit(
                psca_obs::Level::Info,
                "serve.start",
                &[
                    ("addr", local_addr.to_string().into()),
                    ("workers", (jobs as u64).into()),
                ],
            );
        }
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("psca-serve-accept".to_string())
                .spawn(move || accept_loop(listener, &shared))?
        };
        let workers = (0..jobs)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("psca-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
            })
            .collect::<io::Result<Vec<_>>>()?;
        // Everything is accepting: flip readiness last so `/readyz`
        // cannot report ready before the pool exists.
        shared.ready.store(true, Ordering::SeqCst);
        Ok(Daemon {
            shared,
            accept: Some(accept),
            workers,
        })
    }

    /// The bound address (resolves port 0 to the real port).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// Pauses the worker pool (connections keep queueing). Test hook for
    /// deterministic backpressure; a later [`Daemon::release`] or
    /// shutdown drains whatever queued meanwhile.
    pub fn hold(&self) {
        self.shared.hold.store(true, Ordering::SeqCst);
    }

    /// Resumes a held worker pool.
    pub fn release(&self) {
        self.shared.hold.store(false, Ordering::SeqCst);
        let _q = self.shared.queue.lock().unwrap();
        self.shared.work_ready.notify_all();
    }

    /// Blocks until the queue is empty and no request is in flight.
    pub fn quiesce(&self) {
        let mut q = self.shared.queue.lock().unwrap();
        while !q.is_empty() || self.shared.inflight.load(Ordering::SeqCst) > 0 {
            let (guard, _) = self
                .shared
                .idle
                .wait_timeout(q, Duration::from_millis(50))
                .unwrap();
            q = guard;
        }
    }

    /// Blocks until the daemon stops (e.g. a client posts
    /// `/v1/shutdown`), then joins every thread.
    pub fn wait(mut self) {
        self.join();
    }

    /// Initiates shutdown, drains queued requests, and joins every
    /// thread. Queued connections are answered, not dropped.
    pub fn shutdown(mut self) {
        self.shared.trigger_stop();
        self.join();
    }

    fn join(&mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.shared.trigger_stop();
        self.join();
    }
}

fn accept_loop(listener: TcpListener, shared: &Shared) {
    for stream in listener.incoming() {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(mut stream) = stream else { continue };
        let depth = shared.queue.lock().unwrap().len();
        let open = depth + shared.inflight.load(Ordering::SeqCst);
        if open >= shared.config.max_connections {
            psca_obs::counter("serve.rejected.connlimit").inc();
            let e = ApiError::unavailable(
                "connection_limit",
                format!(
                    "open connection ceiling ({}) reached",
                    shared.config.max_connections
                ),
            );
            respond(&mut stream, e.status, "application/json", &e.to_json());
            continue;
        }
        if depth >= shared.config.queue_capacity {
            psca_obs::counter("serve.rejected.backpressure").inc();
            let e = ApiError::backpressure(shared.config.queue_capacity);
            respond(&mut stream, e.status, "application/json", &e.to_json());
            continue;
        }
        let mut q = shared.queue.lock().unwrap();
        q.push_back(Queued {
            stream,
            enqueued: Instant::now(),
        });
        shared.queue_depth_gauge(q.len());
        drop(q);
        shared.work_ready.notify_one();
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let stream = {
            let mut q = shared.queue.lock().unwrap();
            loop {
                let stopping = shared.stop.load(Ordering::SeqCst);
                // A held pool leaves work queued (backpressure tests);
                // shutdown overrides the hold so the drain completes.
                if !shared.hold.load(Ordering::SeqCst) || stopping {
                    if let Some(s) = q.pop_front() {
                        shared.queue_depth_gauge(q.len());
                        break Some(s);
                    }
                }
                if stopping {
                    break None;
                }
                let (guard, _) = shared
                    .work_ready
                    .wait_timeout(q, Duration::from_millis(100))
                    .unwrap();
                q = guard;
            }
        };
        let Some(stream) = stream else { break };
        let queue_us = stream
            .enqueued
            .elapsed()
            .as_micros()
            .min(u128::from(u64::MAX)) as u64;
        shared.inflight.fetch_add(1, Ordering::SeqCst);
        shared.inflight_gauge();
        let wants_shutdown = handle_connection(stream.stream, queue_us, shared);
        shared.inflight.fetch_sub(1, Ordering::SeqCst);
        shared.inflight_gauge();
        {
            let _q = shared.queue.lock().unwrap();
            shared.idle.notify_all();
        }
        if wants_shutdown {
            shared.trigger_stop();
        }
    }
}

/// One parsed HTTP request.
struct HttpRequest {
    method: String,
    path: String,
    accept_ndjson: bool,
    /// Context parsed from an inbound W3C `traceparent` header, if any.
    ctx: Option<TraceCtx>,
    body: String,
}

/// True when a socket read failed because the deadline elapsed rather
/// than because the peer misbehaved. Unix reports `WouldBlock`, Windows
/// `TimedOut`, for an expired `set_read_timeout`.
fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Reads the head, then exactly `Content-Length` body bytes.
///
/// `read_timeout` is the per-read slow-client deadline
/// ([`ServeConfig::read_timeout_ms`]); expiry surfaces as a typed `408`.
fn read_request(
    stream: &mut TcpStream,
    max_body: usize,
    read_timeout: Duration,
) -> Result<HttpRequest, ApiError> {
    let _ = stream.set_read_timeout(Some(read_timeout));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
    let mut buf: Vec<u8> = Vec::with_capacity(2048);
    let mut chunk = [0u8; 2048];
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(ApiError::too_large("request head too large"));
        }
        match stream.read(&mut chunk) {
            Ok(0) => return Err(ApiError::bad_request("connection closed mid-request")),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if is_timeout(&e) => {
                return Err(ApiError::timeout(
                    "read deadline exceeded before request head",
                ))
            }
            Err(_) => return Err(ApiError::bad_request("read failed")),
        }
    };
    let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or_default().to_ascii_uppercase();
    let path = parts.next().unwrap_or_default().to_string();
    if method.is_empty() || path.is_empty() {
        return Err(ApiError::bad_request("malformed request line"));
    }
    let mut content_length: Option<usize> = None;
    let mut accept_ndjson = false;
    let mut ctx = None;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        let value = value.trim();
        match name.to_ascii_lowercase().as_str() {
            "content-length" => content_length = value.parse().ok(),
            "accept" => accept_ndjson = value.contains("application/x-ndjson"),
            // Malformed traceparent values are ignored (a fresh context
            // is minted), matching W3C trace-context error handling.
            "traceparent" => ctx = TraceCtx::parse_traceparent(value),
            _ => {}
        }
    }
    let body = if method == "POST" {
        // A missing Content-Length means an empty body (fine for
        // `/v1/shutdown`); body-bearing routes answer 411 themselves.
        let len = content_length.unwrap_or(0);
        if len > max_body {
            return Err(ApiError::too_large(format!(
                "body of {len} bytes exceeds the {max_body}-byte limit"
            )));
        }
        let mut body = buf[head_end + 4..].to_vec();
        while body.len() < len {
            match stream.read(&mut chunk) {
                Ok(0) => return Err(ApiError::bad_request("connection closed mid-body")),
                Ok(n) => body.extend_from_slice(&chunk[..n]),
                Err(e) if is_timeout(&e) => {
                    return Err(ApiError::timeout("read deadline exceeded mid-body"))
                }
                Err(_) => return Err(ApiError::bad_request("body read failed")),
            }
        }
        body.truncate(len);
        String::from_utf8(body).map_err(|_| ApiError::bad_request("body is not UTF-8"))?
    } else {
        String::new()
    };
    Ok(HttpRequest {
        method,
        path,
        accept_ndjson,
        ctx,
        body,
    })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn respond(stream: &mut TcpStream, status: u16, content_type: &str, body: &str) {
    respond_traced(stream, status, content_type, body, None);
}

fn respond_traced(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
    traceparent: Option<&str>,
) {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        411 => "Length Required",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        503 => "Service Unavailable",
        _ => "Error",
    };
    let trace_header = traceparent
        .map(|tp| format!("traceparent: {tp}\r\n"))
        .unwrap_or_default();
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n{trace_header}Connection: close\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

/// Per-request response writer: echoes the request's `traceparent` on
/// every response and captures the outcome (status, error class,
/// degradation notes) for the SLO engine, flight recorder, and access
/// log.
struct Responder<'a> {
    stream: &'a mut TcpStream,
    traceparent: String,
    outcome: RequestOutcome,
}

/// What one request came to, as recorded after the response is written.
#[derive(Debug, Clone)]
struct RequestOutcome {
    status: u16,
    error_class: String,
    note: String,
    /// Degradation-ladder escalations reported by a closed-loop run
    /// (each one triggers a postmortem dump).
    escalations: u64,
}

impl Default for RequestOutcome {
    fn default() -> RequestOutcome {
        RequestOutcome {
            // A connection that dies before any response is written
            // counts as a server-side failure.
            status: 500,
            error_class: String::new(),
            note: String::new(),
            escalations: 0,
        }
    }
}

impl Responder<'_> {
    fn send(&mut self, status: u16, content_type: &str, body: &str) {
        self.outcome.status = status;
        respond_traced(
            self.stream,
            status,
            content_type,
            body,
            Some(&self.traceparent),
        );
    }

    fn send_error(&mut self, e: &ApiError) {
        self.outcome.error_class = e.code.to_string();
        self.send(e.status, "application/json", &e.to_json());
    }
}

/// Endpoint label for metric names.
fn endpoint_key(method: &str, path: &str) -> &'static str {
    match (method, path) {
        (_, "/v1/predict") => "predict",
        (_, "/v1/closed-loop") => "closed_loop",
        (_, "/v1/models") => "models",
        (_, "/v1/shutdown") => "shutdown",
        (_, "/v1/slo") => "slo",
        (_, "/v1/profile") => "profile",
        (_, "/v1/debug/requests") => "debug_requests",
        (_, "/metrics") => "metrics",
        (_, "/healthz") => "healthz",
        (_, "/readyz") => "readyz",
        _ => "other",
    }
}

/// Serves one connection. Returns true when the client requested
/// daemon shutdown.
fn handle_connection(mut stream: TcpStream, queue_us: u64, shared: &Shared) -> bool {
    let started = Instant::now();
    let parsed = read_request(
        &mut stream,
        shared.config.max_body_bytes,
        Duration::from_millis(shared.config.read_timeout_ms.max(1)),
    );
    // Adopt the inbound trace id (fresh span for the server hop) or mint
    // a new context at ingress. Attached for the rest of the handling,
    // so every span/instant recorded below carries the request's ids —
    // including fan-out through psca-exec and the sim.
    let ctx = match &parsed {
        Ok(req) => req.ctx.map(|c| c.child()).unwrap_or_else(TraceCtx::mint),
        Err(_) => TraceCtx::mint(),
    };
    let _ctx_guard = psca_obs::ctx::attach(ctx);
    if psca_obs::trace::enabled() && queue_us > 0 {
        // Backdated: the wait already happened, in the accept queue.
        let now = psca_obs::trace::now_us();
        psca_obs::trace::complete("serve.queue", now.saturating_sub(queue_us), queue_us);
    }
    psca_obs::histogram("serve.queue.wait_us").record(queue_us);

    let (key, method, path, outcome, wants_shutdown) = {
        let _span = psca_obs::SpanTimer::start("serve.request");
        let mut rsp = Responder {
            stream: &mut stream,
            traceparent: ctx.to_traceparent(),
            outcome: RequestOutcome::default(),
        };
        match parsed {
            Ok(req) => {
                let key = endpoint_key(&req.method, &req.path);
                psca_obs::counter(&format!("serve.{key}.requests")).inc();
                let wants_shutdown = match route(&req, shared, &mut rsp) {
                    Ok(wants_shutdown) => wants_shutdown,
                    Err(e) => {
                        psca_obs::counter(&format!("serve.{key}.errors")).inc();
                        rsp.send_error(&e);
                        false
                    }
                };
                (
                    key,
                    req.method.clone(),
                    req.path.clone(),
                    rsp.outcome,
                    wants_shutdown,
                )
            }
            Err(e) => {
                psca_obs::counter("serve.other.errors").inc();
                rsp.send_error(&e);
                ("other", String::new(), String::new(), rsp.outcome, false)
            }
        }
    };
    let micros = started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
    psca_obs::histogram(&format!("serve.{key}.latency_us"))
        .record_with_exemplar(micros, &ctx.trace_id_hex());
    shared.finish_request(
        &outcome,
        key,
        &method,
        &path,
        &ctx.trace_id_hex(),
        micros,
        queue_us,
    );
    wants_shutdown
}

/// Dispatches a parsed request. `Ok(true)` means shut the daemon down.
fn route(req: &HttpRequest, shared: &Shared, rsp: &mut Responder<'_>) -> Result<bool, ApiError> {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => {
            // Liveness: the process is up and serving; says nothing about
            // whether it can take traffic (that is `/readyz`).
            let body = Json::obj(vec![
                ("status", "ok".into()),
                ("models", (shared.registry.len() as u64).into()),
            ])
            .to_string();
            rsp.send(200, "application/json", &body);
            Ok(false)
        }
        ("GET", "/readyz") => {
            // Readiness: the registry has models and the pool is
            // accepting work. Held/stopping daemons are not ready.
            let ready = shared.ready.load(Ordering::SeqCst)
                && !shared.registry.is_empty()
                && !shared.hold.load(Ordering::SeqCst)
                && !shared.stop.load(Ordering::SeqCst);
            if !ready {
                return Err(ApiError::unavailable(
                    "not_ready",
                    "daemon is not ready to take traffic",
                ));
            }
            let body = Json::obj(vec![
                ("status", "ready".into()),
                ("models", (shared.registry.len() as u64).into()),
                ("workers", (shared.jobs as u64).into()),
            ])
            .to_string();
            rsp.send(200, "application/json", &body);
            Ok(false)
        }
        ("GET", "/metrics") => {
            let body = psca_obs::exporter::prometheus_text(&psca_obs::snapshot());
            rsp.send(200, "text/plain; version=0.0.4", &body);
            Ok(false)
        }
        ("GET", "/v1/slo") => {
            let body = match &shared.slo {
                Some(engine) => engine.lock().unwrap().to_json(shared.now_ms()).to_string(),
                None => Json::obj(vec![("enabled", false.into())]).to_string(),
            };
            rsp.send(200, "application/json", &body);
            Ok(false)
        }
        ("GET", "/v1/debug/requests") => {
            let body = psca_obs::recorder::global().to_json().to_string();
            rsp.send(200, "application/json", &body);
            Ok(false)
        }
        ("GET", "/v1/profile") => {
            // Self-profiler scrape: the top self-time call-tree nodes
            // accumulated since the previous scrape. Reading drains the
            // global profile, so successive scrapes cover disjoint
            // windows — the natural shape for a poller watching a
            // loaded daemon live. Off (`enabled: false`) unless the
            // process runs with PSCA_PROF=1.
            let enabled = psca_obs::prof::enabled();
            let profile = psca_obs::prof::drain();
            let top: Vec<Json> = profile
                .top_self(20)
                .iter()
                .map(|(stack, stat)| {
                    Json::obj(vec![
                        ("stack", stack.as_str().into()),
                        ("calls", stat.calls.into()),
                        ("total_us", (stat.total_ns / 1_000).into()),
                        ("self_us", (stat.self_ns / 1_000).into()),
                    ])
                })
                .collect();
            let body = Json::obj(vec![
                ("enabled", enabled.into()),
                ("stacks", (profile.len() as u64).into()),
                ("top", Json::Arr(top)),
            ])
            .to_string();
            rsp.send(200, "application/json", &body);
            Ok(false)
        }
        ("GET", "/v1/models") => {
            rsp.send(
                200,
                "application/json",
                &shared.registry.models_json().to_string(),
            );
            Ok(false)
        }
        ("POST", "/v1/predict") => {
            require_body(req)?;
            maybe_inject_chaos(shared)?;
            let parsed = PredictRequest::parse(&req.body)?;
            let model = shared.registry.get(&parsed.model).ok_or_else(|| {
                ApiError::not_found(format!("no model named \"{}\"", parsed.model))
            })?;
            parsed.check_dims(model)?;
            let scored = api::score_rows(model, parsed.mode, &parsed.rows, shared.jobs);
            if req.accept_ndjson {
                rsp.send(200, "application/x-ndjson", &api::predict_ndjson(&scored));
            } else {
                rsp.send(
                    200,
                    "application/json",
                    &api::predict_json(&parsed.model, &scored),
                );
            }
            Ok(false)
        }
        ("POST", "/v1/closed-loop") => {
            require_body(req)?;
            maybe_inject_chaos(shared)?;
            let spec = ClosedLoopSpec::parse(&req.body)?;
            let (body, escalations) = run_closed_loop_endpoint(&spec, shared)?;
            rsp.outcome.escalations = escalations;
            if escalations > 0 {
                rsp.outcome.note = format!("{escalations} degradation escalation(s)");
            }
            rsp.send(200, "application/json", &body);
            Ok(false)
        }
        ("POST", "/v1/shutdown") => {
            let body = Json::obj(vec![("status", "draining".into())]).to_string();
            rsp.send(200, "application/json", &body);
            Ok(true)
        }
        (
            method,
            path @ ("/healthz" | "/readyz" | "/metrics" | "/v1/models" | "/v1/slo" | "/v1/profile"
            | "/v1/debug/requests"),
        ) => Err(ApiError::method_not_allowed(method, path)),
        (method, path @ ("/v1/predict" | "/v1/closed-loop" | "/v1/shutdown")) => {
            Err(ApiError::method_not_allowed(method, path))
        }
        (_, path) => Err(ApiError::not_found(format!("no route for {path}"))),
    }
}

/// Rejects body-bearing routes called without a body (411).
fn require_body(req: &HttpRequest) -> Result<(), ApiError> {
    if req.body.is_empty() {
        return Err(ApiError {
            status: 411,
            code: "length_required",
            message: format!("{} requires a JSON body with Content-Length", req.path),
        });
    }
    Ok(())
}

/// Rolls the chaos injector (when configured) for one serving-path
/// fault, mirroring the firmware fault classes: a dropped prediction or
/// corrupted weights reject the request with 503, a latency overrun
/// stalls it past its deadline but still answers.
fn maybe_inject_chaos(shared: &Shared) -> Result<(), ApiError> {
    let Some(chaos) = &shared.chaos else {
        return Ok(());
    };
    let fault = {
        let mut inj = chaos.lock().unwrap();
        inj.begin_window();
        inj.prediction_fault()
    };
    let Some(fault) = fault else { return Ok(()) };
    psca_obs::counter("serve.chaos.injected").inc();
    match fault {
        PredictionFault::Dropped => Err(ApiError::unavailable(
            "chaos_dropped",
            "chaos: prediction dropped",
        )),
        PredictionFault::WeightCorruption => Err(ApiError::unavailable(
            "chaos_corrupted",
            "chaos: model weights corrupted",
        )),
        PredictionFault::LatencyOverrun => {
            std::thread::sleep(Duration::from_millis(5));
            Ok(())
        }
    }
}

/// Runs a seeded closed-loop simulation for the requested workload spec
/// and renders the result summary. Also returns the degradation-ladder
/// escalation count so the caller can trigger postmortems.
fn run_closed_loop_endpoint(
    spec: &ClosedLoopSpec,
    shared: &Shared,
) -> Result<(String, u64), ApiError> {
    let model = shared
        .registry
        .get(&spec.model)
        .ok_or_else(|| ApiError::not_found(format!("no model named \"{}\"", spec.model)))?;
    let cfg = shared.registry.config();
    let mut gen = PhaseGenerator::new(spec.archetype.center(), spec.seed);
    let window_insts = spec.windows * model.granularity_insts(cfg.interval_insts);
    let (warm, window) = record_trace(&mut gen, spec.warm_insts, window_insts);
    // Per-request fidelity wins; the daemon's experiment config (set by
    // `repro serve --backend`) is the default.
    let backend = spec.backend.unwrap_or(cfg.backend);
    psca_obs::counter(if backend.is_reference() {
        "serve.closed_loop.cycle_accurate"
    } else {
        "serve.closed_loop.surrogate"
    })
    .inc();
    let mut request =
        ClosedLoopRequest::new(model, &warm, &window, cfg.interval_insts).with_backend(backend);
    if let Some(chaos) = &spec.chaos {
        request = request.with_faults(chaos.clone());
    }
    let mut fields: Vec<(&str, Json)> = vec![
        ("model", spec.model.as_str().into()),
        ("archetype", format!("{:?}", spec.archetype).into()),
        ("seed", spec.seed.into()),
        ("backend", backend.as_str().into()),
    ];
    let hardened = spec.hardened || spec.chaos.is_some();
    let mut escalations = 0;
    if hardened {
        let out = request.hardened().run_hardened();
        push_result_fields(&mut fields, &out.result);
        fields.push((
            "degraded_fraction",
            Json::Num(out.degrade.degraded_fraction()),
        ));
        fields.push(("escalations", out.degrade.escalations.into()));
        fields.push(("recoveries", out.degrade.recoveries.into()));
        fields.push(("faults_injected", out.faults.total().into()));
        fields.push(("images_rejected", out.images_rejected.into()));
        escalations = out.degrade.escalations;
    } else {
        push_result_fields(&mut fields, &request.run());
    }
    Ok((Json::obj(fields).to_string(), escalations))
}

fn push_result_fields(fields: &mut Vec<(&str, Json)>, r: &psca_adapt::ClosedLoopResult) {
    fields.push(("windows", (r.modes.len() as u64).into()));
    fields.push(("instructions", r.instructions.into()));
    fields.push(("cycles", r.cycles.into()));
    fields.push(("energy", Json::Num(r.energy)));
    fields.push(("ppw", Json::Num(r.ppw())));
    fields.push(("low_power_residency", Json::Num(r.low_power_residency)));
}
