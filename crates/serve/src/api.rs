//! Versioned wire types for the `/v1` endpoints: typed requests parsed
//! from JSON with explicit limits, and typed errors that map onto 4xx
//! status codes instead of panics or silent truncation.

use psca_adapt::TrainedAdaptModel;
use psca_cpu::{BackendChoice, Mode};
use psca_faults::ChaosSpec;
use psca_ml::Classifier;
use psca_obs::Json;
use psca_workloads::Archetype;

/// Hard cap on rows in one `/v1/predict` batch.
pub const MAX_BATCH_ROWS: usize = 4_096;
/// Hard cap on features per row (far above any real counter set).
pub const MAX_ROW_DIM: usize = 1_024;
/// Hard cap on prediction windows in one `/v1/closed-loop` run.
pub const MAX_WINDOWS: u64 = 256;
/// Hard cap on warm-up instructions in one `/v1/closed-loop` run.
pub const MAX_WARM_INSTS: u64 = 1_000_000;

/// A typed request failure: HTTP status, stable machine-readable code,
/// and a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApiError {
    /// HTTP status to respond with.
    pub status: u16,
    /// Stable error code (`"bad_json"`, `"dimension_mismatch"`, ...).
    pub code: &'static str,
    /// Human-readable detail.
    pub message: String,
}

impl ApiError {
    /// 400: the body is not valid JSON or misses required members.
    pub fn bad_request(message: impl Into<String>) -> ApiError {
        ApiError {
            status: 400,
            code: "bad_request",
            message: message.into(),
        }
    }

    /// 400: JSON syntax error, with the parser's offset detail.
    pub fn bad_json(message: impl Into<String>) -> ApiError {
        ApiError {
            status: 400,
            code: "bad_json",
            message: message.into(),
        }
    }

    /// 404: no such route or model.
    pub fn not_found(message: impl Into<String>) -> ApiError {
        ApiError {
            status: 404,
            code: "not_found",
            message: message.into(),
        }
    }

    /// 405: the route exists but not for this method.
    pub fn method_not_allowed(method: &str, path: &str) -> ApiError {
        ApiError {
            status: 405,
            code: "method_not_allowed",
            message: format!("{method} not allowed on {path}"),
        }
    }

    /// 408: the client stalled past the per-connection read deadline
    /// ([`ServeConfig::read_timeout_ms`](crate::ServeConfig::read_timeout_ms)).
    pub fn timeout(message: impl Into<String>) -> ApiError {
        ApiError {
            status: 408,
            code: "request_timeout",
            message: message.into(),
        }
    }

    /// 413: the request exceeds a size limit.
    pub fn too_large(message: impl Into<String>) -> ApiError {
        ApiError {
            status: 413,
            code: "payload_too_large",
            message: message.into(),
        }
    }

    /// 422: well-formed JSON whose values violate model constraints.
    pub fn unprocessable(code: &'static str, message: impl Into<String>) -> ApiError {
        ApiError {
            status: 422,
            code,
            message: message.into(),
        }
    }

    /// 429: the bounded request queue is full (backpressure).
    pub fn backpressure(capacity: usize) -> ApiError {
        ApiError {
            status: 429,
            code: "queue_full",
            message: format!("request queue at capacity ({capacity}); retry later"),
        }
    }

    /// 503: connection limit reached or chaos injected on the serving
    /// path.
    pub fn unavailable(code: &'static str, message: impl Into<String>) -> ApiError {
        ApiError {
            status: 503,
            code,
            message: message.into(),
        }
    }

    /// The error document sent on the wire.
    pub fn to_json(&self) -> String {
        Json::obj(vec![
            ("error", self.code.into()),
            ("message", self.message.as_str().into()),
        ])
        .to_string()
    }
}

/// Parsed `POST /v1/predict` body.
#[derive(Debug, Clone, PartialEq)]
pub struct PredictRequest {
    /// Registry name of the model to use.
    pub model: String,
    /// Which per-mode predictor scores the rows (telemetry observed in
    /// high-performance or low-power mode). Defaults to high-performance.
    pub mode: Mode,
    /// Feature rows, already featurized to the model's input dimension.
    pub rows: Vec<Vec<f64>>,
}

impl PredictRequest {
    /// Parses and size-validates a predict body.
    ///
    /// # Errors
    /// 400 on malformed JSON or missing members, 413 on oversized
    /// batches, 422 on non-numeric features or an unknown mode.
    pub fn parse(body: &str) -> Result<PredictRequest, ApiError> {
        let doc = Json::parse(body).map_err(|e| ApiError::bad_json(e.to_string()))?;
        let model = doc
            .get("model")
            .and_then(Json::as_str)
            .ok_or_else(|| ApiError::bad_request("missing string member `model`"))?
            .to_string();
        let mode = match doc.get("mode").and_then(Json::as_str) {
            None | Some("hi") => Mode::HighPerf,
            Some("lo") => Mode::LowPower,
            Some(other) => {
                return Err(ApiError::unprocessable(
                    "unknown_mode",
                    format!("mode must be \"hi\" or \"lo\", got \"{other}\""),
                ))
            }
        };
        let rows_json = doc
            .get("rows")
            .and_then(Json::as_arr)
            .ok_or_else(|| ApiError::bad_request("missing array member `rows`"))?;
        if rows_json.is_empty() {
            return Err(ApiError::unprocessable("empty_batch", "rows is empty"));
        }
        if rows_json.len() > MAX_BATCH_ROWS {
            return Err(ApiError::too_large(format!(
                "batch of {} rows exceeds the {MAX_BATCH_ROWS}-row limit",
                rows_json.len()
            )));
        }
        let mut rows = Vec::with_capacity(rows_json.len());
        for (i, row) in rows_json.iter().enumerate() {
            let items = row.as_arr().ok_or_else(|| {
                ApiError::unprocessable("bad_row", format!("rows[{i}] is not an array"))
            })?;
            if items.len() > MAX_ROW_DIM {
                return Err(ApiError::too_large(format!(
                    "rows[{i}] has {} features, limit {MAX_ROW_DIM}",
                    items.len()
                )));
            }
            let mut out = Vec::with_capacity(items.len());
            for (j, v) in items.iter().enumerate() {
                let x = v.as_f64().ok_or_else(|| {
                    ApiError::unprocessable(
                        "bad_feature",
                        format!("rows[{i}][{j}] is not a number"),
                    )
                })?;
                out.push(x);
            }
            rows.push(out);
        }
        Ok(PredictRequest { model, mode, rows })
    }

    /// Validates every row against the model's recorded input dimension.
    ///
    /// # Errors
    /// 422 `dimension_mismatch` naming the first offending row.
    pub fn check_dims(&self, model: &TrainedAdaptModel) -> Result<(), ApiError> {
        let (_, fw) = model.mode_parts(self.mode);
        let Some(expected) = fw.input_dim() else {
            return Ok(());
        };
        for (i, row) in self.rows.iter().enumerate() {
            if row.len() != expected {
                return Err(ApiError::unprocessable(
                    "dimension_mismatch",
                    format!(
                        "rows[{i}] has {} features, model expects {expected}",
                        row.len()
                    ),
                ));
            }
        }
        Ok(())
    }
}

/// One scored row of a predict response.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scored {
    /// HighPerf→LowPower gating probability from the mode predictor.
    pub proba: f64,
    /// Thresholded gating decision.
    pub gate: bool,
}

/// Scores every row through the model's [`Classifier`] surface, fanning
/// large batches across `jobs` workers via `psca-exec` (order-preserving,
/// so results are bit-identical to a serial pass).
pub fn score_rows(
    model: &TrainedAdaptModel,
    mode: Mode,
    rows: &[Vec<f64>],
    jobs: usize,
) -> Vec<Scored> {
    let (_, fw) = model.mode_parts(mode);
    let clf: &(dyn Classifier + Sync) = fw;
    let items: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
    psca_exec::map_indexed(jobs, items, &|_, row| Scored {
        proba: clf.predict_proba(row),
        gate: clf.predict(row),
    })
}

/// Renders scored rows as a JSON document (`Accept: application/json`).
pub fn predict_json(model: &str, scored: &[Scored]) -> String {
    let results = scored
        .iter()
        .map(|s| Json::obj(vec![("proba", Json::Num(s.proba)), ("gate", s.gate.into())]))
        .collect();
    Json::obj(vec![
        ("model", model.into()),
        ("count", (scored.len() as u64).into()),
        ("results", Json::Arr(results)),
    ])
    .to_string()
}

/// Renders scored rows as NDJSON, one object per line
/// (`Accept: application/x-ndjson`).
pub fn predict_ndjson(scored: &[Scored]) -> String {
    let mut out = String::new();
    for (i, s) in scored.iter().enumerate() {
        out.push_str(
            &Json::obj(vec![
                ("row", (i as u64).into()),
                ("proba", Json::Num(s.proba)),
                ("gate", s.gate.into()),
            ])
            .to_string(),
        );
        out.push('\n');
    }
    out
}

/// Parsed `POST /v1/closed-loop` body: a seeded workload spec the daemon
/// turns into traces, a `ClosedLoopRequest`, and a summary document.
#[derive(Debug, Clone, PartialEq)]
pub struct ClosedLoopSpec {
    /// Registry name of the model to deploy in the loop.
    pub model: String,
    /// Workload phase archetype generating the trace.
    pub archetype: Archetype,
    /// Workload generator seed.
    pub seed: u64,
    /// Prediction windows to simulate.
    pub windows: u64,
    /// Warm-up instructions replayed before measurement.
    pub warm_insts: u64,
    /// Optional chaos on the simulated loop (psca-faults grammar).
    pub chaos: Option<ChaosSpec>,
    /// Run the hardened engine even without chaos.
    pub hardened: bool,
    /// Simulation fidelity override; `None` uses the server's configured
    /// default backend.
    pub backend: Option<BackendChoice>,
}

/// Parses an archetype name, tolerant of case and `-`/`_` separators
/// (`"dep-chain"`, `"DepChain"`, `"mem_bound"`).
pub fn parse_archetype(name: &str) -> Option<Archetype> {
    let canon = |s: &str| {
        s.chars()
            .filter(|c| c.is_ascii_alphanumeric())
            .map(|c| c.to_ascii_lowercase())
            .collect::<String>()
    };
    let wanted = canon(name);
    Archetype::ALL
        .into_iter()
        .find(|a| canon(&format!("{a:?}")) == wanted)
}

impl ClosedLoopSpec {
    /// Parses and limit-validates a closed-loop body.
    ///
    /// # Errors
    /// 400 on malformed JSON or missing members, 413 on runs over the
    /// window/warm-up limits, 422 on unknown archetypes or chaos specs.
    pub fn parse(body: &str) -> Result<ClosedLoopSpec, ApiError> {
        let doc = Json::parse(body).map_err(|e| ApiError::bad_json(e.to_string()))?;
        let model = doc
            .get("model")
            .and_then(Json::as_str)
            .ok_or_else(|| ApiError::bad_request("missing string member `model`"))?
            .to_string();
        let arch_name = doc
            .get("archetype")
            .and_then(Json::as_str)
            .ok_or_else(|| ApiError::bad_request("missing string member `archetype`"))?;
        let archetype = parse_archetype(arch_name).ok_or_else(|| {
            ApiError::unprocessable(
                "unknown_archetype",
                format!("unknown archetype \"{arch_name}\""),
            )
        })?;
        let seed = doc.get("seed").and_then(Json::as_u64).unwrap_or(1);
        let windows = doc.get("windows").and_then(Json::as_u64).unwrap_or(16);
        if windows == 0 {
            return Err(ApiError::unprocessable("empty_run", "windows must be > 0"));
        }
        if windows > MAX_WINDOWS {
            return Err(ApiError::too_large(format!(
                "{windows} windows exceeds the {MAX_WINDOWS}-window limit"
            )));
        }
        let warm_insts = doc
            .get("warm_insts")
            .and_then(Json::as_u64)
            .unwrap_or(2_000);
        if warm_insts > MAX_WARM_INSTS {
            return Err(ApiError::too_large(format!(
                "warm_insts {warm_insts} exceeds the {MAX_WARM_INSTS} limit"
            )));
        }
        let chaos =
            match doc.get("chaos").and_then(Json::as_str) {
                None => None,
                Some(spec) => Some(ChaosSpec::parse(spec).map_err(|e| {
                    ApiError::unprocessable("bad_chaos_spec", format!("chaos: {e}"))
                })?),
            };
        let hardened = matches!(doc.get("hardened"), Some(Json::Bool(true)));
        let backend = match doc.get("backend").and_then(Json::as_str) {
            None => None,
            Some(name) => Some(
                name.parse::<BackendChoice>()
                    .map_err(|e| ApiError::unprocessable("unknown_backend", e.to_string()))?,
            ),
        };
        Ok(ClosedLoopSpec {
            model,
            archetype,
            seed,
            windows,
            warm_insts,
            chaos,
            hardened,
            backend,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predict_request_round_trips() {
        let req =
            PredictRequest::parse(r#"{"model":"best-rf","mode":"lo","rows":[[1.0,2.5],[3,4]]}"#)
                .unwrap();
        assert_eq!(req.model, "best-rf");
        assert_eq!(req.mode, Mode::LowPower);
        assert_eq!(req.rows, vec![vec![1.0, 2.5], vec![3.0, 4.0]]);
        // Mode defaults to hi.
        let req = PredictRequest::parse(r#"{"model":"m","rows":[[0]]}"#).unwrap();
        assert_eq!(req.mode, Mode::HighPerf);
    }

    #[test]
    fn predict_request_rejects_malformed_inputs() {
        assert_eq!(PredictRequest::parse("{not json").unwrap_err().status, 400);
        assert_eq!(
            PredictRequest::parse(r#"{"rows":[[1]]}"#)
                .unwrap_err()
                .status,
            400
        );
        assert_eq!(
            PredictRequest::parse(r#"{"model":"m","rows":[]}"#)
                .unwrap_err()
                .code,
            "empty_batch"
        );
        assert_eq!(
            PredictRequest::parse(r#"{"model":"m","mode":"turbo","rows":[[1]]}"#)
                .unwrap_err()
                .code,
            "unknown_mode"
        );
        assert_eq!(
            PredictRequest::parse(r#"{"model":"m","rows":[["a"]]}"#)
                .unwrap_err()
                .code,
            "bad_feature"
        );
        let big_batch = format!(
            r#"{{"model":"m","rows":[{}]}}"#,
            vec!["[1]"; MAX_BATCH_ROWS + 1].join(",")
        );
        assert_eq!(PredictRequest::parse(&big_batch).unwrap_err().status, 413);
    }

    #[test]
    fn archetype_names_parse_in_any_style() {
        assert_eq!(parse_archetype("DepChain"), Some(Archetype::DepChain));
        assert_eq!(parse_archetype("dep-chain"), Some(Archetype::DepChain));
        assert_eq!(parse_archetype("MEM_BOUND"), Some(Archetype::MemBound));
        assert_eq!(parse_archetype("warp-drive"), None);
    }

    #[test]
    fn closed_loop_spec_parses_and_validates() {
        let spec = ClosedLoopSpec::parse(
            r#"{"model":"best-rf","archetype":"dep-chain","seed":9,"windows":8}"#,
        )
        .unwrap();
        assert_eq!(spec.archetype, Archetype::DepChain);
        assert_eq!(spec.seed, 9);
        assert_eq!(spec.windows, 8);
        assert!(spec.chaos.is_none());
        let over = format!(
            r#"{{"model":"m","archetype":"balanced","windows":{}}}"#,
            MAX_WINDOWS + 1
        );
        assert_eq!(ClosedLoopSpec::parse(&over).unwrap_err().status, 413);
        assert_eq!(
            ClosedLoopSpec::parse(r#"{"model":"m","archetype":"balanced","chaos":"nope"}"#)
                .unwrap_err()
                .code,
            "bad_chaos_spec"
        );
    }

    #[test]
    fn closed_loop_spec_parses_backend_fidelity() {
        let spec =
            ClosedLoopSpec::parse(r#"{"model":"m","archetype":"balanced","backend":"surrogate"}"#)
                .unwrap();
        assert_eq!(spec.backend, Some(BackendChoice::Surrogate));
        let spec = ClosedLoopSpec::parse(r#"{"model":"m","archetype":"balanced"}"#).unwrap();
        assert!(spec.backend.is_none());
        let err =
            ClosedLoopSpec::parse(r#"{"model":"m","archetype":"balanced","backend":"oracle"}"#)
                .unwrap_err();
        assert_eq!(err.status, 422);
        assert_eq!(err.code, "unknown_backend");
    }

    #[test]
    fn error_documents_are_json() {
        let e = ApiError::backpressure(64);
        assert_eq!(e.status, 429);
        let doc = Json::parse(&e.to_json()).unwrap();
        assert_eq!(doc.get("error").and_then(Json::as_str), Some("queue_full"));
    }

    #[test]
    fn ndjson_emits_one_line_per_row() {
        let scored = [
            Scored {
                proba: 0.25,
                gate: false,
            },
            Scored {
                proba: 0.75,
                gate: true,
            },
        ];
        let text = predict_ndjson(&scored);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let first = Json::parse(lines[0]).unwrap();
        assert_eq!(first.get("row").and_then(Json::as_u64), Some(0));
        assert_eq!(first.get("proba").and_then(Json::as_f64), Some(0.25));
    }
}
