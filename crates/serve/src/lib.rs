//! # psca-serve — adaptation as a service
//!
//! An HTTP daemon exposing the reproduction's trained gating models and
//! closed-loop simulator behind a small, versioned, typed request API —
//! the deployment shape the paper's §7 firmware-update story implies:
//! post-silicon models live behind a service boundary, and clients
//! (firmware build pipelines, fleet tooling) talk to it over the wire.
//!
//! Endpoints:
//!
//! - `POST /v1/predict` — batch gating predictions through a model's
//!   [`psca_ml::Classifier`] surface; JSON array or NDJSON responses.
//! - `POST /v1/closed-loop` — a seeded closed-loop simulation from a
//!   workload spec, optionally chaos-hardened, returning a run summary.
//! - `GET /v1/models` — registry: names, kinds, input dims, granularity.
//! - `GET /healthz`, `GET /metrics` — liveness and Prometheus text.
//! - `POST /v1/shutdown` — graceful drain: queued requests are answered,
//!   then every thread exits.
//!
//! Machinery (all `std`, no new dependencies):
//!
//! - a bounded request queue with `429` backpressure past capacity and a
//!   `503` connection ceiling ([`server::ServeConfig`]);
//! - a worker pool sized by `psca-exec`'s jobs resolution;
//! - per-endpoint request/error counters and latency histograms plus
//!   in-flight/queue-depth gauges via `psca-obs`;
//! - request-size and feature-dimension validation with typed 4xx errors
//!   ([`api::ApiError`]);
//! - optional fault injection on the serving path via `psca-faults`.
//!
//! See `docs/SERVING.md` for the protocol reference and examples.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod api;
pub mod registry;
pub mod server;

pub use api::{ApiError, ClosedLoopSpec, PredictRequest};
pub use registry::ModelRegistry;
pub use server::{Daemon, ServeConfig};
