//! The fleet harness: N skewed dies, a staged firmware rollout, and the
//! machine-readable report behind `repro fleet`.
//!
//! A fleet run is a pure function of `(ExperimentConfig, FleetParams)`:
//! per-die traces, skews, and chaos seeds all derive from the fleet
//! seed, and every batch of die simulations fans out through one
//! [`psca_exec::Sweep`] whose merge is bit-identical to the serial
//! order. The staged rollout itself is inherently serial — each stage's
//! verdict decides whether the next cohort ever sees the candidate — so
//! parallelism lives inside a stage (cohort dies × {baseline,
//! candidate}), never across stages.

use crate::rollout::{
    CohortHealth, FleetImage, Rollout, RolloutSpec, RolloutStatus, StageAction, StageOutcome,
};
use crate::skew::{DieSkew, SkewSpec};
use psca_adapt::{
    collect_paired, record_trace, zoo, ClosedLoopRequest, CorpusTelemetry, ExperimentConfig,
    ModelKind, Sla, TrainedAdaptModel,
};
use psca_cpu::{BackendChoice, ClusterSim, CpuConfig, Mode};
use psca_faults::ChaosSpec;
use psca_obs::Json;
use psca_trace::VecTrace;
use psca_uc::image;
use psca_workloads::{Archetype, PhaseGenerator};

/// Workload archetypes cycled across die ids, mirroring the chaos sweep.
const ARCHETYPES: [(Archetype, &str); 4] = [
    (Archetype::DepChain, "dep_chain"),
    (Archetype::ScalarIlp, "scalar_ilp"),
    (Archetype::MemBound, "mem_bound"),
    (Archetype::Balanced, "balanced"),
];

/// Everything that specifies one fleet run beyond the experiment config.
#[derive(Debug, Clone)]
pub struct FleetParams {
    /// Dies in the fleet.
    pub size: usize,
    /// Fleet seed: skews, workloads, and chaos streams derive from it.
    pub seed: u64,
    /// Prediction windows each die simulates per run.
    pub windows: u64,
    /// Per-die variation bounds.
    pub skew: SkewSpec,
    /// Staged-rollout tuning; `None` keeps the baseline image fleet-wide.
    pub rollout: Option<RolloutSpec>,
    /// Chaos injected on every die (per-die seeds are derived); `None`
    /// leaves only each die's skew noise floor.
    pub chaos: Option<ChaosSpec>,
    /// Deliberately sabotage the candidate image (its predictors always
    /// gate) so a healthy rollout must roll back at the canary: the CI
    /// regression scenario.
    pub bad_image: bool,
}

impl Default for FleetParams {
    fn default() -> FleetParams {
        FleetParams {
            size: 8,
            seed: 1,
            windows: 12,
            skew: SkewSpec::default_skew(),
            rollout: Some(RolloutSpec::default()),
            chaos: None,
            bad_image: false,
        }
    }
}

/// One die's fixed context: its skewed machine, workload trace, chaos
/// spec, and static high-performance IPC reference.
#[derive(Debug, Clone)]
struct DiePrep {
    skew: DieSkew,
    archetype: &'static str,
    cpu: CpuConfig,
    chaos: ChaosSpec,
    warm: VecTrace,
    window: VecTrace,
    refs: Vec<f64>,
}

/// Raw accounting of one die running one image.
#[derive(Debug, Clone, PartialEq)]
pub struct DieStats {
    /// Prediction windows simulated.
    pub windows: usize,
    /// Windows spent in low-power mode.
    pub low: usize,
    /// Gated windows whose IPC fell below the SLA threshold against the
    /// die's static high-performance reference.
    pub violations: usize,
    /// Total energy.
    pub energy: f64,
    /// Total instructions.
    pub instructions: u64,
    /// Degradation-ladder escalations.
    pub escalations: u64,
    /// Most degraded tier reached.
    pub worst: &'static str,
    /// Faults injected, all classes.
    pub faults: u64,
    /// Corrupted firmware images rejected in-loop.
    pub images_rejected: u64,
}

impl DieStats {
    /// SLA-violation rate over the run's windows.
    pub fn rsv(&self) -> f64 {
        self.violations as f64 / self.windows.max(1) as f64
    }

    /// Performance per watt (0 when no finite energy was recorded).
    pub fn ppw(&self) -> f64 {
        if !self.energy.is_finite() || self.energy <= 0.0 {
            return 0.0;
        }
        self.instructions as f64 / self.energy
    }

    /// Fraction of windows spent in low-power mode.
    pub fn low_residency(&self) -> f64 {
        self.low as f64 / self.windows.max(1) as f64
    }
}

/// Per-window IPC of a static high-performance run of `window` on `cpu`:
/// the SLA reference for one die (the chaos sweep's helper, generalized
/// to a skewed machine).
fn reference_ipc(
    cpu: &CpuConfig,
    warm: &VecTrace,
    window: &VecTrace,
    interval_insts: u64,
    g: usize,
) -> Vec<f64> {
    let mut sim = ClusterSim::new(cpu.clone());
    let mut warm_replay = warm.clone();
    sim.warm_up(&mut warm_replay, warm.len() as u64);
    let mut replay = window.clone();
    let mut out = Vec::new();
    'outer: loop {
        let mut cycles = 0u64;
        let mut insts = 0u64;
        for _ in 0..g {
            let Some(r) = sim.run_interval(&mut replay, interval_insts) else {
                break 'outer;
            };
            cycles += r.snapshot.cycles;
            insts += r.instructions;
        }
        out.push(insts as f64 / cycles.max(1) as f64);
    }
    out
}

/// A prepared fleet: trained model, baseline/candidate images, and one
/// [`DiePrep`] per die. Splitting preparation from execution lets tests
/// score a single die serially ([`FleetSetup::die_stats`]) against the
/// sweep-merged report — the "rollout disabled ≡ N independent loops"
/// invariant.
pub struct FleetSetup {
    cfg: ExperimentConfig,
    model: TrainedAdaptModel,
    baseline: FleetImage,
    candidate: FleetImage,
    dies: Vec<DiePrep>,
}

/// Encodes `model`'s two predictors as a [`FleetImage`].
fn encode_image(model: &TrainedAdaptModel, version: u32) -> FleetImage {
    FleetImage {
        version,
        hi: image::encode(&model.fw_hi).expect("deployable firmware encodes"),
        lo: image::encode(&model.fw_lo).expect("deployable firmware encodes"),
    }
}

impl FleetSetup {
    /// Trains the fleet's adaptation model and derives every die's
    /// context from the fleet seed. Deterministic in
    /// `(cfg.seed, cfg.interval_insts, params)`; `cfg.jobs` only changes
    /// wall time.
    pub fn prepare(cfg: &ExperimentConfig, params: &FleetParams) -> FleetSetup {
        let _span = psca_obs::SpanTimer::start("fleet.prepare");
        // Small dedicated corpus + the paper's best forest, exactly as
        // the chaos harness: the fleet measures deployment robustness,
        // not model quality.
        let traces = psca_exec::Sweep::new("fleet.corpus").jobs(cfg.jobs).run(
            (0..ARCHETYPES.len()).collect(),
            |&i| {
                let mut gen = PhaseGenerator::new(ARCHETYPES[i].0.center(), i as u64 + 30);
                collect_paired(&mut gen, 2_000, 24, 2_000, i as u32, "fleet", 1)
            },
        );
        let corpus = CorpusTelemetry { traces };
        let model = zoo::train(ModelKind::BestRf, &corpus, cfg);
        let g = model.granularity;
        let window_insts = params.windows * model.granularity_insts(cfg.interval_insts);

        let baseline = encode_image(&model, 1);
        let candidate = if params.bad_image {
            // A *valid* image (decodes, passes CRC and weight checks)
            // whose predictors unconditionally gate: the regression a
            // checksum cannot catch and only cohort health can.
            let mut bad = model.clone();
            bad.fw_hi.set_threshold(0.0);
            bad.fw_lo.set_threshold(0.0);
            encode_image(&bad, 2)
        } else {
            encode_image(&model, 2)
        };

        let base_cpu = CpuConfig::skylake_scaled();
        let skew_spec = params.skew;
        let seed = params.seed;
        let chaos = params.chaos.clone();
        let sub = cfg.sub_seed("fleet");
        let interval_insts = cfg.interval_insts;
        let dies = psca_exec::Sweep::new("fleet.dies").jobs(cfg.jobs).run(
            (0..params.size as u64).collect(),
            |&die| {
                let skew = DieSkew::derive(&skew_spec, seed, die);
                let cpu = skew.apply(&base_cpu);
                let (arch, name) = ARCHETYPES[die as usize % ARCHETYPES.len()];
                let mut gen = PhaseGenerator::new(arch.center(), sub ^ seed ^ (die + 101));
                let (warm, window) = record_trace(&mut gen, 2_000, window_insts);
                let refs = reference_ipc(&cpu, &warm, &window, interval_insts, g);
                DiePrep {
                    skew,
                    archetype: name,
                    chaos: skew.chaos(chaos.as_ref()),
                    cpu,
                    warm,
                    window,
                    refs,
                }
            },
        );

        FleetSetup {
            cfg: cfg.clone(),
            model,
            baseline,
            candidate,
            dies,
        }
    }

    /// The trained model the images are built from.
    pub fn model(&self) -> &TrainedAdaptModel {
        &self.model
    }

    /// The image every die starts on.
    pub fn baseline(&self) -> &FleetImage {
        &self.baseline
    }

    /// The image the rollout pushes.
    pub fn candidate(&self) -> &FleetImage {
        &self.candidate
    }

    /// Deploys `img` to die `die` and runs its closed loop serially: the
    /// oracle the fleet report's sweep-merged rows must match
    /// bit-identically.
    ///
    /// Deployment goes through `psca_uc::image::decode`, so the same
    /// CRC/validation gate that fields real pushes also fields ours.
    pub fn die_stats(&self, die: u64, img: &FleetImage) -> DieStats {
        let prep = &self.dies[die as usize];
        let mut model = self.model.clone();
        model.fw_hi = image::decode(&img.hi).expect("installed image decodes");
        model.fw_lo = image::decode(&img.lo).expect("installed image decodes");
        let res = ClosedLoopRequest::new(&model, &prep.warm, &prep.window, self.cfg.interval_insts)
            .with_cpu(prep.cpu.clone())
            .with_faults(prep.chaos.clone())
            .with_backend(self.cfg.backend)
            .run_hardened();
        let sla = Sla::paper_default();
        let low = res
            .result
            .modes
            .iter()
            .filter(|m| **m == Mode::LowPower)
            .count();
        let mut violations = 0usize;
        for ((mode, ipc), ref_ipc) in res
            .result
            .modes
            .iter()
            .zip(&res.window_ipc)
            .zip(prep.refs.iter())
        {
            if *mode == Mode::LowPower && *ipc < sla.p_sla * ref_ipc {
                violations += 1;
            }
        }
        psca_obs::counter("fleet.dies_run").inc();
        DieStats {
            windows: res.result.modes.len(),
            low,
            violations,
            energy: res.result.energy,
            instructions: res.result.instructions,
            escalations: res.degrade.escalations,
            worst: res.degrade.worst.name(),
            faults: res.faults.total(),
            images_rejected: res.images_rejected,
        }
    }
}

/// One stage's row in the fleet report.
#[derive(Debug, Clone)]
pub struct StageRow {
    /// Stage index (0 = canary).
    pub stage: usize,
    /// Dies deployed to.
    pub cohort: Vec<u64>,
    /// Cohort verdict the state machine consumed.
    pub health: CohortHealth,
    /// What the machine did.
    pub action: StageAction,
}

/// One die's row in the fleet report: final state after the rollout.
#[derive(Debug, Clone)]
pub struct DieRow {
    /// Die id.
    pub die: u64,
    /// Workload archetype the die runs.
    pub archetype: &'static str,
    /// Version of the image the die ended on.
    pub image_version: u32,
    /// The die's realized skew.
    pub skew: DieSkew,
    /// Final-state run accounting.
    pub stats: DieStats,
    /// Whether the die was quarantined during the rollout.
    pub quarantined: bool,
}

/// The machine-readable artifact of one fleet run (`repro fleet`).
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Parameters the run was invoked with.
    pub params: FleetParams,
    /// Simulation fidelity every die ran at.
    pub backend: BackendChoice,
    /// `(version, fingerprint, bytes)` of the baseline image.
    pub baseline: (u32, u32, usize),
    /// `(version, fingerprint, bytes)` of the candidate image.
    pub candidate: (u32, u32, usize),
    /// Staged-rollout outcomes in order (empty when rollout is off).
    pub stages: Vec<StageRow>,
    /// Dies quarantined during the rollout, ascending.
    pub quarantined: Vec<u64>,
    /// Final per-die state, by die id.
    pub dies: Vec<DieRow>,
    /// `"disabled"`, `"completed"`, or `"rolled_back"`.
    pub status: &'static str,
    /// Fleet-aggregate SLA-violation rate in the final state.
    pub fleet_rsv: f64,
    /// Fleet-aggregate PPW in the final state.
    pub fleet_ppw: f64,
    /// The CI gate: false iff the rollout rolled back.
    pub pass: bool,
}

impl FleetReport {
    /// The report as a deterministic JSON document (`psca-fleet/v1`).
    pub fn to_json(&self) -> Json {
        let image = |(version, fp, bytes): (u32, u32, usize)| {
            Json::obj(vec![
                ("version", Json::UInt(version as u64)),
                ("fingerprint", Json::Str(format!("{fp:08x}"))),
                ("bytes", Json::UInt(bytes as u64)),
            ])
        };
        let stages = self
            .stages
            .iter()
            .map(|s| {
                Json::obj(vec![
                    ("stage", Json::UInt(s.stage as u64)),
                    (
                        "cohort",
                        Json::Arr(s.cohort.iter().map(|&d| Json::UInt(d)).collect()),
                    ),
                    ("rsv", Json::Num(s.health.rsv)),
                    ("ppw_retained", Json::Num(s.health.ppw_retained)),
                    ("escalations", Json::UInt(s.health.escalations)),
                    (
                        "action",
                        Json::Str(
                            match s.action {
                                StageAction::Promoted => "promoted",
                                StageAction::Completed => "completed",
                                StageAction::RolledBack => "rolled_back",
                            }
                            .to_string(),
                        ),
                    ),
                ])
            })
            .collect();
        let dies = self
            .dies
            .iter()
            .map(|d| {
                Json::obj(vec![
                    ("die", Json::UInt(d.die)),
                    ("archetype", Json::Str(d.archetype.to_string())),
                    ("image_version", Json::UInt(d.image_version as u64)),
                    ("cache_factor", Json::Num(d.skew.cache_factor)),
                    ("tlb_factor", Json::Num(d.skew.tlb_factor)),
                    ("switch_factor", Json::Num(d.skew.switch_factor)),
                    ("noise_floor", Json::Num(d.skew.noise_floor)),
                    ("rsv", Json::Num(d.stats.rsv())),
                    ("ppw", Json::Num(d.stats.ppw())),
                    ("low_residency", Json::Num(d.stats.low_residency())),
                    ("escalations", Json::UInt(d.stats.escalations)),
                    ("worst_tier", Json::Str(d.stats.worst.to_string())),
                    ("faults", Json::UInt(d.stats.faults)),
                    ("images_rejected", Json::UInt(d.stats.images_rejected)),
                    ("quarantined", Json::Bool(d.quarantined)),
                ])
            })
            .collect();
        Json::obj(vec![
            ("schema", Json::Str("psca-fleet/v1".to_string())),
            ("backend", Json::Str(self.backend.as_str().to_string())),
            ("size", Json::UInt(self.params.size as u64)),
            ("seed", Json::UInt(self.params.seed)),
            ("windows", Json::UInt(self.params.windows)),
            ("skew", Json::Str(self.params.skew.to_string())),
            (
                "rollout",
                Json::Str(
                    self.params
                        .rollout
                        .as_ref()
                        .map(|r| r.to_string())
                        .unwrap_or_else(|| "off".to_string()),
                ),
            ),
            (
                "chaos",
                Json::Str(
                    self.params
                        .chaos
                        .as_ref()
                        .map(|c| c.to_string())
                        .unwrap_or_else(|| "off".to_string()),
                ),
            ),
            ("bad_image", Json::Bool(self.params.bad_image)),
            ("baseline", image(self.baseline)),
            ("candidate", image(self.candidate)),
            ("stages", Json::Arr(stages)),
            (
                "quarantined",
                Json::Arr(self.quarantined.iter().map(|&d| Json::UInt(d)).collect()),
            ),
            ("dies", Json::Arr(dies)),
            ("status", Json::Str(self.status.to_string())),
            ("fleet_rsv", Json::Num(self.fleet_rsv)),
            ("fleet_ppw", Json::Num(self.fleet_ppw)),
            ("pass", Json::Bool(self.pass)),
        ])
    }
}

impl std::fmt::Display for FleetReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Fleet — {} dies, seed {}, skew [{}]",
            self.params.size, self.params.seed, self.params.skew
        )?;
        writeln!(
            f,
            "images: baseline v{} fp {:08x} · candidate v{} fp {:08x}{}",
            self.baseline.0,
            self.baseline.1,
            self.candidate.0,
            self.candidate.1,
            if self.params.bad_image {
                " (sabotaged)"
            } else {
                ""
            }
        )?;
        if self.stages.is_empty() {
            writeln!(f, "rollout: off")?;
        } else {
            writeln!(
                f,
                "{:>6} {:>14} {:>8} {:>8} {:>5} {:>12}",
                "stage", "cohort", "rsv", "ppw-ret", "esc", "action"
            )?;
            for s in &self.stages {
                writeln!(
                    f,
                    "{:>6} {:>14} {:>8.4} {:>8.3} {:>5} {:>12}",
                    s.stage,
                    format!(
                        "{}..{}",
                        s.cohort.first().unwrap_or(&0),
                        s.cohort.last().unwrap_or(&0)
                    ),
                    s.health.rsv,
                    s.health.ppw_retained,
                    s.health.escalations,
                    match s.action {
                        StageAction::Promoted => "promoted",
                        StageAction::Completed => "completed",
                        StageAction::RolledBack => "ROLLED BACK",
                    }
                )?;
            }
        }
        writeln!(
            f,
            "{:>4} {:>11} {:>4} {:>8} {:>8} {:>8} {:>5} {:>17} {:>4}",
            "die", "archetype", "img", "rsv", "ppw", "low-res", "esc", "worst-tier", "quar"
        )?;
        for d in &self.dies {
            writeln!(
                f,
                "{:>4} {:>11} {:>4} {:>8.4} {:>8.4} {:>8.3} {:>5} {:>17} {:>4}",
                d.die,
                d.archetype,
                format!("v{}", d.image_version),
                d.stats.rsv(),
                d.stats.ppw(),
                d.stats.low_residency(),
                d.stats.escalations,
                d.stats.worst,
                if d.quarantined { "yes" } else { "" }
            )?;
        }
        writeln!(
            f,
            "status: {} · fleet rsv {:.4} · fleet ppw {:.4} · {}",
            self.status,
            self.fleet_rsv,
            self.fleet_ppw,
            if self.pass { "PASS" } else { "FAIL" }
        )
    }
}

/// Runs the whole fleet scenario: prepare → staged rollout (if enabled)
/// → final fleet pass, with `psca-obs` gauges/counters and rollout
/// instant-events along the way.
pub fn run_fleet(cfg: &ExperimentConfig, params: &FleetParams) -> FleetReport {
    // Scope global metrics/series to this run, as every experiment
    // driver does (ISSUE 2).
    psca_obs::reset_all();
    let _span = psca_obs::SpanTimer::start("fleet.run");
    let setup = FleetSetup::prepare(cfg, params);
    psca_obs::gauge("fleet.size").set(params.size as f64);

    let mut stages = Vec::new();
    let mut quarantined = Vec::new();
    let (status, installed): (&'static str, Vec<FleetImage>) = match params.rollout {
        None => ("disabled", vec![setup.baseline.clone(); params.size]),
        Some(spec) => {
            let mut rollout = Rollout::new(
                params.size,
                spec,
                setup.baseline.clone(),
                setup.candidate.clone(),
            );
            while let Some(cohort) = rollout.current_cohort() {
                let stage = rollout.history().len();
                psca_obs::gauge("fleet.rollout.stage").set(stage as f64);
                // Each cohort die runs both images; the pair of runs is
                // one sweep so stage wall time scales with --jobs while
                // the merge stays serial-identical.
                let cells: Vec<(u64, bool)> = cohort
                    .iter()
                    .flat_map(|&d| [(d, false), (d, true)])
                    .collect();
                let runs = psca_exec::Sweep::new("fleet.stage").jobs(cfg.jobs).run(
                    cells,
                    |&(die, cand)| {
                        let img = if cand {
                            setup.candidate()
                        } else {
                            setup.baseline()
                        };
                        setup.die_stats(die, img)
                    },
                );
                // Outliers: dies unhealthy under the *baseline* strike
                // toward quarantine and drop out of the verdict.
                let mut viol = 0usize;
                let mut windows = 0usize;
                let mut esc = 0u64;
                let mut ppw_b = (0u64, 0.0f64);
                let mut ppw_c = (0u64, 0.0f64);
                for (i, &die) in cohort.iter().enumerate() {
                    let base = &runs[2 * i];
                    let cand = &runs[2 * i + 1];
                    if base.rsv() > spec.rsv_floor {
                        rollout.strike(die);
                        if rollout.is_quarantined(die) {
                            psca_obs::counter("fleet.quarantine.added").inc();
                            psca_obs::trace::instant(
                                "fleet.quarantine",
                                &[("die", die.into()), ("stage", (stage as u64).into())],
                            );
                        }
                        continue;
                    }
                    viol += cand.violations;
                    windows += cand.windows;
                    esc += cand.escalations;
                    ppw_b = (ppw_b.0 + base.instructions, ppw_b.1 + base.energy);
                    ppw_c = (ppw_c.0 + cand.instructions, ppw_c.1 + cand.energy);
                }
                let base_ppw = if ppw_b.1 > 0.0 {
                    ppw_b.0 as f64 / ppw_b.1
                } else {
                    0.0
                };
                let cand_ppw = if ppw_c.1 > 0.0 {
                    ppw_c.0 as f64 / ppw_c.1
                } else {
                    0.0
                };
                let health = if windows == 0 {
                    // Whole cohort quarantined: nothing to judge, advance.
                    CohortHealth {
                        rsv: 0.0,
                        ppw_retained: 1.0,
                        escalations: 0,
                    }
                } else {
                    CohortHealth {
                        rsv: viol as f64 / windows as f64,
                        ppw_retained: if base_ppw > 0.0 {
                            cand_ppw / base_ppw
                        } else {
                            0.0
                        },
                        escalations: esc,
                    }
                };
                let action = rollout.observe(health);
                let (ctr, event) = match action {
                    StageAction::Promoted => ("fleet.rollout.promoted", "fleet.rollout.promote"),
                    StageAction::Completed => ("fleet.rollout.completed", "fleet.rollout.promote"),
                    StageAction::RolledBack => {
                        ("fleet.rollout.rolled_back", "fleet.rollout.rollback")
                    }
                };
                psca_obs::counter(ctr).inc();
                psca_obs::trace::instant(
                    event,
                    &[
                        ("stage", (stage as u64).into()),
                        ("rsv", health.rsv.into()),
                        ("ppw_retained", health.ppw_retained.into()),
                        ("candidate_version", (setup.candidate.version as u64).into()),
                    ],
                );
                psca_obs::emit(
                    psca_obs::Level::Info,
                    "fleet.stage",
                    &[
                        ("stage", (stage as u64).into()),
                        ("cohort", (cohort.len() as u64).into()),
                        ("rsv", health.rsv.into()),
                        ("ppw_retained", health.ppw_retained.into()),
                        ("escalations", health.escalations.into()),
                    ],
                );
            }
            for outcome in rollout.history() {
                stages.push(stage_row(outcome));
            }
            quarantined = rollout.quarantined().collect();
            let installed = (0..params.size as u64)
                .map(|d| rollout.installed(d).clone())
                .collect();
            (rollout.status().name(), installed)
        }
    };
    psca_obs::gauge("fleet.quarantined").set(quarantined.len() as f64);

    // Final fleet pass: every die on whatever image the rollout left it
    // with. This is the state the data center actually runs.
    let final_runs = psca_exec::Sweep::new("fleet.final")
        .jobs(cfg.jobs)
        .run((0..params.size as u64).collect(), |&die| {
            setup.die_stats(die, &installed[die as usize])
        });
    let mut viol = 0usize;
    let mut windows = 0usize;
    let mut energy = 0.0f64;
    let mut insts = 0u64;
    let dies: Vec<DieRow> = final_runs
        .into_iter()
        .enumerate()
        .map(|(i, stats)| {
            let die = i as u64;
            viol += stats.violations;
            windows += stats.windows;
            energy += stats.energy;
            insts += stats.instructions;
            DieRow {
                die,
                archetype: setup.dies[i].archetype,
                image_version: installed[i].version,
                skew: setup.dies[i].skew,
                stats,
                quarantined: quarantined.contains(&die),
            }
        })
        .collect();
    let fleet_rsv = viol as f64 / windows.max(1) as f64;
    let fleet_ppw = if energy > 0.0 {
        insts as f64 / energy
    } else {
        0.0
    };
    let pass = status != RolloutStatus::RolledBack.name();
    psca_obs::gauge("fleet.rsv").set(fleet_rsv);
    psca_obs::gauge("fleet.ppw").set(fleet_ppw);
    psca_obs::counter(if pass { "fleet.pass" } else { "fleet.fail" }).inc();

    FleetReport {
        params: params.clone(),
        backend: cfg.backend,
        baseline: (
            setup.baseline.version,
            setup.baseline.fingerprint(),
            setup.baseline.hi.len() + setup.baseline.lo.len(),
        ),
        candidate: (
            setup.candidate.version,
            setup.candidate.fingerprint(),
            setup.candidate.hi.len() + setup.candidate.lo.len(),
        ),
        stages,
        quarantined,
        dies,
        status,
        fleet_rsv,
        fleet_ppw,
        pass,
    }
}

fn stage_row(outcome: &StageOutcome) -> StageRow {
    StageRow {
        stage: outcome.stage,
        cohort: outcome.cohort.clone(),
        health: outcome.health,
        action: outcome.action,
    }
}
