//! # psca-fleet
//!
//! Fleet-scale deployment robustness: the scenario axis the single-die
//! pipeline cannot express.
//!
//! The paper's post-silicon story (§3.2) ends with a model shipped as
//! firmware to CPUs already in the field — which means shipped to a
//! *fleet* of dies that differ from the nominal machine (process and SKU
//! variation) and from each other. This crate models that reality:
//!
//! - [`SkewSpec`] / [`DieSkew`] — deterministic per-die parameter
//!   variation (cache/TLB sizing jitter, mode-switch cost, telemetry
//!   noise floor), derived from a fleet seed via the same SplitMix64
//!   family as the fault injector;
//! - [`RolloutSpec`] / [`Rollout`] — a staged firmware-rollout state
//!   machine: canary cohort → expanding waves → fleet, with per-cohort
//!   health verdicts (RSV floor, PPW retained, degradation-tier
//!   escalations), automatic rollback to the previous image on
//!   regression, and quarantine for persistent per-die outliers;
//! - [`run_fleet`] / [`FleetReport`] — the harness behind `repro fleet`:
//!   N skewed dies running closed loops fanned through `psca_exec` with
//!   bit-identical-to-serial merges, and a deterministic machine-readable
//!   report (`psca-fleet/v1`).
//!
//! Everything is a pure function of `(config seed, fleet seed, specs)`:
//! byte-identical reports across runs and across `--jobs` settings. See
//! `docs/FLEET.md` for the grammars, health verdicts, and report schema.

#![warn(missing_docs)]

mod rollout;
mod runner;
mod skew;

pub use rollout::{
    CohortHealth, FleetImage, Rollout, RolloutSpec, RolloutStatus, StageAction, StageOutcome,
};
pub use runner::{run_fleet, DieRow, DieStats, FleetParams, FleetReport, FleetSetup, StageRow};
pub use skew::{DieSkew, SkewSpec};
