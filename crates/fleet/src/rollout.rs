//! The staged firmware-rollout state machine: canary cohort → expanding
//! waves → fleet, with automatic rollback on a regressed health verdict
//! and quarantine for persistent per-die outliers.
//!
//! The machine is pure data: it partitions die ids into cohorts, tracks
//! which image bytes each die has installed, and consumes one
//! [`CohortHealth`] verdict per stage. The fleet runner supplies the
//! verdicts by simulating the cohort (see `runner`); proptests drive the
//! machine directly with synthetic verdicts to pin its invariants.
//!
//! Rollout-spec grammar, in the `ChaosSpec` key=value style:
//!
//! ```text
//! spec  := entry (',' entry)*
//! key   := 'canary'     (dies in the canary cohort,        default 2)
//!        | 'waves'      (expanding waves after the canary, default 2)
//!        | 'rsv_floor'  (max cohort SLA-violation rate,    default 0.25)
//!        | 'ppw_floor'  (min PPW retained vs baseline,     default 0.8)
//!        | 'max_esc'    (max ladder escalations per cohort, default 8)
//!        | 'quarantine' (outlier strikes before quarantine, default 2)
//! ```
//!
//! `"default"` / `""` parse to the defaults above; `"off"` means no
//! staged rollout (every die keeps the baseline image).

use std::collections::BTreeSet;
use std::fmt;

/// A firmware deployment unit: the encoded high- and low-power predictor
/// images pushed to a die together. Bit-identity of a `FleetImage` is
/// bit-identity of both blobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetImage {
    /// Monotone version number, for reports and rollout events.
    pub version: u32,
    /// Encoded high-performance-mode predictor (`psca_uc::image`).
    pub hi: Vec<u8>,
    /// Encoded low-power-mode predictor.
    pub lo: Vec<u8>,
}

impl FleetImage {
    /// FNV-1a content fingerprint over both blobs, for report rows.
    /// (Not the image CRC: CRC-32 over a CRC-trailed blob collapses to
    /// the same residue for every payload.)
    pub fn fingerprint(&self) -> u32 {
        let mut all = self.hi.clone();
        all.extend_from_slice(&self.lo);
        psca_uc::image::fingerprint(&all)
    }
}

/// Tuning for the staged rollout.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RolloutSpec {
    /// Dies in the canary cohort.
    pub canary: usize,
    /// Expanding waves between the canary and full fleet.
    pub waves: usize,
    /// Health floor: maximum cohort SLA-violation rate under the
    /// candidate image.
    pub rsv_floor: f64,
    /// Health floor: minimum cohort PPW retained (candidate vs baseline).
    pub ppw_floor: f64,
    /// Health floor: maximum degradation-ladder escalations summed over
    /// the cohort.
    pub max_escalations: u64,
    /// Outlier strikes (die unhealthy under the *baseline* image) before
    /// a die is quarantined out of later cohorts.
    pub quarantine_after: u32,
}

impl Default for RolloutSpec {
    fn default() -> RolloutSpec {
        RolloutSpec {
            canary: 2,
            waves: 2,
            rsv_floor: 0.25,
            ppw_floor: 0.8,
            max_escalations: 8,
            quarantine_after: 2,
        }
    }
}

impl RolloutSpec {
    /// Parses the rollout-spec grammar. `"default"` / `""` yield the
    /// defaults; `"off"` yields `None` (staged rollout disabled).
    pub fn parse(s: &str) -> Result<Option<RolloutSpec>, String> {
        let s = s.trim();
        if s.is_empty() || s == "default" {
            return Ok(Some(RolloutSpec::default()));
        }
        if s == "off" {
            return Ok(None);
        }
        let mut spec = RolloutSpec::default();
        for entry in s.split(',') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let (key, value) = entry
                .split_once('=')
                .ok_or_else(|| format!("'{entry}': expected key=value"))?;
            let value = value.trim();
            let int = |what: &str| -> Result<u64, String> {
                value
                    .parse::<u64>()
                    .map_err(|_| format!("'{entry}': {what} must be a non-negative integer"))
            };
            match key.trim() {
                "canary" => {
                    spec.canary = int("canary")?.max(1) as usize;
                }
                "waves" => {
                    spec.waves = int("waves")? as usize;
                }
                "rsv_floor" => spec.rsv_floor = parse_unit(entry, value)?,
                "ppw_floor" => spec.ppw_floor = parse_unit(entry, value)?,
                "max_esc" => spec.max_escalations = int("max_esc")?,
                "quarantine" => {
                    spec.quarantine_after = int("quarantine")?.max(1) as u32;
                }
                key => return Err(format!("'{entry}': unknown key '{key}'")),
            }
        }
        Ok(Some(spec))
    }
}

fn parse_unit(entry: &str, value: &str) -> Result<f64, String> {
    let rate: f64 = value
        .parse()
        .map_err(|_| format!("'{entry}': value must be a number"))?;
    if !(0.0..=1.0).contains(&rate) || !rate.is_finite() {
        return Err(format!("'{entry}': value must be in [0, 1]"));
    }
    Ok(rate)
}

impl fmt::Display for RolloutSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "canary={},waves={},rsv_floor={},ppw_floor={},max_esc={},quarantine={}",
            self.canary,
            self.waves,
            self.rsv_floor,
            self.ppw_floor,
            self.max_escalations,
            self.quarantine_after
        )
    }
}

/// Aggregated health of one cohort running the candidate image, scored
/// against the same cohort running the baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CohortHealth {
    /// SLA-violation rate over the cohort's windows.
    pub rsv: f64,
    /// Cohort PPW under the candidate relative to the baseline.
    pub ppw_retained: f64,
    /// Degradation-ladder escalations summed over the cohort.
    pub escalations: u64,
}

impl CohortHealth {
    /// Whether the cohort clears every floor in `spec`.
    pub fn healthy(&self, spec: &RolloutSpec) -> bool {
        self.rsv <= spec.rsv_floor
            && self.ppw_retained >= spec.ppw_floor
            && self.escalations <= spec.max_escalations
    }
}

/// What the machine did with a stage's verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageAction {
    /// Cohort healthy: its dies keep the candidate; the next cohort is up.
    Promoted,
    /// Cohort healthy and it was the last one: rollout complete.
    Completed,
    /// Cohort unhealthy: every die is restored to the baseline image.
    RolledBack,
}

/// Terminal (or in-flight) status of the whole rollout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RolloutStatus {
    /// Stages remain.
    InProgress,
    /// Every cohort promoted: the fleet runs the candidate.
    Completed,
    /// A cohort regressed: the fleet runs the baseline.
    RolledBack,
}

impl RolloutStatus {
    /// Stable lower-case label for reports.
    pub fn name(&self) -> &'static str {
        match self {
            RolloutStatus::InProgress => "in_progress",
            RolloutStatus::Completed => "completed",
            RolloutStatus::RolledBack => "rolled_back",
        }
    }
}

/// One observed stage, kept for the report.
#[derive(Debug, Clone)]
pub struct StageOutcome {
    /// Stage index: 0 is the canary.
    pub stage: usize,
    /// Die ids the stage deployed to (quarantined dies already skipped).
    pub cohort: Vec<u64>,
    /// The verdict the runner supplied.
    pub health: CohortHealth,
    /// What the machine did with it.
    pub action: StageAction,
}

/// The staged-rollout state machine. See the module docs.
#[derive(Debug, Clone)]
pub struct Rollout {
    spec: RolloutSpec,
    baseline: FleetImage,
    candidate: FleetImage,
    /// Image currently installed on each die, indexed by die id.
    installed: Vec<FleetImage>,
    /// Die-id cohorts in deployment order (canary first).
    cohorts: Vec<Vec<u64>>,
    stage: usize,
    status: RolloutStatus,
    strikes: Vec<u32>,
    quarantined: BTreeSet<u64>,
    history: Vec<StageOutcome>,
}

/// Partitions `n` dies into a canary cohort plus `waves` expanding waves
/// (each roughly doubling), in die-id order. Every die lands in exactly
/// one cohort; the last wave absorbs the remainder.
fn partition(n: usize, canary: usize, waves: usize) -> Vec<Vec<u64>> {
    let canary = canary.clamp(1, n);
    let mut cohorts = vec![(0..canary as u64).collect::<Vec<u64>>()];
    let mut next = canary as u64;
    let remaining = n - canary;
    if remaining == 0 {
        return cohorts;
    }
    let waves = waves.clamp(1, remaining);
    // Geometric weights 1, 2, 4, ... scaled to cover `remaining`.
    let total_weight = (1u64 << waves) - 1;
    let mut allotted = 0usize;
    for w in 0..waves {
        let size = if w + 1 == waves {
            remaining - allotted
        } else {
            (((1u64 << w) as f64 / total_weight as f64) * remaining as f64).round() as usize
        }
        .min(remaining - allotted);
        if size == 0 {
            continue;
        }
        cohorts.push((next..next + size as u64).collect());
        next += size as u64;
        allotted += size;
    }
    cohorts
}

impl Rollout {
    /// A rollout of `candidate` over an `n`-die fleet currently running
    /// `baseline`.
    pub fn new(
        n: usize,
        spec: RolloutSpec,
        baseline: FleetImage,
        candidate: FleetImage,
    ) -> Rollout {
        Rollout {
            cohorts: partition(n, spec.canary, spec.waves),
            installed: vec![baseline.clone(); n],
            strikes: vec![0; n],
            spec,
            baseline,
            candidate,
            stage: 0,
            status: RolloutStatus::InProgress,
            quarantined: BTreeSet::new(),
            history: Vec::new(),
        }
    }

    /// The tuning this rollout runs under.
    pub fn spec(&self) -> &RolloutSpec {
        &self.spec
    }

    /// The image the fleet rolls back to.
    pub fn baseline(&self) -> &FleetImage {
        &self.baseline
    }

    /// The image being rolled out.
    pub fn candidate(&self) -> &FleetImage {
        &self.candidate
    }

    /// Current status.
    pub fn status(&self) -> RolloutStatus {
        self.status
    }

    /// The image installed on `die` right now.
    pub fn installed(&self, die: u64) -> &FleetImage {
        &self.installed[die as usize]
    }

    /// Dies quarantined so far, ascending.
    pub fn quarantined(&self) -> impl Iterator<Item = u64> + '_ {
        self.quarantined.iter().copied()
    }

    /// Whether `die` is quarantined.
    pub fn is_quarantined(&self, die: u64) -> bool {
        self.quarantined.contains(&die)
    }

    /// Observed stages so far.
    pub fn history(&self) -> &[StageOutcome] {
        &self.history
    }

    /// The next cohort to deploy to (quarantined dies skipped), or `None`
    /// once the rollout has terminated. An empty slice means the whole
    /// remaining cohort is quarantined; pass a no-op healthy verdict to
    /// advance.
    pub fn current_cohort(&self) -> Option<Vec<u64>> {
        if self.status != RolloutStatus::InProgress {
            return None;
        }
        self.cohorts.get(self.stage).map(|c| {
            c.iter()
                .copied()
                .filter(|d| !self.quarantined.contains(d))
                .collect()
        })
    }

    /// Records `strike` outlier strikes: a die whose *baseline* run
    /// breached the health floors misbehaves independently of the
    /// candidate, so it counts toward quarantine instead of poisoning
    /// the cohort verdict. Quarantine is monotone: dies are never
    /// released.
    pub fn strike(&mut self, die: u64) {
        let idx = die as usize;
        if idx >= self.strikes.len() || self.quarantined.contains(&die) {
            return;
        }
        self.strikes[idx] += 1;
        if self.strikes[idx] >= self.spec.quarantine_after {
            self.quarantined.insert(die);
        }
    }

    /// Consumes the current stage's health verdict.
    ///
    /// Healthy: the cohort's (non-quarantined) dies keep the candidate
    /// and the machine advances — `Completed` if this was the last
    /// cohort, else `Promoted`. Unhealthy: every die in the fleet is
    /// restored to the baseline image, bit-identically, and the rollout
    /// terminates `RolledBack`. The candidate never reaches a cohort
    /// past the first unhealthy one.
    ///
    /// # Panics
    /// Panics if the rollout already terminated.
    pub fn observe(&mut self, health: CohortHealth) -> StageAction {
        assert_eq!(
            self.status,
            RolloutStatus::InProgress,
            "observe() on a terminated rollout"
        );
        let cohort = self
            .current_cohort()
            .expect("in-progress rollout has a cohort");
        let action = if health.healthy(&self.spec) {
            for &die in &cohort {
                self.installed[die as usize] = self.candidate.clone();
            }
            self.stage += 1;
            if self.stage == self.cohorts.len() {
                self.status = RolloutStatus::Completed;
                StageAction::Completed
            } else {
                StageAction::Promoted
            }
        } else {
            for img in &mut self.installed {
                *img = self.baseline.clone();
            }
            self.status = RolloutStatus::RolledBack;
            StageAction::RolledBack
        };
        self.history.push(StageOutcome {
            stage: self.history.len(),
            cohort,
            health,
            action,
        });
        action
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn img(version: u32, byte: u8) -> FleetImage {
        FleetImage {
            version,
            hi: vec![byte; 8],
            lo: vec![byte ^ 0xFF; 8],
        }
    }

    fn healthy() -> CohortHealth {
        CohortHealth {
            rsv: 0.0,
            ppw_retained: 1.0,
            escalations: 0,
        }
    }

    fn sick() -> CohortHealth {
        CohortHealth {
            rsv: 1.0,
            ppw_retained: 0.0,
            escalations: 99,
        }
    }

    #[test]
    fn partition_covers_every_die_once() {
        for n in 1..40 {
            for canary in 1..4 {
                for waves in 0..4 {
                    let cohorts = partition(n, canary, waves);
                    let mut all: Vec<u64> = cohorts.iter().flatten().copied().collect();
                    all.sort_unstable();
                    assert_eq!(
                        all,
                        (0..n as u64).collect::<Vec<_>>(),
                        "n={n} c={canary} w={waves}"
                    );
                }
            }
        }
    }

    #[test]
    fn waves_expand() {
        let cohorts = partition(31, 1, 3);
        let sizes: Vec<usize> = cohorts.iter().map(Vec::len).collect();
        for pair in sizes.windows(2) {
            assert!(pair[0] <= pair[1], "sizes not expanding: {sizes:?}");
        }
    }

    #[test]
    fn full_promotion_installs_candidate_everywhere() {
        let mut r = Rollout::new(9, RolloutSpec::default(), img(1, 0xAA), img(2, 0xBB));
        let mut last = StageAction::Promoted;
        while r.status() == RolloutStatus::InProgress {
            last = r.observe(healthy());
        }
        assert_eq!(last, StageAction::Completed);
        assert_eq!(r.status(), RolloutStatus::Completed);
        for die in 0..9 {
            assert_eq!(r.installed(die), r.candidate());
        }
    }

    #[test]
    fn unhealthy_canary_rolls_back_everything() {
        let mut r = Rollout::new(9, RolloutSpec::default(), img(1, 0xAA), img(2, 0xBB));
        assert_eq!(r.observe(sick()), StageAction::RolledBack);
        assert_eq!(r.status(), RolloutStatus::RolledBack);
        for die in 0..9 {
            assert_eq!(r.installed(die), r.baseline());
        }
        assert!(r.current_cohort().is_none());
    }

    #[test]
    fn mid_wave_regression_restores_promoted_dies() {
        let mut r = Rollout::new(12, RolloutSpec::default(), img(1, 0x01), img(2, 0x02));
        assert_eq!(r.observe(healthy()), StageAction::Promoted);
        // Canary dies now run the candidate.
        assert_eq!(r.installed(0), &img(2, 0x02));
        assert_eq!(r.observe(sick()), StageAction::RolledBack);
        for die in 0..12 {
            assert_eq!(r.installed(die), &img(1, 0x01), "die {die} not restored");
        }
    }

    #[test]
    fn quarantine_requires_strikes_and_skips_cohorts() {
        let spec = RolloutSpec {
            quarantine_after: 2,
            ..RolloutSpec::default()
        };
        let mut r = Rollout::new(6, spec, img(1, 1), img(2, 2));
        r.strike(0);
        assert!(!r.is_quarantined(0));
        r.strike(0);
        assert!(r.is_quarantined(0));
        // Die 0 is in the canary cohort; it must be skipped now.
        assert!(!r.current_cohort().unwrap().contains(&0));
    }

    #[test]
    fn rollout_spec_parse_roundtrips() {
        let spec = RolloutSpec::parse("canary=3,waves=1,rsv_floor=0.1")
            .unwrap()
            .unwrap();
        assert_eq!(spec.canary, 3);
        let back = RolloutSpec::parse(&spec.to_string()).unwrap().unwrap();
        assert_eq!(spec, back);
        assert!(RolloutSpec::parse("off").unwrap().is_none());
        assert!(RolloutSpec::parse("rsv_floor=2.0").is_err());
        assert!(RolloutSpec::parse("nonsense=1").is_err());
    }
}
