//! Per-die parameter variation: the skew-spec grammar and its
//! deterministic realization.
//!
//! Post-silicon reality is that no two dies are the paper's nominal
//! machine: effective cache/TLB capacity, mode-switch cost, and
//! telemetry noise all vary across a fleet. A [`SkewSpec`] bounds that
//! variation per axis; [`DieSkew::derive`] turns `(fleet seed, die id)`
//! into one die's concrete draw via the same SplitMix64 family the fault
//! injector uses, so a fleet is a pure function of its seed.
//!
//! ```text
//! spec  := entry (',' entry)*
//! entry := key '=' value
//! key   := 'cache' | 'tlb' | 'switch' | 'noise' | 'all'
//! value := magnitude in [0, 1]
//! ```
//!
//! `cache`, `tlb`, and `switch` are relative half-widths: a value `m`
//! draws each die's multiplier uniformly from `[1 - m, 1 + m]`. `noise`
//! is an absolute per-window telemetry-drift probability floor merged
//! into the die's chaos spec. `all` sets every key; later entries
//! override earlier ones, as in `ChaosSpec`.

use psca_cpu::CpuConfig;
use psca_faults::{ChaosSpec, SplitMix64};
use std::fmt;

/// Fleet-wide bounds on per-die variation. `Default` is an all-zero
/// spec: every die is the nominal machine.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SkewSpec {
    /// Relative half-width of cache-capacity jitter (all levels + µop
    /// cache), quantized to whole cache ways.
    pub cache: f64,
    /// Relative half-width of ITLB/DTLB entry-count jitter.
    pub tlb: f64,
    /// Relative half-width of mode-switch transfer-cost jitter.
    pub switch: f64,
    /// Per-die telemetry noise floor: an absolute lower bound on the
    /// `telem.drift` chaos rate, scaled by the die's draw in `[0, 1]`.
    pub noise: f64,
}

impl SkewSpec {
    /// The default fleet variation used by `repro fleet --skew default`:
    /// ±10% cache and TLB sizing, ±25% switch cost, up to a 1% telemetry
    /// noise floor.
    pub fn default_skew() -> SkewSpec {
        SkewSpec {
            cache: 0.10,
            tlb: 0.10,
            switch: 0.25,
            noise: 0.01,
        }
    }

    /// Parses the skew-spec grammar. `"default"` / `""` yield
    /// [`SkewSpec::default_skew`]; `"off"` yields the all-zero spec.
    pub fn parse(s: &str) -> Result<SkewSpec, String> {
        let s = s.trim();
        if s.is_empty() || s == "default" {
            return Ok(SkewSpec::default_skew());
        }
        if s == "off" {
            return Ok(SkewSpec::default());
        }
        let mut spec = SkewSpec::default();
        for entry in s.split(',') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let (key, value) = entry
                .split_once('=')
                .ok_or_else(|| format!("'{entry}': expected key=value"))?;
            let rate = parse_magnitude(entry, value.trim())?;
            match key.trim() {
                "cache" => spec.cache = rate,
                "tlb" => spec.tlb = rate,
                "switch" => spec.switch = rate,
                "noise" => spec.noise = rate,
                "all" => {
                    spec.cache = rate;
                    spec.tlb = rate;
                    spec.switch = rate;
                    spec.noise = rate;
                }
                key => return Err(format!("'{entry}': unknown key '{key}'")),
            }
        }
        Ok(spec)
    }

    /// Whether any axis has a non-zero magnitude.
    pub fn any_enabled(&self) -> bool {
        self.cache > 0.0 || self.tlb > 0.0 || self.switch > 0.0 || self.noise > 0.0
    }
}

fn parse_magnitude(entry: &str, value: &str) -> Result<f64, String> {
    let rate: f64 = value
        .parse()
        .map_err(|_| format!("'{entry}': magnitude must be a number"))?;
    if !(0.0..=1.0).contains(&rate) || !rate.is_finite() {
        return Err(format!("'{entry}': magnitude must be in [0, 1]"));
    }
    Ok(rate)
}

impl fmt::Display for SkewSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut any = false;
        for (key, rate) in [
            ("cache", self.cache),
            ("tlb", self.tlb),
            ("switch", self.switch),
            ("noise", self.noise),
        ] {
            if rate > 0.0 {
                write!(f, "{}{key}={rate}", if any { "," } else { "" })?;
                any = true;
            }
        }
        if !any {
            f.write_str("off")?;
        }
        Ok(())
    }
}

/// One die's realized variation: concrete multipliers drawn from a
/// [`SkewSpec`], plus the die's telemetry noise floor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DieSkew {
    /// Die index within the fleet.
    pub die: u64,
    /// Cache-capacity multiplier in `[1 - cache, 1 + cache]`.
    pub cache_factor: f64,
    /// TLB entry-count multiplier in `[1 - tlb, 1 + tlb]`.
    pub tlb_factor: f64,
    /// Mode-switch transfer-cost multiplier in `[1 - switch, 1 + switch]`.
    pub switch_factor: f64,
    /// Absolute `telem.drift` probability floor in `[0, noise]`.
    pub noise_floor: f64,
}

impl DieSkew {
    /// Derives die `die`'s skew from the fleet seed. The draw order is
    /// fixed (cache, tlb, switch, noise), so adding axes later appends
    /// draws without disturbing existing ones.
    pub fn derive(spec: &SkewSpec, fleet_seed: u64, die: u64) -> DieSkew {
        // Decorrelate die streams the same way the fault injector
        // decorrelates grid cells: xor the id into the seed, then let the
        // SplitMix64 mixer spread it. The golden-ratio multiply keeps
        // consecutive die ids from landing on consecutive stream states.
        let mut rng = SplitMix64::new(fleet_seed ^ die.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut signed = |m: f64| 1.0 + m * (2.0 * rng.next_f64() - 1.0);
        let cache_factor = signed(spec.cache);
        let tlb_factor = signed(spec.tlb);
        let switch_factor = signed(spec.switch);
        let noise_floor = spec.noise * rng.next_f64();
        DieSkew {
            die,
            cache_factor,
            tlb_factor,
            switch_factor,
            noise_floor,
        }
    }

    /// Applies the skew to a nominal machine, producing this die's
    /// [`CpuConfig`].
    ///
    /// Cache capacities are quantized to whole sets (multiples of one
    /// 64-byte line per way) and floored at one set, honoring the
    /// simulator's geometry invariants; TLB entries are floored at 8 and
    /// the transfer budget at 1. Latencies are untouched, so the skewed
    /// config always passes `CpuConfig::validate`.
    pub fn apply(&self, base: &CpuConfig) -> CpuConfig {
        let mut cfg = base.clone();
        cfg.l1i_bytes = scale_cache(base.l1i_bytes, base.l1i_ways, self.cache_factor);
        cfg.uop_cache_bytes =
            scale_cache(base.uop_cache_bytes, base.uop_cache_ways, self.cache_factor);
        cfg.l1d_bytes = scale_cache(base.l1d_bytes, base.l1d_ways, self.cache_factor);
        cfg.l2_bytes = scale_cache(base.l2_bytes, base.l2_ways, self.cache_factor);
        cfg.llc_bytes = scale_cache(base.llc_bytes, base.llc_ways, self.cache_factor);
        cfg.itlb_entries = scale_floor(base.itlb_entries, self.tlb_factor, 8);
        cfg.dtlb_entries = scale_floor(base.dtlb_entries, self.tlb_factor, 8);
        cfg.transfer_uop_max =
            scale_floor(base.transfer_uop_max as usize, self.switch_factor, 1) as u32;
        cfg
    }

    /// Merges the die's telemetry noise floor and a per-die injection
    /// seed into `base` chaos (or a fresh all-zero spec when `None`).
    pub fn chaos(&self, base: Option<&ChaosSpec>) -> ChaosSpec {
        let mut spec = base.cloned().unwrap_or_default();
        spec.seed ^= self.die;
        spec.telem_drift = spec.telem_drift.max(self.noise_floor);
        spec
    }
}

/// Scales a cache capacity, quantized to whole sets so `bytes / 64` stays
/// a positive multiple of `ways`.
fn scale_cache(bytes: usize, ways: usize, factor: f64) -> usize {
    let quantum = 64 * ways.max(1);
    let sets = ((bytes as f64 * factor) / quantum as f64).round() as usize;
    quantum * sets.max(1)
}

fn scale_floor(value: usize, factor: f64, min: usize) -> usize {
    ((value as f64 * factor).round() as usize).max(min)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_keyword_enables_every_axis() {
        let spec = SkewSpec::parse("default").unwrap();
        assert!(spec.any_enabled());
        assert!(spec.cache > 0.0 && spec.noise > 0.0);
    }

    #[test]
    fn off_disables_everything() {
        assert!(!SkewSpec::parse("off").unwrap().any_enabled());
    }

    #[test]
    fn group_shorthand_then_refinement() {
        let spec = SkewSpec::parse("all=0.2,noise=0.05").unwrap();
        assert_eq!(spec.cache, 0.2);
        assert_eq!(spec.switch, 0.2);
        assert_eq!(spec.noise, 0.05);
    }

    #[test]
    fn bad_specs_are_rejected() {
        assert!(SkewSpec::parse("cache").is_err());
        assert!(SkewSpec::parse("cache=1.5").is_err());
        assert!(SkewSpec::parse("cache=-0.1").is_err());
        assert!(SkewSpec::parse("nonsense=0.1").is_err());
    }

    #[test]
    fn display_roundtrips() {
        let spec = SkewSpec::parse("cache=0.25,switch=0.125").unwrap();
        assert_eq!(SkewSpec::parse(&spec.to_string()).unwrap(), spec);
        let off = SkewSpec::default();
        assert_eq!(SkewSpec::parse(&off.to_string()).unwrap(), off);
    }

    #[test]
    fn derivation_is_deterministic_and_per_die() {
        let spec = SkewSpec::default_skew();
        let a = DieSkew::derive(&spec, 42, 3);
        let b = DieSkew::derive(&spec, 42, 3);
        assert_eq!(a, b);
        let c = DieSkew::derive(&spec, 42, 4);
        assert_ne!(a.cache_factor, c.cache_factor);
    }

    #[test]
    fn factors_stay_within_spec_bounds() {
        let spec = SkewSpec::parse("all=0.3").unwrap();
        for die in 0..64 {
            let s = DieSkew::derive(&spec, 7, die);
            assert!((0.7..=1.3).contains(&s.cache_factor));
            assert!((0.7..=1.3).contains(&s.tlb_factor));
            assert!((0.7..=1.3).contains(&s.switch_factor));
            assert!((0.0..=0.3).contains(&s.noise_floor));
        }
    }

    #[test]
    fn skewed_config_honors_simulator_geometry() {
        let spec = SkewSpec::parse("all=1.0").unwrap();
        let base = CpuConfig::skylake_scaled();
        for die in 0..32 {
            let cfg = DieSkew::derive(&spec, 99, die).apply(&base);
            for (bytes, ways) in [
                (cfg.l1i_bytes, cfg.l1i_ways),
                (cfg.uop_cache_bytes, cfg.uop_cache_ways),
                (cfg.l1d_bytes, cfg.l1d_ways),
                (cfg.l2_bytes, cfg.l2_ways),
                (cfg.llc_bytes, cfg.llc_ways),
            ] {
                let lines = bytes / 64;
                assert!(lines >= ways && lines % ways == 0);
            }
            assert!(cfg.itlb_entries >= 8 && cfg.dtlb_entries >= 8);
            assert!(cfg.transfer_uop_max >= 1);
            cfg.validate();
        }
    }

    #[test]
    fn zero_spec_is_the_nominal_machine() {
        let base = CpuConfig::skylake_scaled();
        let skew = DieSkew::derive(&SkewSpec::default(), 1, 5);
        let cfg = skew.apply(&base);
        assert_eq!(cfg.l1d_bytes, base.l1d_bytes);
        assert_eq!(cfg.itlb_entries, base.itlb_entries);
        assert_eq!(cfg.transfer_uop_max, base.transfer_uop_max);
        assert_eq!(skew.noise_floor, 0.0);
    }

    #[test]
    fn chaos_merge_keeps_user_rates_and_xors_seed() {
        let spec = SkewSpec::parse("noise=0.5").unwrap();
        let skew = DieSkew::derive(&spec, 11, 2);
        let base = ChaosSpec::parse("uc.drop=0.25,seed=100").unwrap();
        let merged = skew.chaos(Some(&base));
        assert_eq!(merged.uc_drop, 0.25);
        assert_eq!(merged.seed, 100 ^ 2);
        assert!(merged.telem_drift >= skew.noise_floor);
    }
}
