//! Fleet invariants: the rollout state machine driven with synthetic
//! verdicts (proptests), the fixed-seed canary-rollback regression, the
//! "rollout disabled ≡ N independent closed loops" identity, and
//! `--jobs` invariance of the report.

use proptest::prelude::*;
use psca_fleet::{
    run_fleet, CohortHealth, FleetImage, FleetParams, FleetSetup, Rollout, RolloutSpec,
    RolloutStatus, SkewSpec, StageAction,
};

fn img(version: u32, byte: u8) -> FleetImage {
    FleetImage {
        version,
        hi: vec![byte; 16],
        lo: vec![byte.wrapping_add(1); 16],
    }
}

fn healthy() -> CohortHealth {
    CohortHealth {
        rsv: 0.0,
        ppw_retained: 1.0,
        escalations: 0,
    }
}

fn sick() -> CohortHealth {
    CohortHealth {
        rsv: 1.0,
        ppw_retained: 0.0,
        escalations: u64::MAX,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// An unhealthy canary verdict means the candidate never reaches any
    /// die: the fleet ends bit-identical to its baseline and no further
    /// cohort is offered.
    #[test]
    fn never_promotes_past_unhealthy_canary(
        n in 1usize..24,
        canary in 1usize..4,
        waves in 0usize..4,
    ) {
        let spec = RolloutSpec { canary, waves, ..RolloutSpec::default() };
        let mut r = Rollout::new(n, spec, img(1, 0xAA), img(2, 0xBB));
        prop_assert_eq!(r.observe(sick()), StageAction::RolledBack);
        prop_assert_eq!(r.status(), RolloutStatus::RolledBack);
        prop_assert!(r.current_cohort().is_none());
        for die in 0..n as u64 {
            prop_assert_eq!(r.installed(die), r.baseline());
        }
    }

    /// However many cohorts were already promoted, the first unhealthy
    /// verdict restores the *prior* image on every die, bit-identically.
    #[test]
    fn rollback_restores_prior_image_bit_identically(
        n in 1usize..24,
        healthy_stages in 0usize..6,
    ) {
        let mut r = Rollout::new(n, RolloutSpec::default(), img(7, 0x5C), img(8, 0xC5));
        let baseline = r.baseline().clone();
        for _ in 0..healthy_stages {
            if r.status() != RolloutStatus::InProgress {
                break;
            }
            r.observe(healthy());
        }
        if r.status() == RolloutStatus::InProgress {
            prop_assert_eq!(r.observe(sick()), StageAction::RolledBack);
            for die in 0..n as u64 {
                prop_assert_eq!(r.installed(die), &baseline);
            }
        } else {
            // Every cohort promoted before the bad verdict could land:
            // the fleet completed on the candidate.
            prop_assert_eq!(r.status(), RolloutStatus::Completed);
            for die in 0..n as u64 {
                prop_assert_eq!(r.installed(die), r.candidate());
            }
        }
    }

    /// Quarantine is monotone: once a die accumulates enough strikes it
    /// stays quarantined through any later verdict, and quarantined dies
    /// never appear in a cohort.
    #[test]
    fn quarantine_is_monotone(
        n in 2usize..24,
        quarantine_after in 1u32..4,
        strikes in prop::collection::vec((0u64..24, any::<bool>()), 0..32),
    ) {
        let spec = RolloutSpec { quarantine_after, ..RolloutSpec::default() };
        let mut r = Rollout::new(n, spec, img(1, 1), img(2, 2));
        let mut ever = std::collections::BTreeSet::new();
        for (die, verdict_between) in strikes {
            let die = die % n as u64;
            r.strike(die);
            if r.is_quarantined(die) {
                ever.insert(die);
            }
            for &q in &ever {
                prop_assert!(r.is_quarantined(q), "die {q} released from quarantine");
            }
            if verdict_between && r.status() == RolloutStatus::InProgress {
                let cohort = r.current_cohort().unwrap();
                for &q in &ever {
                    prop_assert!(!cohort.contains(&q), "quarantined die {q} in cohort");
                }
                r.observe(healthy());
            }
        }
    }
}

/// The fixed-seed regression scenario behind `repro fleet --bad-image`:
/// a candidate image that decodes validly but always gates must be
/// caught by the canary cohort's health verdict and rolled back before
/// it reaches any later cohort.
#[test]
fn bad_image_rolls_back_at_canary() {
    let cfg = psca_adapt::ExperimentConfig::builder()
        .seed(3)
        .build()
        .unwrap();
    let params = FleetParams {
        size: 4,
        windows: 6,
        seed: 3,
        bad_image: true,
        ..FleetParams::default()
    };
    let report = run_fleet(&cfg, &params);
    assert_eq!(report.status, "rolled_back");
    assert!(!report.pass);
    assert_eq!(report.stages.len(), 1, "candidate leaked past the canary");
    assert_eq!(report.stages[0].action, StageAction::RolledBack);
    for die in &report.dies {
        assert_eq!(
            die.image_version, report.baseline.0,
            "die {} ended on the bad image",
            die.die
        );
    }
    // The sabotage must be visible in the image identity itself.
    assert_ne!(report.baseline.1, report.candidate.1, "fingerprint blind");
}

/// With the rollout disabled, the fleet report is exactly N independent
/// closed loops: each sweep-merged row equals the serial single-die
/// oracle, bit for bit.
#[test]
fn disabled_rollout_matches_independent_loops() {
    let cfg = psca_adapt::ExperimentConfig::builder()
        .seed(5)
        .build()
        .unwrap();
    let params = FleetParams {
        size: 3,
        windows: 6,
        seed: 5,
        rollout: None,
        ..FleetParams::default()
    };
    let report = run_fleet(&cfg, &params);
    assert_eq!(report.status, "disabled");
    assert!(report.stages.is_empty());
    let setup = FleetSetup::prepare(&cfg, &params);
    for row in &report.dies {
        let oracle = setup.die_stats(row.die, setup.baseline());
        assert_eq!(
            row.stats, oracle,
            "die {} diverges from serial oracle",
            row.die
        );
    }
}

/// The report JSON is a pure function of the parameters: `--jobs` moves
/// wall time, never a byte of output.
#[test]
fn report_is_jobs_invariant() {
    let params = FleetParams {
        size: 4,
        windows: 6,
        seed: 9,
        ..FleetParams::default()
    };
    let mut docs = Vec::new();
    for jobs in [1usize, 4] {
        let cfg = psca_adapt::ExperimentConfig::builder()
            .seed(9)
            .jobs(jobs)
            .build()
            .unwrap();
        docs.push(run_fleet(&cfg, &params).to_json().to_string());
    }
    assert_eq!(docs[0], docs[1]);
}

/// Skew and rollout grammars reject garbage and roundtrip through
/// Display, matching the ChaosSpec conventions the flags share.
#[test]
fn spec_grammars_roundtrip() {
    let skew = SkewSpec::parse("cache=0.2,noise=0.05").unwrap();
    assert_eq!(SkewSpec::parse(&skew.to_string()).unwrap(), skew);
    assert!(SkewSpec::parse("cache=2.0").is_err());
    let rollout = RolloutSpec::parse("canary=1,waves=3,ppw_floor=0.9")
        .unwrap()
        .unwrap();
    assert_eq!(
        RolloutSpec::parse(&rollout.to_string()).unwrap().unwrap(),
        rollout
    );
    assert!(RolloutSpec::parse("off").unwrap().is_none());
    assert!(RolloutSpec::parse("bogus=1").is_err());
}
