//! # psca-faults
//!
//! Deterministic, seedable fault injection for the closed adaptation
//! loop. The paper's premise is post-silicon reality: shipped CPUs see
//! noisy counters, late firmware predictions, flipped bits in pushed
//! images, and lost actuation requests. This crate models those hazards
//! so `adapt::ClosedLoopRequest::run_hardened` can demonstrate *graceful
//! degradation* instead of assuming a perfect substrate.
//!
//! Three fault surfaces, matching the loop's three stages
//! (telemetry → µC inference → actuation):
//!
//! - **telemetry** — stuck-at bits, full-scale saturation, dropped
//!   (zeroed) counters, scaling drift, and non-finite readings;
//! - **µC** — dropped predictions, prediction-latency overruns past the
//!   `t+2` apply deadline, NaN/Inf weight corruption, and firmware-image
//!   bit flips (caught by image validation);
//! - **actuation** — mode-switch requests lost or delayed a window.
//!
//! Everything is driven by a [`ChaosSpec`] (see `docs/ROBUSTNESS.md` for
//! the grammar) and a SplitMix64 stream seeded from the spec, so a given
//! `(spec, trace)` pair replays bit-identically. A
//! [`FaultInjector::disabled`] injector never perturbs anything, which is
//! what makes the hardened loop's no-fault path provably identical to the
//! plain closed loop.
//!
//! Every injected fault increments a `faults.*` counter, extends the
//! `faults.injected` time series, and (when tracing is on) drops a trace
//! instant, so chaos runs are fully observable through `psca-obs`.

#![warn(missing_docs)]

mod inject;
mod spec;

pub use inject::{
    ActuationFault, FaultCounts, FaultInjector, PredictionFault, SplitMix64, TelemetryFault,
};
pub use spec::ChaosSpec;
