//! The chaos-spec grammar: a comma-separated list of `key=value` pairs
//! selecting per-class fault rates, the injection seed, and an optional
//! burst cutoff.
//!
//! ```text
//! spec     := entry (',' entry)*
//! entry    := key '=' value
//! key      := 'seed' | 'burst' | 'max_rsv'
//!           | 'telem.stuck' | 'telem.sat' | 'telem.drop'
//!           | 'telem.drift' | 'telem.nan'
//!           | 'uc.drop' | 'uc.late' | 'uc.nan' | 'uc.bitflip'
//!           | 'act.lost' | 'act.delay'
//!           | 'telem' | 'uc' | 'act' | 'all'        (group shorthands)
//! value    := rate in [0, 1] (per-window probability), or an integer
//!             for 'seed' / 'burst'
//! ```
//!
//! Group shorthands set every rate in the group; later entries override
//! earlier ones, so `all=0.02,uc.late=0.1` is a valid refinement.

use std::fmt;

/// Per-window fault probabilities plus injection seed. Parsed from the
/// grammar above; `Default` is all-zero rates (injection disabled).
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosSpec {
    /// Seed for the injector's SplitMix64 stream.
    pub seed: u64,
    /// Stop injecting after this many windows (None = whole run). Burst
    /// specs exercise escalation-then-recovery paths.
    pub burst_windows: Option<u64>,
    /// SLA-violation-rate bound asserted by the chaos harness.
    pub max_rsv: f64,
    /// Telemetry: a counter column's value has a bit stuck high.
    pub telem_stuck: f64,
    /// Telemetry: a counter column reads full-scale (saturated).
    pub telem_saturate: f64,
    /// Telemetry: a counter column is dropped (reads zero).
    pub telem_drop: f64,
    /// Telemetry: a counter column is rescaled by a drift factor.
    pub telem_drift: f64,
    /// Telemetry: a counter sample reads NaN.
    pub telem_nan: f64,
    /// µC: the prediction for this window is never produced.
    pub uc_drop: f64,
    /// µC: inference overruns the `t+2` deadline; the prediction lands a
    /// window late.
    pub uc_late: f64,
    /// µC: in-memory weight corruption makes the score non-finite.
    pub uc_nan: f64,
    /// µC: a pushed firmware image arrives with flipped bits (rejected by
    /// image validation).
    pub uc_bitflip: f64,
    /// Actuation: the mode-switch request is lost.
    pub act_lost: f64,
    /// Actuation: the mode-switch request is applied one window late.
    pub act_delayed: f64,
}

impl Default for ChaosSpec {
    fn default() -> ChaosSpec {
        ChaosSpec {
            seed: 0xC0FFEE,
            burst_windows: None,
            max_rsv: 0.5,
            telem_stuck: 0.0,
            telem_saturate: 0.0,
            telem_drop: 0.0,
            telem_drift: 0.0,
            telem_nan: 0.0,
            uc_drop: 0.0,
            uc_late: 0.0,
            uc_nan: 0.0,
            uc_bitflip: 0.0,
            act_lost: 0.0,
            act_delayed: 0.0,
        }
    }
}

impl ChaosSpec {
    /// The default chaos mix used by `repro --chaos default` and the CI
    /// smoke job: every fault class enabled at a low rate.
    pub fn default_chaos() -> ChaosSpec {
        ChaosSpec {
            telem_stuck: 0.01,
            telem_saturate: 0.01,
            telem_drop: 0.01,
            telem_drift: 0.01,
            telem_nan: 0.01,
            uc_drop: 0.02,
            uc_late: 0.02,
            uc_nan: 0.01,
            uc_bitflip: 0.01,
            act_lost: 0.01,
            act_delayed: 0.01,
            ..ChaosSpec::default()
        }
    }

    /// Parses the chaos-spec grammar. `"default"` / `""` yield
    /// [`ChaosSpec::default_chaos`]; `"off"` yields all-zero rates.
    pub fn parse(s: &str) -> Result<ChaosSpec, String> {
        let s = s.trim();
        if s.is_empty() || s == "default" {
            return Ok(ChaosSpec::default_chaos());
        }
        if s == "off" {
            return Ok(ChaosSpec::default());
        }
        let mut spec = ChaosSpec::default();
        for entry in s.split(',') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let (key, value) = entry
                .split_once('=')
                .ok_or_else(|| format!("'{entry}': expected key=value"))?;
            let key = key.trim();
            let value = value.trim();
            match key {
                "seed" => {
                    spec.seed = value
                        .parse::<u64>()
                        .map_err(|_| format!("'{entry}': seed must be a non-negative integer"))?;
                }
                "burst" => {
                    spec.burst_windows =
                        Some(value.parse::<u64>().map_err(|_| {
                            format!("'{entry}': burst must be a non-negative integer")
                        })?);
                }
                "max_rsv" => {
                    spec.max_rsv = parse_rate(entry, value)?;
                }
                _ => {
                    let rate = parse_rate(entry, value)?;
                    match key {
                        "telem.stuck" => spec.telem_stuck = rate,
                        "telem.sat" => spec.telem_saturate = rate,
                        "telem.drop" => spec.telem_drop = rate,
                        "telem.drift" => spec.telem_drift = rate,
                        "telem.nan" => spec.telem_nan = rate,
                        "uc.drop" => spec.uc_drop = rate,
                        "uc.late" => spec.uc_late = rate,
                        "uc.nan" => spec.uc_nan = rate,
                        "uc.bitflip" => spec.uc_bitflip = rate,
                        "act.lost" => spec.act_lost = rate,
                        "act.delay" => spec.act_delayed = rate,
                        "telem" => {
                            spec.telem_stuck = rate;
                            spec.telem_saturate = rate;
                            spec.telem_drop = rate;
                            spec.telem_drift = rate;
                            spec.telem_nan = rate;
                        }
                        "uc" => {
                            spec.uc_drop = rate;
                            spec.uc_late = rate;
                            spec.uc_nan = rate;
                            spec.uc_bitflip = rate;
                        }
                        "act" => {
                            spec.act_lost = rate;
                            spec.act_delayed = rate;
                        }
                        "all" => {
                            spec.telem_stuck = rate;
                            spec.telem_saturate = rate;
                            spec.telem_drop = rate;
                            spec.telem_drift = rate;
                            spec.telem_nan = rate;
                            spec.uc_drop = rate;
                            spec.uc_late = rate;
                            spec.uc_nan = rate;
                            spec.uc_bitflip = rate;
                            spec.act_lost = rate;
                            spec.act_delayed = rate;
                        }
                        _ => return Err(format!("'{entry}': unknown key '{key}'")),
                    }
                }
            }
        }
        Ok(spec)
    }

    /// Returns the spec with every rate multiplied by `factor`, clamped
    /// to `[0, 1]`. Used by the chaos sweep.
    pub fn scaled(&self, factor: f64) -> ChaosSpec {
        let s = |r: f64| (r * factor).clamp(0.0, 1.0);
        ChaosSpec {
            seed: self.seed,
            burst_windows: self.burst_windows,
            max_rsv: self.max_rsv,
            telem_stuck: s(self.telem_stuck),
            telem_saturate: s(self.telem_saturate),
            telem_drop: s(self.telem_drop),
            telem_drift: s(self.telem_drift),
            telem_nan: s(self.telem_nan),
            uc_drop: s(self.uc_drop),
            uc_late: s(self.uc_late),
            uc_nan: s(self.uc_nan),
            uc_bitflip: s(self.uc_bitflip),
            act_lost: s(self.act_lost),
            act_delayed: s(self.act_delayed),
        }
    }

    /// Whether any fault class has a non-zero rate.
    pub fn any_enabled(&self) -> bool {
        [
            self.telem_stuck,
            self.telem_saturate,
            self.telem_drop,
            self.telem_drift,
            self.telem_nan,
            self.uc_drop,
            self.uc_late,
            self.uc_nan,
            self.uc_bitflip,
            self.act_lost,
            self.act_delayed,
        ]
        .iter()
        .any(|&r| r > 0.0)
    }
}

fn parse_rate(entry: &str, value: &str) -> Result<f64, String> {
    let rate: f64 = value
        .parse()
        .map_err(|_| format!("'{entry}': rate must be a number"))?;
    if !(0.0..=1.0).contains(&rate) || !rate.is_finite() {
        return Err(format!("'{entry}': rate must be in [0, 1]"));
    }
    Ok(rate)
}

impl fmt::Display for ChaosSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seed={}", self.seed)?;
        if let Some(b) = self.burst_windows {
            write!(f, ",burst={b}")?;
        }
        for (key, rate) in [
            ("telem.stuck", self.telem_stuck),
            ("telem.sat", self.telem_saturate),
            ("telem.drop", self.telem_drop),
            ("telem.drift", self.telem_drift),
            ("telem.nan", self.telem_nan),
            ("uc.drop", self.uc_drop),
            ("uc.late", self.uc_late),
            ("uc.nan", self.uc_nan),
            ("uc.bitflip", self.uc_bitflip),
            ("act.lost", self.act_lost),
            ("act.delay", self.act_delayed),
        ] {
            if rate > 0.0 {
                write!(f, ",{key}={rate}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_keyword_enables_every_class() {
        let spec = ChaosSpec::parse("default").unwrap();
        assert!(spec.any_enabled());
        assert!(spec.telem_stuck > 0.0 && spec.act_delayed > 0.0);
    }

    #[test]
    fn off_disables_everything() {
        assert!(!ChaosSpec::parse("off").unwrap().any_enabled());
    }

    #[test]
    fn group_shorthand_then_refinement() {
        let spec = ChaosSpec::parse("all=0.02,uc.late=0.5,seed=7").unwrap();
        assert_eq!(spec.seed, 7);
        assert_eq!(spec.telem_drop, 0.02);
        assert_eq!(spec.uc_late, 0.5);
        assert_eq!(spec.uc_drop, 0.02);
    }

    #[test]
    fn burst_and_max_rsv_parse() {
        let spec = ChaosSpec::parse("uc.drop=1.0,burst=4,max_rsv=0.25").unwrap();
        assert_eq!(spec.burst_windows, Some(4));
        assert_eq!(spec.max_rsv, 0.25);
    }

    #[test]
    fn bad_specs_are_rejected() {
        assert!(ChaosSpec::parse("uc.drop").is_err());
        assert!(ChaosSpec::parse("uc.drop=2.0").is_err());
        assert!(ChaosSpec::parse("uc.drop=-0.1").is_err());
        assert!(ChaosSpec::parse("nonsense=0.1").is_err());
        assert!(ChaosSpec::parse("seed=abc").is_err());
    }

    #[test]
    fn display_roundtrips() {
        let spec = ChaosSpec::parse("telem.nan=0.25,uc.drop=0.125,seed=42").unwrap();
        let back = ChaosSpec::parse(&spec.to_string()).unwrap();
        assert_eq!(spec, back);
    }

    #[test]
    fn scaling_clamps_to_unit_interval() {
        let spec = ChaosSpec::parse("uc.drop=0.6").unwrap().scaled(3.0);
        assert_eq!(spec.uc_drop, 1.0);
        assert_eq!(spec.telem_nan, 0.0);
    }
}
