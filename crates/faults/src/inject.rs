//! The deterministic fault injector.
//!
//! One [`FaultInjector`] owns a SplitMix64 stream seeded from its
//! [`ChaosSpec`]; each window the hardened loop calls `begin_window` and
//! then queries each fault surface. Draw order is fixed (telemetry
//! classes in declaration order, then prediction, then image, then
//! actuation), so a given `(spec, trace)` replays bit-identically
//! regardless of how the caller interleaves other work.

use crate::spec::ChaosSpec;
use psca_obs::FieldValue;

/// A telemetry counter fault applied to one window's rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TelemetryFault {
    /// A counter column's f64 representation has a bit stuck high.
    StuckBit,
    /// A counter column reads full-scale for the whole window.
    Saturated,
    /// A counter column is dropped: every sample reads zero.
    Dropped,
    /// A counter column is rescaled by a drift factor in [0.25, 4].
    Drift,
    /// A counter sample reads NaN.
    NonFinite,
}

/// A µC inference fault applied to one window's prediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredictionFault {
    /// The prediction is never produced (firmware crash / watchdog reset).
    Dropped,
    /// Inference overran the `t+2` deadline; the decision applies one
    /// window late.
    LatencyOverrun,
    /// In-memory weight corruption: the score comes back non-finite.
    WeightCorruption,
}

/// An actuation fault applied to one window's mode-switch request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActuationFault {
    /// The request is lost; the cluster configuration does not change.
    Lost,
    /// The request takes effect one window late.
    DelayedOneWindow,
}

/// Per-class tallies of injected faults.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Stuck-at-bit telemetry faults.
    pub telem_stuck: u64,
    /// Saturated-counter telemetry faults.
    pub telem_saturated: u64,
    /// Dropped-counter telemetry faults.
    pub telem_dropped: u64,
    /// Scaling-drift telemetry faults.
    pub telem_drift: u64,
    /// Non-finite telemetry faults.
    pub telem_nan: u64,
    /// Dropped predictions.
    pub uc_dropped: u64,
    /// Late predictions.
    pub uc_late: u64,
    /// Weight-corruption (NaN score) faults.
    pub uc_weight_nan: u64,
    /// Corrupted firmware-image pushes.
    pub uc_image_bitflip: u64,
    /// Lost mode-switch requests.
    pub act_lost: u64,
    /// Delayed mode-switch requests.
    pub act_delayed: u64,
}

impl FaultCounts {
    /// Total faults injected across all classes.
    pub fn total(&self) -> u64 {
        self.by_class().iter().map(|(_, n)| n).sum()
    }

    /// `(class name, count)` rows in a stable order.
    pub fn by_class(&self) -> [(&'static str, u64); 11] {
        [
            ("telem.stuck", self.telem_stuck),
            ("telem.sat", self.telem_saturated),
            ("telem.drop", self.telem_dropped),
            ("telem.drift", self.telem_drift),
            ("telem.nan", self.telem_nan),
            ("uc.drop", self.uc_dropped),
            ("uc.late", self.uc_late),
            ("uc.nan", self.uc_weight_nan),
            ("uc.bitflip", self.uc_image_bitflip),
            ("act.lost", self.act_lost),
            ("act.delay", self.act_delayed),
        ]
    }
}

/// SplitMix64: tiny, dependency-free, and statistically adequate for
/// fault scheduling (same generator the vendored proptest uses for its
/// deterministic per-test streams). Public so other deterministic
/// harnesses (e.g. `psca-fleet`'s per-die skew derivation) draw from
/// the exact same stream family without reimplementing the mixer.
#[derive(Debug, Clone)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// A stream whose entire future is determined by `seed`.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64(seed)
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in [0, 1).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform draw in `0..n` (`0` when `n == 0`).
    pub fn next_below(&mut self, n: usize) -> usize {
        (self.next_u64() % n.max(1) as u64) as usize
    }
}

/// The seedable fault injector driving a chaos run.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    spec: ChaosSpec,
    rng: SplitMix64,
    window: u64,
    counts: FaultCounts,
}

impl FaultInjector {
    /// Creates an injector for a spec; the RNG stream is derived from
    /// `spec.seed` alone.
    pub fn new(spec: ChaosSpec) -> FaultInjector {
        let seed = spec.seed;
        FaultInjector {
            spec,
            rng: SplitMix64(seed ^ 0x5CA1_AB1E_FA17_1337),
            window: 0,
            counts: FaultCounts::default(),
        }
    }

    /// An injector that never injects anything. The hardened loop run
    /// with a disabled injector is bit-identical to the plain loop.
    pub fn disabled() -> FaultInjector {
        FaultInjector::new(ChaosSpec::default())
    }

    /// Whether any fault class can fire.
    pub fn enabled(&self) -> bool {
        self.spec.any_enabled()
    }

    /// The spec this injector runs.
    pub fn spec(&self) -> &ChaosSpec {
        &self.spec
    }

    /// Per-class injection tallies so far.
    pub fn counts(&self) -> &FaultCounts {
        &self.counts
    }

    /// Marks the start of a prediction window. Must be called once per
    /// window before querying fault surfaces.
    pub fn begin_window(&mut self) {
        self.window += 1;
    }

    /// Whether injection is live this window (false once a burst spec's
    /// cutoff has passed). `begin_window` must have been called.
    fn live(&self) -> bool {
        match self.spec.burst_windows {
            Some(burst) => self.window <= burst,
            None => true,
        }
    }

    fn roll(&mut self, rate: f64) -> bool {
        rate > 0.0 && self.rng.next_f64() < rate
    }

    fn record(&mut self, class: &'static str) {
        psca_obs::counter(&format!("faults.{class}")).inc();
        psca_obs::counter("faults.injected").inc();
        psca_obs::series("faults.injected").push(self.counts.total() as f64 + 1.0);
        if psca_obs::enabled(psca_obs::Level::Debug) {
            psca_obs::emit(
                psca_obs::Level::Debug,
                "faults.inject",
                &[
                    ("class", class.into()),
                    ("window", FieldValue::from(self.window)),
                ],
            );
        }
        if psca_obs::trace::enabled() {
            psca_obs::trace::instant(
                "faults.inject",
                &[
                    ("class", class.into()),
                    ("window", FieldValue::from(self.window)),
                ],
            );
        }
    }

    /// Applies telemetry counter faults to one window's rows in place and
    /// returns the faults applied (empty when nothing fired). Rows are
    /// the window's per-interval normalized counter vectors.
    pub fn perturb_telemetry(&mut self, rows: &mut [Vec<f64>]) -> Vec<TelemetryFault> {
        if rows.is_empty() || rows[0].is_empty() || !self.live() {
            return Vec::new();
        }
        let dim = rows[0].len();
        let mut applied = Vec::new();
        if self.roll(self.spec.telem_stuck) {
            let col = self.rng.next_below(dim);
            let bit = 40 + self.rng.next_below(12) as u32; // exponent-adjacent mantissa bits
            for row in rows.iter_mut() {
                row[col] = f64::from_bits(row[col].to_bits() | (1u64 << bit));
            }
            self.counts.telem_stuck += 1;
            self.record("telem.stuck");
            applied.push(TelemetryFault::StuckBit);
        }
        if self.roll(self.spec.telem_saturate) {
            let col = self.rng.next_below(dim);
            let cap = rows.iter().map(|r| r[col].abs()).fold(1.0f64, |a, b| {
                if b.is_finite() {
                    a.max(b)
                } else {
                    a
                }
            });
            for row in rows.iter_mut() {
                row[col] = cap;
            }
            self.counts.telem_saturated += 1;
            self.record("telem.sat");
            applied.push(TelemetryFault::Saturated);
        }
        if self.roll(self.spec.telem_drop) {
            let col = self.rng.next_below(dim);
            for row in rows.iter_mut() {
                row[col] = 0.0;
            }
            self.counts.telem_dropped += 1;
            self.record("telem.drop");
            applied.push(TelemetryFault::Dropped);
        }
        if self.roll(self.spec.telem_drift) {
            let col = self.rng.next_below(dim);
            // Drift factor in [0.25, 4): log-uniform around 1.
            let factor = (2.0f64).powf(self.rng.next_f64() * 4.0 - 2.0);
            for row in rows.iter_mut() {
                row[col] *= factor;
            }
            self.counts.telem_drift += 1;
            self.record("telem.drift");
            applied.push(TelemetryFault::Drift);
        }
        if self.roll(self.spec.telem_nan) {
            // One whole telemetry packet (interval row) arrives corrupted:
            // poisoning the full row makes the fault visible no matter
            // which counter subset the deployed model reads.
            let row = self.rng.next_below(rows.len());
            for cell in rows[row].iter_mut() {
                *cell = f64::NAN;
            }
            self.counts.telem_nan += 1;
            self.record("telem.nan");
            applied.push(TelemetryFault::NonFinite);
        }
        applied
    }

    /// Draws this window's µC inference fault, if any. At most one class
    /// fires per prediction (dropped > late > weight corruption).
    pub fn prediction_fault(&mut self) -> Option<PredictionFault> {
        // Roll every class even when an earlier one fired, so the RNG
        // stream stays aligned across runs with different rate mixes.
        let dropped = self.roll(self.spec.uc_drop);
        let late = self.roll(self.spec.uc_late);
        let nan = self.roll(self.spec.uc_nan);
        if !self.live() {
            return None;
        }
        if dropped {
            self.counts.uc_dropped += 1;
            self.record("uc.drop");
            Some(PredictionFault::Dropped)
        } else if late {
            self.counts.uc_late += 1;
            self.record("uc.late");
            Some(PredictionFault::LatencyOverrun)
        } else if nan {
            self.counts.uc_weight_nan += 1;
            self.record("uc.nan");
            Some(PredictionFault::WeightCorruption)
        } else {
            None
        }
    }

    /// Whether a corrupted firmware-image push lands this window.
    pub fn image_fault(&mut self) -> bool {
        let fire = self.roll(self.spec.uc_bitflip);
        if fire && self.live() {
            self.counts.uc_image_bitflip += 1;
            self.record("uc.bitflip");
            true
        } else {
            false
        }
    }

    /// Flips `flips` random bits of a firmware image in place; used with
    /// [`FaultInjector::image_fault`] to model a corrupted OTA push.
    pub fn corrupt_image(&mut self, image: &mut [u8], flips: usize) {
        if image.is_empty() {
            return;
        }
        for _ in 0..flips.max(1) {
            let byte = self.rng.next_below(image.len());
            let bit = self.rng.next_below(8) as u32;
            image[byte] ^= 1u8 << bit;
        }
    }

    /// Draws this window's actuation fault, if any.
    pub fn actuation_fault(&mut self) -> Option<ActuationFault> {
        let lost = self.roll(self.spec.act_lost);
        let delayed = self.roll(self.spec.act_delayed);
        if !self.live() {
            return None;
        }
        if lost {
            self.counts.act_lost += 1;
            self.record("act.lost");
            Some(ActuationFault::Lost)
        } else if delayed {
            self.counts.act_delayed += 1;
            self.record("act.delay");
            Some(ActuationFault::DelayedOneWindow)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(n: usize, dim: usize) -> Vec<Vec<f64>> {
        (0..n).map(|i| vec![0.5 + i as f64 * 0.01; dim]).collect()
    }

    #[test]
    fn disabled_injector_never_fires() {
        let mut inj = FaultInjector::disabled();
        let mut r = rows(4, 8);
        let orig = r.clone();
        for _ in 0..100 {
            inj.begin_window();
            assert!(inj.perturb_telemetry(&mut r).is_empty());
            assert_eq!(inj.prediction_fault(), None);
            assert!(!inj.image_fault());
            assert_eq!(inj.actuation_fault(), None);
        }
        assert_eq!(r, orig);
        assert_eq!(inj.counts().total(), 0);
    }

    #[test]
    fn injection_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let mut spec = ChaosSpec::default_chaos();
            spec.seed = seed;
            let mut inj = FaultInjector::new(spec);
            let mut log = Vec::new();
            let mut r = rows(4, 8);
            for _ in 0..200 {
                inj.begin_window();
                log.push((
                    inj.perturb_telemetry(&mut r).len(),
                    inj.prediction_fault(),
                    inj.image_fault(),
                    inj.actuation_fault(),
                ));
            }
            (log, *inj.counts())
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1).1, run(2).1, "different seeds should differ");
    }

    #[test]
    fn every_class_fires_at_rate_one() {
        let mut inj = FaultInjector::new(ChaosSpec::parse("all=1.0").unwrap());
        inj.begin_window();
        let mut r = rows(4, 8);
        let applied = inj.perturb_telemetry(&mut r);
        assert_eq!(applied.len(), 5, "all five telemetry classes: {applied:?}");
        assert_eq!(inj.prediction_fault(), Some(PredictionFault::Dropped));
        assert!(inj.image_fault());
        assert_eq!(inj.actuation_fault(), Some(ActuationFault::Lost));
    }

    #[test]
    fn burst_stops_injection_after_cutoff() {
        let mut inj = FaultInjector::new(ChaosSpec::parse("uc.drop=1.0,burst=3").unwrap());
        let mut fired = Vec::new();
        for _ in 0..6 {
            inj.begin_window();
            fired.push(inj.prediction_fault().is_some());
        }
        assert_eq!(fired, vec![true, true, true, false, false, false]);
        assert_eq!(inj.counts().uc_dropped, 3);
    }

    #[test]
    fn dropped_column_reads_zero_and_nan_poisons_one_row() {
        let mut inj = FaultInjector::new(ChaosSpec::parse("telem.drop=1.0,telem.nan=1.0").unwrap());
        inj.begin_window();
        let mut r = rows(3, 4);
        inj.perturb_telemetry(&mut r);
        let nan_rows = r
            .iter()
            .filter(|row| row.iter().all(|v| v.is_nan()))
            .count();
        assert_eq!(nan_rows, 1, "exactly one fully-poisoned row");
        // The dropped column reads zero in every non-poisoned row.
        let zero_cols = (0..4)
            .filter(|&c| {
                r.iter()
                    .filter(|row| !row[0].is_nan())
                    .all(|row| row[c] == 0.0)
            })
            .count();
        assert!(zero_cols >= 1, "one column must be zeroed");
    }

    #[test]
    fn corrupt_image_flips_bits() {
        let mut inj = FaultInjector::new(ChaosSpec::default_chaos());
        let mut image = vec![0u8; 64];
        inj.corrupt_image(&mut image, 4);
        assert!(image.iter().any(|&b| b != 0));
    }
}
