//! The deployed closed loop: telemetry → firmware inference → predictive
//! cluster gating (Figure 1 / Figure 3).
//!
//! At the end of prediction window `t`, the window's counters are routed
//! to the microcontroller; during window `t+1` the firmware computes a
//! prediction; at the start of window `t+2` the cluster configuration is
//! applied. The CPU starts in high-performance mode and uses the
//! predictor matching whichever mode the telemetry was recorded in.

use crate::degrade::{DegradeConfig, DegradeLevel, DegradeSummary, PredictionHealth, Watchdog};
use crate::guardrail::{Guardrail, GuardrailConfig};
use crate::sla::Sla;
use crate::train::{TrainedAdaptModel, HORIZON};
use psca_cpu::{BackendChoice, CpuConfig, Mode, ModeSwitchFault};
use psca_faults::{ActuationFault, ChaosSpec, FaultCounts, FaultInjector, PredictionFault};
use psca_trace::{TraceSource, VecTrace};
use psca_uc::image;

/// Knobs modulating a closed-loop run beyond the mandatory inputs.
///
/// `Default` is the healthy fast path: no fault injection, default
/// degradation-ladder tuning, hardened bookkeeping off.
#[derive(Debug, Clone, Default)]
pub struct ClosedLoopOptions {
    /// Chaos to inject on the loop. `None` (or an all-zero spec) keeps
    /// the run on the fault-free fast path unless
    /// [`hardened`](ClosedLoopOptions::hardened) forces the watchdog in.
    pub faults: Option<ChaosSpec>,
    /// Degradation-ladder tuning; consulted only on the hardened path.
    pub degrade: DegradeConfig,
    /// Core parameterization to simulate. `None` runs the paper's
    /// scaled-Skylake machine; fleet harnesses pass per-die skewed
    /// configs here so one loop models one physical die.
    pub cpu: Option<CpuConfig>,
    /// Run the hardened engine (watchdog + degradation accounting) even
    /// with no faults enabled. The accounting result stays bit-identical
    /// to the fast path — a regression test enforces it.
    pub hardened: bool,
    /// Simulation fidelity to drive the loop on. The default reference
    /// [`BackendChoice::CycleAccurate`] is bit-identical to the
    /// pre-backend code path; [`BackendChoice::Surrogate`] trades bounded
    /// IPC/energy divergence for orders-of-magnitude faster evaluation.
    pub backend: BackendChoice,
}

/// One closed-loop simulation, fully specified: the typed replacement for
/// the old positional `run_closed_loop(model, warm, window, interval)` /
/// `run_closed_loop_hardened(..)` entry points. The daemon, the CLI, and
/// the experiment runners all build one of these.
///
/// ```ignore
/// let res = ClosedLoopRequest::new(&model, &warm, &window, cfg.interval_insts)
///     .with_faults(ChaosSpec::parse("uc_drop=0.05")?)
///     .run_hardened();
/// ```
#[derive(Debug, Clone)]
pub struct ClosedLoopRequest<'a> {
    /// Trained per-mode predictor pair to deploy in the loop.
    pub model: &'a TrainedAdaptModel,
    /// Warm-up trace, replayed with telemetry discarded.
    pub warm: &'a VecTrace,
    /// Measured trace region.
    pub window: &'a VecTrace,
    /// Base telemetry interval in instructions.
    pub interval_insts: u64,
    /// Everything optional.
    pub options: ClosedLoopOptions,
}

impl<'a> ClosedLoopRequest<'a> {
    /// A request with default [`ClosedLoopOptions`].
    pub fn new(
        model: &'a TrainedAdaptModel,
        warm: &'a VecTrace,
        window: &'a VecTrace,
        interval_insts: u64,
    ) -> ClosedLoopRequest<'a> {
        ClosedLoopRequest {
            model,
            warm,
            window,
            interval_insts,
            options: ClosedLoopOptions::default(),
        }
    }

    /// Injects `spec` chaos on the loop (implies the hardened engine).
    pub fn with_faults(mut self, spec: ChaosSpec) -> ClosedLoopRequest<'a> {
        self.options.faults = Some(spec);
        self
    }

    /// Overrides the degradation-ladder tuning.
    pub fn with_degrade(mut self, cfg: DegradeConfig) -> ClosedLoopRequest<'a> {
        self.options.degrade = cfg;
        self
    }

    /// Simulates `cpu` instead of the default scaled-Skylake machine.
    pub fn with_cpu(mut self, cpu: CpuConfig) -> ClosedLoopRequest<'a> {
        self.options.cpu = Some(cpu);
        self
    }

    /// Forces the hardened engine even without faults.
    pub fn hardened(mut self) -> ClosedLoopRequest<'a> {
        self.options.hardened = true;
        self
    }

    /// Drives the loop on `backend` instead of the reference simulator.
    pub fn with_backend(mut self, backend: BackendChoice) -> ClosedLoopRequest<'a> {
        self.options.backend = backend;
        self
    }

    /// True when any configured fault rate is nonzero.
    fn faults_enabled(&self) -> bool {
        self.options
            .faults
            .as_ref()
            .is_some_and(|s| s.any_enabled())
    }

    /// Runs the loop and returns the plain accounting.
    ///
    /// Fault-free, non-hardened requests take the fast engine; anything
    /// else runs hardened and discards the extra bookkeeping (use
    /// [`run_hardened`](ClosedLoopRequest::run_hardened) to keep it).
    pub fn run(&self) -> ClosedLoopResult {
        if !self.options.hardened && !self.faults_enabled() {
            return plain_loop(
                self.model,
                self.warm,
                self.window,
                self.interval_insts,
                self.options.cpu.as_ref(),
                self.options.backend,
            );
        }
        self.run_hardened().result
    }

    /// Runs the hardened engine and returns the full accounting:
    /// closed-loop result plus degradation, fault, and image bookkeeping.
    pub fn run_hardened(&self) -> HardenedLoopResult {
        let mut injector = match &self.options.faults {
            Some(spec) => FaultInjector::new(spec.clone()),
            None => FaultInjector::disabled(),
        };
        hardened_loop(
            self.model,
            self.warm,
            self.window,
            self.interval_insts,
            self.options.cpu.as_ref(),
            self.options.backend,
            &mut injector,
            self.options.degrade,
        )
    }
}

/// Outcome of one closed-loop run over a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct ClosedLoopResult {
    /// Per-prediction-window gating decision, indexed by the window it
    /// *applies to* (`None` for the first [`HORIZON`] windows).
    pub predictions: Vec<Option<u8>>,
    /// Mode each window actually ran in.
    pub modes: Vec<Mode>,
    /// Total energy of the adaptive run.
    pub energy: f64,
    /// Total cycles of the adaptive run.
    pub cycles: u64,
    /// Total instructions executed.
    pub instructions: u64,
    /// Fraction of windows spent in low-power mode.
    pub low_power_residency: f64,
}

impl ClosedLoopResult {
    /// Performance per watt: instructions per unit energy. A run that
    /// recorded no (or non-finite) energy has no meaningful efficiency
    /// and reports 0.0 rather than the near-infinite ratio a division by
    /// `f64::MIN_POSITIVE` would produce.
    pub fn ppw(&self) -> f64 {
        if !self.energy.is_finite() || self.energy <= 0.0 {
            return 0.0;
        }
        self.instructions as f64 / self.energy
    }

    /// Aligned `(truth, prediction)` label vectors for windows that had a
    /// prediction, given per-window ground truth.
    pub fn aligned_labels(&self, truth: &[u8]) -> (Vec<u8>, Vec<u8>) {
        let mut t = Vec::new();
        let mut p = Vec::new();
        for (i, pred) in self.predictions.iter().enumerate() {
            if let (Some(pr), Some(&tr)) = (pred, truth.get(i)) {
                t.push(tr);
                p.push(*pr);
            }
        }
        (t, p)
    }
}

/// The fault-free fast engine behind [`ClosedLoopRequest::run`].
fn plain_loop(
    model: &TrainedAdaptModel,
    warm: &VecTrace,
    window: &VecTrace,
    interval_insts: u64,
    cpu: Option<&CpuConfig>,
    backend: BackendChoice,
) -> ClosedLoopResult {
    let _span = psca_obs::SpanTimer::start("adapt.closed_loop");
    let g = model.granularity;
    let mut sim = backend.build(
        cpu.cloned().unwrap_or_else(CpuConfig::skylake_scaled),
        interval_insts,
    );
    let mut warm_replay = warm.clone();
    sim.warm_up(&mut warm_replay, warm.len() as u64);
    let mut replay = window.clone();

    let mut predictions: Vec<Option<u8>> = Vec::new();
    let mut modes = Vec::new();
    let mut pending: Vec<Option<Mode>> = Vec::new(); // indexed by window
    let mut energy = 0.0;
    let mut cycles = 0u64;
    let mut instructions = 0u64;
    let mut low_windows = 0usize;
    // Window scratch, reused across windows so the hot loop allocates only
    // while the buffers first grow to the window size.
    let mut rows: Vec<Vec<f64>> = Vec::with_capacity(g);
    let mut row_cycles: Vec<u64> = Vec::with_capacity(g);
    // Metric handles resolved once, not per window.
    let windows_ctr = psca_obs::counter("adapt.windows");
    let gated_ctr = psca_obs::counter("adapt.windows_gated_low");
    let gated_series = psca_obs::series_handle("adapt.window.gated");

    let mut widx = 0usize;
    'outer: loop {
        // Apply any scheduled configuration for this window.
        if let Some(Some(mode)) = pending.get(widx) {
            sim.set_mode(*mode);
        }
        let window_mode = sim.mode();
        // Trace-gated: renders each prediction window as its own span in
        // the request's Perfetto tree. Never touches the simulation.
        let win_ts = psca_obs::trace::enabled().then(psca_obs::trace::now_us);
        // Run the window's base intervals, collecting telemetry rows.
        row_cycles.clear();
        let mut filled = 0usize;
        for _ in 0..g {
            let Some(r) = sim.run_interval(&mut replay, interval_insts) else {
                break 'outer;
            };
            energy += r.energy;
            cycles += r.snapshot.cycles;
            instructions += r.instructions;
            if filled == rows.len() {
                rows.push(r.snapshot.as_slice().to_vec());
            } else {
                rows[filled].clear();
                rows[filled].extend_from_slice(r.snapshot.as_slice());
            }
            filled += 1;
            row_cycles.push(r.snapshot.cycles);
        }
        if filled < g {
            break;
        }
        if let Some(ts) = win_ts {
            let dur = psca_obs::trace::now_us().saturating_sub(ts);
            psca_obs::trace::complete("sim.window", ts, dur);
        }
        modes.push(window_mode);
        windows_ctr.inc();
        if window_mode == Mode::LowPower {
            low_windows += 1;
            gated_ctr.inc();
        }
        gated_series.push(if window_mode == Mode::LowPower {
            1.0
        } else {
            0.0
        });
        // Counters from window t → configuration for window t+HORIZON.
        let gate = model.predict(window_mode, &rows, &row_cycles);
        if psca_obs::enabled(psca_obs::Level::Trace) {
            psca_obs::emit(
                psca_obs::Level::Trace,
                "adapt.window.decision",
                &[
                    ("window", widx.into()),
                    ("mode", window_mode.to_string().into()),
                    ("gate", gate.into()),
                ],
            );
        }
        if psca_obs::trace::enabled() {
            psca_obs::trace::instant(
                "adapt.window.decision",
                &[
                    ("window", widx.into()),
                    ("mode", window_mode.to_string().into()),
                    ("gate", gate.into()),
                ],
            );
        }
        let target = widx + HORIZON;
        while pending.len() <= target {
            pending.push(None);
        }
        pending[target] = Some(if gate { Mode::LowPower } else { Mode::HighPerf });
        while predictions.len() <= target {
            predictions.push(None);
        }
        predictions[target] = Some(gate as u8);
        widx += 1;
    }
    predictions.truncate(modes.len());
    let low_power_residency = if modes.is_empty() {
        0.0
    } else {
        low_windows as f64 / modes.len() as f64
    };
    ClosedLoopResult {
        predictions,
        modes,
        energy,
        cycles,
        instructions,
        low_power_residency,
    }
}

/// Outcome of one hardened closed-loop run: the usual accounting plus
/// degradation and fault bookkeeping.
#[derive(Debug, Clone)]
pub struct HardenedLoopResult {
    /// The closed-loop accounting (bit-identical to
    /// [`ClosedLoopRequest::run`] when the injector is disabled).
    pub result: ClosedLoopResult,
    /// Degradation-ladder residency and transitions.
    pub degrade: DegradeSummary,
    /// Faults actually injected, by class.
    pub faults: FaultCounts,
    /// Corrupted firmware images caught by the image checksum/validator.
    pub images_rejected: u64,
    /// Measured IPC of each completed prediction window.
    pub window_ipc: Vec<f64>,
}

/// [`ClosedLoopRequest::run`] with fault injection and the
/// graceful-degradation ladder of [`crate::degrade`].
///
/// Each window the injector may perturb telemetry rows, drop/delay/corrupt
/// the scheduled prediction, flip bits in the firmware image, or lose the
/// mode-switch request. A [`Watchdog`] classifies every scheduled
/// prediction's [`PredictionHealth`] and walks the ladder; per tier the
/// window is gated by the model, the last known-good decision, the §3.1
/// guardrail heuristic, or pinned high-performance.
///
/// The watchdog engine behind [`ClosedLoopRequest::run_hardened`].
///
/// With a disabled injector the healthy path performs exactly the same
/// simulator calls as [`ClosedLoopRequest::run`], so the result is
/// bit-identical (a regression test enforces this).
#[allow(clippy::too_many_arguments)]
fn hardened_loop(
    model: &TrainedAdaptModel,
    warm: &VecTrace,
    window: &VecTrace,
    interval_insts: u64,
    cpu: Option<&CpuConfig>,
    backend: BackendChoice,
    injector: &mut FaultInjector,
    degrade_cfg: DegradeConfig,
) -> HardenedLoopResult {
    let _span = psca_obs::SpanTimer::start("adapt.closed_loop.hardened");
    let g = model.granularity;
    let mut sim = backend.build(
        cpu.cloned().unwrap_or_else(CpuConfig::skylake_scaled),
        interval_insts,
    );
    let mut warm_replay = warm.clone();
    sim.warm_up(&mut warm_replay, warm.len() as u64);
    let mut replay = window.clone();

    let mut predictions: Vec<Option<u8>> = Vec::new();
    let mut modes = Vec::new();
    // Scheduled decision per window, tagged with the health it arrived in.
    let mut pending: Vec<Option<(bool, PredictionHealth)>> = Vec::new();
    let mut energy = 0.0;
    let mut cycles = 0u64;
    let mut instructions = 0u64;
    let mut low_windows = 0usize;
    let mut watchdog = Watchdog::new(degrade_cfg);
    let mut heuristic = Guardrail::new(GuardrailConfig::default(), Sla::paper_default());
    let mut heuristic_gate = false;
    let mut last_good_gate = false;
    let mut window_ipc = Vec::new();
    let mut images_rejected = 0u64;
    // Window scratch + metric handles, hoisted exactly as in
    // [`plain_loop`].
    let mut rows: Vec<Vec<f64>> = Vec::with_capacity(g);
    let mut row_cycles: Vec<u64> = Vec::with_capacity(g);
    let windows_ctr = psca_obs::counter("adapt.windows");
    let gated_ctr = psca_obs::counter("adapt.windows_gated_low");
    let gated_series = psca_obs::series_handle("adapt.window.gated");

    let mut widx = 0usize;
    'outer: loop {
        injector.begin_window();
        sim.apply_delayed_mode();
        // Classify this window's scheduled decision and pick the gate the
        // current ladder tier dictates. The first HORIZON windows carry no
        // prediction by design and are not watchdog material.
        let scheduled = pending.get(widx).copied().flatten();
        let desired_gate: Option<bool> = if widx < HORIZON {
            None
        } else {
            let health = match scheduled {
                Some((_, h)) => h,
                None => PredictionHealth::Missing,
            };
            let level = watchdog.observe(health);
            if level == DegradeLevel::ModelDriven {
                if let Some((gate, PredictionHealth::Ok)) = scheduled {
                    last_good_gate = gate;
                }
            }
            match level {
                DegradeLevel::ModelDriven => scheduled.map(|(gate, _)| gate),
                DegradeLevel::HoldLast => Some(last_good_gate),
                DegradeLevel::HeuristicOnly => Some(heuristic_gate),
                DegradeLevel::PinnedHighPerf => Some(false),
            }
        };
        if let Some(gate) = desired_gate {
            let desired = if gate { Mode::LowPower } else { Mode::HighPerf };
            let fault = match injector.actuation_fault() {
                None => ModeSwitchFault::None,
                Some(ActuationFault::Lost) => ModeSwitchFault::Lost,
                Some(ActuationFault::DelayedOneWindow) => ModeSwitchFault::DelayedOneWindow,
            };
            sim.request_mode(desired, fault);
        }
        let window_mode = sim.mode();
        // Trace-gated per-window span, exactly as in [`plain_loop`].
        let win_ts = psca_obs::trace::enabled().then(psca_obs::trace::now_us);
        // Run the window's base intervals, collecting telemetry rows.
        row_cycles.clear();
        let mut filled = 0usize;
        let mut w_cycles = 0u64;
        let mut w_insts = 0u64;
        for _ in 0..g {
            let Some(r) = sim.run_interval(&mut replay, interval_insts) else {
                break 'outer;
            };
            energy += r.energy;
            cycles += r.snapshot.cycles;
            instructions += r.instructions;
            w_cycles += r.snapshot.cycles;
            w_insts += r.instructions;
            if filled == rows.len() {
                rows.push(r.snapshot.as_slice().to_vec());
            } else {
                rows[filled].clear();
                rows[filled].extend_from_slice(r.snapshot.as_slice());
            }
            filled += 1;
            row_cycles.push(r.snapshot.cycles);
        }
        if filled < g {
            break;
        }
        if let Some(ts) = win_ts {
            let dur = psca_obs::trace::now_us().saturating_sub(ts);
            psca_obs::trace::complete("sim.window", ts, dur);
        }
        modes.push(window_mode);
        windows_ctr.inc();
        if window_mode == Mode::LowPower {
            low_windows += 1;
            gated_ctr.inc();
        }
        gated_series.push(if window_mode == Mode::LowPower {
            1.0
        } else {
            0.0
        });
        let ipc = w_insts as f64 / w_cycles.max(1) as f64;
        window_ipc.push(ipc);
        // Telemetry counter faults strike between the counters and the µC.
        injector.perturb_telemetry(&mut rows);
        // Firmware inference, with health classification instead of
        // panics: non-finite features and firmware errors both mean the
        // prediction cannot be trusted.
        let (feat, fw) = model.mode_parts(window_mode);
        let features = feat.featurize(&rows, &row_cycles);
        let (gate, mut health) = if features.iter().any(|v| !v.is_finite()) {
            psca_obs::counter("adapt.features.non_finite").inc();
            (false, PredictionHealth::NonFinite)
        } else {
            match fw.predict(&features) {
                Ok(gate) => (gate, PredictionHealth::Ok),
                Err(_) => {
                    psca_obs::counter("adapt.firmware.errors").inc();
                    (false, PredictionHealth::FirmwareFault)
                }
            }
        };
        // µC prediction faults strike between inference and actuation.
        let mut schedule = true;
        let mut target = widx + HORIZON;
        match injector.prediction_fault() {
            None => {}
            Some(PredictionFault::Dropped) => schedule = false,
            Some(PredictionFault::LatencyOverrun) => {
                // The prediction misses its t+2 apply deadline and lands a
                // window late, already stale.
                target += 1;
                if health.is_healthy() {
                    health = PredictionHealth::Stale;
                }
            }
            Some(PredictionFault::WeightCorruption) if health.is_healthy() => {
                health = PredictionHealth::NonFinite;
            }
            Some(PredictionFault::WeightCorruption) => {}
        }
        if schedule {
            while pending.len() <= target {
                pending.push(None);
            }
            pending[target] = Some((gate, health));
            while predictions.len() <= target {
                predictions.push(None);
            }
            predictions[target] = Some(gate as u8);
        }
        // Firmware-image bit flips: a reload from a corrupted image must
        // be caught by the image checksum / weight validator.
        if injector.image_fault() {
            if let Ok(mut img) = image::encode(fw) {
                injector.corrupt_image(&mut img, 3);
                if image::decode(&img).is_err() {
                    images_rejected += 1;
                    psca_obs::counter("uc.image.rejected").inc();
                }
            }
        }
        // Keep the heuristic fallback warm every window so it has a live
        // IPC reference the moment the ladder needs it.
        heuristic_gate = heuristic.vet(window_mode == Mode::LowPower, ipc, true);
        if psca_obs::enabled(psca_obs::Level::Trace) {
            psca_obs::emit(
                psca_obs::Level::Trace,
                "adapt.window.decision",
                &[
                    ("window", widx.into()),
                    ("mode", window_mode.to_string().into()),
                    ("gate", gate.into()),
                    ("level", watchdog.level().name().into()),
                ],
            );
        }
        widx += 1;
    }
    predictions.truncate(modes.len());
    let low_power_residency = if modes.is_empty() {
        0.0
    } else {
        low_windows as f64 / modes.len() as f64
    };
    HardenedLoopResult {
        result: ClosedLoopResult {
            predictions,
            modes,
            energy,
            cycles,
            instructions,
            low_power_residency,
        },
        degrade: watchdog.summary(),
        faults: *injector.counts(),
        images_rejected,
        window_ipc,
    }
}

/// Records `(warm, window)` trace pair from a source, for replay through
/// both the paired-mode collector and the closed loop.
pub fn record_trace<S: TraceSource>(
    source: &mut S,
    warmup_insts: u64,
    window_insts: u64,
) -> (VecTrace, VecTrace) {
    let warm = VecTrace::record(source, warmup_insts);
    let window = VecTrace::record(source, window_insts);
    (warm, window)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paired::{collect_paired, CorpusTelemetry};
    use crate::train::ModelKind;
    use crate::zoo;
    use crate::ExperimentConfig;
    use psca_workloads::{Archetype, PhaseGenerator};

    fn corpus_and_model() -> (CorpusTelemetry, TrainedAdaptModel, ExperimentConfig) {
        let mut traces = Vec::new();
        for (i, a) in [
            Archetype::DepChain,
            Archetype::ScalarIlp,
            Archetype::MemBound,
            Archetype::Balanced,
        ]
        .iter()
        .enumerate()
        {
            let mut gen = PhaseGenerator::new(a.center(), i as u64 + 30);
            traces.push(collect_paired(&mut gen, 2_000, 24, 2_000, i as u32, "t", 1));
        }
        let corpus = CorpusTelemetry { traces };
        let cfg = ExperimentConfig::quick();
        let model = zoo::train(ModelKind::BestRf, &corpus, &cfg);
        (corpus, model, cfg)
    }

    #[test]
    fn ppw_is_zero_without_energy() {
        let mut res = ClosedLoopResult {
            predictions: vec![],
            modes: vec![],
            energy: 0.0,
            cycles: 0,
            instructions: 1_000,
            low_power_residency: 0.0,
        };
        assert_eq!(res.ppw(), 0.0, "zero energy must not yield ~1e308");
        res.energy = f64::NAN;
        assert_eq!(res.ppw(), 0.0);
        res.energy = f64::INFINITY;
        assert_eq!(res.ppw(), 0.0);
        res.energy = -1.0;
        assert_eq!(res.ppw(), 0.0);
        res.energy = 500.0;
        assert_eq!(res.ppw(), 2.0);
    }

    #[test]
    fn closed_loop_runs_and_accounts() {
        let (_, model, cfg) = corpus_and_model();
        let mut gen = PhaseGenerator::new(Archetype::Balanced.center(), 99);
        let (warm, window) = record_trace(&mut gen, 2_000, 48_000);
        let res = ClosedLoopRequest::new(&model, &warm, &window, cfg.interval_insts).run();
        assert_eq!(res.instructions, 48_000);
        assert!(res.energy > 0.0);
        assert!(res.cycles > 0);
        assert_eq!(
            res.modes.len(),
            48_000 / (cfg.interval_insts * model.granularity as u64) as usize
        );
        // The first HORIZON windows carry no prediction.
        assert!(res.predictions[0].is_none());
        assert!(res.predictions[1].is_none());
    }

    #[test]
    fn gateable_workload_spends_time_in_low_power() {
        let (_, model, cfg) = corpus_and_model();
        let mut gen = PhaseGenerator::new(Archetype::DepChain.center(), 77);
        let (warm, window) = record_trace(&mut gen, 2_000, 64_000);
        let res = ClosedLoopRequest::new(&model, &warm, &window, cfg.interval_insts).run();
        assert!(
            res.low_power_residency > 0.4,
            "serial workload should gate: residency {}",
            res.low_power_residency
        );
    }

    #[test]
    fn wide_workload_mostly_stays_high_perf() {
        let (_, model, cfg) = corpus_and_model();
        let mut gen = PhaseGenerator::new(Archetype::ScalarIlp.center(), 78);
        let (warm, window) = record_trace(&mut gen, 2_000, 64_000);
        let res = ClosedLoopRequest::new(&model, &warm, &window, cfg.interval_insts).run();
        assert!(
            res.low_power_residency < 0.5,
            "wide workload should not gate: residency {}",
            res.low_power_residency
        );
    }

    #[test]
    fn adaptive_ppw_beats_static_on_gateable_workloads() {
        let (_, model, cfg) = corpus_and_model();
        let mut gen = PhaseGenerator::new(Archetype::DepChain.center(), 55);
        let (warm, window) = record_trace(&mut gen, 2_000, 64_000);
        let adaptive = ClosedLoopRequest::new(&model, &warm, &window, cfg.interval_insts).run();
        // Static high-performance baseline on the identical trace.
        let mut gen2 = PhaseGenerator::new(Archetype::DepChain.center(), 55);
        let paired = collect_paired(&mut gen2, 2_000, 32, 2_000, 0, "t", 1);
        let hi_energy: f64 = paired.energy_hi.iter().sum();
        let hi_insts: u64 = paired.insts.iter().sum();
        let hi_ppw = hi_insts as f64 / hi_energy;
        assert!(
            adaptive.ppw() > hi_ppw,
            "adaptive {} !> static {}",
            adaptive.ppw(),
            hi_ppw
        );
    }

    #[test]
    fn aligned_labels_skip_unpredicted_windows() {
        let (_, model, cfg) = corpus_and_model();
        let mut gen = PhaseGenerator::new(Archetype::Balanced.center(), 31);
        let (warm, window) = record_trace(&mut gen, 2_000, 40_000);
        let res = ClosedLoopRequest::new(&model, &warm, &window, cfg.interval_insts).run();
        let truth = vec![1u8; res.modes.len()];
        let (t, p) = res.aligned_labels(&truth);
        assert_eq!(t.len(), p.len());
        assert_eq!(
            t.len(),
            res.predictions.iter().filter(|x| x.is_some()).count()
        );
    }
}
