//! Service-level-agreement formalization (§3.1).

/// A performance SLA between the CPU vendor and a customer.
///
/// The low-power mode must achieve at least `p_sla` of the
/// high-performance mode's IPC, measured over windows of `t_sla_insts`
/// instructions, with at most `1 - guarantee` of windows in violation.
///
/// The paper's default: `P_SLA = 90%`, `T_SLA = 1 ms` (16M instructions at
/// the CPU's 16 GIPS peak), guaranteed to 99%. Scaled experiment configs
/// shrink `t_sla_insts` proportionally to the shortened traces.
///
/// # Examples
///
/// ```
/// use psca_adapt::Sla;
///
/// let sla = Sla::paper_default();
/// assert_eq!(sla.p_sla, 0.90);
/// // W = 16M instructions / 10k per prediction = 1600 predictions (§4.2).
/// assert_eq!(sla.violation_window(10_000), 1600);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sla {
    /// Minimum low-power IPC as a fraction of high-performance IPC.
    pub p_sla: f64,
    /// SLA measurement window in instructions (T_SLA × peak throughput).
    pub t_sla_insts: u64,
    /// Fraction of windows that must meet the threshold (e.g. 0.99).
    pub guarantee: f64,
}

impl Sla {
    /// The paper's deployment SLA: 90% performance over 1 ms windows
    /// (16M instructions), guaranteed to 99%.
    pub fn paper_default() -> Sla {
        Sla {
            p_sla: 0.90,
            t_sla_insts: 16_000_000,
            guarantee: 0.99,
        }
    }

    /// A copy with a different performance threshold (post-silicon SLA
    /// re-targeting, §7.3 / Table 5).
    pub fn with_p_sla(self, p_sla: f64) -> Sla {
        assert!((0.0..=1.0).contains(&p_sla), "P_SLA must be in [0, 1]");
        Sla { p_sla, ..self }
    }

    /// A copy with a scaled measurement window (for scaled experiments).
    pub fn with_t_sla_insts(self, t_sla_insts: u64) -> Sla {
        assert!(t_sla_insts > 0, "T_SLA must be positive");
        Sla {
            t_sla_insts,
            ..self
        }
    }

    /// Ground-truth label: does a low-power interval meet the SLA?
    ///
    /// `y = 1` (gate Cluster 2) iff `ipc_lo ≥ p_sla × ipc_hi`.
    #[inline]
    pub fn label(&self, ipc_hi: f64, ipc_lo: f64) -> u8 {
        (ipc_lo >= self.p_sla * ipc_hi) as u8
    }

    /// The violation-window size `W` in predictions for a prediction
    /// granularity of `insts_per_prediction` (Eq. 2's `W = R·T_SLA·L`
    /// with `R·T_SLA` expressed as instructions).
    ///
    /// # Panics
    /// Panics if `insts_per_prediction == 0`.
    pub fn violation_window(&self, insts_per_prediction: u64) -> usize {
        assert!(insts_per_prediction > 0, "granularity must be positive");
        (self.t_sla_insts / insts_per_prediction).max(1) as usize
    }
}

impl Default for Sla {
    fn default() -> Sla {
        Sla::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_window_sizes() {
        let sla = Sla::paper_default();
        assert_eq!(sla.violation_window(10_000), 1600);
        assert_eq!(sla.violation_window(40_000), 400);
        assert_eq!(sla.violation_window(100_000), 160);
    }

    #[test]
    fn labels_follow_threshold() {
        let sla = Sla::paper_default();
        assert_eq!(sla.label(2.0, 1.9), 1);
        assert_eq!(sla.label(2.0, 1.8), 1); // exactly 90%
        assert_eq!(sla.label(2.0, 1.7), 0);
    }

    #[test]
    fn retargeting_changes_labels() {
        let strict = Sla::paper_default();
        let loose = strict.with_p_sla(0.70);
        assert_eq!(strict.label(2.0, 1.5), 0);
        assert_eq!(loose.label(2.0, 1.5), 1);
    }

    #[test]
    fn window_never_zero() {
        let sla = Sla::paper_default().with_t_sla_insts(100);
        assert_eq!(sla.violation_window(10_000), 1);
    }

    #[test]
    #[should_panic(expected = "P_SLA must be in")]
    fn bad_p_sla_rejected() {
        let _ = Sla::paper_default().with_p_sla(1.5);
    }
}
