//! Paired-mode telemetry collection (§4.1, Figure 3).
//!
//! Every trace is replayed twice through the cluster simulator — once per
//! cluster configuration — producing per-interval telemetry, IPC, and
//! energy for both modes on identical instruction streams. Ground-truth
//! labels derive from the IPC ratio; features for any counter subset or
//! coarser granularity derive from the stored base-event rows, so the
//! expensive simulation runs exactly once per trace.

use crate::config::ExperimentConfig;
use crate::sla::Sla;
use psca_cpu::{BackendChoice, CpuConfig, Mode};
use psca_exec::{Digest, Sweep};
use psca_telemetry::{Event, NUM_EVENTS};
use psca_trace::{TraceSource, VecTrace};
use psca_workloads::{hdtr_corpus, spec};

/// Bump whenever the simulator, workload synthesis, or the on-disk codec
/// changes in a result-affecting way: stale `target/sweep-cache/` entries
/// keyed under an older schema are then never read back.
///
/// Schema 2: cell keys carry the simulation backend tag, so surrogate and
/// cycle-accurate cells can never collide.
const CACHE_SCHEMA: u64 = 2;

/// Paired per-interval telemetry of one trace.
#[derive(Debug, Clone)]
pub struct TraceTelemetry {
    /// Application (group) id.
    pub app_id: u32,
    /// Application name.
    pub app_name: String,
    /// Workload (input) id within the application.
    pub workload: u64,
    /// Normalized base-event rows per interval, high-performance mode.
    pub rows_hi: Vec<Vec<f64>>,
    /// Normalized base-event rows per interval, low-power mode.
    pub rows_lo: Vec<Vec<f64>>,
    /// Per-interval IPC in high-performance mode.
    pub ipc_hi: Vec<f64>,
    /// Per-interval IPC in low-power mode.
    pub ipc_lo: Vec<f64>,
    /// Per-interval cycles in high-performance mode.
    pub cycles_hi: Vec<u64>,
    /// Per-interval cycles in low-power mode.
    pub cycles_lo: Vec<u64>,
    /// Per-interval energy in high-performance mode.
    pub energy_hi: Vec<f64>,
    /// Per-interval energy in low-power mode.
    pub energy_lo: Vec<f64>,
    /// Instructions per interval.
    pub insts: Vec<u64>,
}

impl TraceTelemetry {
    /// Number of intervals.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the trace produced no intervals.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Ground-truth labels per interval: 1 iff low-power IPC meets the SLA.
    pub fn labels(&self, sla: &Sla) -> Vec<u8> {
        self.ipc_hi
            .iter()
            .zip(&self.ipc_lo)
            .map(|(&h, &l)| sla.label(h, l))
            .collect()
    }

    /// Fraction of intervals that could ideally run gated (Figure 7).
    pub fn ideal_residency(&self, sla: &Sla) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        let labels = self.labels(sla);
        labels.iter().map(|&y| y as u32).sum::<u32>() as f64 / labels.len() as f64
    }

    /// Re-aggregates to a coarser granularity of `g` base intervals
    /// ("we simply sum over successive intervals and re-normalize", §4.1).
    ///
    /// # Panics
    /// Panics if `g == 0`.
    pub fn aggregate(&self, g: usize) -> TraceTelemetry {
        assert!(g >= 1, "granularity must be positive");
        if g == 1 {
            return self.clone();
        }
        let mut out = TraceTelemetry {
            app_id: self.app_id,
            app_name: self.app_name.clone(),
            workload: self.workload,
            rows_hi: Vec::new(),
            rows_lo: Vec::new(),
            ipc_hi: Vec::new(),
            ipc_lo: Vec::new(),
            cycles_hi: Vec::new(),
            cycles_lo: Vec::new(),
            energy_hi: Vec::new(),
            energy_lo: Vec::new(),
            insts: Vec::new(),
        };
        let mut i = 0;
        while i + g <= self.len() {
            let span = i..i + g;
            let cyc_hi: u64 = self.cycles_hi[span.clone()].iter().sum();
            let cyc_lo: u64 = self.cycles_lo[span.clone()].iter().sum();
            let insts: u64 = self.insts[span.clone()].iter().sum();
            let agg = |rows: &[Vec<f64>], cycles: &[u64], total: u64| -> Vec<f64> {
                let mut acc = vec![0.0; NUM_EVENTS];
                for (row, &c) in rows[span.clone()].iter().zip(&cycles[span.clone()]) {
                    for (a, v) in acc.iter_mut().zip(row) {
                        *a += v * c as f64;
                    }
                }
                for a in acc.iter_mut() {
                    *a /= total.max(1) as f64;
                }
                acc
            };
            out.rows_hi
                .push(agg(&self.rows_hi, &self.cycles_hi, cyc_hi));
            out.rows_lo
                .push(agg(&self.rows_lo, &self.cycles_lo, cyc_lo));
            out.ipc_hi.push(insts as f64 / cyc_hi.max(1) as f64);
            out.ipc_lo.push(insts as f64 / cyc_lo.max(1) as f64);
            out.cycles_hi.push(cyc_hi);
            out.cycles_lo.push(cyc_lo);
            out.energy_hi
                .push(self.energy_hi[span.clone()].iter().sum());
            out.energy_lo
                .push(self.energy_lo[span.clone()].iter().sum());
            out.insts.push(insts);
            i += g;
        }
        out
    }

    /// Projects one interval's row (by mode) onto a counter subset.
    pub fn features(&self, mode: Mode, t: usize, events: &[Event]) -> Vec<f64> {
        let row = match mode {
            Mode::HighPerf => &self.rows_hi[t],
            Mode::LowPower => &self.rows_lo[t],
        };
        events.iter().map(|e| row[e.index()]).collect()
    }
}

/// Simulates a recorded trace in both modes and collects telemetry on the
/// reference cycle-accurate backend.
///
/// `warmup_insts` are executed first with telemetry discarded (caches and
/// predictors warm, as in §4.1).
pub fn collect_paired<S: TraceSource>(
    source: &mut S,
    warmup_insts: u64,
    intervals: usize,
    interval_insts: u64,
    app_id: u32,
    app_name: &str,
    workload: u64,
) -> TraceTelemetry {
    collect_paired_with(
        source,
        warmup_insts,
        intervals,
        interval_insts,
        app_id,
        app_name,
        workload,
        BackendChoice::CycleAccurate,
    )
}

/// [`collect_paired`] on a caller-chosen simulation fidelity.
#[allow(clippy::too_many_arguments)]
pub fn collect_paired_with<S: TraceSource>(
    source: &mut S,
    warmup_insts: u64,
    intervals: usize,
    interval_insts: u64,
    app_id: u32,
    app_name: &str,
    workload: u64,
    backend: BackendChoice,
) -> TraceTelemetry {
    let warm = VecTrace::record(source, warmup_insts);
    let window = VecTrace::record(source, intervals as u64 * interval_insts);
    let mut out = TraceTelemetry {
        app_id,
        app_name: app_name.to_string(),
        workload,
        rows_hi: Vec::with_capacity(intervals),
        rows_lo: Vec::with_capacity(intervals),
        ipc_hi: Vec::with_capacity(intervals),
        ipc_lo: Vec::with_capacity(intervals),
        cycles_hi: Vec::with_capacity(intervals),
        cycles_lo: Vec::with_capacity(intervals),
        energy_hi: Vec::with_capacity(intervals),
        energy_lo: Vec::with_capacity(intervals),
        insts: Vec::with_capacity(intervals),
    };
    for mode in [Mode::HighPerf, Mode::LowPower] {
        let mut sim = backend.build(CpuConfig::skylake_scaled(), interval_insts);
        sim.set_mode(mode);
        let mut warm_replay = warm.clone();
        sim.warm_up(&mut warm_replay, warmup_insts);
        let mut window_replay = window.clone();
        let mut n = 0usize;
        while n < intervals {
            let Some(r) = sim.run_interval(&mut window_replay, interval_insts) else {
                break;
            };
            match mode {
                Mode::HighPerf => {
                    out.rows_hi.push(r.snapshot.as_slice().to_vec());
                    out.ipc_hi.push(r.ipc());
                    out.cycles_hi.push(r.snapshot.cycles);
                    out.energy_hi.push(r.energy);
                    out.insts.push(r.instructions);
                }
                Mode::LowPower => {
                    out.rows_lo.push(r.snapshot.as_slice().to_vec());
                    out.ipc_lo.push(r.ipc());
                    out.cycles_lo.push(r.snapshot.cycles);
                    out.energy_lo.push(r.energy);
                }
            }
            n += 1;
        }
    }
    // Both passes replayed identical instructions, so lengths match.
    debug_assert_eq!(out.rows_hi.len(), out.rows_lo.len());
    out
}

/// A collection of paired traces — the in-memory form of a telemetry
/// dataset (HDTR or the SPEC test set).
#[derive(Debug, Clone, Default)]
pub struct CorpusTelemetry {
    /// Per-trace telemetry.
    pub traces: Vec<TraceTelemetry>,
}

impl CorpusTelemetry {
    /// Total intervals across traces.
    pub fn total_intervals(&self) -> usize {
        self.traces.iter().map(|t| t.len()).sum()
    }

    /// Distinct application ids.
    pub fn app_ids(&self) -> Vec<u32> {
        let mut seen = std::collections::HashSet::new();
        self.traces
            .iter()
            .filter(|t| seen.insert(t.app_id))
            .map(|t| t.app_id)
            .collect()
    }

    /// Keeps only traces of the given applications.
    pub fn filter_apps(&self, apps: &[u32]) -> CorpusTelemetry {
        let set: std::collections::HashSet<u32> = apps.iter().copied().collect();
        CorpusTelemetry {
            traces: self
                .traces
                .iter()
                .filter(|t| set.contains(&t.app_id))
                .cloned()
                .collect(),
        }
    }

    /// Synthesizes and simulates the HDTR training corpus.
    ///
    /// Each (application, input) pair is an independent sweep cell: the
    /// grid fans across `cfg.jobs` workers (results bit-identical to a
    /// serial run — the trace is fully determined by the app seed and
    /// input) and already-simulated cells are loaded from the persistent
    /// sweep cache when `cfg.sweep_cache` is set.
    pub fn hdtr(cfg: &ExperimentConfig) -> CorpusTelemetry {
        let corpus = hdtr_corpus(cfg.sub_seed("hdtr"), cfg.hdtr_apps, cfg.hdtr_phase_len);
        let mut cells: Vec<(usize, u64)> = Vec::new();
        for (app_id, entry) in corpus.iter().enumerate() {
            for &input in entry.inputs.iter().take(cfg.hdtr_traces_per_app) {
                cells.push((app_id, input));
            }
        }
        let sweep = Sweep::new("corpus.hdtr")
            .jobs(cfg.jobs)
            .cache_dir(cfg.sweep_cache.as_deref());
        let traces = sweep.run_cached(
            cells,
            |&(app_id, input)| {
                let mut d = Digest::new();
                d.write_str("hdtr-cell")
                    .write_str(cfg.backend.as_str())
                    .write_u64(CACHE_SCHEMA)
                    .write_u64(cfg.sub_seed("hdtr"))
                    .write_u64(cfg.hdtr_apps as u64)
                    .write_u64(cfg.hdtr_phase_len)
                    .write_u64(cfg.hdtr_warmup_insts)
                    .write_u64(cfg.hdtr_intervals_per_trace as u64)
                    .write_u64(cfg.interval_insts)
                    .write_u64(app_id as u64)
                    .write_u64(input);
                d.finish()
            },
            encode_trace,
            decode_trace,
            |&(app_id, input)| {
                let entry = &corpus[app_id];
                let mut src = entry.app.trace(input);
                collect_paired_with(
                    &mut src,
                    cfg.hdtr_warmup_insts,
                    cfg.hdtr_intervals_per_trace,
                    cfg.interval_insts,
                    app_id as u32,
                    entry.app.name(),
                    input,
                    cfg.backend,
                )
            },
        );
        CorpusTelemetry { traces }
    }

    /// Synthesizes and simulates the SPEC2017-like test set. Application
    /// ids index into [`spec::SPEC_BENCHMARKS`].
    ///
    /// SimPoints are chosen by basic-block-vector clustering over each
    /// workload (§4.1 / [`crate::simpoints`]): the workload is scanned
    /// once at instruction level, its intervals clustered by BBV, and the
    /// representative of each cluster simulated in detail.
    pub fn spec(cfg: &ExperimentConfig) -> CorpusTelemetry {
        let suite = spec::spec_suite(cfg.sub_seed("spec"), cfg.spec_phase_len);
        // One sweep cell per (benchmark, workload): the SimPoint scan and
        // every selected point's detailed simulation stay together so the
        // per-workload trace ordering is preserved exactly.
        let mut cells: Vec<(usize, u64, usize)> = Vec::new();
        for (bench_id, app) in suite.iter().enumerate() {
            for wl in &app.workloads {
                cells.push((bench_id, wl.input, wl.simpoints));
            }
        }
        let sweep = Sweep::new("corpus.spec")
            .jobs(cfg.jobs)
            .cache_dir(cfg.sweep_cache.as_deref());
        let per_workload = sweep.run_cached(
            cells,
            |&(bench_id, input, simpoints)| {
                let mut d = Digest::new();
                d.write_str("spec-cell")
                    .write_str(cfg.backend.as_str())
                    .write_u64(CACHE_SCHEMA)
                    .write_u64(cfg.sub_seed("spec"))
                    .write_u64(cfg.sub_seed("simpoints"))
                    .write_u64(cfg.spec_phase_len)
                    .write_u64(cfg.spec_warmup_insts)
                    .write_u64(cfg.spec_intervals_per_simpoint as u64)
                    .write_u64(cfg.spec_max_simpoints_per_workload as u64)
                    .write_u64(cfg.interval_insts)
                    .write_u64(bench_id as u64)
                    .write_u64(input)
                    .write_u64(simpoints as u64);
                d.finish()
            },
            encode_traces,
            decode_traces,
            |&(bench_id, input, simpoints)| {
                let app = &suite[bench_id];
                let n_simpoints = simpoints.min(cfg.spec_max_simpoints_per_workload);
                // Scan a region several times larger than what will be
                // simulated, then pick representatives.
                let scan = (cfg.spec_intervals_per_simpoint * n_simpoints * 3).max(8);
                let mut scan_src = app.app.trace(input);
                let points = crate::simpoints::select_simpoints(
                    &mut scan_src,
                    cfg.interval_insts,
                    scan,
                    n_simpoints,
                    cfg.sub_seed("simpoints") ^ (bench_id as u64) << 8 ^ input,
                );
                let mut traces = Vec::with_capacity(points.len());
                for p in points {
                    let mut src = app.app.trace(input);
                    // Fast-forward to the representative region.
                    let skip = p.start_interval as u64 * cfg.interval_insts;
                    for _ in 0..skip.saturating_sub(cfg.spec_warmup_insts) {
                        if src.next_instruction().is_none() {
                            break;
                        }
                    }
                    traces.push(collect_paired_with(
                        &mut src,
                        cfg.spec_warmup_insts,
                        cfg.spec_intervals_per_simpoint,
                        cfg.interval_insts,
                        bench_id as u32,
                        app.bench.name,
                        input,
                        cfg.backend,
                    ));
                }
                traces
            },
        );
        CorpusTelemetry {
            traces: per_workload.into_iter().flatten().collect(),
        }
    }
}

// --- sweep-cache codec -----------------------------------------------
//
// A compact little-endian binary format for `TraceTelemetry`, used by the
// persistent sweep cache. Decoding is defensive: any truncation, magic or
// schema mismatch, or length inconsistency returns `None`, which the
// sweep engine treats as a cache miss and recomputes.

const TRACE_MAGIC: u32 = 0x5053_5454; // "PSTT"

fn push_f64s(out: &mut Vec<u8>, vals: &[f64]) {
    out.extend_from_slice(&(vals.len() as u32).to_le_bytes());
    for v in vals {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

fn push_u64s(out: &mut Vec<u8>, vals: &[u64]) {
    out.extend_from_slice(&(vals.len() as u32).to_le_bytes());
    for v in vals {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

fn push_rows(out: &mut Vec<u8>, rows: &[Vec<f64>]) {
    out.extend_from_slice(&(rows.len() as u32).to_le_bytes());
    for row in rows {
        push_f64s(out, row);
    }
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let s = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(s)
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    fn f64(&mut self) -> Option<f64> {
        Some(f64::from_bits(self.u64()?))
    }

    fn f64s(&mut self) -> Option<Vec<f64>> {
        let n = self.u32()? as usize;
        (0..n).map(|_| self.f64()).collect()
    }

    fn u64s(&mut self) -> Option<Vec<u64>> {
        let n = self.u32()? as usize;
        (0..n).map(|_| self.u64()).collect()
    }

    fn rows(&mut self) -> Option<Vec<Vec<f64>>> {
        let n = self.u32()? as usize;
        (0..n).map(|_| self.f64s()).collect()
    }
}

/// Serializes one trace for the sweep cache.
pub fn encode_trace(t: &TraceTelemetry) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&TRACE_MAGIC.to_le_bytes());
    out.extend_from_slice(&(CACHE_SCHEMA as u32).to_le_bytes());
    out.extend_from_slice(&t.app_id.to_le_bytes());
    out.extend_from_slice(&t.workload.to_le_bytes());
    out.extend_from_slice(&(t.app_name.len() as u32).to_le_bytes());
    out.extend_from_slice(t.app_name.as_bytes());
    push_rows(&mut out, &t.rows_hi);
    push_rows(&mut out, &t.rows_lo);
    push_f64s(&mut out, &t.ipc_hi);
    push_f64s(&mut out, &t.ipc_lo);
    push_u64s(&mut out, &t.cycles_hi);
    push_u64s(&mut out, &t.cycles_lo);
    push_f64s(&mut out, &t.energy_hi);
    push_f64s(&mut out, &t.energy_lo);
    push_u64s(&mut out, &t.insts);
    out
}

fn decode_trace_at(c: &mut Cursor<'_>) -> Option<TraceTelemetry> {
    if c.u32()? != TRACE_MAGIC || c.u32()? != CACHE_SCHEMA as u32 {
        return None;
    }
    let app_id = c.u32()?;
    let workload = c.u64()?;
    let name_len = c.u32()? as usize;
    let app_name = String::from_utf8(c.take(name_len)?.to_vec()).ok()?;
    let t = TraceTelemetry {
        app_id,
        app_name,
        workload,
        rows_hi: c.rows()?,
        rows_lo: c.rows()?,
        ipc_hi: c.f64s()?,
        ipc_lo: c.f64s()?,
        cycles_hi: c.u64s()?,
        cycles_lo: c.u64s()?,
        energy_hi: c.f64s()?,
        energy_lo: c.f64s()?,
        insts: c.u64s()?,
    };
    // Structural invariants the rest of the pipeline relies on.
    let n = t.insts.len();
    let consistent = t.rows_hi.len() == n
        && t.rows_lo.len() == n
        && t.ipc_hi.len() == n
        && t.ipc_lo.len() == n
        && t.cycles_hi.len() == n
        && t.cycles_lo.len() == n
        && t.energy_hi.len() == n
        && t.energy_lo.len() == n
        && t.rows_hi.iter().all(|r| r.len() == NUM_EVENTS)
        && t.rows_lo.iter().all(|r| r.len() == NUM_EVENTS);
    consistent.then_some(t)
}

/// Deserializes one trace; `None` on any corruption or schema mismatch.
pub fn decode_trace(buf: &[u8]) -> Option<TraceTelemetry> {
    let mut c = Cursor { buf, pos: 0 };
    let t = decode_trace_at(&mut c)?;
    (c.pos == buf.len()).then_some(t)
}

/// Serializes a workload's trace list (one SPEC sweep cell).
pub fn encode_traces(ts: &Vec<TraceTelemetry>) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(ts.len() as u32).to_le_bytes());
    for t in ts {
        let enc = encode_trace(t);
        out.extend_from_slice(&(enc.len() as u32).to_le_bytes());
        out.extend_from_slice(&enc);
    }
    out
}

/// Deserializes a workload's trace list; `None` on any corruption.
pub fn decode_traces(buf: &[u8]) -> Option<Vec<TraceTelemetry>> {
    let mut c = Cursor { buf, pos: 0 };
    let n = c.u32()? as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let len = c.u32()? as usize;
        let slice = c.take(len)?;
        out.push(decode_trace(slice)?);
    }
    (c.pos == buf.len()).then_some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use psca_workloads::{Archetype, PhaseGenerator};

    fn quick_trace(a: Archetype, intervals: usize) -> TraceTelemetry {
        let mut gen = PhaseGenerator::new(a.center(), 3);
        collect_paired(&mut gen, 4_000, intervals, 2_000, 0, "test", 1)
    }

    #[test]
    fn paired_lengths_match() {
        let t = quick_trace(Archetype::Balanced, 10);
        assert_eq!(t.len(), 10);
        assert_eq!(t.rows_hi.len(), t.rows_lo.len());
        assert_eq!(t.ipc_hi.len(), 10);
        assert_eq!(t.insts.iter().sum::<u64>(), 20_000);
    }

    #[test]
    fn low_power_ipc_never_much_above_high_perf() {
        let t = quick_trace(Archetype::ScalarIlp, 12);
        for (h, l) in t.ipc_hi.iter().zip(&t.ipc_lo) {
            assert!(l <= &(h * 1.15), "lo {l} vs hi {h}");
        }
    }

    #[test]
    fn labels_separate_wide_from_serial() {
        let sla = Sla::paper_default();
        let wide = quick_trace(Archetype::ScalarIlp, 12);
        let serial = quick_trace(Archetype::DepChain, 12);
        assert!(wide.ideal_residency(&sla) < 0.5, "wide should not gate");
        assert!(serial.ideal_residency(&sla) > 0.5, "serial should gate");
    }

    #[test]
    fn aggregate_preserves_totals() {
        let t = quick_trace(Archetype::Balanced, 12);
        let a = t.aggregate(3);
        assert_eq!(a.len(), 4);
        assert_eq!(a.insts.iter().sum::<u64>(), t.insts.iter().sum::<u64>());
        assert_eq!(
            a.cycles_hi.iter().sum::<u64>(),
            t.cycles_hi.iter().sum::<u64>()
        );
        let e_orig: f64 = t.energy_lo.iter().sum();
        let e_agg: f64 = a.energy_lo.iter().sum();
        assert!((e_orig - e_agg).abs() < 1e-6);
    }

    #[test]
    fn aggregated_ipc_is_cycle_weighted() {
        let t = quick_trace(Archetype::Branchy, 8);
        let a = t.aggregate(8);
        let total_i: u64 = t.insts.iter().sum();
        let total_c: u64 = t.cycles_hi.iter().sum();
        assert!((a.ipc_hi[0] - total_i as f64 / total_c as f64).abs() < 1e-9);
    }

    #[test]
    fn features_project_named_events() {
        let t = quick_trace(Archetype::Balanced, 4);
        let f = t.features(
            Mode::HighPerf,
            0,
            &[Event::InstRetired, Event::LoadsRetired],
        );
        assert_eq!(f.len(), 2);
        assert!(
            (f[0] - t.ipc_hi[0]).abs() < 1e-9,
            "InstRetired/cycle is IPC"
        );
    }

    #[test]
    fn corpus_builders_produce_data() {
        let mut cfg = crate::ExperimentConfig::quick();
        cfg.hdtr_apps = 4;
        cfg.hdtr_traces_per_app = 1;
        cfg.hdtr_intervals_per_trace = 4;
        let hdtr = CorpusTelemetry::hdtr(&cfg);
        assert_eq!(hdtr.traces.len(), 4);
        assert_eq!(hdtr.app_ids().len(), 4);
        assert!(hdtr.total_intervals() > 0);
        let filtered = hdtr.filter_apps(&[0, 1]);
        assert_eq!(filtered.traces.len(), 2);
    }

    fn traces_equal(a: &TraceTelemetry, b: &TraceTelemetry) -> bool {
        a.app_id == b.app_id
            && a.app_name == b.app_name
            && a.workload == b.workload
            && a.rows_hi == b.rows_hi
            && a.rows_lo == b.rows_lo
            && a.ipc_hi == b.ipc_hi
            && a.ipc_lo == b.ipc_lo
            && a.cycles_hi == b.cycles_hi
            && a.cycles_lo == b.cycles_lo
            && a.energy_hi == b.energy_hi
            && a.energy_lo == b.energy_lo
            && a.insts == b.insts
    }

    #[test]
    fn codec_roundtrips_bit_exactly() {
        let t = quick_trace(Archetype::MemBound, 6);
        let decoded = decode_trace(&encode_trace(&t)).expect("roundtrip");
        assert!(traces_equal(&t, &decoded));

        let list = vec![quick_trace(Archetype::Balanced, 3), t];
        let decoded = decode_traces(&encode_traces(&list)).expect("roundtrip");
        assert_eq!(decoded.len(), 2);
        assert!(traces_equal(&list[0], &decoded[0]));
        assert!(traces_equal(&list[1], &decoded[1]));
    }

    #[test]
    fn codec_rejects_corruption() {
        let t = quick_trace(Archetype::Branchy, 3);
        let enc = encode_trace(&t);
        assert!(decode_trace(&enc[..enc.len() - 3]).is_none(), "truncated");
        let mut bad_magic = enc.clone();
        bad_magic[0] ^= 0xff;
        assert!(decode_trace(&bad_magic).is_none(), "bad magic");
        let mut trailing = enc.clone();
        trailing.push(0);
        assert!(decode_trace(&trailing).is_none(), "trailing bytes");
        assert!(decode_trace(&[]).is_none(), "empty");
    }

    #[test]
    fn parallel_corpus_is_bit_identical_to_serial() {
        let mut cfg = crate::ExperimentConfig::quick();
        cfg.hdtr_apps = 4;
        cfg.hdtr_traces_per_app = 2;
        cfg.hdtr_intervals_per_trace = 4;
        cfg.jobs = 1;
        let serial = CorpusTelemetry::hdtr(&cfg);
        cfg.jobs = 4;
        let parallel = CorpusTelemetry::hdtr(&cfg);
        assert_eq!(serial.traces.len(), parallel.traces.len());
        for (a, b) in serial.traces.iter().zip(&parallel.traces) {
            assert!(traces_equal(a, b), "app {} diverged", a.app_id);
        }
    }

    #[test]
    fn cached_corpus_matches_cold_run() {
        let dir =
            std::env::temp_dir().join(format!("psca-paired-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut cfg = crate::ExperimentConfig::quick();
        cfg.hdtr_apps = 3;
        cfg.hdtr_traces_per_app = 1;
        cfg.hdtr_intervals_per_trace = 4;
        cfg.sweep_cache = Some(dir.clone());
        let cold = CorpusTelemetry::hdtr(&cfg);
        assert!(dir.exists(), "cache must be populated");
        let warm = CorpusTelemetry::hdtr(&cfg);
        assert_eq!(cold.traces.len(), warm.traces.len());
        for (a, b) in cold.traces.iter().zip(&warm.traces) {
            assert!(
                traces_equal(a, b),
                "cache hit diverged for app {}",
                a.app_id
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
