//! Post-silicon customization (§3.2, §7.3): the public API behind the
//! paper's three deployment stories.
//!
//! - [`retarget_sla`] — retrain the deployed model under a different SLA
//!   and ship it as a firmware update: one chip, several power/performance
//!   characters (Table 5);
//! - [`train_app_specific`] — combine high-diversity and
//!   application-specific half-forests into the Best-RF shape for a
//!   customer application (Table 6);
//! - [`OtaCycle`] — the optimization-as-a-service loop: deploy, collect
//!   field telemetry, retrain, push, repeat — tracking PPW across rounds.

use crate::config::ExperimentConfig;
use crate::counters::TABLE4_COUNTERS;
use crate::experiments::evaluate_model_on_corpus;
use crate::paired::CorpusTelemetry;
use crate::train::{
    featurize_windows, tune_threshold, Featurizer, ModelKind, TrainedAdaptModel,
    THRESHOLD_TARGET_RSV,
};
use crate::zoo;
use psca_cpu::Mode;
use psca_ml::{Dataset, RandomForest, RandomForestConfig};
use psca_uc::FirmwareModel;

/// Retrains Best RF under a different SLA threshold — the Table 5
/// firmware update. Labels are recomputed from the *same* telemetry; no
/// new data collection is needed.
pub fn retarget_sla(
    cfg: &ExperimentConfig,
    hdtr: &CorpusTelemetry,
    p_sla: f64,
) -> (ExperimentConfig, TrainedAdaptModel) {
    let mut c = cfg.clone();
    c.sla = cfg.sla.with_p_sla(p_sla);
    let model = zoo::train(ModelKind::BestRf, hdtr, &c);
    (c, model)
}

/// The reusable pieces of application-specific retraining: the shared
/// feature space and the high-diversity half-forests (4 trees per mode).
#[derive(Debug, Clone)]
pub struct HdtrHalves {
    /// Featurizer for high-performance-mode telemetry.
    pub feat_hi: Featurizer,
    /// Featurizer for low-power-mode telemetry.
    pub feat_lo: Featurizer,
    /// High-diversity half-forest, high-performance mode.
    pub rf_hi: RandomForest,
    /// High-diversity half-forest, low-power mode.
    pub rf_lo: RandomForest,
    /// Featurized HDTR data (for threshold calibration).
    pub data_hi: Dataset,
    /// Featurized HDTR data, low-power mode.
    pub data_lo: Dataset,
    /// Prediction granularity in base intervals.
    pub granularity: usize,
}

/// The half-forest configuration of §7.3 (4 trees, depth 8).
pub fn half_forest_config() -> RandomForestConfig {
    RandomForestConfig {
        num_trees: 4,
        max_depth: 8,
        min_leaf: 2,
    }
}

/// Trains the shared high-diversity halves once; reuse across
/// applications.
pub fn train_hdtr_halves(cfg: &ExperimentConfig, hdtr: &CorpusTelemetry, g: usize) -> HdtrHalves {
    let events = TABLE4_COUNTERS.to_vec();
    let raw_hi = crate::train::build_dataset(hdtr, Mode::HighPerf, &events, g, &cfg.training_sla());
    let raw_lo = crate::train::build_dataset(hdtr, Mode::LowPower, &events, g, &cfg.training_sla());
    let feat_hi = crate::train::fit_standard_featurizer(&events, &raw_hi);
    let feat_lo = crate::train::fit_standard_featurizer(&events, &raw_lo);
    let data_hi = featurize_windows(&feat_hi, hdtr, Mode::HighPerf, g, &cfg.training_sla());
    let data_lo = featurize_windows(&feat_lo, hdtr, Mode::LowPower, g, &cfg.training_sla());
    let half = half_forest_config();
    HdtrHalves {
        rf_hi: RandomForest::fit(&half, &data_hi, cfg.sub_seed("ps-hi")),
        rf_lo: RandomForest::fit(&half, &data_lo, cfg.sub_seed("ps-lo")),
        feat_hi,
        feat_lo,
        data_hi,
        data_lo,
        granularity: g,
    }
}

/// Builds an application-specific Best-RF (4 HDTR trees + 4 application
/// trees per mode) from customer traces, with sensitivity calibrated on
/// the application *and* high-diversity data ("combining high-diversity
/// and application-specific trees reduces SLA violation rates
/// significantly over just application-specific trees", §7.3).
pub fn train_app_specific(
    cfg: &ExperimentConfig,
    halves: &HdtrHalves,
    app_corpus: &CorpusTelemetry,
    seed: u64,
) -> TrainedAdaptModel {
    let g = halves.granularity;
    let w = crate::train::violation_window(cfg, g);
    let half = half_forest_config();
    let app_hi = featurize_windows(
        &halves.feat_hi,
        app_corpus,
        Mode::HighPerf,
        g,
        &cfg.training_sla(),
    );
    let app_lo = featurize_windows(
        &halves.feat_lo,
        app_corpus,
        Mode::LowPower,
        g,
        &cfg.training_sla(),
    );
    let mut fw_hi = FirmwareModel::Forest(halves.rf_hi.combine(&RandomForest::fit(
        &half,
        &app_hi,
        seed ^ 0xA,
    )));
    let mut fw_lo = FirmwareModel::Forest(halves.rf_lo.combine(&RandomForest::fit(
        &half,
        &app_lo,
        seed ^ 0xB,
    )));
    // Balanced calibration: the application data plus an equal-sized
    // slice of high-diversity data — app-only calibration falls into the
    // in-sample-RSV trap (app trees memorize their tuning samples), while
    // HDTR-dominated calibration tunes the threshold for the wrong
    // distribution and erases the application-specific benefit.
    let hdtr_slice = |d: &Dataset, n: usize| -> Dataset {
        let stride = (d.len() / n.max(1)).max(1);
        let idx: Vec<usize> = (0..d.len()).step_by(stride).take(n).collect();
        d.subset(&idx)
    };
    let cal_hi = Dataset::concat(&[&app_hi, &hdtr_slice(&halves.data_hi, app_hi.len())]);
    let cal_lo = Dataset::concat(&[&app_lo, &hdtr_slice(&halves.data_lo, app_lo.len())]);
    tune_threshold(
        &mut fw_hi,
        cal_hi.features(),
        cal_hi.labels(),
        w,
        THRESHOLD_TARGET_RSV,
    );
    tune_threshold(
        &mut fw_lo,
        cal_lo.features(),
        cal_lo.labels(),
        w,
        THRESHOLD_TARGET_RSV,
    );
    let ops = fw_hi.ops_per_prediction(TABLE4_COUNTERS.len());
    TrainedAdaptModel {
        kind: ModelKind::BestRf,
        feat_hi: halves.feat_hi.clone(),
        feat_lo: halves.feat_lo.clone(),
        fw_hi,
        fw_lo,
        granularity: g,
        ops_per_prediction: ops,
    }
}

/// One round of the optimization-as-a-service loop.
#[derive(Debug, Clone, Copy)]
pub struct OtaRound {
    /// Round index (0 = the general pre-trained firmware).
    pub round: usize,
    /// Workload traces accumulated so far.
    pub traces_collected: usize,
    /// PPW gain on the held-out future workload.
    pub ppw_gain: f64,
    /// RSV on the held-out future workload.
    pub rsv: f64,
}

/// The §3.2 usage model: each round, the customer traces more executions
/// on site; the vendor retrains and pushes updated firmware; PPW on
/// *future* inputs is tracked.
pub struct OtaCycle<'a> {
    cfg: &'a ExperimentConfig,
    halves: HdtrHalves,
    collected: CorpusTelemetry,
    future: &'a CorpusTelemetry,
    rounds: Vec<OtaRound>,
}

impl<'a> OtaCycle<'a> {
    /// Starts a cycle: `future` is the evaluation workload (inputs never
    /// used for retraining); the general model is round 0.
    pub fn new(
        cfg: &'a ExperimentConfig,
        hdtr: &CorpusTelemetry,
        general: &TrainedAdaptModel,
        future: &'a CorpusTelemetry,
    ) -> OtaCycle<'a> {
        let halves = train_hdtr_halves(cfg, hdtr, general.granularity);
        let e = evaluate_model_on_corpus(general, future, cfg).overall;
        OtaCycle {
            cfg,
            halves,
            collected: CorpusTelemetry::default(),
            future,
            rounds: vec![OtaRound {
                round: 0,
                traces_collected: 0,
                ppw_gain: e.ppw_gain,
                rsv: e.rsv,
            }],
        }
    }

    /// Ingests newly-collected customer traces, retrains, and evaluates
    /// the pushed firmware on the future workload.
    pub fn push_round(&mut self, new_traces: CorpusTelemetry) -> OtaRound {
        self.collected.traces.extend(new_traces.traces);
        let model = train_app_specific(
            self.cfg,
            &self.halves,
            &self.collected,
            self.cfg.sub_seed("ota") ^ self.rounds.len() as u64,
        );
        let e = evaluate_model_on_corpus(&model, self.future, self.cfg).overall;
        let round = OtaRound {
            round: self.rounds.len(),
            traces_collected: self.collected.traces.len(),
            ppw_gain: e.ppw_gain,
            rsv: e.rsv,
        };
        self.rounds.push(round);
        round
    }

    /// All rounds so far, round 0 first.
    pub fn rounds(&self) -> &[OtaRound] {
        &self.rounds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect_paired;
    use psca_workloads::spec::spec_suite;
    use psca_workloads::{Archetype, PhaseGenerator};

    fn hdtr_corpus() -> CorpusTelemetry {
        let mut traces = Vec::new();
        for (i, a) in [
            Archetype::DepChain,
            Archetype::ScalarIlp,
            Archetype::MemBound,
            Archetype::Balanced,
            Archetype::Branchy,
        ]
        .iter()
        .enumerate()
        {
            let mut gen = PhaseGenerator::new(a.center(), 300 + i as u64);
            traces.push(collect_paired(&mut gen, 2_000, 24, 2_000, i as u32, "h", 1));
        }
        CorpusTelemetry { traces }
    }

    #[test]
    fn retargeting_relaxes_labels_and_gates_more() {
        let cfg = ExperimentConfig::quick();
        let hdtr = hdtr_corpus();
        let (c90, strict) = retarget_sla(&cfg, &hdtr, 0.90);
        let (c70, loose) = retarget_sla(&cfg, &hdtr, 0.70);
        let e_strict = evaluate_model_on_corpus(&strict, &hdtr, &c90).overall;
        let e_loose = evaluate_model_on_corpus(&loose, &hdtr, &c70).overall;
        assert!(
            e_loose.residency >= e_strict.residency,
            "a looser SLA must gate at least as often: {} vs {}",
            e_loose.residency,
            e_strict.residency
        );
    }

    #[test]
    fn ota_cycle_improves_with_collected_traces() {
        let cfg = ExperimentConfig::quick();
        let hdtr = hdtr_corpus();
        let general = zoo::train(ModelKind::BestRf, &hdtr, &cfg);
        // Customer app: a fotonik-like FP streamer the corpus lacks.
        let suite = spec_suite(cfg.sub_seed("spec"), cfg.spec_phase_len);
        let app = &suite[18]; // 649.fotonik3d_s
        let trace_of = |input: u64| {
            let mut src = app.app.trace(input);
            collect_paired(&mut src, 2_000, 48, 2_000, 0, app.bench.name, input)
        };
        let future = CorpusTelemetry {
            traces: vec![trace_of(9)],
        };
        let mut cycle = OtaCycle::new(&cfg, &hdtr, &general, &future);
        let r1 = cycle.push_round(CorpusTelemetry {
            traces: vec![trace_of(1), trace_of(2)],
        });
        let r2 = cycle.push_round(CorpusTelemetry {
            traces: vec![trace_of(3), trace_of(4)],
        });
        assert_eq!(cycle.rounds().len(), 3);
        assert_eq!(r1.traces_collected, 2);
        assert_eq!(r2.traces_collected, 4);
        // At test scale the app trees see little data, so require sanity
        // rather than strict improvement: no catastrophic PPW collapse and
        // bounded violations. (The full-scale Table 6 run shows the
        // improvement itself.)
        assert!(r2.ppw_gain > -0.05, "PPW collapsed: {}", r2.ppw_gain);
        assert!(r2.rsv <= 0.5, "RSV exploded: {}", r2.rsv);
        assert!(
            r2.ppw_gain >= r1.ppw_gain - 0.25,
            "more data should not sharply regress: {} vs {}",
            r2.ppw_gain,
            r1.ppw_gain
        );
    }
}
