//! Dataset construction and model training machinery.
//!
//! Two featurizations exist, matching the evaluated model families (§7):
//!
//! - **aggregated counters** — a prediction window's base intervals are
//!   summed and re-normalized, the chosen counters projected out, and the
//!   vector standardized (MLPs, forests, SVMs);
//! - **counter histograms** — the window's per-interval samples are
//!   bucketed per counter into a normalized histogram (the SRCH baseline).
//!
//! Labels always refer to interval `t+2` at the model's own granularity
//! (Figure 3): counters from window `t` are used during `t+1` to compute a
//! prediction that configures the clusters for `t+2`.

use crate::config::ExperimentConfig;
use crate::paired::{CorpusTelemetry, TraceTelemetry};
use crate::sla::Sla;
use psca_cpu::Mode;
use psca_ml::histogram::HistogramFeaturizer;
use psca_ml::metrics::rate_of_sla_violations;
use psca_ml::{Dataset, Matrix, Standardizer};
use psca_telemetry::Event;
use psca_uc::{FirmwareError, FirmwareModel};

/// The prediction horizon in prediction intervals (Figure 3: counters
/// from interval `t` configure interval `t+2`).
pub const HORIZON: usize = 2;

/// Which adaptation model a [`TrainedAdaptModel`] embodies (§7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// The paper's best random forest (8 trees × depth 8, 12 PF counters,
    /// 40k-instruction granularity).
    BestRf,
    /// The paper's best MLP (3 layers 8/8/4, 12 PF counters, 50k).
    BestMlp,
    /// CHARSTAR's 1-layer 10-filter MLP on 8 expert counters, 20k.
    Charstar,
    /// SRCH logistic regression on counter histograms at the finest
    /// granularity the µC supports (40k).
    SrchFine,
    /// SRCH at its originally proposed coarse interval.
    SrchCoarse,
}

impl ModelKind {
    /// Display name used in figures.
    pub fn name(self) -> &'static str {
        match self {
            ModelKind::BestRf => "Best RF",
            ModelKind::BestMlp => "Best MLP",
            ModelKind::Charstar => "CHARSTAR",
            ModelKind::SrchFine => "SRCH (fine)",
            ModelKind::SrchCoarse => "SRCH (orig.)",
        }
    }
}

/// How raw telemetry becomes model input.
#[derive(Debug, Clone)]
pub enum Featurizer {
    /// Aggregate + project + standardize.
    Standard {
        /// Counters used.
        events: Vec<Event>,
        /// Standardization fit on the tuning set.
        standardizer: Standardizer,
    },
    /// Per-counter histograms over the window (SRCH).
    Histogram {
        /// Counters used.
        events: Vec<Event>,
        /// Histogram bucket ranges fit on the tuning set.
        featurizer: HistogramFeaturizer,
    },
}

impl Featurizer {
    /// Featurizes one prediction window (granularity-many base intervals,
    /// with per-interval cycle weights for aggregation).
    pub fn featurize(&self, rows: &[Vec<f64>], cycles: &[u64]) -> Vec<f64> {
        match self {
            Featurizer::Standard {
                events,
                standardizer,
            } => {
                let mut x = aggregate_window(rows, cycles, events);
                standardizer.transform(&mut x);
                x
            }
            Featurizer::Histogram { events, featurizer } => {
                let projected: Vec<Vec<f64>> = rows
                    .iter()
                    .map(|r| events.iter().map(|e| r[e.index()]).collect())
                    .collect();
                let refs: Vec<&[f64]> = projected.iter().map(|r| r.as_slice()).collect();
                featurizer.featurize(&refs)
            }
        }
    }
}

/// Cycle-weighted aggregation of a window's normalized rows, projected
/// onto `events`.
pub fn aggregate_window(rows: &[Vec<f64>], cycles: &[u64], events: &[Event]) -> Vec<f64> {
    let total: u64 = cycles.iter().sum();
    let mut out = vec![0.0; events.len()];
    for (row, &c) in rows.iter().zip(cycles) {
        for (o, e) in out.iter_mut().zip(events) {
            *o += row[e.index()] * c as f64;
        }
    }
    for o in out.iter_mut() {
        *o /= total.max(1) as f64;
    }
    out
}

/// Builds the `(x_t → y_{t+2})` dataset for one mode, with features as
/// *raw aggregated counters* (standardization is fit later, on the tuning
/// side of each split). Granularity is in base intervals.
///
/// # Panics
/// Panics if `granularity == 0`.
pub fn build_dataset(
    corpus: &CorpusTelemetry,
    mode: Mode,
    events: &[Event],
    granularity: usize,
    sla: &Sla,
) -> Dataset {
    build_dataset_with_horizon(corpus, mode, events, granularity, sla, HORIZON)
}

/// [`build_dataset`] with an explicit prediction horizon — horizon 0 is a
/// *reactive* policy (configure for the interval just observed), 1 leaves
/// no time for inference, 2 is the paper's design point (Figure 3). Used
/// by the horizon ablation bench.
pub fn build_dataset_with_horizon(
    corpus: &CorpusTelemetry,
    mode: Mode,
    events: &[Event],
    granularity: usize,
    sla: &Sla,
    horizon: usize,
) -> Dataset {
    assert!(granularity >= 1, "granularity must be positive");
    // Traces featurize independently; concatenating per-trace outputs in
    // corpus order reproduces the serial dataset exactly. Nested inside an
    // experiment's sweep cell this runs inline (no oversubscription).
    let per_trace = psca_exec::Sweep::new("train.dataset").run(
        corpus.traces.iter().collect(),
        |trace: &&TraceTelemetry| {
            let agg = trace.aggregate(granularity);
            let agg_labels = agg.labels(sla);
            let (rows, cycles) = mode_rows(trace, mode);
            let mut feats: Vec<Vec<f64>> = Vec::new();
            let mut labels = Vec::new();
            for t in 0..agg.len().saturating_sub(horizon) {
                let span = t * granularity..(t + 1) * granularity;
                feats.push(aggregate_window(&rows[span.clone()], &cycles[span], events));
                labels.push(agg_labels[t + horizon]);
            }
            (feats, labels, trace.app_id)
        },
    );
    let mut feats: Vec<Vec<f64>> = Vec::new();
    let mut labels = Vec::new();
    let mut groups = Vec::new();
    for (f, l, app_id) in per_trace {
        groups.extend(std::iter::repeat_n(app_id, l.len()));
        feats.extend(f);
        labels.extend(l);
    }
    let refs: Vec<&[f64]> = feats.iter().map(|f| f.as_slice()).collect();
    Dataset::new(Matrix::from_rows(&refs), labels, groups)
}

/// Per-window sample lists for histogram models: returns
/// `(windows, labels, groups)` where each window is the projected
/// per-interval rows.
pub fn build_hist_windows(
    corpus: &CorpusTelemetry,
    mode: Mode,
    events: &[Event],
    granularity: usize,
    sla: &Sla,
) -> (Vec<Vec<Vec<f64>>>, Vec<u8>, Vec<u32>) {
    assert!(granularity >= 1, "granularity must be positive");
    let per_trace = psca_exec::Sweep::new("train.hist_windows").run(
        corpus.traces.iter().collect(),
        |trace: &&TraceTelemetry| {
            let agg = trace.aggregate(granularity);
            let agg_labels = agg.labels(sla);
            let (rows, _) = mode_rows(trace, mode);
            let mut windows = Vec::new();
            let mut labels = Vec::new();
            for t in 0..agg.len().saturating_sub(HORIZON) {
                let span = t * granularity..(t + 1) * granularity;
                let projected: Vec<Vec<f64>> = rows[span]
                    .iter()
                    .map(|r| events.iter().map(|e| r[e.index()]).collect())
                    .collect();
                windows.push(projected);
                labels.push(agg_labels[t + HORIZON]);
            }
            (windows, labels, trace.app_id)
        },
    );
    let mut windows = Vec::new();
    let mut labels = Vec::new();
    let mut groups = Vec::new();
    for (w, l, app_id) in per_trace {
        groups.extend(std::iter::repeat_n(app_id, l.len()));
        windows.extend(w);
        labels.extend(l);
    }
    (windows, labels, groups)
}

fn mode_rows(trace: &TraceTelemetry, mode: Mode) -> (&[Vec<f64>], &[u64]) {
    match mode {
        Mode::HighPerf => (&trace.rows_hi, &trace.cycles_hi),
        Mode::LowPower => (&trace.rows_lo, &trace.cycles_lo),
    }
}

/// A fully-trained adaptation model pair ready for firmware deployment:
/// one predictor per cluster configuration (§4.1), a featurizer per mode,
/// and the prediction granularity the µC budget permits.
#[derive(Debug, Clone)]
pub struct TrainedAdaptModel {
    /// Model identity.
    pub kind: ModelKind,
    /// Featurizer for high-performance-mode telemetry.
    pub feat_hi: Featurizer,
    /// Featurizer for low-power-mode telemetry.
    pub feat_lo: Featurizer,
    /// Firmware predictor used while in high-performance mode.
    pub fw_hi: FirmwareModel,
    /// Firmware predictor used while in low-power mode.
    pub fw_lo: FirmwareModel,
    /// Prediction granularity in base telemetry intervals.
    pub granularity: usize,
    /// Operations per prediction on the microcontroller.
    pub ops_per_prediction: u64,
}

impl TrainedAdaptModel {
    /// The featurizer/firmware pair that serves telemetry observed in
    /// `mode` (the paper deploys one predictor per cluster configuration).
    pub fn mode_parts(&self, mode: Mode) -> (&Featurizer, &FirmwareModel) {
        match mode {
            Mode::HighPerf => (&self.feat_hi, &self.fw_hi),
            Mode::LowPower => (&self.feat_lo, &self.fw_lo),
        }
    }

    /// Gating decision from one prediction window observed in `mode`.
    ///
    /// # Panics
    /// Panics if the firmware rejects its own featurizer's output — that
    /// indicates a corrupted deployment, not a data problem. Fallible
    /// callers (the hardened closed loop) use [`Self::try_predict`].
    pub fn predict(&self, mode: Mode, rows: &[Vec<f64>], cycles: &[u64]) -> bool {
        self.try_predict(mode, rows, cycles)
            .expect("featurizer output matches firmware dimensionality")
    }

    /// Fallible gating decision: surfaces [`FirmwareError`] instead of
    /// panicking, so a degraded deployment can fall back gracefully.
    pub fn try_predict(
        &self,
        mode: Mode,
        rows: &[Vec<f64>],
        cycles: &[u64],
    ) -> Result<bool, FirmwareError> {
        let (feat, fw) = self.mode_parts(mode);
        fw.predict(&feat.featurize(rows, cycles))
    }

    /// Prediction granularity in instructions for a given base interval.
    pub fn granularity_insts(&self, interval_insts: u64) -> u64 {
        self.granularity as u64 * interval_insts
    }
}

/// Tunes a model's decision threshold ("sensitivity", §6.3): picks the
/// lowest threshold in a fixed grid whose tuning-set RSV stays at or
/// below `target_rsv`, maximizing seized opportunities subject to the
/// violation cap. Returns the chosen threshold.
pub fn tune_threshold(
    fw: &mut FirmwareModel,
    features: &Matrix,
    labels: &[u8],
    window: usize,
    target_rsv: f64,
) -> f64 {
    let scores: Vec<f64> = (0..features.rows())
        .map(|i| {
            fw.score(features.row(i))
                .expect("tuning features match firmware dimensionality")
        })
        .collect();
    let mut chosen = 0.95;
    for &t in &[
        0.30, 0.35, 0.40, 0.45, 0.50, 0.55, 0.60, 0.65, 0.70, 0.75, 0.80, 0.85, 0.90, 0.95,
    ] {
        let preds: Vec<u8> = scores.iter().map(|&s| (s >= t) as u8).collect();
        if rate_of_sla_violations(labels, &preds, window) <= target_rsv {
            chosen = t;
            break;
        }
    }
    fw.set_threshold(chosen);
    chosen
}

/// Convenience: the default threshold-tuning target used throughout
/// (the paper keeps tuning-set SLA violations below 1%, §6.3).
pub const THRESHOLD_TARGET_RSV: f64 = 0.01;

/// Fits a standard featurizer (standardizer) on tuning data.
pub fn fit_standard_featurizer(events: &[Event], tuning: &Dataset) -> Featurizer {
    Featurizer::Standard {
        events: events.to_vec(),
        standardizer: Standardizer::fit(tuning),
    }
}

/// Fits a histogram featurizer on tuning windows (10 buckets, as Dubach
/// et al. use).
pub fn fit_histogram_featurizer(events: &[Event], tuning_windows: &[Vec<Vec<f64>>]) -> Featurizer {
    let all_rows: Vec<&[f64]> = tuning_windows
        .iter()
        .flat_map(|w| w.iter().map(|r| r.as_slice()))
        .collect();
    Featurizer::Histogram {
        events: events.to_vec(),
        featurizer: HistogramFeaturizer::fit(&all_rows, 10),
    }
}

/// Applies a featurizer to a sample list, producing a model-ready matrix.
pub fn featurize_windows(
    feat: &Featurizer,
    corpus: &CorpusTelemetry,
    mode: Mode,
    granularity: usize,
    sla: &Sla,
) -> Dataset {
    let per_trace = psca_exec::Sweep::new("train.featurize").run(
        corpus.traces.iter().collect(),
        |trace: &&TraceTelemetry| {
            let agg = trace.aggregate(granularity);
            let agg_labels = agg.labels(sla);
            let (rows, cycles) = mode_rows(trace, mode);
            let mut rows_out: Vec<Vec<f64>> = Vec::new();
            let mut labels = Vec::new();
            for t in 0..agg.len().saturating_sub(HORIZON) {
                let span = t * granularity..(t + 1) * granularity;
                rows_out.push(feat.featurize(&rows[span.clone()], &cycles[span]));
                labels.push(agg_labels[t + HORIZON]);
            }
            (rows_out, labels, trace.app_id)
        },
    );
    let mut rows_out: Vec<Vec<f64>> = Vec::new();
    let mut labels = Vec::new();
    let mut groups = Vec::new();
    for (r, l, app_id) in per_trace {
        groups.extend(std::iter::repeat_n(app_id, l.len()));
        rows_out.extend(r);
        labels.extend(l);
    }
    let refs: Vec<&[f64]> = rows_out.iter().map(|r| r.as_slice()).collect();
    Dataset::new(Matrix::from_rows(&refs), labels, groups)
}

/// The per-prediction violation window for a model at a config's base
/// interval (Eq. 2's `W`).
pub fn violation_window(cfg: &ExperimentConfig, granularity: usize) -> usize {
    cfg.sla
        .violation_window(cfg.interval_insts * granularity as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ExperimentConfig;
    use psca_workloads::{Archetype, PhaseGenerator};

    fn tiny_corpus() -> CorpusTelemetry {
        let mut traces = Vec::new();
        for (i, a) in [Archetype::DepChain, Archetype::ScalarIlp]
            .iter()
            .enumerate()
        {
            let mut gen = PhaseGenerator::new(a.center(), i as u64 + 1);
            traces.push(crate::collect_paired(
                &mut gen, 2_000, 12, 2_000, i as u32, "t", 1,
            ));
        }
        CorpusTelemetry { traces }
    }

    #[test]
    fn dataset_has_horizon_shifted_labels() {
        let corpus = tiny_corpus();
        let sla = Sla::paper_default();
        let d = build_dataset(&corpus, Mode::LowPower, &[Event::InstRetired], 1, &sla);
        // 12 intervals per trace, minus horizon 2 → 10 samples per trace.
        assert_eq!(d.len(), 20);
        assert_eq!(d.dim(), 1);
        assert_eq!(d.distinct_groups().len(), 2);
    }

    #[test]
    fn coarser_granularity_means_fewer_samples() {
        let corpus = tiny_corpus();
        let sla = Sla::paper_default();
        let fine = build_dataset(&corpus, Mode::LowPower, &[Event::StallCount], 1, &sla);
        let coarse = build_dataset(&corpus, Mode::LowPower, &[Event::StallCount], 3, &sla);
        assert!(coarse.len() < fine.len());
        assert_eq!(coarse.len(), 2 * (4 - HORIZON));
    }

    #[test]
    fn aggregate_window_is_cycle_weighted() {
        let rows = vec![vec![1.0; 56], vec![3.0; 56]];
        let cycles = vec![100u64, 300];
        let out = aggregate_window(&rows, &cycles, &[Event::Cycles]);
        assert!((out[0] - 2.5).abs() < 1e-12);
    }

    #[test]
    fn threshold_tuning_caps_rsv() {
        use psca_ml::{LogisticRegression, Matrix as M};
        // A model that confidently predicts positive on negative samples
        // must get its threshold raised.
        let x = M::from_rows(&[&[2.0], &[2.1], &[2.2], &[1.9], &[2.0], &[2.05]]);
        let labels = vec![0u8; 6];
        let train = Dataset::new(x.clone(), vec![1, 1, 1, 0, 0, 0], vec![0; 6]);
        let lr = LogisticRegression::fit(&train, 1e-4, 50);
        let mut fw = FirmwareModel::Logistic(lr);
        let t = tune_threshold(&mut fw, &x, &labels, 3, 0.01);
        let preds: Vec<u8> = (0..6)
            .map(|i| fw.predict(x.row(i)).unwrap() as u8)
            .collect();
        let rsv = rate_of_sla_violations(&labels, &preds, 3);
        assert!(rsv <= 0.01 || t >= 0.95, "rsv {rsv} at threshold {t}");
    }

    #[test]
    fn violation_window_uses_granularity() {
        let cfg = ExperimentConfig::quick();
        let w1 = violation_window(&cfg, 1);
        let w4 = violation_window(&cfg, 4);
        assert_eq!(w1, 8);
        assert_eq!(w4, 2);
    }

    #[test]
    fn histogram_windows_have_granularity_rows() {
        let corpus = tiny_corpus();
        let sla = Sla::paper_default();
        let (windows, labels, groups) =
            build_hist_windows(&corpus, Mode::HighPerf, &[Event::StallCount], 3, &sla);
        assert_eq!(windows.len(), labels.len());
        assert_eq!(windows.len(), groups.len());
        assert!(windows.iter().all(|w| w.len() == 3));
        assert!(windows.iter().all(|w| w.iter().all(|r| r.len() == 1)));
    }
}
