//! Counter sets and the telemetry-information-content pipeline (§6.2).

use crate::config::ExperimentConfig;
use crate::paired::CorpusTelemetry;
use psca_cpu::Mode;
use psca_ml::linalg::Matrix;
use psca_ml::spectral::{paper_screens, pf_counter_selection};
use psca_telemetry::{Event, ExpandedTelemetry, StreamSpec};

/// The 12 deployment counters of Table 4, identified by PF Counter
/// Selection and used by the paper's Best MLP and Best RF.
pub const TABLE4_COUNTERS: [Event; 12] = [
    Event::UopCacheMisses,
    Event::L2SilentEvictions,
    Event::WrongPathUopsFlushed,
    Event::StoreQueueOccupancy,
    Event::L1dReads,
    Event::StallCount,
    Event::PhysRegRefCount,
    Event::LoadsRetired,
    Event::L1dHits,
    Event::UopCacheHits,
    Event::UopsStalledOnDep,
    Event::UopsReady,
];

/// The 8 expert-chosen counters of the CHARSTAR baseline (§7): five from
/// Eyerman et al.'s CPI-component analysis plus three replacements for
/// CHARSTAR's tile-specific counters. `InstRetired` normalized per cycle
/// *is* IPC.
pub const CHARSTAR_COUNTERS: [Event; 8] = [
    Event::BranchMispredicts,
    Event::IcacheMisses,
    Event::L1dMisses,
    Event::L2Misses,
    Event::InstRetired, // IPC
    Event::ItlbMisses,
    Event::DtlbMisses,
    Event::StallCount,
];

/// The top-15 counters used by the SRCH baseline ("we use the top 15
/// counters chosen by PF Counter Selection", §7): the Table 4 set plus
/// three more.
pub const SRCH_COUNTERS: [Event; 15] = [
    Event::UopCacheMisses,
    Event::L2SilentEvictions,
    Event::WrongPathUopsFlushed,
    Event::StoreQueueOccupancy,
    Event::L1dReads,
    Event::StallCount,
    Event::PhysRegRefCount,
    Event::LoadsRetired,
    Event::L1dHits,
    Event::UopCacheHits,
    Event::UopsStalledOnDep,
    Event::UopsReady,
    Event::BranchMispredicts,
    Event::L2Misses,
    Event::RobOccupancy,
];

/// Result of running the full §6.2 pipeline over the 936-stream
/// cross-section.
#[derive(Debug, Clone)]
pub struct CounterSelection {
    /// Streams surviving the low-activity + std screens.
    pub screened: usize,
    /// Selected stream indices (into the 936-stream space), in order.
    pub selected_streams: Vec<usize>,
    /// Human-readable names of the selected streams.
    pub selected_names: Vec<String>,
    /// The base events the selected streams are derived from.
    pub selected_base_events: Vec<Event>,
}

/// Runs low-activity screening, std screening, and PF selection over the
/// expanded telemetry of (a subset of) a corpus, returning `r` streams.
///
/// `max_traces` bounds how many traces feed the expansion (the covariance
/// work is cubic-ish in streams but linear in rows).
pub fn run_counter_selection(
    corpus: &CorpusTelemetry,
    cfg: &ExperimentConfig,
    mode: Mode,
    r: usize,
    max_traces: usize,
) -> CounterSelection {
    let expansion = ExpandedTelemetry::new(cfg.sub_seed("expand"));
    // Expand each trace's base rows into the 936-stream cross-section.
    let mut per_trace: Vec<Matrix> = Vec::new();
    for trace in corpus.traces.iter().take(max_traces) {
        let rows = match mode {
            Mode::HighPerf => &trace.rows_hi,
            Mode::LowPower => &trace.rows_lo,
        };
        let expanded: Vec<Vec<f64>> = rows
            .iter()
            .enumerate()
            .map(|(t, row)| expansion.expand_row(row, t as u64))
            .collect();
        let refs: Vec<&[f64]> = expanded.iter().map(|r| r.as_slice()).collect();
        per_trace.push(Matrix::from_rows(&refs));
    }
    let trace_refs: Vec<&Matrix> = per_trace.iter().collect();
    let pooled = {
        let total_rows: usize = per_trace.iter().map(|m| m.rows()).sum();
        let cols = per_trace[0].cols();
        let mut m = Matrix::zeros(total_rows, cols);
        let mut at = 0;
        for t in &per_trace {
            for r in 0..t.rows() {
                m.row_mut(at).copy_from_slice(t.row(r));
                at += 1;
            }
        }
        m
    };
    let screen = paper_screens(&trace_refs, &pooled);
    let screened_data = {
        let mut m = Matrix::zeros(pooled.rows(), screen.kept.len());
        for row in 0..pooled.rows() {
            for (j, &c) in screen.kept.iter().enumerate() {
                m.set(row, j, pooled.get(row, c));
            }
        }
        m
    };
    let picked = pf_counter_selection(&screened_data, r.min(screen.kept.len()), 0.5);
    let selected_streams: Vec<usize> = picked.iter().map(|&j| screen.kept[j]).collect();
    let selected_names = selected_streams
        .iter()
        .map(|&s| expansion.stream_name(s))
        .collect();
    let selected_base_events = selected_streams
        .iter()
        .map(|&s| base_event_of(expansion.spec(s)))
        .collect();
    CounterSelection {
        screened: screen.kept.len(),
        selected_streams,
        selected_names,
        selected_base_events,
    }
}

/// The base event a derived stream reflects (composites report their
/// dominant source).
pub fn base_event_of(spec: &StreamSpec) -> Event {
    match *spec {
        StreamSpec::Base(e)
        | StreamSpec::Scaled { base: e, .. }
        | StreamSpec::Noisy { base: e, .. }
        | StreamSpec::Gated { base: e, .. }
        | StreamSpec::Quantized { base: e, .. } => e,
        StreamSpec::Composite { a, b, w } => {
            if w >= 0.5 {
                a
            } else {
                b
            }
        }
        StreamSpec::Rare { .. } => Event::Cycles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psca_workloads::{Archetype, PhaseGenerator};

    #[test]
    fn counter_sets_are_distinct_and_sized() {
        assert_eq!(TABLE4_COUNTERS.len(), 12);
        assert_eq!(CHARSTAR_COUNTERS.len(), 8);
        assert_eq!(SRCH_COUNTERS.len(), 15);
        let t4: std::collections::HashSet<_> = TABLE4_COUNTERS.iter().collect();
        assert_eq!(t4.len(), 12);
        // The dependence-visibility counters are in Table 4 but not in the
        // expert set — the crux of the blindspot story.
        assert!(TABLE4_COUNTERS.contains(&Event::UopsReady));
        assert!(!CHARSTAR_COUNTERS.contains(&Event::UopsReady));
    }

    #[test]
    fn srch_extends_table4() {
        for e in TABLE4_COUNTERS {
            assert!(SRCH_COUNTERS.contains(&e));
        }
    }

    #[test]
    fn selection_pipeline_runs_end_to_end() {
        let mut traces = Vec::new();
        for (i, a) in [Archetype::Balanced, Archetype::MemBound, Archetype::Branchy]
            .iter()
            .enumerate()
        {
            let mut gen = PhaseGenerator::new(a.center(), i as u64);
            traces.push(crate::collect_paired(
                &mut gen, 2_000, 10, 2_000, i as u32, "t", 1,
            ));
        }
        let corpus = CorpusTelemetry { traces };
        let cfg = ExperimentConfig::quick();
        let sel = run_counter_selection(&corpus, &cfg, Mode::LowPower, 8, 3);
        assert_eq!(sel.selected_streams.len(), 8);
        assert_eq!(sel.selected_names.len(), 8);
        // No duplicate streams.
        let set: std::collections::HashSet<_> = sel.selected_streams.iter().collect();
        assert_eq!(set.len(), 8);
        assert!(sel.screened > 8);
    }
}
