//! # psca-adapt
//!
//! The paper's primary contribution: an ML-driven adaptive CPU performing
//! *predictive cluster gating*, with the blindspot-mitigating training
//! pipeline that makes it deployable.
//!
//! The crate couples every substrate in the workspace:
//!
//! - [`Sla`] — service-level-agreement formalization (§3.1) and the
//!   violation-window arithmetic of Eqs. 2–4;
//! - [`collect_paired`] / [`TraceTelemetry`] — paired-mode dataset
//!   generation: every trace is simulated in both cluster configurations,
//!   and the ground-truth label `y_{t+2}` marks whether low-power IPC
//!   meets the SLA threshold two intervals ahead (§4.1, Figure 3);
//! - [`counters`] — the telemetry-information-content pipeline (§6.2):
//!   low-activity screen, standard-deviation screen, and PF counter
//!   selection over the 936-stream cross-section;
//! - [`TrainedAdaptModel`] and the [`zoo`] — the evaluated adaptation
//!   models: CHARSTAR's expert-counter MLP, SRCH logistic regression on
//!   counter histograms, and the paper's Best MLP / Best RF (§7);
//! - [`ClosedLoopRequest`] — the deployed system: telemetry interval →
//!   firmware inference → cluster gating at `t+2`, with PPW/RSV scoring
//!   against ground truth;
//! - [`ClosedLoopRequest::run_hardened`] and [`degrade`] — the same loop
//!   under injected telemetry/µC/actuation faults (`psca-faults`),
//!   protected by a graceful-degradation ladder;
//! - [`experiments`] — one driver per table and figure of the paper;
//! - [`ExperimentConfig`] — the scaled experiment grid (quick vs. full).

#![warn(missing_docs)]

pub mod counters;
pub mod degrade;
pub mod experiments;
pub mod guardrail;
pub mod postsilicon;
pub mod simpoints;
pub mod zoo;

mod config;
mod controller;
mod paired;
mod sla;
mod train;

pub use config::{ConfigError, ExperimentConfig, ExperimentConfigBuilder};
pub use controller::{
    record_trace, ClosedLoopOptions, ClosedLoopRequest, ClosedLoopResult, HardenedLoopResult,
};
pub use paired::{collect_paired, collect_paired_with, CorpusTelemetry, TraceTelemetry};
pub use psca_cpu::{BackendChoice, SimBackend};
pub use sla::Sla;
pub use train::{build_dataset, tune_threshold, Featurizer, ModelKind, TrainedAdaptModel, HORIZON};
