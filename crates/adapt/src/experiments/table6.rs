//! Table 6: application-specific model retraining (§7.3).
//!
//! For data-center applications executed repeatedly, a customer traces
//! initial executions; a 4-tree forest trained on that application is
//! combined with a 4-tree high-diversity forest into the 8-tree Best RF
//! shape (see [`crate::postsilicon`]), then deployed for *future*
//! workloads (different inputs) — evaluated here with
//! leave-one-workload-out cross-validation.

use crate::config::ExperimentConfig;
use crate::experiments::eval::evaluate_model_on_corpus;
use crate::paired::CorpusTelemetry;
use crate::postsilicon::{train_app_specific, train_hdtr_halves};
use crate::train::ModelKind;
use crate::zoo;

/// One benchmark row.
#[derive(Debug, Clone)]
pub struct Table6Row {
    /// Benchmark name.
    pub name: String,
    /// General Best RF PPW gain on held-out workloads.
    pub general_ppw: f64,
    /// Application-specific PPW gain on held-out workloads.
    pub specific_ppw: f64,
    /// General Best RF RSV.
    pub general_rsv: f64,
    /// Application-specific RSV.
    pub specific_rsv: f64,
}

/// Regenerated Table 6.
#[derive(Debug, Clone)]
pub struct Table6 {
    /// Rows sorted by PPW improvement, descending (as the paper prints).
    pub rows: Vec<Table6Row>,
}

/// Minimum workloads an application needs to qualify (paper: 5).
pub const MIN_WORKLOADS: usize = 5;

/// Runs the leave-one-workload-out comparison.
pub fn run(cfg: &ExperimentConfig, hdtr: &CorpusTelemetry, spec: &CorpusTelemetry) -> Table6 {
    // Scope global metrics/series to this experiment (see ISSUE 2).
    psca_obs::reset_all();
    let general = zoo::train(ModelKind::BestRf, hdtr, cfg);
    let general_eval = evaluate_model_on_corpus(&general, spec, cfg);
    let halves = train_hdtr_halves(cfg, hdtr, general.granularity);

    let mut rows = Vec::new();
    for &app in &spec.app_ids() {
        let app_corpus = spec.filter_apps(&[app]);
        let name = app_corpus.traces[0].app_name.clone();
        let workloads: Vec<u64> = {
            let mut seen = std::collections::HashSet::new();
            app_corpus
                .traces
                .iter()
                .filter(|t| seen.insert(t.workload))
                .map(|t| t.workload)
                .collect()
        };
        if workloads.len() < MIN_WORKLOADS {
            continue;
        }
        // Headroom filter: the paper only evaluates applications where the
        // general model seizes < 95% of opportunities.
        if general_eval.app(&name).is_none_or(|m| m.pgos >= 0.95) {
            continue;
        }
        let mut gen_acc: (f64, f64, f64) = (0.0, 0.0, 0.0); // ppw, rsv, n
        let mut spec_acc: (f64, f64) = (0.0, 0.0);
        for &held in &workloads {
            let tune_corpus = CorpusTelemetry {
                traces: app_corpus
                    .traces
                    .iter()
                    .filter(|t| t.workload != held)
                    .cloned()
                    .collect(),
            };
            let held_corpus = CorpusTelemetry {
                traces: app_corpus
                    .traces
                    .iter()
                    .filter(|t| t.workload == held)
                    .cloned()
                    .collect(),
            };
            let specific =
                train_app_specific(cfg, &halves, &tune_corpus, cfg.sub_seed("t6") ^ held);
            let ge = evaluate_model_on_corpus(&general, &held_corpus, cfg).overall;
            let se = evaluate_model_on_corpus(&specific, &held_corpus, cfg).overall;
            gen_acc.0 += ge.ppw_gain;
            gen_acc.1 += ge.rsv;
            gen_acc.2 += 1.0;
            spec_acc.0 += se.ppw_gain;
            spec_acc.1 += se.rsv;
        }
        let n = gen_acc.2.max(1.0);
        rows.push(Table6Row {
            name,
            general_ppw: gen_acc.0 / n,
            specific_ppw: spec_acc.0 / n,
            general_rsv: gen_acc.1 / n,
            specific_rsv: spec_acc.1 / n,
        });
    }
    rows.sort_by(|a, b| {
        let da = a.specific_ppw - a.general_ppw;
        let db = b.specific_ppw - b.general_ppw;
        db.partial_cmp(&da).unwrap_or(std::cmp::Ordering::Equal)
    });
    Table6 { rows }
}

impl Table6 {
    /// How many applications improve with application-specific training.
    pub fn improved(&self) -> usize {
        self.rows
            .iter()
            .filter(|r| r.specific_ppw > r.general_ppw)
            .count()
    }
}

impl std::fmt::Display for Table6 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Table 6 — application-specific RF retraining (leave-one-workload-out)"
        )?;
        writeln!(
            f,
            "{:20} {:>9} {:>9} {:>7} {:>9} {:>9}",
            "benchmark", "gen PPW", "app PPW", "delta", "gen RSV", "app RSV"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:20} {:>8.1}% {:>8.1}% {:>+6.1}% {:>8.2}% {:>8.2}%",
                r.name,
                100.0 * r.general_ppw,
                100.0 * r.specific_ppw,
                100.0 * (r.specific_ppw - r.general_ppw),
                100.0 * r.general_rsv,
                100.0 * r.specific_rsv
            )?;
        }
        writeln!(
            f,
            "{} of {} applications improve (paper: 8 of 11, up to +8.5%)",
            self.improved(),
            self.rows.len()
        )
    }
}
