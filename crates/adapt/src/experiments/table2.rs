//! Table 2: the SPEC2017-like test-set inventory.

use crate::config::ExperimentConfig;
use psca_workloads::spec::{spec_suite, PAPER_TOTAL_SIMPOINTS};

/// One benchmark row of Table 2.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Benchmark name.
    pub name: &'static str,
    /// FP-suite membership.
    pub is_fp: bool,
    /// Workload (input) count.
    pub workloads: usize,
    /// SimPoints traced.
    pub simpoints: usize,
}

/// Regenerated Table 2.
#[derive(Debug, Clone)]
pub struct Table2 {
    /// Per-benchmark rows.
    pub rows: Vec<Table2Row>,
    /// Total SimPoints (paper: 571).
    pub total_simpoints: usize,
}

/// Builds the suite and summarizes the inventory.
pub fn run(cfg: &ExperimentConfig) -> Table2 {
    // Scope global metrics/series to this experiment (see ISSUE 2).
    psca_obs::reset_all();
    let suite = spec_suite(cfg.sub_seed("spec"), cfg.spec_phase_len);
    let rows: Vec<Table2Row> = suite
        .iter()
        .map(|a| Table2Row {
            name: a.bench.name,
            is_fp: a.bench.is_fp,
            workloads: a.workloads.len(),
            simpoints: a.total_simpoints(),
        })
        .collect();
    let total_simpoints = rows.iter().map(|r| r.simpoints).sum();
    Table2 {
        rows,
        total_simpoints,
    }
}

impl std::fmt::Display for Table2 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Table 2 — SPEC2017 test set (workloads per benchmark)")?;
        writeln!(
            f,
            "{:20} {:>6} {:>10} {:>10}",
            "Benchmark", "suite", "workloads", "simpoints"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:20} {:>6} {:>10} {:>10}",
                r.name,
                if r.is_fp { "fp" } else { "int" },
                r.workloads,
                r.simpoints
            )?;
        }
        writeln!(
            f,
            "total SimPoints: {} (paper: {PAPER_TOTAL_SIMPOINTS})",
            self.total_simpoints
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_matches_paper_inventory() {
        let t = run(&ExperimentConfig::quick());
        assert_eq!(t.rows.len(), 20);
        assert_eq!(t.total_simpoints, PAPER_TOTAL_SIMPOINTS);
        let x264 = t.rows.iter().find(|r| r.name == "625.x264_s").unwrap();
        assert_eq!(x264.workloads, 12);
        assert!(!x264.is_fp);
    }
}
