//! Chaos harness: the closed adaptation loop under injected faults.
//!
//! Sweeps a [`ChaosSpec`]'s fault rates across a scale grid and reports,
//! per point, the SLA-violation rate, the PPW retained relative to the
//! fault-free run, and the degradation-ladder residency — the evidence
//! that faults degrade efficiency gracefully instead of breaking the SLA
//! (`docs/ROBUSTNESS.md`).

use crate::config::ExperimentConfig;
use crate::controller::{record_trace, ClosedLoopRequest};
use crate::degrade::DegradeLevel;
use crate::sla::Sla;
use crate::train::ModelKind;
use crate::zoo;
use psca_cpu::{ClusterSim, CpuConfig};
use psca_faults::ChaosSpec;
use psca_trace::VecTrace;
use psca_workloads::{Archetype, PhaseGenerator};

/// One point of the chaos sweep: all archetypes at one fault-rate scale.
#[derive(Debug, Clone)]
pub struct ChaosPoint {
    /// Multiplier applied to every rate in the base spec.
    pub scale: f64,
    /// Gated windows whose IPC fell below the SLA threshold against the
    /// static high-performance reference, over all windows.
    pub rsv: f64,
    /// PPW at this scale relative to the fault-free (scale 0) run.
    pub ppw_retained: f64,
    /// Fraction of windows spent in low-power mode.
    pub low_residency: f64,
    /// Fraction of windows governed by a tier above model-driven.
    pub degraded_fraction: f64,
    /// Most degraded tier reached across the archetypes.
    pub worst: DegradeLevel,
    /// Ladder transitions summed across archetypes.
    pub transitions: u64,
    /// Faults injected, all classes summed.
    pub faults: u64,
    /// Corrupted firmware images rejected by checksum/validation.
    pub images_rejected: u64,
}

/// Full chaos-sweep report.
#[derive(Debug, Clone)]
pub struct ChaosSweep {
    /// The base (scale 1.0) fault spec.
    pub spec: ChaosSpec,
    /// One row per scale factor.
    pub points: Vec<ChaosPoint>,
    /// Injected-fault breakdown by class at scale 1.0.
    pub fault_classes: Vec<(&'static str, u64)>,
    /// Whether the run met the spec's SLA budget at scale 1.0 without a
    /// panic: the CI smoke gate.
    pub pass: bool,
}

const SWEEP_SCALES: [f64; 4] = [0.0, 0.5, 1.0, 2.0];
const SWEEP_WINDOWS: u64 = 32;

const ARCHETYPES: [Archetype; 4] = [
    Archetype::DepChain,
    Archetype::ScalarIlp,
    Archetype::MemBound,
    Archetype::Balanced,
];

/// Per-window IPC of a static high-performance run over the same trace:
/// the SLA reference the chaos report scores gated windows against.
fn reference_ipc(warm: &VecTrace, window: &VecTrace, interval_insts: u64, g: usize) -> Vec<f64> {
    let mut sim = ClusterSim::new(CpuConfig::skylake_scaled());
    let mut warm_replay = warm.clone();
    sim.warm_up(&mut warm_replay, warm.len() as u64);
    let mut replay = window.clone();
    let mut out = Vec::new();
    'outer: loop {
        let mut cycles = 0u64;
        let mut insts = 0u64;
        for _ in 0..g {
            let Some(r) = sim.run_interval(&mut replay, interval_insts) else {
                break 'outer;
            };
            cycles += r.snapshot.cycles;
            insts += r.instructions;
        }
        out.push(insts as f64 / cycles.max(1) as f64);
    }
    out
}

/// Runs the chaos sweep against `spec`.
pub fn chaos_sweep(cfg: &ExperimentConfig, spec: &ChaosSpec) -> ChaosSweep {
    // Scope global metrics/series to this experiment (see ISSUE 2).
    psca_obs::reset_all();
    let _span = psca_obs::SpanTimer::start("chaos.sweep");
    // Small dedicated corpus + the paper's best forest, as in the
    // closed-loop tests: the sweep measures robustness, not model quality.
    // Each archetype's trace collection is an independent sweep cell.
    let traces = psca_exec::Sweep::new("chaos.corpus").jobs(cfg.jobs).run(
        (0..ARCHETYPES.len()).collect(),
        |&i| {
            let mut gen = PhaseGenerator::new(ARCHETYPES[i].center(), i as u64 + 30);
            crate::paired::collect_paired(&mut gen, 2_000, 24, 2_000, i as u32, "chaos", 1)
        },
    );
    let corpus = crate::paired::CorpusTelemetry { traces };
    let model = zoo::train(ModelKind::BestRf, &corpus, cfg);
    let g = model.granularity;
    let window_insts = SWEEP_WINDOWS * model.granularity_insts(cfg.interval_insts);

    // Fixed per-archetype traces and their static hi-mode IPC reference.
    let sla = Sla::paper_default();
    let runs = psca_exec::Sweep::new("chaos.reference").jobs(cfg.jobs).run(
        (0..ARCHETYPES.len()).collect(),
        |&i| {
            let mut gen = PhaseGenerator::new(
                ARCHETYPES[i].center(),
                cfg.sub_seed("chaos") ^ (i as u64 + 101),
            );
            let (warm, window) = record_trace(&mut gen, 2_000, window_insts);
            let refs = reference_ipc(&warm, &window, cfg.interval_insts, g);
            (warm, window, refs)
        },
    );

    // The (scale × archetype) grid: every hardened run carries its own
    // fault-injector seed, so cells are order-independent. Results merge
    // per scale in archetype order, exactly as the serial loop did.
    struct GridCell {
        energy: f64,
        instructions: u64,
        windows: usize,
        low: usize,
        violations: usize,
        degraded: f64,
        worst: DegradeLevel,
        transitions: u64,
        faults: u64,
        images_rejected: u64,
        by_class: Vec<(&'static str, u64)>,
    }
    let cells: Vec<(usize, usize)> = SWEEP_SCALES
        .iter()
        .enumerate()
        .flat_map(|(s, _)| (0..runs.len()).map(move |i| (s, i)))
        .collect();
    let grid = psca_exec::Sweep::new("chaos.grid")
        .jobs(cfg.jobs)
        .run(cells, |&(s, i)| {
            let scale = SWEEP_SCALES[s];
            let (warm, window, refs) = &runs[i];
            let mut point_spec = spec.scaled(scale);
            point_spec.seed = spec.seed ^ (i as u64);
            let res = ClosedLoopRequest::new(&model, warm, window, cfg.interval_insts)
                .with_faults(point_spec)
                .run_hardened();
            let low = res
                .result
                .modes
                .iter()
                .filter(|m| **m == psca_cpu::Mode::LowPower)
                .count();
            let mut violations = 0usize;
            for ((mode, ipc), ref_ipc) in res
                .result
                .modes
                .iter()
                .zip(&res.window_ipc)
                .zip(refs.iter())
            {
                if *mode == psca_cpu::Mode::LowPower && *ipc < sla.p_sla * ref_ipc {
                    violations += 1;
                }
            }
            GridCell {
                energy: res.result.energy,
                instructions: res.result.instructions,
                windows: res.result.modes.len(),
                low,
                violations,
                degraded: res.degrade.degraded_fraction(),
                worst: res.degrade.worst,
                transitions: res.degrade.transitions,
                faults: res.faults.total(),
                images_rejected: res.images_rejected,
                by_class: res.faults.by_class().to_vec(),
            }
        });

    let mut points = Vec::new();
    let mut fault_classes: Vec<(&'static str, u64)> = Vec::new();
    let mut clean_ppw = 0.0;
    for (s, &scale) in SWEEP_SCALES.iter().enumerate() {
        let mut energy = 0.0;
        let mut instructions = 0u64;
        let mut windows = 0usize;
        let mut low = 0usize;
        let mut violations = 0usize;
        let mut degraded = 0.0;
        let mut worst = DegradeLevel::ModelDriven;
        let mut transitions = 0u64;
        let mut faults = 0u64;
        let mut images_rejected = 0u64;
        for cell in &grid[s * runs.len()..(s + 1) * runs.len()] {
            energy += cell.energy;
            instructions += cell.instructions;
            windows += cell.windows;
            low += cell.low;
            violations += cell.violations;
            degraded += cell.degraded;
            worst = worst.max(cell.worst);
            transitions += cell.transitions;
            faults += cell.faults;
            images_rejected += cell.images_rejected;
            if (scale - 1.0).abs() < 1e-12 {
                if fault_classes.is_empty() {
                    fault_classes = cell.by_class.clone();
                } else {
                    for (acc, (_, n)) in fault_classes.iter_mut().zip(cell.by_class.iter()) {
                        acc.1 += n;
                    }
                }
            }
        }
        let ppw = if energy > 0.0 {
            instructions as f64 / energy
        } else {
            0.0
        };
        if scale == 0.0 {
            clean_ppw = ppw;
        }
        let point = ChaosPoint {
            scale,
            rsv: violations as f64 / windows.max(1) as f64,
            ppw_retained: if clean_ppw > 0.0 {
                ppw / clean_ppw
            } else {
                0.0
            },
            low_residency: low as f64 / windows.max(1) as f64,
            degraded_fraction: degraded / runs.len() as f64,
            worst,
            transitions,
            faults,
            images_rejected,
        };
        psca_obs::emit(
            psca_obs::Level::Info,
            "chaos.point",
            &[
                ("scale", point.scale.into()),
                ("rsv", point.rsv.into()),
                ("ppw_retained", point.ppw_retained.into()),
                ("faults", point.faults.into()),
            ],
        );
        points.push(point);
    }

    let nominal = points
        .iter()
        .find(|p| (p.scale - 1.0).abs() < 1e-12)
        .expect("sweep includes scale 1.0");
    let pass = nominal.rsv <= spec.max_rsv && nominal.ppw_retained > 0.0;
    psca_obs::gauge("chaos.rsv").set(nominal.rsv);
    psca_obs::gauge("chaos.ppw_retained").set(nominal.ppw_retained);
    psca_obs::counter(if pass { "chaos.pass" } else { "chaos.fail" }).inc();
    ChaosSweep {
        spec: spec.clone(),
        points,
        fault_classes,
        pass,
    }
}

impl std::fmt::Display for ChaosSweep {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Chaos sweep — closed loop under injected faults")?;
        writeln!(f, "spec: {}", self.spec)?;
        writeln!(
            f,
            "{:>6} {:>8} {:>8} {:>8} {:>9} {:>8} {:>7} {:>17}",
            "scale", "rsv", "ppw-ret", "low-res", "degraded", "faults", "img-rej", "worst-tier"
        )?;
        for p in &self.points {
            writeln!(
                f,
                "{:>6.2} {:>8.4} {:>8.3} {:>8.3} {:>9.3} {:>8} {:>7} {:>17}",
                p.scale,
                p.rsv,
                p.ppw_retained,
                p.low_residency,
                p.degraded_fraction,
                p.faults,
                p.images_rejected,
                p.worst.name()
            )?;
        }
        writeln!(f, "fault classes at scale 1.0:")?;
        for (name, n) in &self.fault_classes {
            if *n > 0 {
                writeln!(f, "  {name:12} {n}")?;
            }
        }
        writeln!(
            f,
            "verdict: {} (rsv budget {:.3})",
            if self.pass { "PASS" } else { "FAIL" },
            self.spec.max_rsv
        )
    }
}
