//! Table 5: post-silicon SLA re-targeting (§7.3).
//!
//! The same physical design ships three different power/performance
//! characters by re-labeling the training telemetry under a more
//! permissive SLA, retraining Best RF, and pushing the model as firmware.

use crate::config::ExperimentConfig;
use crate::experiments::eval::evaluate_model_on_corpus;
use crate::paired::CorpusTelemetry;
use crate::train::ModelKind;
use crate::zoo;

/// One SLA row.
#[derive(Debug, Clone)]
pub struct Table5Row {
    /// SLA performance-loss tolerance (P_SLA).
    pub p_sla: f64,
    /// Observed SLA violation rate.
    pub rsv: f64,
    /// PPW gain over the non-adaptive CPU.
    pub ppw_gain: f64,
    /// Average performance relative to always-high-performance.
    pub avg_perf: f64,
    /// The paper's (RSV, PPW gain, avg perf) reference.
    pub paper: (f64, f64, f64),
}

/// Regenerated Table 5.
#[derive(Debug, Clone)]
pub struct Table5 {
    /// Rows for P_SLA ∈ {0.9, 0.8, 0.7}.
    pub rows: Vec<Table5Row>,
}

/// Retrains Best RF under each SLA and evaluates on SPEC.
pub fn run(cfg: &ExperimentConfig, hdtr: &CorpusTelemetry, spec: &CorpusTelemetry) -> Table5 {
    // Scope global metrics/series to this experiment (see ISSUE 2).
    psca_obs::reset_all();
    let settings = [
        (0.90, (0.003, 0.219, 0.982)),
        (0.80, (0.002, 0.282, 0.958)),
        (0.70, (0.001, 0.314, 0.934)),
    ];
    let rows = settings
        .iter()
        .map(|&(p_sla, paper)| {
            let mut c = cfg.clone();
            c.sla = cfg.sla.with_p_sla(p_sla);
            let model = zoo::train(ModelKind::BestRf, hdtr, &c);
            let e = evaluate_model_on_corpus(&model, spec, &c);
            Table5Row {
                p_sla,
                rsv: e.overall.rsv,
                ppw_gain: e.overall.ppw_gain,
                avg_perf: e.overall.avg_perf,
                paper,
            }
        })
        .collect();
    Table5 { rows }
}

impl std::fmt::Display for Table5 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Table 5 — post-silicon SLA re-targeting (Best RF on SPEC)"
        )?;
        writeln!(
            f,
            "{:>6} {:>8} {:>10} {:>10}   {:>24}",
            "P_SLA", "RSV", "PPW gain", "avg perf", "paper (RSV/PPW/perf)"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:>6.2} {:>7.2}% {:>9.1}% {:>9.1}%   {:>6.2}%/{:>5.1}%/{:>5.1}%",
                r.p_sla,
                100.0 * r.rsv,
                100.0 * r.ppw_gain,
                100.0 * r.avg_perf,
                100.0 * r.paper.0,
                100.0 * r.paper.1,
                100.0 * r.paper.2
            )?;
        }
        Ok(())
    }
}
