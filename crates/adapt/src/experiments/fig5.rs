//! Figure 5: telemetry information content — number of counters vs PGOS
//! and RSV, and PF-selected vs expert-chosen counters (§6.2).

use crate::config::ExperimentConfig;
use crate::counters::{run_counter_selection, CHARSTAR_COUNTERS};
use crate::paired::CorpusTelemetry;
use crate::train::{build_dataset, violation_window};
use psca_cpu::Mode;
use psca_ml::crossval::{group_folds, mean_std};
use psca_ml::metrics::{rate_of_sla_violations, Confusion};
use psca_ml::{Mlp, MlpConfig, Standardizer};
use psca_telemetry::Event;

/// One point of the counter-count sweep.
#[derive(Debug, Clone)]
pub struct Fig5Point {
    /// Number of counters used.
    pub counters: usize,
    /// Mean / std of validation PGOS across folds.
    pub pgos: (f64, f64),
    /// Mean / std of validation RSV across folds.
    pub rsv: (f64, f64),
}

/// The regenerated figure.
#[derive(Debug, Clone)]
pub struct Fig5 {
    /// PF-selected counter sweep.
    pub pf_sweep: Vec<Fig5Point>,
    /// The expert (CHARSTAR) counter set's metrics at its 8 counters.
    pub expert: Fig5Point,
    /// The base events PF selection ordered (deduplicated prefix source).
    pub pf_order: Vec<Event>,
}

/// Cross-validated metrics of an MLP on a counter set.
fn evaluate_counters(
    cfg: &ExperimentConfig,
    hdtr: &CorpusTelemetry,
    events: &[Event],
    tag: u64,
) -> ((f64, f64), (f64, f64)) {
    let raw = build_dataset(hdtr, Mode::LowPower, events, 1, &cfg.sla);
    let w = violation_window(cfg, 1);
    let folds = group_folds(raw.groups(), cfg.folds, 0.2, cfg.sub_seed("fig5") ^ tag);
    let mlp_cfg = MlpConfig {
        hidden: vec![32, 32, 16],
        epochs: 20,
        ..MlpConfig::default()
    };
    let mut pgos_vals = Vec::new();
    let mut rsv_vals = Vec::new();
    for (fi, fold) in folds.iter().enumerate() {
        let tune_raw = raw.subset(&fold.tune);
        let std = Standardizer::fit(&tune_raw);
        let tune = std.transform_dataset(&tune_raw);
        let val = std.transform_dataset(&raw.subset(&fold.validate));
        let mlp = Mlp::fit(&mlp_cfg, &tune, cfg.sub_seed("fig5-mlp") ^ tag ^ fi as u64);
        let preds: Vec<u8> = (0..val.len())
            .map(|i| mlp.predict(val.sample(i).0) as u8)
            .collect();
        pgos_vals.push(Confusion::from_predictions(val.labels(), &preds).pgos());
        rsv_vals.push(rate_of_sla_violations(val.labels(), &preds, w));
    }
    (mean_std(&pgos_vals), mean_std(&rsv_vals))
}

/// Runs the counter-count sweep and the PF-vs-expert comparison.
pub fn run(cfg: &ExperimentConfig, hdtr: &CorpusTelemetry) -> Fig5 {
    // Scope global metrics/series to this experiment (see ISSUE 2).
    psca_obs::reset_all();
    // PF-order the counters once (greedy order → prefixes are nested).
    let max_traces = hdtr.traces.len().min(40);
    let selection = run_counter_selection(hdtr, cfg, Mode::LowPower, 32, max_traces);
    let mut pf_order: Vec<Event> = Vec::new();
    for e in &selection.selected_base_events {
        if !pf_order.contains(e) {
            pf_order.push(*e);
        }
    }
    let mut pf_sweep = Vec::new();
    for &r in &[2usize, 4, 8, 12, 16, 24, 32] {
        if r > pf_order.len() {
            break;
        }
        let events = &pf_order[..r];
        let (pgos, rsv) = evaluate_counters(cfg, hdtr, events, r as u64);
        pf_sweep.push(Fig5Point {
            counters: r,
            pgos,
            rsv,
        });
    }
    let (pgos, rsv) = evaluate_counters(cfg, hdtr, &CHARSTAR_COUNTERS, 999);
    let expert = Fig5Point {
        counters: CHARSTAR_COUNTERS.len(),
        pgos,
        rsv,
    };
    Fig5 {
        pf_sweep,
        expert,
        pf_order,
    }
}

impl std::fmt::Display for Fig5 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Figure 5 — counters vs PGOS / RSV (validation folds)")?;
        writeln!(
            f,
            "{:>9} {:>10} {:>10} {:>10} {:>10}",
            "counters", "PGOS avg", "PGOS std", "RSV avg", "RSV std"
        )?;
        for p in &self.pf_sweep {
            writeln!(
                f,
                "{:>9} {:>9.1}% {:>9.1}% {:>9.1}% {:>9.1}%",
                p.counters,
                100.0 * p.pgos.0,
                100.0 * p.pgos.1,
                100.0 * p.rsv.0,
                100.0 * p.rsv.1
            )?;
        }
        writeln!(
            f,
            "expert-8: PGOS {:.1}%+-{:.1}%, RSV {:.1}%+-{:.1}%",
            100.0 * self.expert.pgos.0,
            100.0 * self.expert.pgos.1,
            100.0 * self.expert.rsv.0,
            100.0 * self.expert.rsv.1
        )?;
        writeln!(
            f,
            "(paper: PF-12 improves RSV 3.6% -> 2.4% and halves its std vs expert counters)"
        )
    }
}
