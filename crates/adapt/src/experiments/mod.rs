//! Experiment drivers: one module per table / figure of the paper.
//!
//! Every driver takes an [`crate::ExperimentConfig`] and returns a typed
//! result whose `Display` prints the same rows/series the paper reports.
//! The `repro` binary in `psca-bench` dispatches to these.

pub mod ablations;
pub mod chaos;
pub mod fig10;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod table5;
pub mod table6;

mod eval;

pub use eval::{
    evaluate_model_on_corpus, evaluate_with_guardrail, ModelEvaluation, PerAppEvaluation,
};
