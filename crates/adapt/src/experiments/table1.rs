//! Table 1: HDTR corpus composition.

use crate::config::ExperimentConfig;
use psca_workloads::{composition, hdtr_corpus, Category, HdtrComposition};

/// Regenerated Table 1 plus the paper's reference values.
#[derive(Debug, Clone)]
pub struct Table1 {
    /// Composition of the synthesized corpus at the configured scale.
    pub ours: HdtrComposition,
    /// The paper's per-category application counts.
    pub paper: [usize; 6],
}

/// Builds the HDTR corpus and summarizes it.
pub fn run(cfg: &ExperimentConfig) -> Table1 {
    // Scope global metrics/series to this experiment (see ISSUE 2).
    psca_obs::reset_all();
    let corpus = hdtr_corpus(cfg.sub_seed("hdtr"), cfg.hdtr_apps, cfg.hdtr_phase_len);
    Table1 {
        ours: composition(&corpus),
        paper: Category::PAPER_APP_COUNTS,
    }
}

impl std::fmt::Display for Table1 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Table 1 — HDTR corpus composition")?;
        writeln!(f, "{:35} {:>8} {:>12}", "Category", "ours", "paper (593)")?;
        for ((cat, n), paper) in self.ours.per_category.iter().zip(self.paper) {
            writeln!(f, "{:35} {:>8} {:>12}", cat.name(), n, paper)?;
        }
        writeln!(
            f,
            "total: {} applications, {} traces (paper: 593 / 2,648)",
            self.ours.total_apps, self.ours.total_traces
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_shape_matches_paper_proportions() {
        let mut cfg = ExperimentConfig::quick();
        cfg.hdtr_apps = 60;
        let t = run(&cfg);
        assert_eq!(t.ours.total_apps, 60);
        // HPC & Web are the two biggest categories in the paper; the
        // scaled corpus must preserve that ordering.
        let counts: Vec<usize> = t.ours.per_category.iter().map(|(_, n)| *n).collect();
        assert!(counts[0] >= counts[2], "HPC >= AI");
        assert!(counts[3] >= counts[2], "Web >= AI");
        assert!(t.to_string().contains("Table 1"));
    }
}
