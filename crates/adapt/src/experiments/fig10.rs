//! Figure 10: step-by-step blindspot mitigation (§7.2).
//!
//! Builds up from the CHARSTAR baseline to the Best MLP, isolating each
//! §6 technique's contribution to RSV on the SPEC test set:
//!
//! 1. baseline MLP trained on SPEC2017 data only (leave-one-out);
//! 2. + high-diversity HDTR training data (§6.1);
//! 3. + PF-selected counters instead of expert counters (§6.2);
//! 4. + screened 3-layer topology (§6.3).

use crate::config::ExperimentConfig;
use crate::counters::{CHARSTAR_COUNTERS, TABLE4_COUNTERS};
use crate::experiments::eval::evaluate_model_on_corpus;
use crate::paired::CorpusTelemetry;
use crate::zoo::train_custom_mlp;

/// One mitigation step.
#[derive(Debug, Clone)]
pub struct Fig10Step {
    /// Step description.
    pub label: String,
    /// RSV on the SPEC test set.
    pub rsv: f64,
    /// PPW gain on the SPEC test set.
    pub ppw_gain: f64,
    /// The paper's reported RSV at this step.
    pub paper_rsv: f64,
}

/// Regenerated Figure 10.
#[derive(Debug, Clone)]
pub struct Fig10 {
    /// Steps in mitigation order.
    pub steps: Vec<Fig10Step>,
}

/// Runs the ablation.
pub fn run(cfg: &ExperimentConfig, hdtr: &CorpusTelemetry, spec: &CorpusTelemetry) -> Fig10 {
    // Scope global metrics/series to this experiment (see ISSUE 2).
    psca_obs::reset_all();
    let g = 2; // CHARSTAR granularity for the baseline steps
    let mut steps = Vec::new();

    // Step 1: SPEC-only training (leave-one-benchmark-out), expert
    // counters, 1-layer topology.
    {
        let mut rsv_sum = 0.0;
        let mut ppw_sum = 0.0;
        let mut n = 0.0;
        let apps = spec.app_ids();
        for &held in &apps {
            let tune: Vec<u32> = apps.iter().copied().filter(|&a| a != held).collect();
            let tune_corpus = spec.filter_apps(&tune);
            let held_corpus = spec.filter_apps(&[held]);
            let model = train_custom_mlp(
                &tune_corpus,
                cfg,
                &CHARSTAR_COUNTERS,
                &[10],
                g,
                cfg.sub_seed("fig10-spec") ^ held as u64,
            );
            let e = evaluate_model_on_corpus(&model, &held_corpus, cfg);
            rsv_sum += e.overall.rsv;
            ppw_sum += e.overall.ppw_gain;
            n += 1.0;
        }
        steps.push(Fig10Step {
            label: "baseline MLP, SPEC-only training".into(),
            rsv: rsv_sum / n,
            ppw_gain: ppw_sum / n,
            paper_rsv: 0.165,
        });
    }

    // Steps 2–4 average over several training seeds: a single MLP
    // initialization makes blindspot magnitude noisy, and the step
    // structure — not one lucky model — is the claim under test.
    let seeds = 3u64;
    let averaged = |label: &str,
                    counters: &[psca_telemetry::Event],
                    hidden: &[usize],
                    paper_rsv: f64,
                    tag: &str| {
        let mut rsv = 0.0;
        let mut ppw = 0.0;
        for s in 0..seeds {
            let model = train_custom_mlp(hdtr, cfg, counters, hidden, g, cfg.sub_seed(tag) ^ s);
            let e = evaluate_model_on_corpus(&model, spec, cfg);
            rsv += e.overall.rsv;
            ppw += e.overall.ppw_gain;
        }
        Fig10Step {
            label: label.into(),
            rsv: rsv / seeds as f64,
            ppw_gain: ppw / seeds as f64,
            paper_rsv,
        }
    };

    // Step 2: + HDTR diversity.
    steps.push(averaged(
        "+ high-diversity training (HDTR)",
        &CHARSTAR_COUNTERS,
        &[10],
        0.109,
        "fig10-hdtr",
    ));
    // Step 3: + PF-selected counters.
    steps.push(averaged(
        "+ PF counter selection",
        &TABLE4_COUNTERS,
        &[10],
        0.043,
        "fig10-pf",
    ));
    // Step 4: + screened 3-layer topology.
    steps.push(averaged(
        "+ hyperparameter screening (3-layer)",
        &TABLE4_COUNTERS,
        &[8, 8, 4],
        0.012,
        "fig10-topo",
    ));

    Fig10 { steps }
}

impl std::fmt::Display for Fig10 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Figure 10 — blindspot mitigation, step by step (SPEC RSV)"
        )?;
        writeln!(
            f,
            "{:40} {:>8} {:>10} {:>10}",
            "step", "RSV", "paper RSV", "PPW gain"
        )?;
        for s in &self.steps {
            writeln!(
                f,
                "{:40} {:>7.2}% {:>9.1}% {:>9.1}%",
                s.label,
                100.0 * s.rsv,
                100.0 * s.paper_rsv,
                100.0 * s.ppw_gain
            )?;
        }
        Ok(())
    }
}
