//! Table 4: the counters PF Counter Selection identifies.

use crate::config::ExperimentConfig;
use crate::counters::{run_counter_selection, CounterSelection, TABLE4_COUNTERS};
use crate::paired::CorpusTelemetry;
use psca_cpu::Mode;
use psca_telemetry::Event;

/// Regenerated Table 4.
#[derive(Debug, Clone)]
pub struct Table4 {
    /// The selection pipeline's output on the 936-stream cross-section.
    pub selection: CounterSelection,
    /// The paper's 12 counters (our canonical deployment set).
    pub paper: [Event; 12],
    /// How many of the paper's 12 counter *families* the pipeline
    /// recovered (by underlying base event).
    pub recovered: usize,
}

/// Runs screening + PF selection over (a subset of) the HDTR corpus and
/// compares the outcome with Table 4.
pub fn run(cfg: &ExperimentConfig, hdtr: &CorpusTelemetry) -> Table4 {
    // Scope global metrics/series to this experiment (see ISSUE 2).
    psca_obs::reset_all();
    let max_traces = hdtr.traces.len().min(40);
    let selection = run_counter_selection(hdtr, cfg, Mode::LowPower, 12, max_traces);
    let paper_set: std::collections::HashSet<Event> = TABLE4_COUNTERS.iter().copied().collect();
    let picked: std::collections::HashSet<Event> =
        selection.selected_base_events.iter().copied().collect();
    let recovered = picked.intersection(&paper_set).count();
    Table4 {
        selection,
        paper: TABLE4_COUNTERS,
        recovered,
    }
}

impl std::fmt::Display for Table4 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Table 4 — PF Counter Selection output")?;
        writeln!(
            f,
            "streams after screens: {} (from 936)",
            self.selection.screened
        )?;
        writeln!(f, "{:50} {:30}", "Selected stream", "base event")?;
        for (name, base) in self
            .selection
            .selected_names
            .iter()
            .zip(&self.selection.selected_base_events)
        {
            writeln!(f, "{:50} {:30}", name, base.name())?;
        }
        writeln!(
            f,
            "recovered {} of 12 Table-4 counter families",
            self.recovered
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paired::collect_paired;
    use psca_workloads::{Archetype, PhaseGenerator};

    #[test]
    fn table4_selects_12_streams() {
        let mut traces = Vec::new();
        for (i, a) in [
            Archetype::Balanced,
            Archetype::MemBound,
            Archetype::Branchy,
            Archetype::StreamFpWide,
        ]
        .iter()
        .enumerate()
        {
            let mut gen = PhaseGenerator::new(a.center(), i as u64 + 70);
            traces.push(collect_paired(&mut gen, 2_000, 12, 2_000, i as u32, "t", 1));
        }
        let corpus = CorpusTelemetry { traces };
        let cfg = ExperimentConfig::quick();
        let t = run(&cfg, &corpus);
        assert_eq!(t.selection.selected_streams.len(), 12);
        assert!(t.selection.screened < 936);
        assert!(t.recovered <= 12);
    }
}
